/**
 * @file
 * TLB-reach sizing study — the paper's §1 motivation as a tool.
 *
 * An architect sizing a processor's TLB wants to know: for a given
 * workload, how much does each TLB size recover, and what does an
 * MTLB in the memory controller buy instead? This example sweeps the
 * CPU TLB from 32 to 256 entries on one workload and prints reach,
 * miss-time fraction, and runtime — with and without the MTLB —
 * reproducing in miniature the paper's observation that a 64-entry
 * TLB plus an MTLB performs like a 128-entry TLB without one.
 *
 * Usage: tlb_reach_study [workload] [scale]
 *   workload: compress95 | vortex | radix | em3d | cc1 (default vortex)
 *   scale:    dataset scale in (0,1] (default 0.25)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workloads/experiment.hh"

using namespace mtlbsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "vortex";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    setInformEnabled(false);

    std::printf("TLB reach study: %s at scale %.2f\n", name.c_str(),
                scale);
    std::printf("(reach = entries x 4 KB base pages, the paper's §1 "
                "definition)\n\n");
    std::printf("%8s %10s | %14s %9s | %14s %9s | %8s\n", "entries",
                "reach", "cycles (conv)", "miss%", "cycles (MTLB)",
                "miss%", "speedup");

    for (unsigned entries : {32u, 64u, 96u, 128u, 192u, 256u}) {
        const auto base =
            runExperiment(name, scale, paperConfig(entries, false));
        const auto with =
            runExperiment(name, scale, paperConfig(entries, true));
        const Addr reach_kb = Addr{entries} * basePageSize / 1024;
        std::printf("%8u %8lluKB | %14llu %8.1f%% | %14llu %8.1f%% | "
                    "%7.3fx\n",
                    entries,
                    static_cast<unsigned long long>(reach_kb),
                    static_cast<unsigned long long>(base.totalCycles),
                    100.0 * base.tlbMissFraction,
                    static_cast<unsigned long long>(with.totalCycles),
                    100.0 * with.tlbMissFraction,
                    static_cast<double>(base.totalCycles) /
                        static_cast<double>(with.totalCycles));
    }

    std::printf("\nNote how the MTLB column barely changes with TLB "
                "size: shadow superpages have\nalready collapsed the "
                "workload's page working set to a handful of "
                "entries.\n");
    return 0;
}
