/**
 * @file
 * Walkthrough of the paper's §2.5/§4 paging mechanism: swapping a
 * shadow-backed superpage out one base page at a time, and faulting
 * pages back in through the MMC's precise-exception path.
 *
 * The sequence demonstrated:
 *   1. remap() builds a 256 KB superpage from 64 scattered frames;
 *   2. the program writes a few pages and reads others — the MTLB
 *      records per-base-page referenced/dirty bits;
 *   3. the OS swaps the superpage out page-wise: only dirty pages
 *      travel to disk, and the CPU TLB's superpage entry survives;
 *   4. the program touches a swapped page: the MMC raises a precise
 *      fault, the kernel reloads just that base page, the access
 *      retries — no other page is disturbed.
 *
 * Usage: pagewise_paging
 */

#include <cstdio>

#include "mmc/memsys.hh"
#include "sim/system.hh"

using namespace mtlbsim;

int
main()
{
    setInformEnabled(false);

    SystemConfig config;
    config.installedBytes = Addr{64} * 1024 * 1024;
    System sys(config);
    Kernel &kernel = sys.kernel();
    Cpu &cpu = sys.cpu();

    const Addr base = 0x10000000;
    const Addr bytes = 256 * 1024;      // one 256 KB superpage
    kernel.addressSpace().addRegion("data", base, bytes, {});

    std::printf("1. remap(): building a 256 KB shadow superpage\n");
    cpu.remap(base, bytes);
    const ShadowSuperpage *sp =
        kernel.addressSpace().findSuperpage(base);
    std::printf("   virtual 0x%llx -> shadow 0x%llx (%llu base "
                "pages, scattered real frames)\n",
                static_cast<unsigned long long>(sp->vbase),
                static_cast<unsigned long long>(sp->shadowBase),
                static_cast<unsigned long long>(sp->numBasePages()));
    std::printf("   frames of pages 0..3: %llu %llu %llu %llu "
                "(discontiguous, as §2.1 promises)\n",
                static_cast<unsigned long long>(
                    kernel.addressSpace().frameOf(base)),
                static_cast<unsigned long long>(
                    kernel.addressSpace().frameOf(base + 0x1000)),
                static_cast<unsigned long long>(
                    kernel.addressSpace().frameOf(base + 0x2000)),
                static_cast<unsigned long long>(
                    kernel.addressSpace().frameOf(base + 0x3000)));

    std::printf("\n2. touching pages: write 0-7, read 8-15, leave "
                "the rest untouched\n");
    for (unsigned p = 0; p < 8; ++p)
        cpu.store(base + p * basePageSize);
    for (unsigned p = 8; p < 16; ++p)
        cpu.load(base + p * basePageSize);

    ShadowPte pte0{}, pte8{}, pte32{};
    const Addr spi0 = sys.physmap().shadowPageIndex(sp->shadowBase);
    sys.memsys().controlOp(cpu.now(), [&](Mmc &mmc) {
        pte0 = mmc.readShadowEntry(spi0 + 0);
        pte8 = mmc.readShadowEntry(spi0 + 8);
        pte32 = mmc.readShadowEntry(spi0 + 32);
        return Cycles{8};
    });
    std::printf("   MTLB per-base-page bits: page0 R=%u M=%u | "
                "page8 R=%u M=%u | page32 R=%u M=%u\n",
                pte0.referenced, pte0.modified, pte8.referenced,
                pte8.modified, pte32.referenced, pte32.modified);

    std::printf("\n3. page-wise swap-out (per-base-page dirty bits, "
                "§2.5)\n");
    const SwapOutResult out =
        kernel.swapOutSuperpagePagewise(base, cpu.now());
    std::printf("   pages written to disk: %u (only the dirty "
                "ones)\n", out.pagesWritten);
    std::printf("   pages dropped clean:   %u\n", out.pagesClean);
    std::printf("   CPU TLB superpage entry still valid: %s\n",
                sys.tlb().probe(base) ? "yes" : "no");

    std::printf("\n4. touching a swapped page: precise MMC fault -> "
                "reload -> retry (§4)\n");
    const Cycles before = cpu.now();
    cpu.load(base + 5 * basePageSize);
    std::printf("   access completed after %llu cycles (includes "
                "one disk read)\n",
                static_cast<unsigned long long>(cpu.now() - before));
    std::printf("   page 5 resident again: %s; page 6 still out: "
                "%s\n",
                kernel.addressSpace().isPagePresent(
                    base + 5 * basePageSize)
                    ? "yes"
                    : "no",
                kernel.addressSpace().isPagePresent(
                    base + 6 * basePageSize)
                    ? "no (bug!)"
                    : "yes");

    std::printf("\nConventional superpages would have paid %llu "
                "disk writes and a full reload;\nthe shadow-backed "
                "superpage paid %u writes and one single-page "
                "fault.\n",
                static_cast<unsigned long long>(sp->numBasePages()),
                out.pagesWritten);
    return 0;
}
