/**
 * @file
 * General-purpose simulation driver: any workload, any machine,
 * configured entirely from the command line or a config file.
 *
 * Usage:
 *   run_workload <workload> [scale] [key=value ...] [options]
 *
 *   <workload>   compress95 | vortex | radix | em3d | cc1
 *   [scale]      dataset scale in (0,1], default 1.0
 *
 * Options (later assignments win, so put --config before overrides):
 *   --config <file>   apply a key=value config file
 *   --dump-stats      print the full statistics tree afterwards
 *   --list-keys       print every accepted config key and exit
 *
 * Any other token containing '=' is a config assignment, e.g.:
 *
 *   run_workload em3d 0.5 tlb.entries=64 mtlb.entries=256 \
 *       mtlb.assoc=4 stream_buffers.enabled=true --dump-stats
 *
 * Config files live in configs/; configs/paper.cfg is the machine of
 * §3.2/§3.4.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/debug.hh"
#include "sim/config_parser.hh"
#include "workloads/experiment.hh"

using namespace mtlbsim;

namespace
{

void
usage()
{
    std::printf(
        "usage: run_workload <workload> [scale] [key=value ...]\n"
        "       [--config <file>] [--dump-stats] [--list-keys]\n"
        "workloads: ");
    for (const auto &name : allWorkloadNames())
        std::printf("%s ", name.c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    debug::initFromEnvironment();   // MTLBSIM_DEBUG=MTLB,Kernel,...

    ConfigParser parser;
    std::vector<std::string> positional;
    bool dump_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token == "--help" || token == "-h") {
            usage();
            return 0;
        }
        if (token == "--list-keys") {
            for (const auto &key : ConfigParser::knownKeys())
                std::printf("%s\n", key.c_str());
            return 0;
        }
        if (token == "--dump-stats") {
            dump_stats = true;
            continue;
        }
        if (token == "--config") {
            if (++i >= argc) {
                usage();
                return 1;
            }
            parser.parseFile(argv[i]);
            continue;
        }
        if (token.find('=') != std::string::npos) {
            const auto eq = token.find('=');
            parser.set(token.substr(0, eq), token.substr(eq + 1));
            continue;
        }
        positional.push_back(token);
    }

    if (positional.empty()) {
        usage();
        return 1;
    }
    const std::string workload_name = positional[0];
    const double scale =
        positional.size() > 1 ? std::atof(positional[1].c_str()) : 1.0;

    System sys(parser.config());
    auto workload = makeWorkload(workload_name, scale);

    workload->setup(sys);
    workload->run(sys);

    std::printf("workload:        %s (scale %.2f)\n",
                workload_name.c_str(), scale);
    std::printf("machine:         %u-entry TLB, %s",
                sys.config().tlbEntries,
                sys.config().mtlbEnabled ? "MTLB " : "no MTLB\n");
    if (sys.config().mtlbEnabled) {
        std::printf("%u entries %u-way\n",
                    sys.config().mtlb.numEntries,
                    sys.config().mtlb.associativity);
    }
    std::printf("total cycles:    %llu\n",
                static_cast<unsigned long long>(sys.totalCycles()));
    std::printf("wall time @240MHz: %.1f ms\n",
                static_cast<double>(sys.totalCycles()) / 240e3);
    std::printf("TLB miss time:   %llu cycles (%.2f%%)\n",
                static_cast<unsigned long long>(sys.tlbMissCycles()),
                100.0 * sys.tlbMissFraction());
    std::printf("avg cache fill:  %.2f cycles\n",
                sys.avgFillLatency());
    std::printf("superpages:      %zu\n",
                sys.kernel().addressSpace().superpages().size());
    if (sys.config().mtlbEnabled) {
        std::printf("MTLB hit rate:   %.1f%%\n",
                    100.0 * sys.memsys().mmc().mtlb().hitRate());
    }

    if (dump_stats) {
        std::printf("\n");
        sys.dumpStats(std::cout);
    }
    return 0;
}
