/**
 * @file
 * Quickstart: build a machine, run one workload, compare with and
 * without the MTLB.
 *
 * This is the paper's headline experiment in miniature (§3.4): the
 * same program on the same machine, once with a conventional memory
 * controller and once with a 128-entry 2-way MTLB backing shadow
 * superpages, showing the runtime and TLB-miss-time difference.
 *
 * Usage: quickstart [workload] [scale]
 *   workload: compress95 | vortex | radix | em3d | cc1 (default em3d)
 *   scale:    dataset scale in (0,1] (default 0.25 for a fast demo)
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace mtlbsim;

namespace
{

struct RunResult
{
    Cycles totalCycles;
    Cycles tlbMissCycles;
    double tlbMissPct;
    double avgFill;
};

RunResult
runOnce(const std::string &workload_name, double scale, bool with_mtlb)
{
    SystemConfig config;
    config.tlbEntries = 96;
    config.mtlbEnabled = with_mtlb;

    System sys(config);
    auto workload = makeWorkload(workload_name, scale);
    workload->setup(sys);
    workload->run(sys);

    return {sys.totalCycles(), sys.tlbMissCycles(),
            100.0 * sys.tlbMissFraction(), sys.avgFillLatency()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "em3d";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    setInformEnabled(false);

    std::cout << "mtlb-sim quickstart: " << name << " at scale "
              << scale << "\n\n";

    std::cout << "running without MTLB (conventional MMC)...\n";
    const RunResult base = runOnce(name, scale, false);
    std::cout << "running with 128-entry 2-way MTLB...\n\n";
    const RunResult mtlb = runOnce(name, scale, true);

    std::cout << std::fixed;
    std::cout << std::setw(28) << "" << std::setw(16) << "no MTLB"
              << std::setw(16) << "MTLB" << '\n';
    std::cout << std::setw(28) << "total cycles"
              << std::setw(16) << base.totalCycles
              << std::setw(16) << mtlb.totalCycles << '\n';
    std::cout << std::setw(28) << "TLB miss cycles"
              << std::setw(16) << base.tlbMissCycles
              << std::setw(16) << mtlb.tlbMissCycles << '\n';
    std::cout << std::setw(28) << "TLB miss % of runtime"
              << std::setw(16) << std::setprecision(2)
              << base.tlbMissPct
              << std::setw(16) << mtlb.tlbMissPct << '\n';
    std::cout << std::setw(28) << "avg cache-fill cycles"
              << std::setw(16) << std::setprecision(2) << base.avgFill
              << std::setw(16) << mtlb.avgFill << '\n';

    const double speedup =
        static_cast<double>(base.totalCycles) /
        static_cast<double>(mtlb.totalCycles);
    std::cout << "\nMTLB speedup: " << std::setprecision(3) << speedup
              << "x\n";
    return 0;
}
