/**
 * @file
 * Driving a custom machine directly through the public API — no
 * bundled workload, your own access pattern.
 *
 * Shows the minimal lifecycle a library user follows:
 *   1. describe the machine with SystemConfig (every knob the paper
 *      varies is here: TLB entries, MTLB geometry, cache, DRAM, bus,
 *      kernel cost model);
 *   2. declare the process's memory regions;
 *   3. optionally remap() regions onto shadow superpages;
 *   4. issue execute()/load()/store() from your own code;
 *   5. read the statistics.
 *
 * The pattern here is a sparse pointer-chase: a few thousand hot
 * records scattered across an 8 MB arena, touching only a line or
 * two per page. The whole hot set fits in the 512 KB cache but
 * spans ~20x more pages than the CPU TLB maps — the exact structure
 * (per §1) where TLB reach, not cache capacity, is the bottleneck,
 * and where shadow superpages win outright.
 *
 * Usage: custom_machine
 */

#include <iostream>

#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

/** Chase @p count records scattered through the arena, @p reps
 *  times. Each visit reads two fields of a 64-byte record. */
void
sparseChase(Cpu &cpu, Addr arena, Addr arena_bytes, unsigned count,
            unsigned reps)
{
    for (unsigned r = 0; r < reps; ++r) {
        std::uint64_t x = 0x2545f4914f6cdd1dULL;
        for (unsigned i = 0; i < count; ++i) {
            // Deterministic scatter (xorshift), 64-byte aligned.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            const Addr record = arena + (x % arena_bytes & ~Addr{63});
            cpu.execute(6);     // next-pointer computation
            cpu.load(record);
            cpu.load(record + 32);
        }
    }
}

} // namespace

int
main()
{
    setInformEnabled(false);

    // 1. Describe the machine. Start from defaults (the paper's
    //    §3.2 system) and customise.
    SystemConfig config;
    config.tlbEntries = 96;             // HP PA8000-class
    config.mtlb.numEntries = 256;       // a roomier MTLB than §3.4's
    config.mtlb.associativity = 4;
    config.installedBytes = Addr{128} * 1024 * 1024;
    config.cpu.loadUseOverlap = 4;      // mild stall-on-use overlap

    for (const bool with_mtlb : {false, true}) {
        config.mtlbEnabled = with_mtlb;
        System sys(config);

        // 2. Declare regions: an 8 MB record arena.
        const Addr arena = 0x10000000;
        const Addr arena_bytes = Addr{8} * 1024 * 1024;
        sys.kernel().addressSpace().addRegion("arena", arena,
                                              arena_bytes, {});

        // 3. Shadow superpages (a no-op on the conventional run).
        sys.cpu().remap(arena, arena_bytes);

        // 4. Drive it: 4096 hot records, revisited 20 times.
        sparseChase(sys.cpu(), arena, arena_bytes, 4096, 20);

        // 5. Read the results.
        std::cout << (with_mtlb ? "with MTLB:   " : "conventional: ")
                  << sys.totalCycles() << " cycles, "
                  << 100.0 * sys.tlbMissFraction()
                  << "% in TLB miss handling, "
                  << sys.tlb().misses() << " TLB misses\n";

        if (with_mtlb) {
            std::cout << "\nfull statistics dump (with MTLB):\n";
            sys.dumpStats(std::cout);
        }
    }
    return 0;
}
