#!/usr/bin/env bash
# mtlbsim correctness driver.
#
# Runs, in order:
#   1. the warnings-as-errors build,
#   2. the plain test suite,
#   3. the address+UB-sanitized test suite,
#   4. (optional, --tsan) the thread-sanitized test suite,
#   5. (optional, --tidy) clang-tidy over src/.
#
# Usage: tools/check.sh [--tsan] [--tidy] [--labels L] [-j N]
#
# --labels L restricts every ctest invocation to tests carrying the
# given ctest LABEL (unit | property | golden | fuzz; comma/regex
# accepted, passed straight to `ctest -L`).

set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_tsan=0
run_tidy=0
labels=""
while [ $# -gt 0 ]; do
    case "$1" in
        --tsan) run_tsan=1 ;;
        --tidy) run_tidy=1 ;;
        --labels) shift; labels=$1 ;;
        -j) shift; jobs=$1 ;;
        *) echo "usage: tools/check.sh [--tsan] [--tidy]" \
                "[--labels L] [-j N]" >&2
           exit 2 ;;
    esac
    shift
done

label_args=()
if [ -n "$labels" ]; then
    label_args=(-L "$labels")
fi

step() { printf '\n== %s ==\n' "$*"; }

step "warnings-as-errors build"
cmake --preset werror >/dev/null
cmake --build --preset werror -j "$jobs"

step "test suite (default build)"
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs" "${label_args[@]}"

step "test suite (address + undefined sanitizers)"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs" "${label_args[@]}"

if [ "$run_tsan" = 1 ]; then
    step "test suite (thread sanitizer)"
    cmake --preset tsan >/dev/null
    cmake --build --preset tsan -j "$jobs"
    ctest --preset tsan -j "$jobs" "${label_args[@]}"
fi

if [ "$run_tidy" = 1 ]; then
    step "clang-tidy"
    if ! command -v clang-tidy >/dev/null; then
        echo "clang-tidy not found; skipping" >&2
    else
        cmake -B build-tidy -S . \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
        find src -name '*.cc' -print0 |
            xargs -0 -P "$jobs" -n 4 clang-tidy -p build-tidy --quiet
    fi
fi

step "all checks passed"
