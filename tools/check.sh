#!/usr/bin/env bash
# mtlbsim correctness driver.
#
# Runs, in order:
#   1. the warnings-as-errors build,
#   2. mtlb-lint over the source tree (tools/lint),
#   3. the plain test suite,
#   4. the address+UB-sanitized test suite,
#   5. (optional, --model) the bounded model checker, depth 4,
#   6. (optional, --tsan) the thread-sanitized test suite,
#   7. (optional, --tidy) clang-tidy over src/.
#
# Usage: tools/check.sh [--lint] [--model] [--tsan] [--tidy]
#                       [--labels L] [-j N]
#
# --lint runs ONLY the lint step (the fast pre-commit gate).
# --model appends the model-checker step to the sequence.
# --labels L restricts every ctest invocation to tests carrying the
# given ctest LABEL (unit | property | golden | fuzz | lint | model |
# batch | multicore; comma/regex accepted, passed straight to
# `ctest -L`).
#
# Unlike a plain `set -e` script, the driver keeps going after a
# failing step (steps whose build prerequisite failed are skipped),
# prints an explicit per-step status table at the end, and exits
# nonzero when any step failed — one run reports *all* broken
# dimensions, not just the first.

set -uo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_tsan=0
run_tidy=0
run_model=0
lint_only=0
labels=""
while [ $# -gt 0 ]; do
    case "$1" in
        --lint) lint_only=1 ;;
        --model) run_model=1 ;;
        --tsan) run_tsan=1 ;;
        --tidy) run_tidy=1 ;;
        --labels) shift; labels=$1 ;;
        -j) shift; jobs=$1 ;;
        *) echo "usage: tools/check.sh [--lint] [--model] [--tsan]" \
                "[--tidy] [--labels L] [-j N]" >&2
           exit 2 ;;
    esac
    shift
done

label_args=()
if [ -n "$labels" ]; then
    label_args=(-L "$labels")
fi

# ---- explicit status aggregation ----------------------------------
step_names=()
step_states=()
overall=0

step() { printf '\n== %s ==\n' "$*"; }

# record NAME ok|FAIL|skipped
record() {
    step_names+=("$1")
    step_states+=("$2")
    if [ "$2" = FAIL ]; then
        overall=1
    fi
}

summary() {
    printf '\n== summary ==\n'
    local i
    for i in "${!step_names[@]}"; do
        printf '  %-40s %s\n' "${step_names[$i]}" "${step_states[$i]}"
    done
    if [ "$overall" = 0 ]; then
        printf '\nall checks passed\n'
    else
        printf '\nSOME CHECKS FAILED\n' >&2
    fi
    exit "$overall"
}

# ---- steps ---------------------------------------------------------

lint_step() {
    step "mtlb-lint"
    cmake --preset default >/dev/null &&
        cmake --build --preset default -j "$jobs" \
            --target mtlb_lint || return 1
    # Per-rule status: run each family on its own so the pre-commit
    # gate says *which* contract broke, then gate on the full run.
    local rule rc=0
    for rule in R1 R2 R3 R4 R5 R6 R7 R8 R9 R10 R11 R12 SA; do
        if build/tools/lint/mtlb-lint --root . \
                --only "$rule" --quiet >/dev/null 2>&1; then
            printf '  %-4s ok\n' "$rule"
        else
            printf '  %-4s FAIL\n' "$rule"
            rc=1
        fi
    done
    # Full run last: prints the actual findings for any FAIL above.
    build/tools/lint/mtlb-lint --root . || rc=1
    return "$rc"
}

if [ "$lint_only" = 1 ]; then
    if lint_step; then
        record "mtlb-lint" ok
    else
        record "mtlb-lint" FAIL
    fi
    summary
fi

step "warnings-as-errors build"
if cmake --preset werror >/dev/null &&
       cmake --build --preset werror -j "$jobs"; then
    record "werror build" ok
else
    record "werror build" FAIL
fi

if lint_step; then
    record "mtlb-lint" ok
else
    record "mtlb-lint" FAIL
fi

step "test suite (default build)"
default_built=0
if cmake --preset default >/dev/null &&
       cmake --build --preset default -j "$jobs"; then
    default_built=1
    if ctest --preset default -j "$jobs" "${label_args[@]}"; then
        record "tests (default)" ok
    else
        record "tests (default)" FAIL
    fi
else
    record "tests (default)" FAIL
fi

step "test suite (address + undefined sanitizers)"
if cmake --preset asan-ubsan >/dev/null &&
       cmake --build --preset asan-ubsan -j "$jobs"; then
    if ctest --preset asan-ubsan -j "$jobs" "${label_args[@]}"; then
        record "tests (asan+ubsan)" ok
    else
        record "tests (asan+ubsan)" FAIL
    fi
else
    record "tests (asan+ubsan)" FAIL
fi

if [ "$run_model" = 1 ]; then
    step "bounded model check (depth 4)"
    if [ "$default_built" = 1 ]; then
        if cmake --build --preset default -j "$jobs" \
                --target modelcheck &&
               build/tools/modelcheck --depth 4; then
            record "model check" ok
        else
            record "model check" FAIL
        fi
    else
        record "model check" skipped
    fi
fi

if [ "$run_tsan" = 1 ]; then
    step "test suite (thread sanitizer)"
    if cmake --preset tsan >/dev/null &&
           cmake --build --preset tsan -j "$jobs"; then
        if ctest --preset tsan -j "$jobs" "${label_args[@]}"; then
            record "tests (tsan)" ok
        else
            record "tests (tsan)" FAIL
        fi
    else
        record "tests (tsan)" FAIL
    fi
fi

if [ "$run_tidy" = 1 ]; then
    step "clang-tidy"
    if ! command -v clang-tidy >/dev/null; then
        echo "clang-tidy not found; skipping" >&2
        record "clang-tidy" skipped
    else
        if cmake -B build-tidy -S . \
                -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
               find src -name '*.cc' -print0 |
                   xargs -0 -P "$jobs" -n 4 \
                       clang-tidy -p build-tidy --quiet; then
            record "clang-tidy" ok
        else
            record "clang-tidy" FAIL
        fi
    fi
fi

summary
