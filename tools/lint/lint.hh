/**
 * @file
 * mtlb-lint rule engine.
 *
 * Five repo-specific semantic rules over the simulator sources:
 *
 *  R1 epoch-discipline      every kernel function that mutates
 *                           translation state below the TLB must call
 *                           bumpTranslationEpoch() on every path
 *                           before returning.
 *  R2 observer-discipline   the same mutators must be paired with the
 *                           matching KernelObserver hook.
 *  R3 stats-registration    every stats::* member declared in a
 *                           header must be registered via a stat-group
 *                           add* call in its owner.
 *  R4 config-key-parity     config keys accepted by the parser, set
 *                           in .cfg files, and documented in the
 *                           manual's key-reference section must agree.
 *  R5 hygiene               banned constructs (naked new,
 *                           nondeterminism sources) and include-guard
 *                           conformance.
 *
 * The rule inputs (mutator list, hook pairs, banned identifiers, file
 * locations) live in tools/lint/rules.cfg so the contract is an
 * explicit, reviewable artifact rather than hard-coded heuristics.
 *
 * Findings honour `// mtlb-lint: allow(<rule>)` suppression comments
 * on the same line or the line above; <rule> is either the short id
 * ("R1") or the long name ("epoch-discipline").
 */

#ifndef MTLBSIM_TOOLS_LINT_LINT_HH
#define MTLBSIM_TOOLS_LINT_LINT_HH

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mtlblint
{

/** Parsed tools/lint/rules.cfg. All paths are repo-root relative. */
struct RulesConfig
{
    std::vector<std::string> scanDirs;

    // R1/R2
    std::string kernelFile;
    std::string epochCall = "bumpTranslationEpoch";
    /** receiver ("" = any) and method name of a translation-state
     *  mutator call. */
    struct Mutator
    {
        std::string receiver;
        std::string method;
    };
    std::vector<Mutator> mutators;
    std::set<std::string> hooks;
    /** callee -> required hook within the same function. */
    std::vector<std::pair<std::string, std::string>> pairs;
    /** function name -> hook it must fire somewhere in its body. */
    std::vector<std::pair<std::string, std::string>> requireHooks;

    // R3
    std::vector<std::string> statAdders;

    // R4
    std::string configSource;
    std::vector<std::string> configFiles;
    std::vector<std::string> configDirs;
    std::string docFile;
    std::string docSection;

    // R5
    std::set<std::string> banned;
    std::vector<std::string> bannedExempt;
    std::string guardPrefix = "MTLBSIM_";
    std::vector<std::string> guardStrip;

    /** Parse a rules.cfg. Throws std::runtime_error on IO/syntax
     *  errors. */
    static RulesConfig load(const std::string &path);
};

struct Finding
{
    std::string file;   ///< repo-relative path
    int line = 0;
    std::string id;     ///< "R1".."R5"
    std::string name;   ///< long rule name
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (id != o.id)
            return id < o.id;
        return message < o.message;
    }
};

/** Format a finding as `file:line: [id name] message`. */
std::string format(const Finding &f);

/**
 * Run all (or a subset of) rules over the tree rooted at @p root.
 *
 * @param root  repo root; all RulesConfig paths resolve against it.
 * @param cfg   parsed rules.cfg.
 * @param only  if non-empty, run only rules whose id is in the set.
 * @return sorted findings (suppressions already applied).
 */
std::vector<Finding> runLint(const std::string &root,
                             const RulesConfig &cfg,
                             const std::set<std::string> &only = {});

} // namespace mtlblint

#endif // MTLBSIM_TOOLS_LINT_LINT_HH
