/**
 * @file
 * mtlb-lint rule engine.
 *
 * Twelve repo-specific semantic rules (plus the stale-allow
 * diagnostic) over the simulator sources:
 *
 *  R1 epoch-discipline      every kernel function that mutates
 *                           translation state below the TLB must call
 *                           bumpTranslationEpoch() on every path
 *                           before returning.
 *  R2 observer-discipline   the same mutators must be paired with the
 *                           matching KernelObserver hook.
 *  R3 stats-registration    every stats::* member declared in a
 *                           header must be registered via a stat-group
 *                           add* call in its owner.
 *  R4 config-key-parity     config keys accepted by the parser, set
 *                           in .cfg files, and documented in the
 *                           manual's key-reference section must agree.
 *  R5 hygiene               banned constructs (naked new,
 *                           nondeterminism sources) and include-guard
 *                           conformance.
 *  R6 no-mutable-global-state
 *                           every mutable static / namespace-scope
 *                           variable is inventoried against a
 *                           committed baseline that may only shrink;
 *                           constexpr and const-POD are exempt.
 *  R7 ownership-escape      raw pointer/reference members of
 *                           System-owned component types may only be
 *                           stored in classes transitively owned by a
 *                           System.
 *  R8 lock-discipline       accesses to configured guarded members
 *                           must hold their mutex, and simulator-core
 *                           directories must be lock-free (hot-path
 *                           purity).
 *  R9 determinism-taint     no iteration over unordered containers or
 *                           pointer-keyed maps in a function that also
 *                           records stats or fires observer hooks.
 *  R10 shootdown-parity     every explicit bumpTranslationEpoch()
 *                           site in the kernel must be followed by a
 *                           shootdownRemote() broadcast (directly or
 *                           through a helper that always broadcasts)
 *                           before every exit, and direct broadcasts
 *                           must carry the just-purged (vbase, bytes)
 *                           range or bytes == 0 (full-TLB semantics).
 *  R11 core-confinement     per-core container subscripts may only
 *                           use the active-core index; any other
 *                           index is a cross-core poke and must live
 *                           in one of the configured accessor /
 *                           shootdown functions.
 *  R12 batch-flush-discipline
 *                           a function reading deferred statistics (a
 *                           configured r12-reader call, directly or
 *                           through its callees) must flush the batch
 *                           counters first (flushBatch(), or a helper
 *                           that always flushes).
 *  SA stale-allow           every `mtlb-lint: allow(<rule>)`
 *                           annotation must still suppress at least
 *                           one finding of an executed rule; stale
 *                           annotations are findings themselves (and
 *                           cannot be allow()ed away).
 *
 * R1/R2/R10/R12 are interprocedural: per-function summaries ("bumps
 * epoch", "broadcasts shootdown", "flushes batch counters", "reads
 * deferred stats", "fires hook H") are computed over a project-wide
 * call graph (callgraph.hh) and propagated through calls to a
 * fixpoint, so helper indirection needs no `allow()` escapes.
 *
 * The rule inputs (mutator list, hook pairs, banned identifiers,
 * owned types, guarded members, per-core containers, reader calls,
 * file locations) live in tools/lint/rules.cfg so the contract is an
 * explicit, reviewable artifact rather than hard-coded heuristics.
 *
 * Findings honour `// mtlb-lint: allow(<rule>)` suppression comments
 * on the same line or the line above; <rule> is either the short id
 * ("R1") or the long name ("epoch-discipline"). R6 additionally
 * requires every allowed entry to appear in the committed baseline
 * file (the ratchet): an annotation alone is not enough to grow the
 * global-state inventory, and stale baseline entries are themselves
 * findings so the baseline can only shrink.
 */

#ifndef MTLBSIM_TOOLS_LINT_LINT_HH
#define MTLBSIM_TOOLS_LINT_LINT_HH

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mtlblint
{

/** Parsed tools/lint/rules.cfg. All paths are repo-root relative. */
struct RulesConfig
{
    std::vector<std::string> scanDirs;

    // R1/R2
    std::string kernelFile;
    std::string epochCall = "bumpTranslationEpoch";
    /** receiver ("" = any) and method name of a translation-state
     *  mutator call. */
    struct Mutator
    {
        std::string receiver;
        std::string method;
    };
    std::vector<Mutator> mutators;
    std::set<std::string> hooks;
    /** callee -> required hook within the same function. */
    std::vector<std::pair<std::string, std::string>> pairs;
    /** function name -> hook it must fire somewhere in its body. */
    std::vector<std::pair<std::string, std::string>> requireHooks;

    // R3
    std::vector<std::string> statAdders;

    // R4
    std::string configSource;
    std::vector<std::string> configFiles;
    std::vector<std::string> configDirs;
    std::string docFile;
    std::string docSection;

    // R5
    std::set<std::string> banned;
    std::vector<std::string> bannedExempt;
    std::string guardPrefix = "MTLBSIM_";
    std::vector<std::string> guardStrip;

    // R6
    /** Directories inventoried for mutable global state. */
    std::vector<std::string> globalDirs;
    /** Committed ratchet baseline (`<file> <symbol>` per line). */
    std::string r6Baseline;
    /** Type identifiers that disqualify a `const` global from the
     *  POD exemption (dynamic initialisation / non-trivial dtor). */
    std::set<std::string> nonPodTypes;

    // R7
    /** Component types whose raw pointer/reference members are
     *  audited. */
    std::set<std::string> ownedTypes;
    /** Classes transitively owned by a System, where borrowing such
     *  references is the wiring the System constructor set up. */
    std::set<std::string> ownerClasses;

    // R8
    /** Simulator-core directories that must not use any locking or
     *  atomics at all. */
    std::vector<std::string> lockFreeDirs;
    /** Identifiers whose appearance in a lock-free dir is a finding. */
    std::set<std::string> lockIdents;
    /** A member in @p file whose every access must happen under a
     *  lock_guard/unique_lock/scoped_lock naming @p mutex. */
    struct GuardedMember
    {
        std::string file;
        std::string member;
        std::string mutex;
    };
    std::vector<GuardedMember> guardedMembers;

    // R9
    /** Member calls that mark a function as reaching stats recording
     *  or observer hooks (`sample`, the KernelObserver hooks, ...). */
    std::set<std::string> detSinks;

    // R10
    /** The remote-TLB shootdown broadcast call. */
    std::string shootdownCall;
    /** The ranged TLB purge whose (vbase, bytes) arguments a direct
     *  shootdown broadcast must repeat (unless bytes == 0). */
    std::string purgeCall = "purgeRange";
    /** Kernel functions exempt from shootdown parity: the core-local
     *  context-switch flush and the broadcast primitive itself. */
    std::set<std::string> r10Exempt;

    // R11
    /** Per-core container member -> the only identifier allowed as
     *  its subscript outside exempt functions ("" = no index is ever
     *  confined; every subscript needs an exemption). */
    std::map<std::string, std::string> percoreContainers;
    /** Functions allowed to index per-core containers freely: the
     *  core-indexed accessors, core wiring, and the shootdown path. */
    std::set<std::string> r11Exempt;

    // R12
    /** The deferred-counter flush call (any receiver). */
    std::string flushCall;
    /** receiver ("" = any) and method of a deferred-stats reader. */
    std::vector<Mutator> r12Readers;

    /** Parse a rules.cfg. Throws std::runtime_error on IO/syntax
     *  errors. */
    static RulesConfig load(const std::string &path);
};

struct Finding
{
    std::string file;   ///< repo-relative path
    int line = 0;
    std::string id;     ///< "R1".."R12" / "SA"
    std::string name;   ///< long rule name
    std::string message;
    /** True when an `allow` annotation (plus, for R6, a baseline
     *  entry) suppresses the finding. Allowed findings are only
     *  reported when runLint() is asked to keep them; they never
     *  affect the exit status. */
    bool allowed = false;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (id != o.id)
            return id < o.id;
        return message < o.message;
    }
};

/** Format a finding as `file:line: [id name] message`. */
std::string format(const Finding &f);

/** Format a finding as a GitHub Actions workflow annotation. */
std::string formatGithub(const Finding &f);

/** Format findings as a JSON document:
 *  {"findings": [{file,line,rule,name,message,allowed}...],
 *   "count": <number of non-allowed findings>}. */
std::string formatJson(const std::vector<Finding> &findings);

/**
 * Run all (or a subset of) rules over the tree rooted at @p root.
 *
 * @param root  repo root; all RulesConfig paths resolve against it.
 * @param cfg   parsed rules.cfg.
 * @param only  if non-empty, run only rules whose id is in the set.
 *              "SA" judges suppressions against the other rules'
 *              findings, so selecting it executes every other check
 *              for bookkeeping while reporting only the ids asked
 *              for; a suppression is stale only relative to rules
 *              that actually executed.
 * @param keepAllowed  when true, suppressed findings are returned
 *                     too, marked allowed (for --json reporting).
 * @return sorted findings (suppressions applied / marked).
 */
std::vector<Finding> runLint(const std::string &root,
                             const RulesConfig &cfg,
                             const std::set<std::string> &only = {},
                             bool keepAllowed = false);

} // namespace mtlblint

#endif // MTLBSIM_TOOLS_LINT_LINT_HH
