/**
 * @file
 * Scope tree over the mtlb-lint token stream.
 *
 * A single structural pass classifying every brace (namespace, class,
 * function body, control-flow block, braced initialiser) and
 * collecting the statements at each scope's own level. Shared by the
 * structural rules (R6-R9) and the interprocedural call-graph engine
 * (callgraph.hh), which walks Func scopes to find every function
 * definition in a translation unit.
 */

#ifndef MTLBSIM_TOOLS_LINT_SCOPES_HH
#define MTLBSIM_TOOLS_LINT_SCOPES_HH

#include <string>
#include <vector>

#include "lexer.hh"

namespace mtlblint
{

enum class ScopeKind
{
    File,       ///< top level (treated as namespace scope)
    Namespace,  ///< namespace { } / extern "C" { }
    Class,      ///< class / struct / union / enum body
    Func,       ///< function body (brace follows a parameter list)
    Block,      ///< control-flow block / lambda body inside a function
    Init,       ///< braced initialiser
};

struct Scope
{
    ScopeKind kind = ScopeKind::File;
    std::string name;       ///< class/namespace name when known
    size_t open = 0;        ///< token index of '{' (0 for File)
    size_t close = 0;       ///< token index of '}' (n for File)
    int parent = -1;
};

/**
 * A statement at some scope's own level: the indices of its tokens,
 * child-scope braces included as single '{' / '}' markers (their
 * contents belong to the child).
 */
struct Stmt
{
    int scope = 0;
    std::vector<size_t> toks;
};

struct ScopeTree
{
    std::vector<Scope> scopes;      ///< [0] is the File scope
    std::vector<int> scopeOf;       ///< token index -> innermost scope
    std::vector<Stmt> stmts;        ///< namespace/class-level statements

    bool
    isAncestor(int anc, int scope) const
    {
        for (int s = scope; s != -1; s = scopes[s].parent) {
            if (s == anc)
                return true;
        }
        return false;
    }

    /** Innermost enclosing Func scope, or -1. */
    int
    enclosingFunc(int scope) const
    {
        for (int s = scope; s != -1; s = scopes[s].parent) {
            if (scopes[s].kind == ScopeKind::Func)
                return s;
        }
        return -1;
    }

    /** Innermost enclosing Class scope, or -1. */
    int
    enclosingClass(int scope) const
    {
        for (int s = scope; s != -1; s = scopes[s].parent) {
            if (scopes[s].kind == ScopeKind::Class)
                return s;
        }
        return -1;
    }
};

/** True for the class-head keywords (class/struct/union/enum). */
bool classKeyword(const std::string &s);

/**
 * One linear pass classifying every brace and collecting per-scope
 * statements. Brace classification looks at the pending statement
 * tokens: a `namespace` keyword opens a Namespace, a class-head
 * keyword (outside a leading `template <...>` group) opens a Class,
 * a brace after `)` opens a Func at namespace/class scope and a
 * Block inside a function, and a brace after an identifier / `=` /
 * `,` is a braced initialiser. Preprocessor lines are skipped
 * wholesale (a `#` swallows the rest of its source line).
 */
ScopeTree buildScopes(const std::vector<Token> &t);

/** Token index just past a balanced `<...>` group starting at the
 *  `<` at @p i, or i+1 if it never closes. */
size_t skipAngles(const std::vector<Token> &t, size_t i);

} // namespace mtlblint

#endif // MTLBSIM_TOOLS_LINT_SCOPES_HH
