#include "callgraph.hh"

#include <algorithm>

namespace mtlblint
{

namespace
{

/** Resolution unit of a path: `src/os/kernel.cc` and
 *  `src/os/kernel.hh` are one unit, so an implementation file sees
 *  its own header's inline helpers and nothing else's. */
std::string
unitOf(const std::string &file)
{
    auto dot = file.rfind('.');
    return dot == std::string::npos ? file : file.substr(0, dot);
}

/** Identifiers that look like calls but never are. */
bool
nonCallKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "return" || s == "sizeof" ||
           s == "static_assert" || s == "decltype" || s == "noexcept" ||
           s == "alignof";
}

/**
 * Recover the (class, name, line) of the function whose body brace
 * sits at token index @p open. Walks left over cv/ref qualifiers and
 * constructor-initializer groups (`: a_(x), b_{y}`) until the
 * parameter list, then reads the identifier before it. Returns false
 * for headers this walk cannot name (operator overloads, lambdas
 * assigned at namespace scope).
 */
bool
fnHeader(const std::vector<Token> &t, size_t open, std::string &cls,
         std::string &name, int &line)
{
    static const std::set<std::string> kQual = {
        "const", "noexcept", "override", "final", "mutable"};
    size_t k = open;
    for (int guard = 0; guard < 256; ++guard) {
        while (k > 0) {
            const Token &p = t[k - 1];
            if (p.kind == TokKind::Identifier && kQual.count(p.text)) {
                --k;
                continue;
            }
            if (p.kind == TokKind::Punct && p.text == "&") {
                --k;
                continue;
            }
            break;
        }
        if (k == 0)
            return false;
        const Token &p = t[k - 1];
        if (p.kind != TokKind::Punct || (p.text != ")" && p.text != "}"))
            return false;
        const std::string openTxt = p.text == ")" ? "(" : "{";
        int depth = 1;
        size_t m = k - 1;
        while (m > 0 && depth > 0) {
            --m;
            if (t[m].kind != TokKind::Punct)
                continue;
            if (t[m].text == p.text)
                ++depth;
            else if (t[m].text == openTxt)
                --depth;
        }
        if (depth != 0 || m == 0)
            return false;
        if (t[m - 1].kind != TokKind::Identifier)
            return false;
        const size_t nameIdx = m - 1;
        // Start of the (possibly qualified) id: `stats::Group(...)`.
        size_t chainStart = nameIdx;
        while (chainStart >= 2 &&
               t[chainStart - 1].kind == TokKind::Punct &&
               t[chainStart - 1].text == "::" &&
               t[chainStart - 2].kind == TokKind::Identifier) {
            chainStart -= 2;
        }
        size_t beforeIdx = chainStart;
        const bool tilde = beforeIdx > 0 &&
                           t[beforeIdx - 1].kind == TokKind::Punct &&
                           t[beforeIdx - 1].text == "~";
        if (tilde)
            --beforeIdx;
        // A ',' or ':' in front means this group was a member
        // initializer, not the parameter list; keep walking left.
        if (beforeIdx > 0 && t[beforeIdx - 1].kind == TokKind::Punct &&
            (t[beforeIdx - 1].text == "," ||
             t[beforeIdx - 1].text == ":")) {
            k = beforeIdx - 1;
            continue;
        }
        name = (tilde ? "~" : "") + t[nameIdx].text;
        line = t[nameIdx].line;
        cls.clear();
        if (nameIdx >= 2 && t[nameIdx - 1].kind == TokKind::Punct &&
            t[nameIdx - 1].text == "::" &&
            t[nameIdx - 2].kind == TokKind::Identifier) {
            cls = t[nameIdx - 2].text;
        }
        return true;
    }
    return false;
}

} // namespace

std::vector<std::string>
callArgs(const std::vector<Token> &t, size_t callee)
{
    std::vector<std::string> out;
    size_t i = callee + 1;
    if (i < t.size() && t[i].kind == TokKind::Punct && t[i].text == "<") {
        size_t past = skipAngles(t, i);
        if (past > i + 1 && past < t.size() &&
            t[past].kind == TokKind::Punct && t[past].text == "(") {
            i = past;
        }
    }
    if (i >= t.size() || t[i].kind != TokKind::Punct || t[i].text != "(")
        return out;
    int depth = 0;
    std::string cur;
    bool sawComma = false;
    for (size_t j = i; j < t.size(); ++j) {
        const Token &tok = t[j];
        if (tok.kind == TokKind::Punct) {
            if (tok.text == "(" || tok.text == "[" || tok.text == "{") {
                ++depth;
                if (j == i)
                    continue;   // the call's own '('
            } else if (tok.text == ")" || tok.text == "]" ||
                       tok.text == "}") {
                if (--depth == 0) {
                    if (sawComma || !cur.empty())
                        out.push_back(cur);
                    return out;
                }
            } else if (tok.text == "," && depth == 1) {
                out.push_back(cur);
                cur.clear();
                sawComma = true;
                continue;
            }
        }
        cur += tok.kind == TokKind::String ? "\"" + tok.text + "\""
                                           : tok.text;
    }
    return out;    // unterminated argument list
}

void
CallGraph::addFile(const SourceFile &src, const ScopeTree &tree,
                   const RulesConfig &cfg)
{
    const auto &t = src.tokens;
    for (size_t si = 0; si < tree.scopes.size(); ++si) {
        const Scope &sc = tree.scopes[si];
        if (sc.kind != ScopeKind::Func)
            continue;
        std::string cls, name;
        int line = 0;
        if (!fnHeader(t, sc.open, cls, name, line))
            continue;
        if (cls.empty()) {
            const int c = tree.enclosingClass(sc.parent);
            if (c != -1)
                cls = tree.scopes[c].name;
        }
        FnDef fn;
        fn.file = src.path;
        fn.cls = cls;
        fn.name = name;
        fn.line = line;
        fn.open = sc.open;
        fn.close = sc.close;
        FnSummary sum;

        for (size_t i = sc.open + 1; i < sc.close && i < t.size(); ++i) {
            // Lambdas (Block scopes) belong to their enclosing named
            // function; local-class methods do not.
            if (tree.enclosingFunc(tree.scopeOf[i]) != static_cast<int>(si))
                continue;
            if (t[i].kind != TokKind::Identifier)
                continue;

            // Per-core container subscript (R11).
            auto pc = cfg.percoreContainers.find(t[i].text);
            if (pc != cfg.percoreContainers.end() && i + 1 < t.size() &&
                t[i + 1].kind == TokKind::Punct && t[i + 1].text == "[") {
                int depth = 0;
                std::string idx;
                for (size_t j = i + 1; j < t.size(); ++j) {
                    if (t[j].kind == TokKind::Punct) {
                        if (t[j].text == "[") {
                            if (++depth == 1)
                                continue;
                        } else if (t[j].text == "]") {
                            if (--depth == 0)
                                break;
                        }
                    }
                    idx += t[j].text;
                }
                fn.subscripts.push_back(
                    {t[i].text, idx, i, t[i].line});
                if (pc->second.empty() || idx != pc->second)
                    sum.touchesPerCore = true;
                continue;
            }

            if (nonCallKeyword(t[i].text))
                continue;
            size_t after = i + 1;
            if (after < t.size() && t[after].kind == TokKind::Punct &&
                t[after].text == "<") {
                size_t past = skipAngles(t, after);
                if (past > after + 1 && past < t.size() &&
                    t[past].kind == TokKind::Punct && t[past].text == "(") {
                    after = past;
                }
            }
            if (after >= t.size() || t[after].kind != TokKind::Punct ||
                t[after].text != "(") {
                continue;
            }
            CallSite c;
            c.name = t[i].text;
            c.pos = i;
            c.line = t[i].line;
            if (i > 0 && t[i - 1].kind == TokKind::Punct &&
                (t[i - 1].text == "." || t[i - 1].text == "->")) {
                c.member = true;
                if (i >= 2 && t[i - 2].kind == TokKind::Identifier)
                    c.receiver = t[i - 2].text;
            }

            // Direct facts.
            if (c.name == cfg.epochCall)
                sum.bumpsEpoch = true;
            if (!cfg.shootdownCall.empty() && c.name == cfg.shootdownCall)
                sum.broadcastsShootdown = true;
            if (!cfg.flushCall.empty() && c.name == cfg.flushCall)
                sum.flushesBatch = true;
            if (c.member && cfg.hooks.count(c.name))
                sum.hooksFired.insert(c.name);
            if (c.member) {
                for (const auto &m : cfg.mutators) {
                    if (m.method == c.name &&
                        (m.receiver.empty() || m.receiver == c.receiver)) {
                        sum.mutates = true;
                        break;
                    }
                }
            }
            fn.calls.push_back(std::move(c));
        }

        // r10-exempt functions (the shootdown broadcast, the
        // context-switch flush) bump *another* core's epoch — or one
        // about to be rebound — so their bump is not creditable to
        // callers: otherwise deleting a local epoch bump would hide
        // behind the adjacent broadcast call.
        if (cfg.r10Exempt.count(fn.name))
            sum.bumpsEpoch = false;

        byName_[fn.name].push_back(fns_.size());
        fns_.push_back(std::move(fn));
        sums_.push_back(std::move(sum));
    }
}

std::vector<size_t>
CallGraph::resolve(const std::string &file, const std::string &name) const
{
    std::vector<size_t> out;
    auto it = byName_.find(name);
    if (it == byName_.end())
        return out;
    const std::string unit = unitOf(file);
    for (size_t i : it->second) {
        if (unitOf(fns_[i].file) == unit)
            out.push_back(i);
    }
    return out;
}

bool
CallGraph::mustAll(const std::string &file, const std::string &name,
                   bool FnSummary::*bit) const
{
    const auto cand = resolve(file, name);
    if (cand.empty())
        return false;
    for (size_t i : cand) {
        if (!(sums_[i].*bit))
            return false;
    }
    return true;
}

bool
CallGraph::mayAny(const std::string &file, const std::string &name,
                  bool FnSummary::*bit) const
{
    for (size_t i : resolve(file, name)) {
        if (sums_[i].*bit)
            return true;
    }
    return false;
}

bool
CallGraph::callMustBump(const std::string &file,
                        const std::string &name) const
{
    return mustAll(file, name, &FnSummary::bumpsEpoch);
}

bool
CallGraph::callMustBroadcast(const std::string &file,
                             const std::string &name) const
{
    return mustAll(file, name, &FnSummary::broadcastsShootdown);
}

bool
CallGraph::callMustFlush(const std::string &file,
                         const std::string &name) const
{
    return mustAll(file, name, &FnSummary::flushesBatch);
}

bool
CallGraph::callMayMutate(const std::string &file,
                         const std::string &name) const
{
    return mayAny(file, name, &FnSummary::mutates);
}

bool
CallGraph::callMayTouchPerCore(const std::string &file,
                               const std::string &name) const
{
    return mayAny(file, name, &FnSummary::touchesPerCore);
}

bool
CallGraph::callMayReadUnprotected(const std::string &file,
                                  const std::string &name) const
{
    return mayAny(file, name, &FnSummary::unprotectedRead);
}

std::set<std::string>
CallGraph::callMustHooks(const std::string &file,
                         const std::string &name) const
{
    std::set<std::string> out;
    const auto cand = resolve(file, name);
    if (cand.empty())
        return out;
    out = sums_[cand[0]].hooksFired;
    for (size_t k = 1; k < cand.size() && !out.empty(); ++k) {
        std::set<std::string> next;
        for (const auto &h : sums_[cand[k]].hooksFired) {
            if (out.count(h))
                next.insert(h);
        }
        out = std::move(next);
    }
    return out;
}

bool
CallGraph::isReaderCall(const CallSite &c, const RulesConfig &cfg) const
{
    if (!c.member)
        return false;
    for (const auto &r : cfg.r12Readers) {
        if (r.method == c.name &&
            (r.receiver.empty() || r.receiver == c.receiver)) {
            return true;
        }
    }
    return false;
}

void
CallGraph::propagate(const RulesConfig &cfg)
{
    // Phase 1: all facts except unprotectedRead. Bits (and hook sets)
    // only grow, so the loop terminates on cyclic graphs.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < fns_.size(); ++i) {
            FnSummary &s = sums_[i];
            const std::string &file = fns_[i].file;
            const bool noBumpCredit = cfg.r10Exempt.count(fns_[i].name);
            for (const auto &c : fns_[i].calls) {
                if (!s.bumpsEpoch && !noBumpCredit &&
                    callMustBump(file, c.name)) {
                    s.bumpsEpoch = changed = true;
                }
                if (!s.broadcastsShootdown &&
                    callMustBroadcast(file, c.name)) {
                    s.broadcastsShootdown = changed = true;
                }
                if (!s.flushesBatch && callMustFlush(file, c.name))
                    s.flushesBatch = changed = true;
                if (!s.mutates && callMayMutate(file, c.name))
                    s.mutates = changed = true;
                if (!s.touchesPerCore &&
                    callMayTouchPerCore(file, c.name)) {
                    s.touchesPerCore = changed = true;
                }
                for (const auto &h : callMustHooks(file, c.name)) {
                    if (s.hooksFired.insert(h).second)
                        changed = true;
                }
            }
        }
    }

    // Phase 2: unprotectedRead, against the settled flush facts. A
    // function reads unprotected when some reader call (direct, or
    // through a callee that reads unprotected) has no flush event at
    // an earlier position in the body.
    changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < fns_.size(); ++i) {
            FnSummary &s = sums_[i];
            if (s.unprotectedRead)
                continue;
            const std::string &file = fns_[i].file;
            bool flushed = false;
            for (const auto &c : fns_[i].calls) {
                if ((!cfg.flushCall.empty() && c.name == cfg.flushCall) ||
                    callMustFlush(file, c.name)) {
                    flushed = true;
                    continue;
                }
                if (!flushed && (isReaderCall(c, cfg) ||
                                 callMayReadUnprotected(file, c.name))) {
                    s.unprotectedRead = changed = true;
                    break;
                }
            }
        }
    }
}

} // namespace mtlblint
