/**
 * @file
 * Minimal C++ tokenizer for mtlb-lint.
 *
 * Deliberately not a real C++ front end: mtlb-lint's rules need only
 * identifiers, punctuation, and line numbers, with comments, string
 * literals, and character literals reliably skipped so that a banned
 * identifier inside a diagnostic message or a comment never fires a
 * rule. Preprocessor directives are tokenized like ordinary text
 * ('#' is a punctuator), which is exactly what the include-guard
 * check wants.
 *
 * The lexer also collects `// mtlb-lint: allow(rule[,rule...])`
 * suppression comments, keyed by line, so rules can honour them.
 *
 * Dependency-free by design (standard library only): the linter must
 * build and run without the simulator or any third-party library.
 */

#ifndef MTLBSIM_TOOLS_LINT_LEXER_HH
#define MTLBSIM_TOOLS_LINT_LEXER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtlblint
{

enum class TokKind
{
    Identifier,     ///< identifiers and keywords
    Number,
    String,         ///< string literal (contents dropped)
    CharLit,
    Punct,          ///< any punctuator, one token per character run
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 1;
};

/** A tokenized source file plus its suppression comments. */
struct SourceFile
{
    std::string path;               ///< as given (repo-relative)
    std::vector<Token> tokens;
    /** line -> rule names allowed on that line (and the next). */
    std::map<int, std::set<std::string>> suppressions;
    /** Raw text lines, for rules that work line-wise. */
    std::vector<std::string> lines;
};

/** Tokenize @p text as C++ source. @p path is recorded verbatim. */
SourceFile tokenize(const std::string &path, const std::string &text);

/** Read a file and tokenize it. Throws std::runtime_error on IO
 *  failure. */
SourceFile tokenizeFile(const std::string &path,
                        const std::string &displayPath);

/** True if the suppression table allows @p rule (either its "R<n>"
 *  id or its long name) at @p line — same line or the line above. */
bool suppressed(const SourceFile &file, int line,
                const std::string &id, const std::string &name);

/**
 * Scan one raw text line for a `mtlb-lint: allow(...)` directive and
 * record it in @p out. Used for non-C++ inputs (.cfg, .md) where the
 * directive sits in a '#'-style comment instead of a C++ one.
 */
void addSuppressionsFromLine(const std::string &line, int lineNo,
                             SourceFile &out);

} // namespace mtlblint

#endif // MTLBSIM_TOOLS_LINT_LEXER_HH
