#include "scopes.hh"

#include <set>

namespace mtlblint
{

bool
classKeyword(const std::string &s)
{
    return s == "class" || s == "struct" || s == "union" || s == "enum";
}

ScopeTree
buildScopes(const std::vector<Token> &t)
{
    ScopeTree tree;
    tree.scopes.push_back({ScopeKind::File, "", 0, t.size(), -1});
    tree.scopeOf.assign(t.size(), 0);
    std::vector<int> stack = {0};

    // Pending statement (token indices) per open scope.
    std::vector<std::vector<size_t>> pending(1);

    auto flush = [&]() {
        if (pending.back().empty())
            return;
        tree.stmts.push_back(Stmt{stack.back(), std::move(pending.back())});
        pending.back().clear();
    };

    int ppLine = -1;    // line of an in-flight preprocessor directive
    for (size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        tree.scopeOf[i] = stack.back();
        if (ppLine != -1 && tok.line == ppLine)
            continue;
        ppLine = -1;
        if (tok.kind == TokKind::Punct && tok.text == "#") {
            ppLine = tok.line;
            continue;
        }

        if (tok.kind == TokKind::Punct && tok.text == "{") {
            const auto &p = pending.back();
            const ScopeKind outer = tree.scopes[stack.back()].kind;
            const bool outerIsType =
                outer == ScopeKind::File || outer == ScopeKind::Namespace ||
                outer == ScopeKind::Class;

            ScopeKind kind = ScopeKind::Block;
            std::string name;
            bool sawNamespace = false, sawClass = false;
            size_t angle = 0;
            bool inTemplateIntro = false;
            std::string lastIdent;
            std::string classNameAfterKeyword;
            bool wantClassName = false;
            for (size_t pi : p) {
                const Token &pt = t[pi];
                if (pt.kind == TokKind::Identifier) {
                    if (pt.text == "template") {
                        inTemplateIntro = true;
                    } else if (!inTemplateIntro) {
                        if (pt.text == "namespace")
                            sawNamespace = true;
                        else if (classKeyword(pt.text))
                            sawClass = wantClassName = true;
                        else if (wantClassName &&
                                 classNameAfterKeyword.empty())
                            classNameAfterKeyword = pt.text;
                        lastIdent = pt.text;
                    }
                } else if (pt.kind == TokKind::Punct) {
                    if (pt.text == "<") {
                        ++angle;
                    } else if (pt.text == ">") {
                        if (angle && --angle == 0)
                            inTemplateIntro = false;
                    }
                }
            }
            const Token *prev = p.empty() ? nullptr : &t[p.back()];
            // A function body's brace may trail cv/ref/virt
            // qualifiers: `run(...) const noexcept override {`. Skip
            // them so the `)`-rule still sees the parameter list.
            static const std::set<std::string> kFnQualifiers = {
                "const", "noexcept", "override", "final", "mutable"};
            const Token *effPrev = nullptr;
            for (size_t q = p.size(); q-- > 0;) {
                const Token &qt = t[p[q]];
                if (qt.kind == TokKind::Identifier &&
                    kFnQualifiers.count(qt.text)) {
                    continue;
                }
                if (qt.kind == TokKind::Punct && qt.text == "&")
                    continue;   // ref-qualifier
                effPrev = &qt;
                break;
            }
            if (sawNamespace) {
                kind = ScopeKind::Namespace;
                name = lastIdent == "namespace" ? "" : lastIdent;
            } else if (prev && prev->kind == TokKind::String) {
                kind = ScopeKind::Namespace;    // extern "C" { }
            } else if (effPrev && effPrev->kind == TokKind::Punct &&
                       effPrev->text == ")") {
                kind = outerIsType ? ScopeKind::Func : ScopeKind::Block;
            } else if (sawClass) {
                kind = ScopeKind::Class;
                name = classNameAfterKeyword;
            } else if (prev &&
                       (prev->kind == TokKind::Identifier ||
                        (prev->kind == TokKind::Punct &&
                         (prev->text == "=" || prev->text == "," ||
                          prev->text == "(" || prev->text == "[" ||
                          prev->text == ">")))) {
                // Braced initialiser (or a lambda body after a
                // trailing return type; both are expression context).
                kind = prev->kind == TokKind::Identifier &&
                               prev->text == "return"
                           ? ScopeKind::Block
                           : ScopeKind::Init;
            } else {
                kind = outerIsType ? ScopeKind::Init : ScopeKind::Block;
            }

            // An Init brace stays part of its statement; everything
            // else terminates the pending statement (recorded so
            // e.g. a function signature is visible at its scope).
            if (kind == ScopeKind::Init)
                pending.back().push_back(i);
            else
                flush();

            Scope s;
            s.kind = kind;
            s.name = name;
            s.open = i;
            s.close = t.size();
            s.parent = stack.back();
            tree.scopes.push_back(s);
            stack.push_back(static_cast<int>(tree.scopes.size() - 1));
            pending.emplace_back();
            tree.scopeOf[i] = stack.back();
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == "}") {
            if (stack.size() > 1) {
                flush();
                tree.scopes[stack.back()].close = i;
                const ScopeKind closed = tree.scopes[stack.back()].kind;
                tree.scopeOf[i] = stack.back();
                stack.pop_back();
                pending.pop_back();
                // A closed initialiser remains part of the enclosing
                // statement; a closed class awaits its declarator
                // (`struct X { } x;` is rare but legal) - keep the
                // brace markers in the pending statement for both.
                if (closed == ScopeKind::Init) {
                    pending.back().push_back(i);
                } else {
                    pending.back().clear();
                }
            }
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == ";") {
            flush();
            continue;
        }
        pending.back().push_back(i);
    }
    flush();    // trailing unterminated statement
    return tree;
}

size_t
skipAngles(const std::vector<Token> &t, size_t i)
{
    size_t depth = 0;
    for (size_t j = i; j < t.size(); ++j) {
        if (t[j].kind != TokKind::Punct)
            continue;
        if (t[j].text == "<") {
            ++depth;
        } else if (t[j].text == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (t[j].text == ";") {
            break;      // malformed / not a template argument list
        }
    }
    return i + 1;
}

} // namespace mtlblint
