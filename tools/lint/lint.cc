#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "lexer.hh"

namespace fs = std::filesystem;

namespace mtlblint
{

namespace
{

std::string
trim(const std::string &s)
{
    auto b = s.find_first_not_of(" \t\r");
    auto e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** Dotted lower-case config key: `tlb.entries`, `kernel.frame_seed`. */
bool
looksLikeKey(const std::string &s)
{
    if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
        return false;
    bool sawDot = false;
    char prev = '\0';
    for (char c : s) {
        if (c == '.') {
            if (prev == '\0' || prev == '.')
                return false;
            sawDot = true;
        } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                     std::isdigit(static_cast<unsigned char>(c)) ||
                     c == '_')) {
            return false;
        }
        prev = c;
    }
    return sawDot && prev != '.';
}

/** Read a text file into lines; also harvest `mtlb-lint: allow`
 *  directives so .cfg/.md findings can be suppressed in place. */
SourceFile
rawFile(const std::string &path, const std::string &displayPath)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("mtlb-lint: cannot read " + path);
    SourceFile out;
    out.path = displayPath;
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
        out.lines.push_back(line);
        addSuppressionsFromLine(line, ++no, out);
    }
    return out;
}

bool
underDir(const std::string &rel, const std::string &dir)
{
    if (rel.size() < dir.size() || rel.compare(0, dir.size(), dir) != 0)
        return false;
    return rel.size() == dir.size() || rel[dir.size()] == '/' ||
           dir.back() == '/';
}

/** Repo-relative paths of all files under @p dirs with one of the
 *  given extensions, sorted for deterministic output. */
std::vector<std::string>
listFiles(const std::string &root, const std::vector<std::string> &dirs,
          const std::vector<std::string> &exts)
{
    std::vector<std::string> out;
    for (const auto &d : dirs) {
        fs::path base = fs::path(root) / d;
        if (!fs::exists(base))
            continue;
        for (const auto &ent : fs::recursive_directory_iterator(base)) {
            if (!ent.is_regular_file())
                continue;
            std::string ext = ent.path().extension().string();
            if (std::find(exts.begin(), exts.end(), ext) == exts.end())
                continue;
            out.push_back(
                fs::relative(ent.path(), fs::path(root)).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

// --------------------------------------------------------------------
// R1/R2: function extraction over the kernel translation unit.
// --------------------------------------------------------------------

struct FnEvent
{
    enum Kind { Mutator, Bump, Hook, Callee, Return } kind;
    size_t pos;             ///< token index
    int line;
    std::string name;       ///< mutator/hook/callee name
};

struct FnInfo
{
    std::string name;
    int line = 0;
    std::vector<FnEvent> events;
    size_t endPos = 0;      ///< token index of the closing '}'
};

/** True if the '{' at token index @p j opens a lambda body. */
bool
lambdaBrace(const std::vector<Token> &t, size_t j)
{
    size_t k = j;
    // Walk back over specifier / trailing-return-type tokens.
    while (k > 0) {
        const Token &p = t[k - 1];
        if (p.kind == TokKind::Identifier &&
            (p.text == "mutable" || p.text == "noexcept" ||
             p.text == "const")) {
            --k;
            continue;
        }
        if (p.kind == TokKind::Punct &&
            (p.text == "->" || p.text == "::" || p.text == "&" ||
             p.text == "*" || p.text == "<" || p.text == ">")) {
            --k;
            continue;
        }
        if (p.kind == TokKind::Identifier && k >= 2 &&
            t[k - 2].kind == TokKind::Punct &&
            (t[k - 2].text == "->" || t[k - 2].text == "::")) {
            --k;
            continue;
        }
        break;
    }
    if (k == 0)
        return false;
    const Token &p = t[k - 1];
    if (p.kind == TokKind::Punct && p.text == "]")
        return true;
    if (p.kind == TokKind::Punct && p.text == ")") {
        int depth = 1;
        size_t m = k - 1;
        while (m > 0) {
            --m;
            if (t[m].kind != TokKind::Punct)
                continue;
            if (t[m].text == ")") {
                ++depth;
            } else if (t[m].text == "(") {
                if (--depth == 0)
                    break;
            }
        }
        if (depth == 0 && m > 0 && t[m - 1].kind == TokKind::Punct &&
            t[m - 1].text == "]") {
            return true;
        }
    }
    return false;
}

bool
isControlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "return" || s == "sizeof";
}

/**
 * Walk the token stream and extract every function definition with
 * the rule-relevant events inside its body. Function-name detection:
 * the first `identifier (` since the last statement boundary at
 * file/namespace scope names the function whose body brace follows
 * (this also handles constructor initializer lists, where later
 * `member_(...)` groups must not steal the name).
 */
std::vector<FnInfo>
extractFunctions(const SourceFile &src, const RulesConfig &cfg)
{
    const auto &t = src.tokens;
    std::vector<FnInfo> fns;
    // Brace kinds: 0 transparent (namespace/type/init), 1 function
    // body (outermost), 2 lambda body inside a function.
    std::vector<int> stack;
    bool inFunction = false;
    FnInfo cur;
    bool haveCandidate = false;
    std::string candidate;
    int candidateLine = 0;
    int lambdaDepth = 0;

    for (size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        auto nextIs = [&](const char *s) {
            return i + 1 < t.size() && t[i + 1].kind == TokKind::Punct &&
                   t[i + 1].text == s;
        };
        if (!inFunction) {
            if (tok.kind == TokKind::Punct) {
                if (tok.text == ";" || tok.text == "=") {
                    haveCandidate = false;
                } else if (tok.text == "}") {
                    haveCandidate = false;
                    if (!stack.empty())
                        stack.pop_back();
                } else if (tok.text == "{") {
                    if (haveCandidate) {
                        inFunction = true;
                        cur = FnInfo{candidate, candidateLine, {}, 0};
                        lambdaDepth = 0;
                        stack.push_back(1);
                    } else {
                        stack.push_back(0);
                    }
                    haveCandidate = false;
                }
            } else if (tok.kind == TokKind::Identifier && !haveCandidate &&
                       nextIs("(") && !isControlKeyword(tok.text)) {
                haveCandidate = true;
                candidate = tok.text;
                candidateLine = tok.line;
            }
            continue;
        }
        // Inside a function body.
        if (tok.kind == TokKind::Punct) {
            if (tok.text == "{") {
                bool lam = lambdaBrace(t, i);
                stack.push_back(lam ? 2 : 0);
                if (lam)
                    ++lambdaDepth;
            } else if (tok.text == "}") {
                int kind = stack.empty() ? 0 : stack.back();
                if (!stack.empty())
                    stack.pop_back();
                if (kind == 2) {
                    --lambdaDepth;
                } else if (kind == 1) {
                    cur.endPos = i;
                    fns.push_back(cur);
                    inFunction = false;
                }
            }
            continue;
        }
        if (tok.kind != TokKind::Identifier)
            continue;
        bool memberCall =
            i > 0 && t[i - 1].kind == TokKind::Punct &&
            (t[i - 1].text == "." || t[i - 1].text == "->");
        if (tok.text == "return") {
            if (lambdaDepth == 0)
                cur.events.push_back({FnEvent::Return, i, tok.line, ""});
            continue;
        }
        if (tok.text == cfg.epochCall && nextIs("(")) {
            cur.events.push_back({FnEvent::Bump, i, tok.line, tok.text});
            continue;
        }
        if (cfg.hooks.count(tok.text) && memberCall) {
            cur.events.push_back({FnEvent::Hook, i, tok.line, tok.text});
            continue;
        }
        if (memberCall && nextIs("(")) {
            for (const auto &m : cfg.mutators) {
                if (m.method != tok.text)
                    continue;
                if (!m.receiver.empty() &&
                    (i < 2 || t[i - 2].kind != TokKind::Identifier ||
                     t[i - 2].text != m.receiver)) {
                    continue;
                }
                cur.events.push_back(
                    {FnEvent::Mutator, i, tok.line, tok.text});
                break;
            }
            for (const auto &p : cfg.pairs) {
                if (p.first == tok.text) {
                    cur.events.push_back(
                        {FnEvent::Callee, i, tok.line, tok.text});
                    break;
                }
            }
        }
    }
    return fns;
}

} // namespace

// --------------------------------------------------------------------
// rules.cfg
// --------------------------------------------------------------------

RulesConfig
RulesConfig::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("mtlb-lint: cannot read rules file " +
                                 path);
    RulesConfig cfg;
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
        ++no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string dir, a, b;
        iss >> dir >> a;
        iss >> b;    // optional second operand
        auto need2 = [&]() {
            if (b.empty()) {
                throw std::runtime_error(
                    path + ":" + std::to_string(no) + ": '" + dir +
                    "' needs two operands");
            }
        };
        if (a.empty()) {
            throw std::runtime_error(path + ":" + std::to_string(no) +
                                     ": '" + dir + "' needs an operand");
        }
        if (dir == "scan-dir") {
            cfg.scanDirs.push_back(a);
        } else if (dir == "kernel-file") {
            cfg.kernelFile = a;
        } else if (dir == "epoch-call") {
            cfg.epochCall = a;
        } else if (dir == "mutator") {
            auto dot = a.rfind('.');
            if (dot == std::string::npos) {
                cfg.mutators.push_back({"", a});
            } else {
                cfg.mutators.push_back(
                    {a.substr(0, dot), a.substr(dot + 1)});
            }
        } else if (dir == "hook") {
            cfg.hooks.insert(a);
        } else if (dir == "pair") {
            need2();
            cfg.pairs.emplace_back(a, b);
        } else if (dir == "require-hook") {
            need2();
            cfg.requireHooks.emplace_back(a, b);
        } else if (dir == "stat-adder") {
            cfg.statAdders.push_back(a);
        } else if (dir == "config-source") {
            cfg.configSource = a;
        } else if (dir == "config-file") {
            cfg.configFiles.push_back(a);
        } else if (dir == "config-dir") {
            cfg.configDirs.push_back(a);
        } else if (dir == "doc-file") {
            cfg.docFile = a;
        } else if (dir == "doc-section") {
            cfg.docSection = a;
            if (!b.empty())
                cfg.docSection += " " + b;
        } else if (dir == "banned") {
            cfg.banned.insert(a);
        } else if (dir == "banned-exempt") {
            cfg.bannedExempt.push_back(a);
        } else if (dir == "guard-prefix") {
            cfg.guardPrefix = a;
        } else if (dir == "guard-strip") {
            cfg.guardStrip.push_back(a);
        } else {
            throw std::runtime_error(path + ":" + std::to_string(no) +
                                     ": unknown directive '" + dir + "'");
        }
    }
    return cfg;
}

std::string
format(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.id + " " +
           f.name + "] " + f.message;
}

// --------------------------------------------------------------------
// Rule runners
// --------------------------------------------------------------------

namespace
{

class Linter
{
  public:
    Linter(const std::string &root, const RulesConfig &cfg,
           const std::set<std::string> &only)
        : root_(root), cfg_(cfg), only_(only)
    {}

    std::vector<Finding> run();

  private:
    bool enabled(const std::string &id) const
    {
        return only_.empty() || only_.count(id);
    }

    void emit(const SourceFile &src, int line, const std::string &id,
              const std::string &name, const std::string &message)
    {
        if (!suppressed(src, line, id, name))
            findings_.push_back({src.path, line, id, name, message});
    }

    std::string abs(const std::string &rel) const
    {
        return (fs::path(root_) / rel).string();
    }

    const SourceFile &tokens(const std::string &rel);

    void checkKernel();             // R1 + R2
    void checkStats();              // R3
    void checkConfigParity();       // R4
    void checkHygiene();            // R5

    std::string expectedGuard(const std::string &rel) const;

    const std::string root_;
    const RulesConfig &cfg_;
    const std::set<std::string> only_;
    std::map<std::string, SourceFile> cache_;
    std::vector<Finding> findings_;
};

const SourceFile &
Linter::tokens(const std::string &rel)
{
    auto it = cache_.find(rel);
    if (it == cache_.end())
        it = cache_.emplace(rel, tokenizeFile(abs(rel), rel)).first;
    return it->second;
}

void
Linter::checkKernel()
{
    if (cfg_.kernelFile.empty() ||
        !fs::exists(abs(cfg_.kernelFile)) ||
        (!enabled("R1") && !enabled("R2"))) {
        return;
    }
    const SourceFile &src = tokens(cfg_.kernelFile);
    auto fns = extractFunctions(src, cfg_);

    for (const auto &fn : fns) {
        std::vector<const FnEvent *> muts, bumps, hooks, callees;
        std::vector<size_t> exits;
        for (const auto &e : fn.events) {
            switch (e.kind) {
              case FnEvent::Mutator: muts.push_back(&e); break;
              case FnEvent::Bump: bumps.push_back(&e); break;
              case FnEvent::Hook: hooks.push_back(&e); break;
              case FnEvent::Callee: callees.push_back(&e); break;
              case FnEvent::Return: exits.push_back(e.pos); break;
            }
        }
        exits.push_back(fn.endPos);

        if (enabled("R1") && !muts.empty()) {
            std::set<int> reported;
            for (size_t ex : exits) {
                const FnEvent *last = nullptr;
                for (const auto *m : muts) {
                    if (m->pos < ex && (!last || m->pos > last->pos))
                        last = m;
                }
                if (!last)
                    continue;
                bool bumped = false;
                for (const auto *bp : bumps) {
                    if (bp->pos > last->pos && bp->pos < ex) {
                        bumped = true;
                        break;
                    }
                }
                if (!bumped && reported.insert(last->line).second) {
                    emit(src, last->line, "R1", "epoch-discipline",
                         "function '" + fn.name +
                         "' mutates translation state via '" +
                         last->name + "' but can return without calling " +
                         cfg_.epochCall + "()");
                }
            }
        }

        if (enabled("R2")) {
            if (!muts.empty() && hooks.empty()) {
                emit(src, muts.front()->line, "R2", "observer-discipline",
                     "function '" + fn.name +
                     "' mutates translation state via '" +
                     muts.front()->name +
                     "' but fires no KernelObserver hook");
            }
            for (const auto &p : cfg_.pairs) {
                const FnEvent *first = nullptr;
                for (const auto *c : callees) {
                    if (c->name == p.first) {
                        first = c;
                        break;
                    }
                }
                if (!first)
                    continue;
                bool paired = false;
                for (const auto *h : hooks) {
                    if (h->name == p.second) {
                        paired = true;
                        break;
                    }
                }
                if (!paired) {
                    emit(src, first->line, "R2", "observer-discipline",
                         "function '" + fn.name + "' calls '" + p.first +
                         "' without firing the paired hook '" + p.second +
                         "'");
                }
            }
        }
    }

    if (enabled("R2")) {
        for (const auto &rh : cfg_.requireHooks) {
            for (const auto &fn : fns) {
                if (fn.name != rh.first)
                    continue;
                bool fired = false;
                for (const auto &e : fn.events) {
                    if (e.kind == FnEvent::Hook && e.name == rh.second) {
                        fired = true;
                        break;
                    }
                }
                if (!fired) {
                    emit(src, fn.line, "R2", "observer-discipline",
                         "function '" + fn.name +
                         "' must fire KernelObserver hook '" + rh.second +
                         "'");
                }
            }
        }
    }
}

void
Linter::checkStats()
{
    if (!enabled("R3") || cfg_.statAdders.empty())
        return;
    static const std::set<std::string> kStatKinds = {
        "Scalar", "Average", "Histogram", "Formula",
    };

    auto headers = listFiles(root_, cfg_.scanDirs, {".hh"});
    auto sources = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});

    // Pass 1: every name registered anywhere via `name ( ... add* ... )`.
    std::set<std::string> registered;
    for (const auto &rel : sources) {
        const auto &t = tokens(rel).tokens;
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                t[i + 1].kind != TokKind::Punct || t[i + 1].text != "(") {
                continue;
            }
            int depth = 0;
            for (size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].kind == TokKind::Punct) {
                    if (t[j].text == "(") {
                        ++depth;
                    } else if (t[j].text == ")") {
                        if (--depth == 0)
                            break;
                    }
                } else if (t[j].kind == TokKind::Identifier &&
                           std::find(cfg_.statAdders.begin(),
                                     cfg_.statAdders.end(), t[j].text) !=
                               cfg_.statAdders.end()) {
                    registered.insert(t[i].text);
                    break;
                }
            }
        }
    }

    // Pass 2: member declarations `stats::<Kind> [&] name ;` in headers.
    for (const auto &rel : headers) {
        const SourceFile &src = tokens(rel);
        const auto &t = src.tokens;
        for (size_t i = 0; i + 3 < t.size(); ++i) {
            if (!(t[i].kind == TokKind::Identifier && t[i].text == "stats" &&
                  t[i + 1].kind == TokKind::Punct &&
                  t[i + 1].text == "::" &&
                  t[i + 2].kind == TokKind::Identifier &&
                  kStatKinds.count(t[i + 2].text))) {
                continue;
            }
            size_t j = i + 3;
            while (j < t.size() && t[j].kind == TokKind::Punct &&
                   (t[j].text == "&" || t[j].text == "*")) {
                ++j;
            }
            if (j + 1 >= t.size() || t[j].kind != TokKind::Identifier ||
                t[j + 1].kind != TokKind::Punct || t[j + 1].text != ";") {
                continue;   // function decl, param, etc.
            }
            if (!registered.count(t[j].text)) {
                emit(src, t[j].line, "R3", "stats-registration",
                     "stat member '" + t[j].text + "' (stats::" +
                     t[i + 2].text + ") is never registered via " +
                     "a stat-group add* call");
            }
        }
    }
}

void
Linter::checkConfigParity()
{
    if (!enabled("R4") || cfg_.configSource.empty() ||
        !fs::exists(abs(cfg_.configSource))) {
        return;
    }

    struct KeyRef
    {
        std::string file;
        int line;
    };

    // Keys the parser accepts, from string literals in configSource.
    const SourceFile &parserSrc = tokens(cfg_.configSource);
    std::map<std::string, KeyRef> parserKeys;
    for (const auto &tok : parserSrc.tokens) {
        if (tok.kind == TokKind::String && looksLikeKey(tok.text)) {
            parserKeys.emplace(tok.text,
                               KeyRef{parserSrc.path, tok.line});
        }
    }

    // Keys set in .cfg files.
    std::vector<std::string> cfgFiles = cfg_.configFiles;
    for (const auto &d : cfg_.configDirs) {
        for (const auto &rel : listFiles(root_, {d}, {".cfg"}))
            cfgFiles.push_back(rel);
    }
    std::sort(cfgFiles.begin(), cfgFiles.end());
    cfgFiles.erase(std::unique(cfgFiles.begin(), cfgFiles.end()),
                   cfgFiles.end());

    std::map<std::string, KeyRef> cfgKeys;
    std::vector<std::pair<std::string, SourceFile>> cfgSources;
    for (const auto &rel : cfgFiles) {
        if (!fs::exists(abs(rel)))
            continue;
        cfgSources.emplace_back(rel, rawFile(abs(rel), rel));
        const SourceFile &src = cfgSources.back().second;
        for (size_t li = 0; li < src.lines.size(); ++li) {
            std::string line = src.lines[li];
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line = line.substr(0, hash);
            auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            std::string key = trim(line.substr(0, eq));
            if (looksLikeKey(key)) {
                cfgKeys.emplace(key,
                                KeyRef{rel, static_cast<int>(li + 1)});
            }
        }
    }

    // Keys documented in the manual's key-reference section: backtick
    // spans that look like keys, between the doc-section heading and
    // the next same-level heading.
    std::map<std::string, KeyRef> docKeys;
    SourceFile docSrc;
    if (!cfg_.docFile.empty() && fs::exists(abs(cfg_.docFile))) {
        docSrc = rawFile(abs(cfg_.docFile), cfg_.docFile);
        bool inSection = cfg_.docSection.empty();
        // A heading "matches" the configured section when its text
        // (after the markdown hashes) starts with docSection, e.g.
        // docSection "5." matches "## 5. Configuration keys".
        auto headingText = [](const std::string &line) -> std::string {
            size_t p = 0;
            while (p < line.size() && line[p] == '#')
                ++p;
            if (p == 0)
                return "";      // not a heading
            while (p < line.size() && line[p] == ' ')
                ++p;
            return line.substr(p);
        };
        for (size_t li = 0; li < docSrc.lines.size(); ++li) {
            const std::string &line = docSrc.lines[li];
            if (!cfg_.docSection.empty() && !line.empty() &&
                line[0] == '#') {
                inSection =
                    headingText(line).rfind(cfg_.docSection, 0) == 0;
            }
            if (!inSection)
                continue;
            size_t pos = 0;
            while ((pos = line.find('`', pos)) != std::string::npos) {
                auto close = line.find('`', pos + 1);
                if (close == std::string::npos)
                    break;
                std::string span = line.substr(pos + 1, close - pos - 1);
                if (looksLikeKey(span)) {
                    docKeys.emplace(span,
                                    KeyRef{cfg_.docFile,
                                           static_cast<int>(li + 1)});
                }
                pos = close + 1;
            }
        }
    }

    // Parser keys must be set somewhere or documented.
    for (const auto &[key, ref] : parserKeys) {
        if (!cfgKeys.count(key) && !docKeys.count(key)) {
            emit(parserSrc, ref.line, "R4", "config-key-parity",
                 "config key '" + key +
                 "' is accepted by the parser but neither set in any "
                 ".cfg nor documented in the manual's key reference");
        }
    }
    // .cfg keys must be accepted by the parser (dead-key detection).
    for (const auto &[key, ref] : cfgKeys) {
        if (!parserKeys.count(key)) {
            for (const auto &[rel, src] : cfgSources) {
                if (rel == ref.file) {
                    emit(src, ref.line, "R4", "config-key-parity",
                         "config key '" + key +
                         "' is set here but not accepted by the parser "
                         "(dead key)");
                    break;
                }
            }
        }
    }
    // Documented keys must be accepted by the parser.
    for (const auto &[key, ref] : docKeys) {
        if (!parserKeys.count(key)) {
            emit(docSrc, ref.line, "R4", "config-key-parity",
                 "manual documents config key '" + key +
                 "' which the parser does not accept");
        }
    }
}

std::string
Linter::expectedGuard(const std::string &rel) const
{
    std::string p = rel;
    for (const auto &strip : cfg_.guardStrip) {
        if (p.rfind(strip, 0) == 0) {
            p = p.substr(strip.size());
            break;
        }
    }
    std::string g = cfg_.guardPrefix;
    for (char c : p) {
        g += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
    }
    return g;
}

void
Linter::checkHygiene()
{
    if (!enabled("R5"))
        return;
    auto files = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});
    for (const auto &rel : files) {
        bool exempt = false;
        for (const auto &d : cfg_.bannedExempt) {
            if (underDir(rel, d)) {
                exempt = true;
                break;
            }
        }
        const SourceFile &src = tokens(rel);

        if (!exempt) {
            for (const auto &tok : src.tokens) {
                if (tok.kind != TokKind::Identifier ||
                    !cfg_.banned.count(tok.text)) {
                    continue;
                }
                std::string why =
                    tok.text == "new"
                        ? "naked 'new' (use std::make_unique or a "
                          "container)"
                        : "banned nondeterminism source '" + tok.text +
                              "'";
                emit(src, tok.line, "R5", "hygiene", why);
            }
        }

        // Include-guard conformance for headers.
        if (rel.size() > 3 && rel.compare(rel.size() - 3, 3, ".hh") == 0) {
            std::string expect = expectedGuard(rel);
            int ifndefLine = 0;
            std::string ifndefMacro, defineMacro;
            bool inBlockComment = false;
            for (size_t li = 0;
                 li < src.lines.size() && defineMacro.empty(); ++li) {
                std::string line = trim(src.lines[li]);
                if (inBlockComment) {
                    if (line.find("*/") != std::string::npos)
                        inBlockComment = false;
                    continue;
                }
                if (line.empty() || line.rfind("//", 0) == 0)
                    continue;
                if (line.rfind("/*", 0) == 0) {
                    if (line.find("*/") == std::string::npos)
                        inBlockComment = true;
                    continue;
                }
                std::istringstream iss(line);
                std::string word;
                iss >> word;
                if (ifndefMacro.empty()) {
                    if (word == "#ifndef") {
                        iss >> ifndefMacro;
                        ifndefLine = static_cast<int>(li + 1);
                        continue;
                    }
                    if (word == "#pragma")
                        continue;   // handled below as non-conforming
                    break;          // first real content isn't a guard
                }
                if (word == "#define") {
                    iss >> defineMacro;
                } else {
                    break;
                }
            }
            if (ifndefMacro.empty()) {
                emit(src, 1, "R5", "hygiene",
                     "header has no include guard (expected #ifndef " +
                     expect + ")");
            } else if (ifndefMacro != expect) {
                emit(src, ifndefLine, "R5", "hygiene",
                     "include guard '" + ifndefMacro +
                     "' does not match the path-derived macro '" + expect +
                     "'");
            } else if (defineMacro != expect) {
                emit(src, ifndefLine, "R5", "hygiene",
                     "include guard #ifndef " + expect +
                     " is not followed by a matching #define");
            }
        }
    }
}

std::vector<Finding>
Linter::run()
{
    checkKernel();
    checkStats();
    checkConfigParity();
    checkHygiene();
    std::sort(findings_.begin(), findings_.end());
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding &a, const Finding &b) {
                                    return !(a < b) && !(b < a);
                                }),
                    findings_.end());
    return std::move(findings_);
}

} // namespace

std::vector<Finding>
runLint(const std::string &root, const RulesConfig &cfg,
        const std::set<std::string> &only)
{
    return Linter(root, cfg, only).run();
}

} // namespace mtlblint
