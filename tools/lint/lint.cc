#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "callgraph.hh"
#include "lexer.hh"
#include "scopes.hh"

namespace fs = std::filesystem;

namespace mtlblint
{

namespace
{

std::string
trim(const std::string &s)
{
    auto b = s.find_first_not_of(" \t\r");
    auto e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** Dotted lower-case config key: `tlb.entries`, `kernel.frame_seed`. */
bool
looksLikeKey(const std::string &s)
{
    if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
        return false;
    bool sawDot = false;
    char prev = '\0';
    for (char c : s) {
        if (c == '.') {
            if (prev == '\0' || prev == '.')
                return false;
            sawDot = true;
        } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                     std::isdigit(static_cast<unsigned char>(c)) ||
                     c == '_')) {
            return false;
        }
        prev = c;
    }
    return sawDot && prev != '.';
}

/** Read a text file into lines; also harvest `mtlb-lint: allow`
 *  directives so .cfg/.md findings can be suppressed in place. */
SourceFile
rawFile(const std::string &path, const std::string &displayPath)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("mtlb-lint: cannot read " + path);
    SourceFile out;
    out.path = displayPath;
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
        out.lines.push_back(line);
        addSuppressionsFromLine(line, ++no, out);
    }
    return out;
}

bool
underDir(const std::string &rel, const std::string &dir)
{
    if (rel.size() < dir.size() || rel.compare(0, dir.size(), dir) != 0)
        return false;
    return rel.size() == dir.size() || rel[dir.size()] == '/' ||
           dir.back() == '/';
}

/** Repo-relative paths of all files under @p dirs with one of the
 *  given extensions, sorted for deterministic output. */
std::vector<std::string>
listFiles(const std::string &root, const std::vector<std::string> &dirs,
          const std::vector<std::string> &exts)
{
    std::vector<std::string> out;
    for (const auto &d : dirs) {
        fs::path base = fs::path(root) / d;
        if (!fs::exists(base))
            continue;
        for (const auto &ent : fs::recursive_directory_iterator(base)) {
            if (!ent.is_regular_file())
                continue;
            std::string ext = ent.path().extension().string();
            if (std::find(exts.begin(), exts.end(), ext) == exts.end())
                continue;
            out.push_back(
                fs::relative(ent.path(), fs::path(root)).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

// --------------------------------------------------------------------
// R1/R2: function extraction over the kernel translation unit.
// --------------------------------------------------------------------

struct FnEvent
{
    enum Kind { Mutator, Bump, Hook, Callee, Return, Call } kind;
    size_t pos;             ///< token index
    int line;
    std::string name;       ///< mutator/hook/callee name
};

struct FnInfo
{
    std::string name;
    int line = 0;
    std::vector<FnEvent> events;
    size_t endPos = 0;      ///< token index of the closing '}'
};

/** True if the '{' at token index @p j opens a lambda body. */
bool
lambdaBrace(const std::vector<Token> &t, size_t j)
{
    size_t k = j;
    // Walk back over specifier / trailing-return-type tokens.
    while (k > 0) {
        const Token &p = t[k - 1];
        if (p.kind == TokKind::Identifier &&
            (p.text == "mutable" || p.text == "noexcept" ||
             p.text == "const")) {
            --k;
            continue;
        }
        if (p.kind == TokKind::Punct &&
            (p.text == "->" || p.text == "::" || p.text == "&" ||
             p.text == "*" || p.text == "<" || p.text == ">")) {
            --k;
            continue;
        }
        if (p.kind == TokKind::Identifier && k >= 2 &&
            t[k - 2].kind == TokKind::Punct &&
            (t[k - 2].text == "->" || t[k - 2].text == "::")) {
            --k;
            continue;
        }
        break;
    }
    if (k == 0)
        return false;
    const Token &p = t[k - 1];
    if (p.kind == TokKind::Punct && p.text == "]")
        return true;
    if (p.kind == TokKind::Punct && p.text == ")") {
        int depth = 1;
        size_t m = k - 1;
        while (m > 0) {
            --m;
            if (t[m].kind != TokKind::Punct)
                continue;
            if (t[m].text == ")") {
                ++depth;
            } else if (t[m].text == "(") {
                if (--depth == 0)
                    break;
            }
        }
        if (depth == 0 && m > 0 && t[m - 1].kind == TokKind::Punct &&
            t[m - 1].text == "]") {
            return true;
        }
    }
    return false;
}

bool
isControlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "return" || s == "sizeof";
}

/**
 * Walk the token stream and extract every function definition with
 * the rule-relevant events inside its body. Function-name detection:
 * the first `identifier (` since the last statement boundary at
 * file/namespace scope names the function whose body brace follows
 * (this also handles constructor initializer lists, where later
 * `member_(...)` groups must not steal the name).
 */
std::vector<FnInfo>
extractFunctions(const SourceFile &src, const RulesConfig &cfg)
{
    const auto &t = src.tokens;
    std::vector<FnInfo> fns;
    // Brace kinds: 0 transparent (namespace/type/init), 1 function
    // body (outermost), 2 lambda body inside a function.
    std::vector<int> stack;
    bool inFunction = false;
    FnInfo cur;
    bool haveCandidate = false;
    std::string candidate;
    int candidateLine = 0;
    int lambdaDepth = 0;

    for (size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        auto nextIs = [&](const char *s) {
            return i + 1 < t.size() && t[i + 1].kind == TokKind::Punct &&
                   t[i + 1].text == s;
        };
        if (!inFunction) {
            if (tok.kind == TokKind::Punct) {
                if (tok.text == ";" || tok.text == "=") {
                    haveCandidate = false;
                } else if (tok.text == "}") {
                    haveCandidate = false;
                    if (!stack.empty())
                        stack.pop_back();
                } else if (tok.text == "{") {
                    if (haveCandidate) {
                        inFunction = true;
                        cur = FnInfo{candidate, candidateLine, {}, 0};
                        lambdaDepth = 0;
                        stack.push_back(1);
                    } else {
                        stack.push_back(0);
                    }
                    haveCandidate = false;
                }
            } else if (tok.kind == TokKind::Identifier && !haveCandidate &&
                       nextIs("(") && !isControlKeyword(tok.text)) {
                haveCandidate = true;
                candidate = tok.text;
                candidateLine = tok.line;
            }
            continue;
        }
        // Inside a function body.
        if (tok.kind == TokKind::Punct) {
            if (tok.text == "{") {
                bool lam = lambdaBrace(t, i);
                stack.push_back(lam ? 2 : 0);
                if (lam)
                    ++lambdaDepth;
            } else if (tok.text == "}") {
                int kind = stack.empty() ? 0 : stack.back();
                if (!stack.empty())
                    stack.pop_back();
                if (kind == 2) {
                    --lambdaDepth;
                } else if (kind == 1) {
                    cur.endPos = i;
                    fns.push_back(cur);
                    inFunction = false;
                }
            }
            continue;
        }
        if (tok.kind != TokKind::Identifier)
            continue;
        bool memberCall =
            i > 0 && t[i - 1].kind == TokKind::Punct &&
            (t[i - 1].text == "." || t[i - 1].text == "->");
        if (tok.text == "return") {
            if (lambdaDepth == 0)
                cur.events.push_back({FnEvent::Return, i, tok.line, ""});
            continue;
        }
        if (tok.text == cfg.epochCall && nextIs("(")) {
            cur.events.push_back({FnEvent::Bump, i, tok.line, tok.text});
            continue;
        }
        if (cfg.hooks.count(tok.text) && memberCall) {
            cur.events.push_back({FnEvent::Hook, i, tok.line, tok.text});
            continue;
        }
        if (memberCall && nextIs("(")) {
            for (const auto &m : cfg.mutators) {
                if (m.method != tok.text)
                    continue;
                if (!m.receiver.empty() &&
                    (i < 2 || t[i - 2].kind != TokKind::Identifier ||
                     t[i - 2].text != m.receiver)) {
                    continue;
                }
                cur.events.push_back(
                    {FnEvent::Mutator, i, tok.line, tok.text});
                break;
            }
            for (const auto &p : cfg.pairs) {
                if (p.first == tok.text) {
                    cur.events.push_back(
                        {FnEvent::Callee, i, tok.line, tok.text});
                    break;
                }
            }
        }
        // Generic call event: the interprocedural checks substitute
        // the callee's summary (bump / broadcast / hook facts) here.
        if (nextIs("(") && !isControlKeyword(tok.text))
            cur.events.push_back({FnEvent::Call, i, tok.line, tok.text});
    }
    return fns;
}

// The scope tree (buildScopes and friends) lives in scopes.hh; the
// interprocedural engine in callgraph.hh.

/**
 * Statement-level variable-definition detection shared by R6 and R7.
 *
 * Finds the declarator: the identifier immediately before the first
 * top-level `=`, `[`, `;`-end, Init-brace, or (at function scope
 * only) `(` - constructor-style initialisation. Returns npos for
 * statements that declare functions, types, aliases, templates, or
 * nothing at all.
 */
size_t
declaratorOf(const std::vector<Token> &t, const Stmt &stmt,
             bool parenInitAllowed)
{
    static const std::set<std::string> kSkipWords = {
        "using", "typedef", "extern", "friend", "template", "operator",
        "static_assert", "namespace", "return", "delete", "new",
        "if", "for", "while", "switch", "do", "case", "goto", "throw",
    };
    static const std::set<std::string> kAccess = {"public", "private",
                                                  "protected"};
    // An access specifier opens the statement (`private: Type x;`);
    // skip it rather than rejecting the member that follows.
    size_t first = 0;
    while (first + 1 < stmt.toks.size() &&
           t[stmt.toks[first]].kind == TokKind::Identifier &&
           kAccess.count(t[stmt.toks[first]].text) &&
           t[stmt.toks[first + 1]].text == ":") {
        first += 2;
    }
    for (size_t k = first; k < stmt.toks.size(); ++k) {
        size_t pi = stmt.toks[k];
        if (t[pi].kind == TokKind::Identifier && kSkipWords.count(t[pi].text))
            return std::string::npos;
        if (classKeyword(t[pi].text))
            return std::string::npos;
    }
    size_t prevIdent = std::string::npos;
    for (size_t k = first; k < stmt.toks.size(); ++k) {
        const Token &tok = t[stmt.toks[k]];
        if (tok.kind == TokKind::Identifier) {
            prevIdent = stmt.toks[k];
            continue;
        }
        if (tok.kind != TokKind::Punct)
            continue;
        if (tok.text == "<") {
            // Skip the template argument group inside this statement.
            size_t past = skipAngles(t, stmt.toks[k]);
            while (k < stmt.toks.size() && stmt.toks[k] < past)
                ++k;
            --k;
            prevIdent = std::string::npos;
            continue;
        }
        if (tok.text == "=" || tok.text == "[" || tok.text == "{")
            return prevIdent;
        if (tok.text == "(")
            return parenInitAllowed ? prevIdent : std::string::npos;
        if (tok.text == "*" || tok.text == "&" || tok.text == "::" ||
            tok.text == ",") {
            prevIdent = std::string::npos;
            continue;
        }
    }
    return prevIdent;   // plain `Type name ;`
}

} // namespace

// --------------------------------------------------------------------
// rules.cfg
// --------------------------------------------------------------------

RulesConfig
RulesConfig::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("mtlb-lint: cannot read rules file " +
                                 path);
    RulesConfig cfg;
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
        ++no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string dir, a, b, c;
        iss >> dir >> a;
        iss >> b;    // optional second operand
        iss >> c;    // optional third operand
        auto need2 = [&]() {
            if (b.empty()) {
                throw std::runtime_error(
                    path + ":" + std::to_string(no) + ": '" + dir +
                    "' needs two operands");
            }
        };
        auto need3 = [&]() {
            if (c.empty()) {
                throw std::runtime_error(
                    path + ":" + std::to_string(no) + ": '" + dir +
                    "' needs three operands");
            }
        };
        if (a.empty()) {
            throw std::runtime_error(path + ":" + std::to_string(no) +
                                     ": '" + dir + "' needs an operand");
        }
        if (dir == "scan-dir") {
            cfg.scanDirs.push_back(a);
        } else if (dir == "kernel-file") {
            cfg.kernelFile = a;
        } else if (dir == "epoch-call") {
            cfg.epochCall = a;
        } else if (dir == "mutator") {
            auto dot = a.rfind('.');
            if (dot == std::string::npos) {
                cfg.mutators.push_back({"", a});
            } else {
                cfg.mutators.push_back(
                    {a.substr(0, dot), a.substr(dot + 1)});
            }
        } else if (dir == "hook") {
            cfg.hooks.insert(a);
        } else if (dir == "pair") {
            need2();
            cfg.pairs.emplace_back(a, b);
        } else if (dir == "require-hook") {
            need2();
            cfg.requireHooks.emplace_back(a, b);
        } else if (dir == "stat-adder") {
            cfg.statAdders.push_back(a);
        } else if (dir == "config-source") {
            cfg.configSource = a;
        } else if (dir == "config-file") {
            cfg.configFiles.push_back(a);
        } else if (dir == "config-dir") {
            cfg.configDirs.push_back(a);
        } else if (dir == "doc-file") {
            cfg.docFile = a;
        } else if (dir == "doc-section") {
            cfg.docSection = a;
            if (!b.empty())
                cfg.docSection += " " + b;
            if (!c.empty())
                cfg.docSection += " " + c;
            std::string rest;
            while (iss >> rest)
                cfg.docSection += " " + rest;
        } else if (dir == "global-dir") {
            cfg.globalDirs.push_back(a);
        } else if (dir == "r6-baseline") {
            cfg.r6Baseline = a;
        } else if (dir == "nonpod-type") {
            cfg.nonPodTypes.insert(a);
        } else if (dir == "owned-type") {
            cfg.ownedTypes.insert(a);
        } else if (dir == "owner-class") {
            cfg.ownerClasses.insert(a);
        } else if (dir == "lock-free-dir") {
            cfg.lockFreeDirs.push_back(a);
        } else if (dir == "lock-ident") {
            cfg.lockIdents.insert(a);
        } else if (dir == "guarded-member") {
            need3();
            cfg.guardedMembers.push_back({a, b, c});
        } else if (dir == "det-sink") {
            cfg.detSinks.insert(a);
        } else if (dir == "shootdown-call") {
            cfg.shootdownCall = a;
        } else if (dir == "purge-call") {
            cfg.purgeCall = a;
        } else if (dir == "r10-exempt") {
            cfg.r10Exempt.insert(a);
        } else if (dir == "percore-container") {
            cfg.percoreContainers[a] = b;   // b may be empty
        } else if (dir == "r11-exempt") {
            cfg.r11Exempt.insert(a);
        } else if (dir == "flush-call") {
            cfg.flushCall = a;
        } else if (dir == "r12-reader") {
            auto dot = a.rfind('.');
            if (dot == std::string::npos) {
                cfg.r12Readers.push_back({"", a});
            } else {
                cfg.r12Readers.push_back(
                    {a.substr(0, dot), a.substr(dot + 1)});
            }
        } else if (dir == "banned") {
            cfg.banned.insert(a);
        } else if (dir == "banned-exempt") {
            cfg.bannedExempt.push_back(a);
        } else if (dir == "guard-prefix") {
            cfg.guardPrefix = a;
        } else if (dir == "guard-strip") {
            cfg.guardStrip.push_back(a);
        } else {
            throw std::runtime_error(path + ":" + std::to_string(no) +
                                     ": unknown directive '" + dir + "'");
        }
    }
    return cfg;
}

std::string
format(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.id + " " +
           f.name + "] " + f.message +
           (f.allowed ? " (allowed)" : "");
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
formatGithub(const Finding &f)
{
    // GitHub annotation commands treat the message as a single line;
    // properties are escaped per the workflow-command grammar.
    auto prop = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '%') out += "%25";
            else if (c == '\r') out += "%0D";
            else if (c == '\n') out += "%0A";
            else if (c == ',') out += "%2C";
            else if (c == ':') out += "%3A";
            else out += c;
        }
        return out;
    };
    auto data = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '%') out += "%25";
            else if (c == '\r') out += "%0D";
            else if (c == '\n') out += "%0A";
            else out += c;
        }
        return out;
    };
    return "::error file=" + prop(f.file) + ",line=" +
           std::to_string(f.line) + ",title=" +
           prop("mtlb-lint " + f.id + " " + f.name) +
           "::" + data(f.message);
}

std::string
formatJson(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    size_t live = 0;
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (!f.allowed)
            ++live;
        os << (i ? ",\n    " : "\n    ") << "{\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << f.id << "\", \"name\": \""
           << jsonEscape(f.name) << "\", \"message\": \""
           << jsonEscape(f.message) << "\", \"allowed\": "
           << (f.allowed ? "true" : "false") << "}";
    }
    os << (findings.empty() ? "" : "\n  ") << "],\n  \"count\": " << live
       << "\n}\n";
    return os.str();
}

// --------------------------------------------------------------------
// Rule runners
// --------------------------------------------------------------------

namespace
{

/** id -> long name for every rule the engine knows, so stale-allow
 *  can recognise annotations written either way. */
const std::map<std::string, std::string> &
ruleNames()
{
    static const std::map<std::string, std::string> kNames = {
        {"R1", "epoch-discipline"},
        {"R2", "observer-discipline"},
        {"R3", "stats-registration"},
        {"R4", "config-key-parity"},
        {"R5", "hygiene"},
        {"R6", "no-mutable-global-state"},
        {"R7", "ownership-escape"},
        {"R8", "lock-discipline"},
        {"R9", "determinism-taint"},
        {"R10", "shootdown-parity"},
        {"R11", "core-confinement"},
        {"R12", "batch-flush-discipline"},
        {"SA", "stale-allow"},
    };
    return kNames;
}

/** Rule id for an allow() token ("R7" or "ownership-escape" -> "R7"),
 *  or "" when the token names no known rule (prose in a comment). */
std::string
ruleIdForToken(const std::string &tok)
{
    for (const auto &[id, name] : ruleNames()) {
        if (tok == id || tok == name)
            return id;
    }
    return "";
}

class Linter
{
  public:
    Linter(const std::string &root, const RulesConfig &cfg,
           const std::set<std::string> &only, bool keepAllowed)
        : root_(root), cfg_(cfg), only_(only), keepAllowed_(keepAllowed)
    {}

    std::vector<Finding> run();

  private:
    bool enabled(const std::string &id) const
    {
        return only_.empty() || only_.count(id);
    }

    /** Whether a check should execute. Stale-allow judges the other
     *  rules' suppressions, so enabling SA executes every check (its
     *  findings are then filtered to the enabled ids in emit()). */
    bool active(const std::string &id) const
    {
        return enabled(id) || enabled("SA");
    }

    /** Record which allow() entry suppressed a finding at @p line, so
     *  stale-allow can later flag the entries that suppressed
     *  nothing. Marks both spellings (id and long name) on whichever
     *  line carries the annotation. */
    void noteUse(const SourceFile &src, int line, const std::string &id,
                 const std::string &name)
    {
        for (int l : {line, line - 1}) {
            auto it = src.suppressions.find(l);
            if (it == src.suppressions.end())
                continue;
            for (const std::string &tok : {id, name}) {
                if (it->second.count(tok))
                    used_.emplace(src.path, l, tok);
            }
        }
    }

    void emit(const SourceFile &src, int line, const std::string &id,
              const std::string &name, const std::string &message)
    {
        const bool allowed = suppressed(src, line, id, name);
        if (allowed)
            noteUse(src, line, id, name);
        if (!enabled(id))
            return;     // executed only for stale-allow bookkeeping
        if (allowed && !keepAllowed_)
            return;
        findings_.push_back({src.path, line, id, name, message, allowed});
    }

    /** Emit bypassing the allow-annotation check. R6's ratchet uses
     *  this: an annotated global that is missing from the committed
     *  baseline must still be a finding, or annotations alone could
     *  grow the inventory. SA uses it too: a stale annotation cannot
     *  allow() itself away. */
    void emitRaw(const std::string &file, int line, const std::string &id,
                 const std::string &name, const std::string &message)
    {
        if (!enabled(id))
            return;
        findings_.push_back({file, line, id, name, message, false});
    }

    std::string abs(const std::string &rel) const
    {
        return (fs::path(root_) / rel).string();
    }

    const SourceFile &tokens(const std::string &rel);

    void checkKernel();             // R1 + R2
    void checkStats();              // R3
    void checkConfigParity();       // R4
    void checkHygiene();            // R5
    void checkGlobals();            // R6
    void checkOwnership();          // R7
    void checkLocks();              // R8
    void checkDeterminism();        // R9
    void checkShootdownParity();    // R10
    void checkCoreConfinement();    // R11
    void checkBatchFlush();         // R12
    void checkStaleAllows();        // SA (after all other checks)

    const ScopeTree &scopes(const std::string &rel);

    /** Project-wide call graph with propagated summaries, built
     *  lazily over every scanned .hh/.cc. */
    const CallGraph &graph();

    std::string expectedGuard(const std::string &rel) const;

    const std::string root_;
    const RulesConfig &cfg_;
    const std::set<std::string> only_;
    const bool keepAllowed_;
    std::map<std::string, SourceFile> cache_;
    std::map<std::string, ScopeTree> scopeCache_;
    std::unique_ptr<CallGraph> graph_;
    std::vector<Finding> findings_;
    /** Rule ids whose check actually executed (preconditions met). */
    std::set<std::string> assessed_;
    /** (file, line, allow-token) entries that suppressed a finding. */
    std::set<std::tuple<std::string, int, std::string>> used_;
};

const SourceFile &
Linter::tokens(const std::string &rel)
{
    auto it = cache_.find(rel);
    if (it == cache_.end())
        it = cache_.emplace(rel, tokenizeFile(abs(rel), rel)).first;
    return it->second;
}

const ScopeTree &
Linter::scopes(const std::string &rel)
{
    auto it = scopeCache_.find(rel);
    if (it == scopeCache_.end()) {
        const SourceFile &src = tokens(rel);
        it = scopeCache_.emplace(rel, buildScopes(src.tokens)).first;
    }
    return it->second;
}

const CallGraph &
Linter::graph()
{
    if (!graph_) {
        graph_ = std::make_unique<CallGraph>();
        for (const auto &rel :
             listFiles(root_, cfg_.scanDirs, {".hh", ".cc"})) {
            graph_->addFile(tokens(rel), scopes(rel), cfg_);
        }
        graph_->propagate(cfg_);
    }
    return *graph_;
}

void
Linter::checkKernel()
{
    if (cfg_.kernelFile.empty() ||
        !fs::exists(abs(cfg_.kernelFile)) ||
        (!active("R1") && !active("R2"))) {
        return;
    }
    assessed_.insert("R1");
    assessed_.insert("R2");
    const SourceFile &src = tokens(cfg_.kernelFile);
    auto fns = extractFunctions(src, cfg_);
    const CallGraph &g = graph();

    // Substitute callee summaries at generic call sites so helper
    // indirection is transparent: a call that always bumps counts as
    // a bump, a call that may mutate (without bumping on all paths)
    // counts as a mutation, and hooks every overload fires count as
    // fired here.
    std::vector<std::vector<FnEvent>> synth(fns.size());
    for (size_t fi = 0; fi < fns.size(); ++fi) {
        for (const auto &e : fns[fi].events) {
            if (e.kind != FnEvent::Call)
                continue;
            if (g.callMustBump(cfg_.kernelFile, e.name)) {
                synth[fi].push_back({FnEvent::Bump, e.pos, e.line, e.name});
            } else if (g.callMayMutate(cfg_.kernelFile, e.name)) {
                synth[fi].push_back(
                    {FnEvent::Mutator, e.pos, e.line, e.name});
            }
            for (const auto &h : g.callMustHooks(cfg_.kernelFile, e.name))
                synth[fi].push_back({FnEvent::Hook, e.pos, e.line, h});
        }
    }

    for (size_t fi = 0; fi < fns.size(); ++fi) {
        const auto &fn = fns[fi];
        std::vector<const FnEvent *> muts, bumps, hooks, callees;
        std::vector<size_t> exits;
        auto bucket = [&](const FnEvent &e) {
            switch (e.kind) {
              case FnEvent::Mutator: muts.push_back(&e); break;
              case FnEvent::Bump: bumps.push_back(&e); break;
              case FnEvent::Hook: hooks.push_back(&e); break;
              case FnEvent::Callee: callees.push_back(&e); break;
              case FnEvent::Return: exits.push_back(e.pos); break;
              case FnEvent::Call: break;
            }
        };
        for (const auto &e : fn.events)
            bucket(e);
        for (const auto &e : synth[fi])
            bucket(e);
        exits.push_back(fn.endPos);

        if (active("R1") && !muts.empty()) {
            std::set<int> reported;
            for (size_t ex : exits) {
                const FnEvent *last = nullptr;
                for (const auto *m : muts) {
                    if (m->pos < ex && (!last || m->pos > last->pos))
                        last = m;
                }
                if (!last)
                    continue;
                bool bumped = false;
                for (const auto *bp : bumps) {
                    if (bp->pos > last->pos && bp->pos < ex) {
                        bumped = true;
                        break;
                    }
                }
                if (!bumped && reported.insert(last->line).second) {
                    emit(src, last->line, "R1", "epoch-discipline",
                         "function '" + fn.name +
                         "' mutates translation state via '" +
                         last->name + "' but can return without calling " +
                         cfg_.epochCall + "()");
                }
            }
        }

        if (active("R2")) {
            if (!muts.empty() && hooks.empty()) {
                emit(src, muts.front()->line, "R2", "observer-discipline",
                     "function '" + fn.name +
                     "' mutates translation state via '" +
                     muts.front()->name +
                     "' but fires no KernelObserver hook");
            }
            for (const auto &p : cfg_.pairs) {
                const FnEvent *first = nullptr;
                for (const auto *c : callees) {
                    if (c->name == p.first) {
                        first = c;
                        break;
                    }
                }
                if (!first)
                    continue;
                bool paired = false;
                for (const auto *h : hooks) {
                    if (h->name == p.second) {
                        paired = true;
                        break;
                    }
                }
                if (!paired) {
                    emit(src, first->line, "R2", "observer-discipline",
                         "function '" + fn.name + "' calls '" + p.first +
                         "' without firing the paired hook '" + p.second +
                         "'");
                }
            }
        }
    }

    if (active("R2")) {
        for (const auto &rh : cfg_.requireHooks) {
            for (size_t fi = 0; fi < fns.size(); ++fi) {
                const auto &fn = fns[fi];
                if (fn.name != rh.first)
                    continue;
                bool fired = false;
                const std::vector<FnEvent> *lists[] = {
                    &fn.events, &synth[fi]};
                for (const auto *list : lists) {
                    for (const auto &e : *list) {
                        if (e.kind == FnEvent::Hook &&
                            e.name == rh.second) {
                            fired = true;
                            break;
                        }
                    }
                }
                if (!fired) {
                    emit(src, fn.line, "R2", "observer-discipline",
                         "function '" + fn.name +
                         "' must fire KernelObserver hook '" + rh.second +
                         "'");
                }
            }
        }
    }
}

void
Linter::checkStats()
{
    if (!active("R3") || cfg_.statAdders.empty())
        return;
    assessed_.insert("R3");
    static const std::set<std::string> kStatKinds = {
        "Scalar", "Average", "Histogram", "Formula",
    };

    auto headers = listFiles(root_, cfg_.scanDirs, {".hh"});
    auto sources = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});

    // Pass 1: every name registered anywhere via `name ( ... add* ... )`.
    std::set<std::string> registered;
    for (const auto &rel : sources) {
        const auto &t = tokens(rel).tokens;
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                t[i + 1].kind != TokKind::Punct || t[i + 1].text != "(") {
                continue;
            }
            int depth = 0;
            for (size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].kind == TokKind::Punct) {
                    if (t[j].text == "(") {
                        ++depth;
                    } else if (t[j].text == ")") {
                        if (--depth == 0)
                            break;
                    }
                } else if (t[j].kind == TokKind::Identifier &&
                           std::find(cfg_.statAdders.begin(),
                                     cfg_.statAdders.end(), t[j].text) !=
                               cfg_.statAdders.end()) {
                    registered.insert(t[i].text);
                    break;
                }
            }
        }
    }

    // Pass 2: member declarations `stats::<Kind> [&] name ;` in headers.
    for (const auto &rel : headers) {
        const SourceFile &src = tokens(rel);
        const auto &t = src.tokens;
        for (size_t i = 0; i + 3 < t.size(); ++i) {
            if (!(t[i].kind == TokKind::Identifier && t[i].text == "stats" &&
                  t[i + 1].kind == TokKind::Punct &&
                  t[i + 1].text == "::" &&
                  t[i + 2].kind == TokKind::Identifier &&
                  kStatKinds.count(t[i + 2].text))) {
                continue;
            }
            size_t j = i + 3;
            while (j < t.size() && t[j].kind == TokKind::Punct &&
                   (t[j].text == "&" || t[j].text == "*")) {
                ++j;
            }
            if (j + 1 >= t.size() || t[j].kind != TokKind::Identifier ||
                t[j + 1].kind != TokKind::Punct || t[j + 1].text != ";") {
                continue;   // function decl, param, etc.
            }
            if (!registered.count(t[j].text)) {
                emit(src, t[j].line, "R3", "stats-registration",
                     "stat member '" + t[j].text + "' (stats::" +
                     t[i + 2].text + ") is never registered via " +
                     "a stat-group add* call");
            }
        }
    }
}

void
Linter::checkConfigParity()
{
    if (!active("R4") || cfg_.configSource.empty() ||
        !fs::exists(abs(cfg_.configSource))) {
        return;
    }
    assessed_.insert("R4");

    struct KeyRef
    {
        std::string file;
        int line;
    };

    // Keys the parser accepts, from string literals in configSource.
    const SourceFile &parserSrc = tokens(cfg_.configSource);
    std::map<std::string, KeyRef> parserKeys;
    for (const auto &tok : parserSrc.tokens) {
        if (tok.kind == TokKind::String && looksLikeKey(tok.text)) {
            parserKeys.emplace(tok.text,
                               KeyRef{parserSrc.path, tok.line});
        }
    }

    // Keys set in .cfg files.
    std::vector<std::string> cfgFiles = cfg_.configFiles;
    for (const auto &d : cfg_.configDirs) {
        for (const auto &rel : listFiles(root_, {d}, {".cfg"}))
            cfgFiles.push_back(rel);
    }
    std::sort(cfgFiles.begin(), cfgFiles.end());
    cfgFiles.erase(std::unique(cfgFiles.begin(), cfgFiles.end()),
                   cfgFiles.end());

    std::map<std::string, KeyRef> cfgKeys;
    std::vector<std::pair<std::string, SourceFile>> cfgSources;
    for (const auto &rel : cfgFiles) {
        if (!fs::exists(abs(rel)))
            continue;
        cfgSources.emplace_back(rel, rawFile(abs(rel), rel));
        const SourceFile &src = cfgSources.back().second;
        for (size_t li = 0; li < src.lines.size(); ++li) {
            std::string line = src.lines[li];
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line = line.substr(0, hash);
            auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            std::string key = trim(line.substr(0, eq));
            if (looksLikeKey(key)) {
                cfgKeys.emplace(key,
                                KeyRef{rel, static_cast<int>(li + 1)});
            }
        }
    }

    // Keys documented in the manual's key-reference section: backtick
    // spans that look like keys, between the doc-section heading and
    // the next same-level heading.
    std::map<std::string, KeyRef> docKeys;
    SourceFile docSrc;
    if (!cfg_.docFile.empty() && fs::exists(abs(cfg_.docFile))) {
        docSrc = rawFile(abs(cfg_.docFile), cfg_.docFile);
        bool inSection = cfg_.docSection.empty();
        bool sectionSeen = cfg_.docSection.empty();
        // A heading "matches" the configured section when its text
        // (after the markdown hashes) starts with docSection, e.g.
        // docSection "5." matches "## 5. Configuration keys".
        auto headingText = [](const std::string &line) -> std::string {
            size_t p = 0;
            while (p < line.size() && line[p] == '#')
                ++p;
            if (p == 0)
                return "";      // not a heading
            while (p < line.size() && line[p] == ' ')
                ++p;
            return line.substr(p);
        };
        for (size_t li = 0; li < docSrc.lines.size(); ++li) {
            const std::string &line = docSrc.lines[li];
            if (!cfg_.docSection.empty() && !line.empty() &&
                line[0] == '#') {
                inSection =
                    headingText(line).rfind(cfg_.docSection, 0) == 0;
                sectionSeen = sectionSeen || inSection;
            }
            if (!inSection)
                continue;
            size_t pos = 0;
            while ((pos = line.find('`', pos)) != std::string::npos) {
                auto close = line.find('`', pos + 1);
                if (close == std::string::npos)
                    break;
                std::string span = line.substr(pos + 1, close - pos - 1);
                if (looksLikeKey(span)) {
                    docKeys.emplace(span,
                                    KeyRef{cfg_.docFile,
                                           static_cast<int>(li + 1)});
                }
                pos = close + 1;
            }
        }
        // If the configured heading never matched, the key-reference
        // scan read nothing — a silently disabled check. Manual
        // restructuring must update doc-section in rules.cfg.
        if (!sectionSeen) {
            emit(docSrc, 1, "R4", "config-key-parity",
                 "doc-section heading '" + cfg_.docSection +
                     "' not found in " + cfg_.docFile +
                     "; the manual key-reference scan matched nothing "
                     "(update doc-section in rules.cfg)");
        }
    }

    // Parser keys must be set somewhere or documented.
    for (const auto &[key, ref] : parserKeys) {
        if (!cfgKeys.count(key) && !docKeys.count(key)) {
            emit(parserSrc, ref.line, "R4", "config-key-parity",
                 "config key '" + key +
                 "' is accepted by the parser but neither set in any "
                 ".cfg nor documented in the manual's key reference");
        }
    }
    // .cfg keys must be accepted by the parser (dead-key detection).
    for (const auto &[key, ref] : cfgKeys) {
        if (!parserKeys.count(key)) {
            for (const auto &[rel, src] : cfgSources) {
                if (rel == ref.file) {
                    emit(src, ref.line, "R4", "config-key-parity",
                         "config key '" + key +
                         "' is set here but not accepted by the parser "
                         "(dead key)");
                    break;
                }
            }
        }
    }
    // Documented keys must be accepted by the parser.
    for (const auto &[key, ref] : docKeys) {
        if (!parserKeys.count(key)) {
            emit(docSrc, ref.line, "R4", "config-key-parity",
                 "manual documents config key '" + key +
                 "' which the parser does not accept");
        }
    }
}

std::string
Linter::expectedGuard(const std::string &rel) const
{
    std::string p = rel;
    for (const auto &strip : cfg_.guardStrip) {
        if (p.rfind(strip, 0) == 0) {
            p = p.substr(strip.size());
            break;
        }
    }
    std::string g = cfg_.guardPrefix;
    for (char c : p) {
        g += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
    }
    return g;
}

void
Linter::checkHygiene()
{
    if (!active("R5"))
        return;
    assessed_.insert("R5");
    auto files = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});
    for (const auto &rel : files) {
        bool exempt = false;
        for (const auto &d : cfg_.bannedExempt) {
            if (underDir(rel, d)) {
                exempt = true;
                break;
            }
        }
        const SourceFile &src = tokens(rel);

        if (!exempt) {
            for (const auto &tok : src.tokens) {
                if (tok.kind != TokKind::Identifier ||
                    !cfg_.banned.count(tok.text)) {
                    continue;
                }
                std::string why =
                    tok.text == "new"
                        ? "naked 'new' (use std::make_unique or a "
                          "container)"
                        : "banned nondeterminism source '" + tok.text +
                              "'";
                emit(src, tok.line, "R5", "hygiene", why);
            }
        }

        // Include-guard conformance for headers.
        if (rel.size() > 3 && rel.compare(rel.size() - 3, 3, ".hh") == 0) {
            std::string expect = expectedGuard(rel);
            int ifndefLine = 0;
            std::string ifndefMacro, defineMacro;
            bool inBlockComment = false;
            for (size_t li = 0;
                 li < src.lines.size() && defineMacro.empty(); ++li) {
                std::string line = trim(src.lines[li]);
                if (inBlockComment) {
                    if (line.find("*/") != std::string::npos)
                        inBlockComment = false;
                    continue;
                }
                if (line.empty() || line.rfind("//", 0) == 0)
                    continue;
                if (line.rfind("/*", 0) == 0) {
                    if (line.find("*/") == std::string::npos)
                        inBlockComment = true;
                    continue;
                }
                std::istringstream iss(line);
                std::string word;
                iss >> word;
                if (ifndefMacro.empty()) {
                    if (word == "#ifndef") {
                        iss >> ifndefMacro;
                        ifndefLine = static_cast<int>(li + 1);
                        continue;
                    }
                    if (word == "#pragma")
                        continue;   // handled below as non-conforming
                    break;          // first real content isn't a guard
                }
                if (word == "#define") {
                    iss >> defineMacro;
                } else {
                    break;
                }
            }
            if (ifndefMacro.empty()) {
                emit(src, 1, "R5", "hygiene",
                     "header has no include guard (expected #ifndef " +
                     expect + ")");
            } else if (ifndefMacro != expect) {
                emit(src, ifndefLine, "R5", "hygiene",
                     "include guard '" + ifndefMacro +
                     "' does not match the path-derived macro '" + expect +
                     "'");
            } else if (defineMacro != expect) {
                emit(src, ifndefLine, "R5", "hygiene",
                     "include guard #ifndef " + expect +
                     " is not followed by a matching #define");
            }
        }
    }
}

void
Linter::checkGlobals()
{
    if (!active("R6") || cfg_.globalDirs.empty())
        return;
    assessed_.insert("R6");

    // The committed ratchet baseline: `<file> <symbol>` per line.
    struct BaseEntry
    {
        std::string file, symbol;
        int line = 0;
        bool used = false;
    };
    std::vector<BaseEntry> baseline;
    const std::string basePath = cfg_.r6Baseline;
    if (!basePath.empty() && fs::exists(abs(basePath))) {
        std::ifstream in(abs(basePath));
        std::string line;
        int no = 0;
        while (std::getline(in, line)) {
            ++no;
            std::string t = trim(line);
            if (t.empty() || t[0] == '#')
                continue;
            BaseEntry e;
            std::istringstream iss(t);
            iss >> e.file >> e.symbol;
            e.line = no;
            baseline.push_back(e);
        }
    }
    auto inBaseline = [&](const std::string &file, const std::string &sym) {
        bool hit = false;
        for (auto &e : baseline) {
            if (e.file == file && e.symbol == sym)
                e.used = hit = true;
        }
        return hit;
    };

    for (const auto &rel : listFiles(root_, cfg_.globalDirs,
                                     {".hh", ".cc"})) {
        const SourceFile &src = tokens(rel);
        const ScopeTree &tree = scopes(rel);
        const auto &t = src.tokens;
        for (const auto &stmt : tree.stmts) {
            const ScopeKind k = tree.scopes[stmt.scope].kind;
            if (k == ScopeKind::Init)
                continue;
            bool isStatic = false, isConstexpr = false, isConst = false,
                 isThreadLocal = false, nonPod = false;
            for (size_t pi : stmt.toks) {
                const Token &tok = t[pi];
                if (tok.kind != TokKind::Identifier)
                    continue;
                if (tok.text == "static")
                    isStatic = true;
                else if (tok.text == "constexpr")
                    isConstexpr = true;
                else if (tok.text == "const")
                    isConst = true;
                else if (tok.text == "thread_local")
                    isThreadLocal = true;
                if (cfg_.nonPodTypes.count(tok.text))
                    nonPod = true;
            }
            const bool fnScope =
                k == ScopeKind::Func || k == ScopeKind::Block;
            // Namespace-scope definitions always count; inside
            // functions and classes only `static` storage is global
            // state (plain locals / data members are instance state).
            if (fnScope && !isStatic && !isThreadLocal)
                continue;
            if (k == ScopeKind::Class && !isStatic)
                continue;
            if (isConstexpr)
                continue;
            size_t decl = declaratorOf(t, stmt, fnScope);
            if (decl == std::string::npos)
                continue;
            if (isConst && !nonPod)
                continue;       // const POD: immutable after load
            const std::string sym = t[decl].text;
            const int line = t[decl].line;

            if (suppressed(src, line, "R6", "no-mutable-global-state")) {
                noteUse(src, line, "R6", "no-mutable-global-state");
                if (inBaseline(rel, sym)) {
                    if (keepAllowed_ && enabled("R6")) {
                        findings_.push_back(
                            {rel, line, "R6", "no-mutable-global-state",
                             "mutable global '" + sym +
                                 "' (annotated, baselined)",
                             true});
                    }
                } else {
                    emitRaw(rel, line, "R6", "no-mutable-global-state",
                            "mutable global '" + sym +
                                "' is allow-annotated but not in the "
                                "ratchet baseline " +
                                basePath +
                                "; the inventory may only shrink");
                }
            } else {
                emit(src, line, "R6", "no-mutable-global-state",
                     "mutable " +
                         std::string(fnScope ? "function-local static"
                                             : k == ScopeKind::Class
                                                   ? "static data member"
                                                   : "namespace-scope "
                                                     "variable") +
                         " '" + sym +
                         "'; move it behind a System-owned context "
                         "object (or annotate and baseline it)");
            }
        }
    }

    // Stale baseline entries are findings too: the ratchet only turns
    // one way, so a refactored-away global must also leave the file.
    for (const auto &e : baseline) {
        if (!e.used) {
            emitRaw(basePath, e.line, "R6", "no-mutable-global-state",
                    "stale baseline entry '" + e.file + " " + e.symbol +
                        "' has no matching annotated global; delete it");
        }
    }
}

void
Linter::checkOwnership()
{
    if (!active("R7") || cfg_.ownedTypes.empty())
        return;
    assessed_.insert("R7");
    for (const auto &rel : listFiles(root_, cfg_.scanDirs,
                                     {".hh", ".cc"})) {
        const SourceFile &src = tokens(rel);
        const ScopeTree &tree = scopes(rel);
        const auto &t = src.tokens;
        for (const auto &stmt : tree.stmts) {
            if (tree.scopes[stmt.scope].kind != ScopeKind::Class)
                continue;
            const std::string &cls = tree.scopes[stmt.scope].name;
            if (cfg_.ownerClasses.count(cls))
                continue;
            size_t decl = declaratorOf(t, stmt, false);
            if (decl == std::string::npos)
                continue;
            // Member pattern `Type *name;` / `Type &name;`: the token
            // before the declarator must be the pointer/reference
            // sigil (smart-pointer members end in `>` instead).
            size_t at = stmt.toks.size();
            for (size_t k2 = 0; k2 < stmt.toks.size(); ++k2) {
                if (stmt.toks[k2] == decl) {
                    at = k2;
                    break;
                }
            }
            if (at == std::string::npos || at == 0 ||
                at >= stmt.toks.size()) {
                continue;
            }
            const Token &sigil = t[stmt.toks[at - 1]];
            if (sigil.kind != TokKind::Punct ||
                (sigil.text != "*" && sigil.text != "&")) {
                continue;
            }
            // Type name: last identifier before the sigil run,
            // skipping cv-qualifiers.
            std::string type;
            for (size_t k2 = at - 1; k2-- > 0;) {
                const Token &tt = t[stmt.toks[k2]];
                if (tt.kind == TokKind::Punct &&
                    (tt.text == "*" || tt.text == "&")) {
                    continue;
                }
                if (tt.kind == TokKind::Identifier &&
                    (tt.text == "const" || tt.text == "volatile")) {
                    continue;
                }
                if (tt.kind == TokKind::Identifier)
                    type = tt.text;
                break;
            }
            if (!cfg_.ownedTypes.count(type))
                continue;
            emit(src, t[decl].line, "R7", "ownership-escape",
                 "class '" + (cls.empty() ? "<anonymous>" : cls) +
                     "' stores a raw " +
                     (sigil.text == "*" ? "pointer" : "reference") +
                     " to System-owned component type '" + type +
                     "' ('" + t[decl].text +
                     "'); only classes transitively owned by a System "
                     "may borrow core components (rules.cfg "
                     "owner-class)");
        }
    }
}

void
Linter::checkLocks()
{
    if (!active("R8") ||
        (cfg_.lockIdents.empty() && cfg_.guardedMembers.empty())) {
        return;
    }
    assessed_.insert("R8");

    // Hot-path purity: simulator-core directories are single-threaded
    // by contract and must not mention locks or atomics at all.
    if (!cfg_.lockIdents.empty()) {
        for (const auto &rel : listFiles(root_, cfg_.lockFreeDirs,
                                         {".hh", ".cc"})) {
            const SourceFile &src = tokens(rel);
            for (const auto &tok : src.tokens) {
                if (tok.kind == TokKind::Identifier &&
                    cfg_.lockIdents.count(tok.text)) {
                    emit(src, tok.line, "R8", "lock-discipline",
                         "'" + tok.text +
                             "' in simulator-core directory: the hot "
                             "path is single-threaded by contract and "
                             "must stay lock- and atomic-free");
                }
            }
        }
    }

    // Guarded members: every access must be downstream of a
    // lock_guard/unique_lock/scoped_lock naming the right mutex in an
    // enclosing scope.
    static const std::set<std::string> kLockTakers = {
        "lock_guard", "unique_lock", "scoped_lock"};
    for (const auto &gm : cfg_.guardedMembers) {
        if (!fs::exists(abs(gm.file)))
            continue;
        const SourceFile &src = tokens(gm.file);
        const ScopeTree &tree = scopes(gm.file);
        const auto &t = src.tokens;

        struct LockEvent
        {
            size_t pos;
            int scope;
        };
        std::vector<LockEvent> locks;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                !kLockTakers.count(t[i].text)) {
                continue;
            }
            // Scan the constructor argument list for the mutex name:
            // find the declaration's opening paren / brace first.
            size_t open = i;
            while (open < t.size() &&
                   !(t[open].kind == TokKind::Punct &&
                     (t[open].text == "(" || t[open].text == "{")) &&
                   !(t[open].kind == TokKind::Punct &&
                     t[open].text == ";")) {
                ++open;
            }
            if (open >= t.size() || t[open].text == ";")
                continue;
            bool names = false;
            int depth = 0;
            for (size_t k2 = open; k2 < t.size(); ++k2) {
                if (t[k2].kind == TokKind::Punct) {
                    if (t[k2].text == "(" || t[k2].text == "{")
                        ++depth;
                    else if (t[k2].text == ")" || t[k2].text == "}") {
                        if (--depth == 0)
                            break;
                    }
                } else if (t[k2].kind == TokKind::Identifier &&
                           t[k2].text == gm.mutex) {
                    names = true;
                }
            }
            if (names)
                locks.push_back({i, tree.scopeOf[i]});
        }

        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                t[i].text != gm.member) {
                continue;
            }
            const int sc = tree.scopeOf[i];
            if (tree.enclosingFunc(sc) == -1)
                continue;   // declaration / ctor-init, not an access
            bool held = false;
            for (const auto &le : locks) {
                if (le.pos < i && tree.isAncestor(le.scope, sc)) {
                    held = true;
                    break;
                }
            }
            if (!held) {
                emit(src, t[i].line, "R8", "lock-discipline",
                     "access to guarded member '" + gm.member +
                         "' without holding '" + gm.mutex +
                         "' (no lock_guard/unique_lock/scoped_lock in "
                         "an enclosing scope)");
            }
        }
    }
}

void
Linter::checkDeterminism()
{
    if (!active("R9") || cfg_.detSinks.empty())
        return;
    assessed_.insert("R9");

    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};

    const auto files = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});

    // Pass A: names of variables/members declared with an unordered
    // type, functions returning one by reference, and pointer-keyed
    // ordered maps (iteration order = allocation order: just as
    // nondeterministic across runs with ASLR or allocator changes).
    std::set<std::string> unorderedNames;
    std::map<std::string, std::string> why;     // name -> description
    for (const auto &rel : files) {
        const auto &t = tokens(rel).tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier)
                continue;
            bool unordered = kUnorderedTypes.count(t[i].text) > 0;
            bool ptrKeyed = false;
            if (!unordered &&
                (t[i].text == "map" || t[i].text == "multimap")) {
                // Pointer-keyed ordered map: `map<T *, ...>`.
                if (i + 1 < t.size() && t[i + 1].text == "<") {
                    int depth = 0;
                    for (size_t j = i + 1; j < t.size(); ++j) {
                        if (t[j].kind != TokKind::Punct)
                            continue;
                        if (t[j].text == "<") {
                            ++depth;
                        } else if (t[j].text == ">") {
                            if (--depth == 0)
                                break;
                        } else if (t[j].text == "," && depth == 1) {
                            break;
                        } else if (t[j].text == "*" && depth == 1) {
                            ptrKeyed = true;
                        } else if (t[j].text == ";") {
                            break;
                        }
                    }
                }
            }
            if (!unordered && !ptrKeyed)
                continue;
            if (i + 1 >= t.size() || t[i + 1].text != "<")
                continue;
            size_t j = skipAngles(t, i + 1);
            while (j < t.size() &&
                   ((t[j].kind == TokKind::Punct &&
                     (t[j].text == "&" || t[j].text == "*")) ||
                    (t[j].kind == TokKind::Identifier &&
                     t[j].text == "const"))) {
                ++j;
            }
            if (j >= t.size() || t[j].kind != TokKind::Identifier)
                continue;
            const std::string &name = t[j].text;
            unorderedNames.insert(name);
            why.emplace(name, unordered
                                  ? "unordered container"
                                  : "pointer-keyed map (iteration "
                                    "order tracks allocation)");
        }
    }
    if (unorderedNames.empty())
        return;

    // Pass B: a function that both iterates one of those names and
    // reaches a determinism sink (stats recording / observer hook
    // call) is tainted.
    for (const auto &rel : files) {
        const SourceFile &src = tokens(rel);
        const ScopeTree &tree = scopes(rel);
        const auto &t = src.tokens;

        struct IterEvent
        {
            int func;
            int line;
            std::string name;
        };
        std::vector<IterEvent> iters;
        std::set<int> sinkFuncs;

        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier)
                continue;
            const int func = tree.enclosingFunc(tree.scopeOf[i]);
            if (func == -1)
                continue;

            // Sink: member call of a det-sink name.
            if (cfg_.detSinks.count(t[i].text) && i > 0 &&
                t[i - 1].kind == TokKind::Punct &&
                (t[i - 1].text == "." || t[i - 1].text == "->")) {
                sinkFuncs.insert(func);
                continue;
            }

            // Iteration: range-for whose range expression mentions an
            // unordered name...
            if (t[i].text == "for" && i + 1 < t.size() &&
                t[i + 1].text == "(") {
                int depth = 0;
                size_t colon = 0, close = 0;
                for (size_t j = i + 1; j < t.size(); ++j) {
                    if (t[j].kind != TokKind::Punct)
                        continue;
                    if (t[j].text == "(") {
                        ++depth;
                    } else if (t[j].text == ")") {
                        if (--depth == 0) {
                            close = j;
                            break;
                        }
                    } else if (t[j].text == ":" && depth == 1 &&
                               !colon) {
                        colon = j;
                    }
                }
                if (colon && close) {
                    for (size_t j = colon + 1; j < close; ++j) {
                        if (t[j].kind == TokKind::Identifier &&
                            unorderedNames.count(t[j].text)) {
                            iters.push_back(
                                {func, t[j].line, t[j].text});
                            break;
                        }
                    }
                }
                continue;
            }

            // ... or explicit iterator walks: name.begin()/cbegin().
            if ((t[i].text == "begin" || t[i].text == "cbegin") &&
                i >= 2 && t[i - 1].kind == TokKind::Punct &&
                (t[i - 1].text == "." || t[i - 1].text == "->") &&
                t[i - 2].kind == TokKind::Identifier &&
                unorderedNames.count(t[i - 2].text)) {
                iters.push_back({func, t[i].line, t[i - 2].text});
            }
        }

        for (const auto &ev : iters) {
            if (!sinkFuncs.count(ev.func))
                continue;
            auto w = why.find(ev.name);
            emit(src, ev.line, "R9", "determinism-taint",
                 "iteration over " +
                     (w == why.end() ? std::string("unordered container")
                                     : w->second) +
                     " '" + ev.name +
                     "' in a function that records stats or fires "
                     "observer hooks; use an ordered container or "
                     "sort before iterating");
        }
    }
}

void
Linter::checkShootdownParity()
{
    if (!active("R10") || cfg_.shootdownCall.empty() ||
        cfg_.kernelFile.empty() || !fs::exists(abs(cfg_.kernelFile))) {
        return;
    }
    assessed_.insert("R10");
    const SourceFile &src = tokens(cfg_.kernelFile);
    const auto fns = extractFunctions(src, cfg_);
    const CallGraph &g = graph();

    for (const auto &fn : fns) {
        if (cfg_.r10Exempt.count(fn.name))
            continue;
        // Events in token order: explicit epoch bumps, broadcast
        // events (direct shootdown calls or calls into helpers that
        // always broadcast), purges, and exits.
        std::vector<const FnEvent *> bumps;
        std::vector<size_t> shoots, exits;
        std::vector<const FnEvent *> purges, directShoots;
        for (const auto &e : fn.events) {
            if (e.kind == FnEvent::Bump) {
                bumps.push_back(&e);
            } else if (e.kind == FnEvent::Return) {
                exits.push_back(e.pos);
            } else if (e.kind == FnEvent::Call) {
                if (e.name == cfg_.shootdownCall) {
                    shoots.push_back(e.pos);
                    directShoots.push_back(&e);
                } else if (g.callMustBroadcast(cfg_.kernelFile, e.name)) {
                    shoots.push_back(e.pos);
                } else if (e.name == cfg_.purgeCall) {
                    purges.push_back(&e);
                }
            }
        }
        exits.push_back(fn.endPos);

        // Every explicit bump site must reach a broadcast before
        // every exit after it (R1-style path approximation).
        std::set<int> reported;
        for (const auto *b : bumps) {
            for (size_t ex : exits) {
                if (ex <= b->pos)
                    continue;
                bool broadcast = false;
                for (size_t s : shoots) {
                    if (s > b->pos && s < ex) {
                        broadcast = true;
                        break;
                    }
                }
                if (!broadcast && reported.insert(b->line).second) {
                    emit(src, b->line, "R10", "shootdown-parity",
                         "function '" + fn.name + "' bumps the "
                         "translation epoch but can return without "
                         "broadcasting " + cfg_.shootdownCall +
                         "() to the remote cores (add r10-exempt for "
                         "intentionally core-local flushes)");
                }
            }
        }

        // Argument discipline on direct broadcasts: 3 arguments, and
        // (vbase, bytes) must repeat the nearest preceding ranged
        // purge unless bytes is the whole-TLB sentinel 0.
        for (const auto *sh : directShoots) {
            auto args = callArgs(src.tokens, sh->pos);
            if (args.size() != 3) {
                emit(src, sh->line, "R10", "shootdown-parity",
                     cfg_.shootdownCall + "() takes (vbase, bytes, "
                     "inval_uitlb); found " +
                     std::to_string(args.size()) + " argument(s)");
                continue;
            }
            if (args[1] == "0")
                continue;   // whole-TLB shootdown, no range to match
            const FnEvent *purge = nullptr;
            for (const auto *p : purges) {
                if (p->pos < sh->pos && (!purge || p->pos > purge->pos))
                    purge = p;
            }
            std::vector<std::string> pargs;
            if (purge)
                pargs = callArgs(src.tokens, purge->pos);
            if (!purge || pargs.size() < 2 || pargs[0] != args[0] ||
                pargs[1] != args[1]) {
                emit(src, sh->line, "R10", "shootdown-parity",
                     cfg_.shootdownCall + "(" + args[0] + ", " +
                     args[1] + ", ...) does not repeat the nearest "
                     "preceding " + cfg_.purgeCall + "() range" +
                     (purge ? " (" + (pargs.empty() ? "" : pargs[0]) +
                              ", " +
                              (pargs.size() > 1 ? pargs[1] : "") + ")"
                            : " (no preceding purge)") +
                     "; broadcast the just-purged range or pass "
                     "bytes == 0 for a whole-TLB shootdown");
            }
        }
    }
}

void
Linter::checkCoreConfinement()
{
    if (!active("R11") || cfg_.percoreContainers.empty())
        return;
    assessed_.insert("R11");
    const CallGraph &g = graph();
    for (const auto &fn : g.functions()) {
        if (fn.subscripts.empty() || cfg_.r11Exempt.count(fn.name))
            continue;
        for (const auto &sub : fn.subscripts) {
            const std::string &activeIdx =
                cfg_.percoreContainers.at(sub.container);
            if (!activeIdx.empty() && sub.index == activeIdx)
                continue;
            emit(tokens(fn.file), sub.line, "R11", "core-confinement",
                 "function '" + fn.name + "' subscripts per-core "
                 "container '" + sub.container + "' with '" +
                 sub.index + "'" +
                 (activeIdx.empty()
                      ? ""
                      : " (not the active-core index '" + activeIdx +
                            "')") +
                 "; cross-core state may only be reached through the "
                 "core-indexed accessors or the shootdown path "
                 "(rules.cfg r11-exempt)");
        }
    }
}

void
Linter::checkBatchFlush()
{
    if (!active("R12") || cfg_.flushCall.empty() ||
        cfg_.r12Readers.empty()) {
        return;
    }
    assessed_.insert("R12");
    const CallGraph &g = graph();
    for (size_t fi = 0; fi < g.functions().size(); ++fi) {
        const FnDef &fn = g.functions()[fi];
        bool flushed = false;
        for (const auto &c : fn.calls) {
            if (c.name == cfg_.flushCall || g.callMustFlush(fn.file, c.name)) {
                flushed = true;
                continue;
            }
            if (flushed)
                continue;
            bool direct = false;
            for (const auto &r : cfg_.r12Readers) {
                if (r.method == c.name && c.member &&
                    (r.receiver.empty() || r.receiver == c.receiver)) {
                    direct = true;
                    break;
                }
            }
            if (direct) {
                emit(tokens(fn.file), c.line, "R12",
                     "batch-flush-discipline",
                     "function '" + fn.name + "' reads deferred "
                     "statistics via '" + c.receiver + "." + c.name +
                     "' with no preceding " + cfg_.flushCall +
                     "(); per-core batch counters may still be "
                     "deferred");
            } else if (g.callMayReadUnprotected(fn.file, c.name)) {
                emit(tokens(fn.file), c.line, "R12",
                     "batch-flush-discipline",
                     "function '" + fn.name + "' calls '" + c.name +
                     "', which reads deferred statistics, with no "
                     "preceding " + cfg_.flushCall +
                     "(); per-core batch counters may still be "
                     "deferred");
            }
        }
    }
}

void
Linter::checkStaleAllows()
{
    if (!enabled("SA"))
        return;
    for (const auto &rel :
         listFiles(root_, cfg_.scanDirs, {".hh", ".cc"})) {
        const SourceFile &src = tokens(rel);
        for (const auto &[line, toks] : src.suppressions) {
            for (const auto &tok : toks) {
                const std::string id = ruleIdForToken(tok);
                if (id.empty())
                    continue;   // prose, not a rule annotation
                if (!assessed_.count(id))
                    continue;   // rule did not execute this run
                if (used_.count({rel, line, tok}))
                    continue;
                emitRaw(rel, line, "SA", "stale-allow",
                        "suppression 'allow(" + tok +
                            ")' matches no " + id +
                            " finding; delete the stale annotation");
            }
        }
    }
}

std::vector<Finding>
Linter::run()
{
    checkKernel();
    checkStats();
    checkConfigParity();
    checkHygiene();
    checkGlobals();
    checkOwnership();
    checkLocks();
    checkDeterminism();
    checkShootdownParity();
    checkCoreConfinement();
    checkBatchFlush();
    checkStaleAllows();     // last: judges the other rules' output
    std::sort(findings_.begin(), findings_.end());
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding &a, const Finding &b) {
                                    return !(a < b) && !(b < a);
                                }),
                    findings_.end());
    return std::move(findings_);
}

} // namespace

std::vector<Finding>
runLint(const std::string &root, const RulesConfig &cfg,
        const std::set<std::string> &only, bool keepAllowed)
{
    return Linter(root, cfg, only, keepAllowed).run();
}

} // namespace mtlblint
