#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "lexer.hh"

namespace fs = std::filesystem;

namespace mtlblint
{

namespace
{

std::string
trim(const std::string &s)
{
    auto b = s.find_first_not_of(" \t\r");
    auto e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** Dotted lower-case config key: `tlb.entries`, `kernel.frame_seed`. */
bool
looksLikeKey(const std::string &s)
{
    if (s.empty() || !std::islower(static_cast<unsigned char>(s[0])))
        return false;
    bool sawDot = false;
    char prev = '\0';
    for (char c : s) {
        if (c == '.') {
            if (prev == '\0' || prev == '.')
                return false;
            sawDot = true;
        } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                     std::isdigit(static_cast<unsigned char>(c)) ||
                     c == '_')) {
            return false;
        }
        prev = c;
    }
    return sawDot && prev != '.';
}

/** Read a text file into lines; also harvest `mtlb-lint: allow`
 *  directives so .cfg/.md findings can be suppressed in place. */
SourceFile
rawFile(const std::string &path, const std::string &displayPath)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("mtlb-lint: cannot read " + path);
    SourceFile out;
    out.path = displayPath;
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
        out.lines.push_back(line);
        addSuppressionsFromLine(line, ++no, out);
    }
    return out;
}

bool
underDir(const std::string &rel, const std::string &dir)
{
    if (rel.size() < dir.size() || rel.compare(0, dir.size(), dir) != 0)
        return false;
    return rel.size() == dir.size() || rel[dir.size()] == '/' ||
           dir.back() == '/';
}

/** Repo-relative paths of all files under @p dirs with one of the
 *  given extensions, sorted for deterministic output. */
std::vector<std::string>
listFiles(const std::string &root, const std::vector<std::string> &dirs,
          const std::vector<std::string> &exts)
{
    std::vector<std::string> out;
    for (const auto &d : dirs) {
        fs::path base = fs::path(root) / d;
        if (!fs::exists(base))
            continue;
        for (const auto &ent : fs::recursive_directory_iterator(base)) {
            if (!ent.is_regular_file())
                continue;
            std::string ext = ent.path().extension().string();
            if (std::find(exts.begin(), exts.end(), ext) == exts.end())
                continue;
            out.push_back(
                fs::relative(ent.path(), fs::path(root)).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

// --------------------------------------------------------------------
// R1/R2: function extraction over the kernel translation unit.
// --------------------------------------------------------------------

struct FnEvent
{
    enum Kind { Mutator, Bump, Hook, Callee, Return } kind;
    size_t pos;             ///< token index
    int line;
    std::string name;       ///< mutator/hook/callee name
};

struct FnInfo
{
    std::string name;
    int line = 0;
    std::vector<FnEvent> events;
    size_t endPos = 0;      ///< token index of the closing '}'
};

/** True if the '{' at token index @p j opens a lambda body. */
bool
lambdaBrace(const std::vector<Token> &t, size_t j)
{
    size_t k = j;
    // Walk back over specifier / trailing-return-type tokens.
    while (k > 0) {
        const Token &p = t[k - 1];
        if (p.kind == TokKind::Identifier &&
            (p.text == "mutable" || p.text == "noexcept" ||
             p.text == "const")) {
            --k;
            continue;
        }
        if (p.kind == TokKind::Punct &&
            (p.text == "->" || p.text == "::" || p.text == "&" ||
             p.text == "*" || p.text == "<" || p.text == ">")) {
            --k;
            continue;
        }
        if (p.kind == TokKind::Identifier && k >= 2 &&
            t[k - 2].kind == TokKind::Punct &&
            (t[k - 2].text == "->" || t[k - 2].text == "::")) {
            --k;
            continue;
        }
        break;
    }
    if (k == 0)
        return false;
    const Token &p = t[k - 1];
    if (p.kind == TokKind::Punct && p.text == "]")
        return true;
    if (p.kind == TokKind::Punct && p.text == ")") {
        int depth = 1;
        size_t m = k - 1;
        while (m > 0) {
            --m;
            if (t[m].kind != TokKind::Punct)
                continue;
            if (t[m].text == ")") {
                ++depth;
            } else if (t[m].text == "(") {
                if (--depth == 0)
                    break;
            }
        }
        if (depth == 0 && m > 0 && t[m - 1].kind == TokKind::Punct &&
            t[m - 1].text == "]") {
            return true;
        }
    }
    return false;
}

bool
isControlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "return" || s == "sizeof";
}

/**
 * Walk the token stream and extract every function definition with
 * the rule-relevant events inside its body. Function-name detection:
 * the first `identifier (` since the last statement boundary at
 * file/namespace scope names the function whose body brace follows
 * (this also handles constructor initializer lists, where later
 * `member_(...)` groups must not steal the name).
 */
std::vector<FnInfo>
extractFunctions(const SourceFile &src, const RulesConfig &cfg)
{
    const auto &t = src.tokens;
    std::vector<FnInfo> fns;
    // Brace kinds: 0 transparent (namespace/type/init), 1 function
    // body (outermost), 2 lambda body inside a function.
    std::vector<int> stack;
    bool inFunction = false;
    FnInfo cur;
    bool haveCandidate = false;
    std::string candidate;
    int candidateLine = 0;
    int lambdaDepth = 0;

    for (size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        auto nextIs = [&](const char *s) {
            return i + 1 < t.size() && t[i + 1].kind == TokKind::Punct &&
                   t[i + 1].text == s;
        };
        if (!inFunction) {
            if (tok.kind == TokKind::Punct) {
                if (tok.text == ";" || tok.text == "=") {
                    haveCandidate = false;
                } else if (tok.text == "}") {
                    haveCandidate = false;
                    if (!stack.empty())
                        stack.pop_back();
                } else if (tok.text == "{") {
                    if (haveCandidate) {
                        inFunction = true;
                        cur = FnInfo{candidate, candidateLine, {}, 0};
                        lambdaDepth = 0;
                        stack.push_back(1);
                    } else {
                        stack.push_back(0);
                    }
                    haveCandidate = false;
                }
            } else if (tok.kind == TokKind::Identifier && !haveCandidate &&
                       nextIs("(") && !isControlKeyword(tok.text)) {
                haveCandidate = true;
                candidate = tok.text;
                candidateLine = tok.line;
            }
            continue;
        }
        // Inside a function body.
        if (tok.kind == TokKind::Punct) {
            if (tok.text == "{") {
                bool lam = lambdaBrace(t, i);
                stack.push_back(lam ? 2 : 0);
                if (lam)
                    ++lambdaDepth;
            } else if (tok.text == "}") {
                int kind = stack.empty() ? 0 : stack.back();
                if (!stack.empty())
                    stack.pop_back();
                if (kind == 2) {
                    --lambdaDepth;
                } else if (kind == 1) {
                    cur.endPos = i;
                    fns.push_back(cur);
                    inFunction = false;
                }
            }
            continue;
        }
        if (tok.kind != TokKind::Identifier)
            continue;
        bool memberCall =
            i > 0 && t[i - 1].kind == TokKind::Punct &&
            (t[i - 1].text == "." || t[i - 1].text == "->");
        if (tok.text == "return") {
            if (lambdaDepth == 0)
                cur.events.push_back({FnEvent::Return, i, tok.line, ""});
            continue;
        }
        if (tok.text == cfg.epochCall && nextIs("(")) {
            cur.events.push_back({FnEvent::Bump, i, tok.line, tok.text});
            continue;
        }
        if (cfg.hooks.count(tok.text) && memberCall) {
            cur.events.push_back({FnEvent::Hook, i, tok.line, tok.text});
            continue;
        }
        if (memberCall && nextIs("(")) {
            for (const auto &m : cfg.mutators) {
                if (m.method != tok.text)
                    continue;
                if (!m.receiver.empty() &&
                    (i < 2 || t[i - 2].kind != TokKind::Identifier ||
                     t[i - 2].text != m.receiver)) {
                    continue;
                }
                cur.events.push_back(
                    {FnEvent::Mutator, i, tok.line, tok.text});
                break;
            }
            for (const auto &p : cfg.pairs) {
                if (p.first == tok.text) {
                    cur.events.push_back(
                        {FnEvent::Callee, i, tok.line, tok.text});
                    break;
                }
            }
        }
    }
    return fns;
}

// --------------------------------------------------------------------
// Scope tree: a single structural pass shared by R6-R9.
// --------------------------------------------------------------------

enum class ScopeKind
{
    File,       ///< top level (treated as namespace scope)
    Namespace,  ///< namespace { } / extern "C" { }
    Class,      ///< class / struct / union / enum body
    Func,       ///< function body (brace follows a parameter list)
    Block,      ///< control-flow block / lambda body inside a function
    Init,       ///< braced initialiser
};

struct Scope
{
    ScopeKind kind = ScopeKind::File;
    std::string name;       ///< class/namespace name when known
    size_t open = 0;        ///< token index of '{' (0 for File)
    size_t close = 0;       ///< token index of '}' (n for File)
    int parent = -1;
};

/**
 * A statement at some scope's own level: the indices of its tokens,
 * child-scope braces included as single '{' / '}' markers (their
 * contents belong to the child).
 */
struct Stmt
{
    int scope = 0;
    std::vector<size_t> toks;
};

struct ScopeTree
{
    std::vector<Scope> scopes;      ///< [0] is the File scope
    std::vector<int> scopeOf;       ///< token index -> innermost scope
    std::vector<Stmt> stmts;        ///< namespace/class-level statements

    bool
    isAncestor(int anc, int scope) const
    {
        for (int s = scope; s != -1; s = scopes[s].parent) {
            if (s == anc)
                return true;
        }
        return false;
    }

    /** Innermost enclosing Func scope, or -1. */
    int
    enclosingFunc(int scope) const
    {
        for (int s = scope; s != -1; s = scopes[s].parent) {
            if (scopes[s].kind == ScopeKind::Func)
                return s;
        }
        return -1;
    }
};

bool
classKeyword(const std::string &s)
{
    return s == "class" || s == "struct" || s == "union" || s == "enum";
}

/**
 * One linear pass classifying every brace and collecting per-scope
 * statements. Brace classification looks at the pending statement
 * tokens: a `namespace` keyword opens a Namespace, a class-head
 * keyword (outside a leading `template <...>` group) opens a Class,
 * a brace after `)` opens a Func at namespace/class scope and a
 * Block inside a function, and a brace after an identifier / `=` /
 * `,` is a braced initialiser. Preprocessor lines are skipped
 * wholesale (a `#` swallows the rest of its source line).
 */
ScopeTree
buildScopes(const std::vector<Token> &t)
{
    ScopeTree tree;
    tree.scopes.push_back({ScopeKind::File, "", 0, t.size(), -1});
    tree.scopeOf.assign(t.size(), 0);
    std::vector<int> stack = {0};

    // Pending statement (token indices) per open scope.
    std::vector<std::vector<size_t>> pending(1);

    auto flush = [&]() {
        if (pending.back().empty())
            return;
        tree.stmts.push_back(Stmt{stack.back(), std::move(pending.back())});
        pending.back().clear();
    };

    int ppLine = -1;    // line of an in-flight preprocessor directive
    for (size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        tree.scopeOf[i] = stack.back();
        if (ppLine != -1 && tok.line == ppLine)
            continue;
        ppLine = -1;
        if (tok.kind == TokKind::Punct && tok.text == "#") {
            ppLine = tok.line;
            continue;
        }

        if (tok.kind == TokKind::Punct && tok.text == "{") {
            const auto &p = pending.back();
            const ScopeKind outer = tree.scopes[stack.back()].kind;
            const bool outerIsType =
                outer == ScopeKind::File || outer == ScopeKind::Namespace ||
                outer == ScopeKind::Class;

            ScopeKind kind = ScopeKind::Block;
            std::string name;
            bool sawNamespace = false, sawClass = false;
            size_t angle = 0;
            bool inTemplateIntro = false;
            std::string lastIdent;
            std::string classNameAfterKeyword;
            bool wantClassName = false;
            for (size_t pi : p) {
                const Token &pt = t[pi];
                if (pt.kind == TokKind::Identifier) {
                    if (pt.text == "template") {
                        inTemplateIntro = true;
                    } else if (!inTemplateIntro) {
                        if (pt.text == "namespace")
                            sawNamespace = true;
                        else if (classKeyword(pt.text))
                            sawClass = wantClassName = true;
                        else if (wantClassName &&
                                 classNameAfterKeyword.empty())
                            classNameAfterKeyword = pt.text;
                        lastIdent = pt.text;
                    }
                } else if (pt.kind == TokKind::Punct) {
                    if (pt.text == "<") {
                        ++angle;
                    } else if (pt.text == ">") {
                        if (angle && --angle == 0)
                            inTemplateIntro = false;
                    }
                }
            }
            const Token *prev = p.empty() ? nullptr : &t[p.back()];
            // A function body's brace may trail cv/ref/virt
            // qualifiers: `run(...) const noexcept override {`. Skip
            // them so the `)`-rule still sees the parameter list.
            static const std::set<std::string> kFnQualifiers = {
                "const", "noexcept", "override", "final", "mutable"};
            const Token *effPrev = nullptr;
            for (size_t q = p.size(); q-- > 0;) {
                const Token &qt = t[p[q]];
                if (qt.kind == TokKind::Identifier &&
                    kFnQualifiers.count(qt.text)) {
                    continue;
                }
                if (qt.kind == TokKind::Punct && qt.text == "&")
                    continue;   // ref-qualifier
                effPrev = &qt;
                break;
            }
            if (sawNamespace) {
                kind = ScopeKind::Namespace;
                name = lastIdent == "namespace" ? "" : lastIdent;
            } else if (prev && prev->kind == TokKind::String) {
                kind = ScopeKind::Namespace;    // extern "C" { }
            } else if (effPrev && effPrev->kind == TokKind::Punct &&
                       effPrev->text == ")") {
                kind = outerIsType ? ScopeKind::Func : ScopeKind::Block;
            } else if (sawClass) {
                kind = ScopeKind::Class;
                name = classNameAfterKeyword;
            } else if (prev &&
                       (prev->kind == TokKind::Identifier ||
                        (prev->kind == TokKind::Punct &&
                         (prev->text == "=" || prev->text == "," ||
                          prev->text == "(" || prev->text == "[" ||
                          prev->text == ">")))) {
                // Braced initialiser (or a lambda body after a
                // trailing return type; both are expression context).
                kind = prev->kind == TokKind::Identifier &&
                               prev->text == "return"
                           ? ScopeKind::Block
                           : ScopeKind::Init;
            } else {
                kind = outerIsType ? ScopeKind::Init : ScopeKind::Block;
            }

            // An Init brace stays part of its statement; everything
            // else terminates the pending statement (recorded so
            // e.g. a function signature is visible at its scope).
            if (kind == ScopeKind::Init)
                pending.back().push_back(i);
            else
                flush();

            Scope s;
            s.kind = kind;
            s.name = name;
            s.open = i;
            s.close = t.size();
            s.parent = stack.back();
            tree.scopes.push_back(s);
            stack.push_back(static_cast<int>(tree.scopes.size() - 1));
            pending.emplace_back();
            tree.scopeOf[i] = stack.back();
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == "}") {
            if (stack.size() > 1) {
                flush();
                tree.scopes[stack.back()].close = i;
                const ScopeKind closed = tree.scopes[stack.back()].kind;
                tree.scopeOf[i] = stack.back();
                stack.pop_back();
                pending.pop_back();
                // A closed initialiser remains part of the enclosing
                // statement; a closed class awaits its declarator
                // (`struct X { } x;` is rare but legal) - keep the
                // brace markers in the pending statement for both.
                if (closed == ScopeKind::Init) {
                    pending.back().push_back(i);
                } else {
                    pending.back().clear();
                }
            }
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == ";") {
            flush();
            continue;
        }
        pending.back().push_back(i);
    }
    flush();    // trailing unterminated statement
    return tree;
}

/** Token index just past a balanced `<...>` group starting at the
 *  `<` at @p i, or i+1 if it never closes. */
size_t
skipAngles(const std::vector<Token> &t, size_t i)
{
    size_t depth = 0;
    for (size_t j = i; j < t.size(); ++j) {
        if (t[j].kind != TokKind::Punct)
            continue;
        if (t[j].text == "<") {
            ++depth;
        } else if (t[j].text == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (t[j].text == ";") {
            break;      // malformed / not a template argument list
        }
    }
    return i + 1;
}

/**
 * Statement-level variable-definition detection shared by R6 and R7.
 *
 * Finds the declarator: the identifier immediately before the first
 * top-level `=`, `[`, `;`-end, Init-brace, or (at function scope
 * only) `(` - constructor-style initialisation. Returns npos for
 * statements that declare functions, types, aliases, templates, or
 * nothing at all.
 */
size_t
declaratorOf(const std::vector<Token> &t, const Stmt &stmt,
             bool parenInitAllowed)
{
    static const std::set<std::string> kSkipWords = {
        "using", "typedef", "extern", "friend", "template", "operator",
        "static_assert", "namespace", "return", "delete", "new",
        "if", "for", "while", "switch", "do", "case", "goto", "throw",
    };
    static const std::set<std::string> kAccess = {"public", "private",
                                                  "protected"};
    // An access specifier opens the statement (`private: Type x;`);
    // skip it rather than rejecting the member that follows.
    size_t first = 0;
    while (first + 1 < stmt.toks.size() &&
           t[stmt.toks[first]].kind == TokKind::Identifier &&
           kAccess.count(t[stmt.toks[first]].text) &&
           t[stmt.toks[first + 1]].text == ":") {
        first += 2;
    }
    for (size_t k = first; k < stmt.toks.size(); ++k) {
        size_t pi = stmt.toks[k];
        if (t[pi].kind == TokKind::Identifier && kSkipWords.count(t[pi].text))
            return std::string::npos;
        if (classKeyword(t[pi].text))
            return std::string::npos;
    }
    size_t prevIdent = std::string::npos;
    for (size_t k = first; k < stmt.toks.size(); ++k) {
        const Token &tok = t[stmt.toks[k]];
        if (tok.kind == TokKind::Identifier) {
            prevIdent = stmt.toks[k];
            continue;
        }
        if (tok.kind != TokKind::Punct)
            continue;
        if (tok.text == "<") {
            // Skip the template argument group inside this statement.
            size_t past = skipAngles(t, stmt.toks[k]);
            while (k < stmt.toks.size() && stmt.toks[k] < past)
                ++k;
            --k;
            prevIdent = std::string::npos;
            continue;
        }
        if (tok.text == "=" || tok.text == "[" || tok.text == "{")
            return prevIdent;
        if (tok.text == "(")
            return parenInitAllowed ? prevIdent : std::string::npos;
        if (tok.text == "*" || tok.text == "&" || tok.text == "::" ||
            tok.text == ",") {
            prevIdent = std::string::npos;
            continue;
        }
    }
    return prevIdent;   // plain `Type name ;`
}

} // namespace

// --------------------------------------------------------------------
// rules.cfg
// --------------------------------------------------------------------

RulesConfig
RulesConfig::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("mtlb-lint: cannot read rules file " +
                                 path);
    RulesConfig cfg;
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
        ++no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string dir, a, b, c;
        iss >> dir >> a;
        iss >> b;    // optional second operand
        iss >> c;    // optional third operand
        auto need2 = [&]() {
            if (b.empty()) {
                throw std::runtime_error(
                    path + ":" + std::to_string(no) + ": '" + dir +
                    "' needs two operands");
            }
        };
        auto need3 = [&]() {
            if (c.empty()) {
                throw std::runtime_error(
                    path + ":" + std::to_string(no) + ": '" + dir +
                    "' needs three operands");
            }
        };
        if (a.empty()) {
            throw std::runtime_error(path + ":" + std::to_string(no) +
                                     ": '" + dir + "' needs an operand");
        }
        if (dir == "scan-dir") {
            cfg.scanDirs.push_back(a);
        } else if (dir == "kernel-file") {
            cfg.kernelFile = a;
        } else if (dir == "epoch-call") {
            cfg.epochCall = a;
        } else if (dir == "mutator") {
            auto dot = a.rfind('.');
            if (dot == std::string::npos) {
                cfg.mutators.push_back({"", a});
            } else {
                cfg.mutators.push_back(
                    {a.substr(0, dot), a.substr(dot + 1)});
            }
        } else if (dir == "hook") {
            cfg.hooks.insert(a);
        } else if (dir == "pair") {
            need2();
            cfg.pairs.emplace_back(a, b);
        } else if (dir == "require-hook") {
            need2();
            cfg.requireHooks.emplace_back(a, b);
        } else if (dir == "stat-adder") {
            cfg.statAdders.push_back(a);
        } else if (dir == "config-source") {
            cfg.configSource = a;
        } else if (dir == "config-file") {
            cfg.configFiles.push_back(a);
        } else if (dir == "config-dir") {
            cfg.configDirs.push_back(a);
        } else if (dir == "doc-file") {
            cfg.docFile = a;
        } else if (dir == "doc-section") {
            cfg.docSection = a;
            if (!b.empty())
                cfg.docSection += " " + b;
            if (!c.empty())
                cfg.docSection += " " + c;
            std::string rest;
            while (iss >> rest)
                cfg.docSection += " " + rest;
        } else if (dir == "global-dir") {
            cfg.globalDirs.push_back(a);
        } else if (dir == "r6-baseline") {
            cfg.r6Baseline = a;
        } else if (dir == "nonpod-type") {
            cfg.nonPodTypes.insert(a);
        } else if (dir == "owned-type") {
            cfg.ownedTypes.insert(a);
        } else if (dir == "owner-class") {
            cfg.ownerClasses.insert(a);
        } else if (dir == "lock-free-dir") {
            cfg.lockFreeDirs.push_back(a);
        } else if (dir == "lock-ident") {
            cfg.lockIdents.insert(a);
        } else if (dir == "guarded-member") {
            need3();
            cfg.guardedMembers.push_back({a, b, c});
        } else if (dir == "det-sink") {
            cfg.detSinks.insert(a);
        } else if (dir == "banned") {
            cfg.banned.insert(a);
        } else if (dir == "banned-exempt") {
            cfg.bannedExempt.push_back(a);
        } else if (dir == "guard-prefix") {
            cfg.guardPrefix = a;
        } else if (dir == "guard-strip") {
            cfg.guardStrip.push_back(a);
        } else {
            throw std::runtime_error(path + ":" + std::to_string(no) +
                                     ": unknown directive '" + dir + "'");
        }
    }
    return cfg;
}

std::string
format(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.id + " " +
           f.name + "] " + f.message +
           (f.allowed ? " (allowed)" : "");
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
formatGithub(const Finding &f)
{
    // GitHub annotation commands treat the message as a single line;
    // properties are escaped per the workflow-command grammar.
    auto prop = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '%') out += "%25";
            else if (c == '\r') out += "%0D";
            else if (c == '\n') out += "%0A";
            else if (c == ',') out += "%2C";
            else if (c == ':') out += "%3A";
            else out += c;
        }
        return out;
    };
    auto data = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '%') out += "%25";
            else if (c == '\r') out += "%0D";
            else if (c == '\n') out += "%0A";
            else out += c;
        }
        return out;
    };
    return "::error file=" + prop(f.file) + ",line=" +
           std::to_string(f.line) + ",title=" +
           prop("mtlb-lint " + f.id + " " + f.name) +
           "::" + data(f.message);
}

std::string
formatJson(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    size_t live = 0;
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (!f.allowed)
            ++live;
        os << (i ? ",\n    " : "\n    ") << "{\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << f.id << "\", \"name\": \""
           << jsonEscape(f.name) << "\", \"message\": \""
           << jsonEscape(f.message) << "\", \"allowed\": "
           << (f.allowed ? "true" : "false") << "}";
    }
    os << (findings.empty() ? "" : "\n  ") << "],\n  \"count\": " << live
       << "\n}\n";
    return os.str();
}

// --------------------------------------------------------------------
// Rule runners
// --------------------------------------------------------------------

namespace
{

class Linter
{
  public:
    Linter(const std::string &root, const RulesConfig &cfg,
           const std::set<std::string> &only, bool keepAllowed)
        : root_(root), cfg_(cfg), only_(only), keepAllowed_(keepAllowed)
    {}

    std::vector<Finding> run();

  private:
    bool enabled(const std::string &id) const
    {
        return only_.empty() || only_.count(id);
    }

    void emit(const SourceFile &src, int line, const std::string &id,
              const std::string &name, const std::string &message)
    {
        const bool allowed = suppressed(src, line, id, name);
        if (allowed && !keepAllowed_)
            return;
        findings_.push_back({src.path, line, id, name, message, allowed});
    }

    /** Emit bypassing the allow-annotation check. R6's ratchet uses
     *  this: an annotated global that is missing from the committed
     *  baseline must still be a finding, or annotations alone could
     *  grow the inventory. */
    void emitRaw(const std::string &file, int line, const std::string &id,
                 const std::string &name, const std::string &message)
    {
        findings_.push_back({file, line, id, name, message, false});
    }

    std::string abs(const std::string &rel) const
    {
        return (fs::path(root_) / rel).string();
    }

    const SourceFile &tokens(const std::string &rel);

    void checkKernel();             // R1 + R2
    void checkStats();              // R3
    void checkConfigParity();       // R4
    void checkHygiene();            // R5
    void checkGlobals();            // R6
    void checkOwnership();          // R7
    void checkLocks();              // R8
    void checkDeterminism();        // R9

    const ScopeTree &scopes(const std::string &rel);

    std::string expectedGuard(const std::string &rel) const;

    const std::string root_;
    const RulesConfig &cfg_;
    const std::set<std::string> only_;
    const bool keepAllowed_;
    std::map<std::string, SourceFile> cache_;
    std::map<std::string, ScopeTree> scopeCache_;
    std::vector<Finding> findings_;
};

const SourceFile &
Linter::tokens(const std::string &rel)
{
    auto it = cache_.find(rel);
    if (it == cache_.end())
        it = cache_.emplace(rel, tokenizeFile(abs(rel), rel)).first;
    return it->second;
}

const ScopeTree &
Linter::scopes(const std::string &rel)
{
    auto it = scopeCache_.find(rel);
    if (it == scopeCache_.end()) {
        const SourceFile &src = tokens(rel);
        it = scopeCache_.emplace(rel, buildScopes(src.tokens)).first;
    }
    return it->second;
}

void
Linter::checkKernel()
{
    if (cfg_.kernelFile.empty() ||
        !fs::exists(abs(cfg_.kernelFile)) ||
        (!enabled("R1") && !enabled("R2"))) {
        return;
    }
    const SourceFile &src = tokens(cfg_.kernelFile);
    auto fns = extractFunctions(src, cfg_);

    for (const auto &fn : fns) {
        std::vector<const FnEvent *> muts, bumps, hooks, callees;
        std::vector<size_t> exits;
        for (const auto &e : fn.events) {
            switch (e.kind) {
              case FnEvent::Mutator: muts.push_back(&e); break;
              case FnEvent::Bump: bumps.push_back(&e); break;
              case FnEvent::Hook: hooks.push_back(&e); break;
              case FnEvent::Callee: callees.push_back(&e); break;
              case FnEvent::Return: exits.push_back(e.pos); break;
            }
        }
        exits.push_back(fn.endPos);

        if (enabled("R1") && !muts.empty()) {
            std::set<int> reported;
            for (size_t ex : exits) {
                const FnEvent *last = nullptr;
                for (const auto *m : muts) {
                    if (m->pos < ex && (!last || m->pos > last->pos))
                        last = m;
                }
                if (!last)
                    continue;
                bool bumped = false;
                for (const auto *bp : bumps) {
                    if (bp->pos > last->pos && bp->pos < ex) {
                        bumped = true;
                        break;
                    }
                }
                if (!bumped && reported.insert(last->line).second) {
                    emit(src, last->line, "R1", "epoch-discipline",
                         "function '" + fn.name +
                         "' mutates translation state via '" +
                         last->name + "' but can return without calling " +
                         cfg_.epochCall + "()");
                }
            }
        }

        if (enabled("R2")) {
            if (!muts.empty() && hooks.empty()) {
                emit(src, muts.front()->line, "R2", "observer-discipline",
                     "function '" + fn.name +
                     "' mutates translation state via '" +
                     muts.front()->name +
                     "' but fires no KernelObserver hook");
            }
            for (const auto &p : cfg_.pairs) {
                const FnEvent *first = nullptr;
                for (const auto *c : callees) {
                    if (c->name == p.first) {
                        first = c;
                        break;
                    }
                }
                if (!first)
                    continue;
                bool paired = false;
                for (const auto *h : hooks) {
                    if (h->name == p.second) {
                        paired = true;
                        break;
                    }
                }
                if (!paired) {
                    emit(src, first->line, "R2", "observer-discipline",
                         "function '" + fn.name + "' calls '" + p.first +
                         "' without firing the paired hook '" + p.second +
                         "'");
                }
            }
        }
    }

    if (enabled("R2")) {
        for (const auto &rh : cfg_.requireHooks) {
            for (const auto &fn : fns) {
                if (fn.name != rh.first)
                    continue;
                bool fired = false;
                for (const auto &e : fn.events) {
                    if (e.kind == FnEvent::Hook && e.name == rh.second) {
                        fired = true;
                        break;
                    }
                }
                if (!fired) {
                    emit(src, fn.line, "R2", "observer-discipline",
                         "function '" + fn.name +
                         "' must fire KernelObserver hook '" + rh.second +
                         "'");
                }
            }
        }
    }
}

void
Linter::checkStats()
{
    if (!enabled("R3") || cfg_.statAdders.empty())
        return;
    static const std::set<std::string> kStatKinds = {
        "Scalar", "Average", "Histogram", "Formula",
    };

    auto headers = listFiles(root_, cfg_.scanDirs, {".hh"});
    auto sources = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});

    // Pass 1: every name registered anywhere via `name ( ... add* ... )`.
    std::set<std::string> registered;
    for (const auto &rel : sources) {
        const auto &t = tokens(rel).tokens;
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                t[i + 1].kind != TokKind::Punct || t[i + 1].text != "(") {
                continue;
            }
            int depth = 0;
            for (size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].kind == TokKind::Punct) {
                    if (t[j].text == "(") {
                        ++depth;
                    } else if (t[j].text == ")") {
                        if (--depth == 0)
                            break;
                    }
                } else if (t[j].kind == TokKind::Identifier &&
                           std::find(cfg_.statAdders.begin(),
                                     cfg_.statAdders.end(), t[j].text) !=
                               cfg_.statAdders.end()) {
                    registered.insert(t[i].text);
                    break;
                }
            }
        }
    }

    // Pass 2: member declarations `stats::<Kind> [&] name ;` in headers.
    for (const auto &rel : headers) {
        const SourceFile &src = tokens(rel);
        const auto &t = src.tokens;
        for (size_t i = 0; i + 3 < t.size(); ++i) {
            if (!(t[i].kind == TokKind::Identifier && t[i].text == "stats" &&
                  t[i + 1].kind == TokKind::Punct &&
                  t[i + 1].text == "::" &&
                  t[i + 2].kind == TokKind::Identifier &&
                  kStatKinds.count(t[i + 2].text))) {
                continue;
            }
            size_t j = i + 3;
            while (j < t.size() && t[j].kind == TokKind::Punct &&
                   (t[j].text == "&" || t[j].text == "*")) {
                ++j;
            }
            if (j + 1 >= t.size() || t[j].kind != TokKind::Identifier ||
                t[j + 1].kind != TokKind::Punct || t[j + 1].text != ";") {
                continue;   // function decl, param, etc.
            }
            if (!registered.count(t[j].text)) {
                emit(src, t[j].line, "R3", "stats-registration",
                     "stat member '" + t[j].text + "' (stats::" +
                     t[i + 2].text + ") is never registered via " +
                     "a stat-group add* call");
            }
        }
    }
}

void
Linter::checkConfigParity()
{
    if (!enabled("R4") || cfg_.configSource.empty() ||
        !fs::exists(abs(cfg_.configSource))) {
        return;
    }

    struct KeyRef
    {
        std::string file;
        int line;
    };

    // Keys the parser accepts, from string literals in configSource.
    const SourceFile &parserSrc = tokens(cfg_.configSource);
    std::map<std::string, KeyRef> parserKeys;
    for (const auto &tok : parserSrc.tokens) {
        if (tok.kind == TokKind::String && looksLikeKey(tok.text)) {
            parserKeys.emplace(tok.text,
                               KeyRef{parserSrc.path, tok.line});
        }
    }

    // Keys set in .cfg files.
    std::vector<std::string> cfgFiles = cfg_.configFiles;
    for (const auto &d : cfg_.configDirs) {
        for (const auto &rel : listFiles(root_, {d}, {".cfg"}))
            cfgFiles.push_back(rel);
    }
    std::sort(cfgFiles.begin(), cfgFiles.end());
    cfgFiles.erase(std::unique(cfgFiles.begin(), cfgFiles.end()),
                   cfgFiles.end());

    std::map<std::string, KeyRef> cfgKeys;
    std::vector<std::pair<std::string, SourceFile>> cfgSources;
    for (const auto &rel : cfgFiles) {
        if (!fs::exists(abs(rel)))
            continue;
        cfgSources.emplace_back(rel, rawFile(abs(rel), rel));
        const SourceFile &src = cfgSources.back().second;
        for (size_t li = 0; li < src.lines.size(); ++li) {
            std::string line = src.lines[li];
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line = line.substr(0, hash);
            auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            std::string key = trim(line.substr(0, eq));
            if (looksLikeKey(key)) {
                cfgKeys.emplace(key,
                                KeyRef{rel, static_cast<int>(li + 1)});
            }
        }
    }

    // Keys documented in the manual's key-reference section: backtick
    // spans that look like keys, between the doc-section heading and
    // the next same-level heading.
    std::map<std::string, KeyRef> docKeys;
    SourceFile docSrc;
    if (!cfg_.docFile.empty() && fs::exists(abs(cfg_.docFile))) {
        docSrc = rawFile(abs(cfg_.docFile), cfg_.docFile);
        bool inSection = cfg_.docSection.empty();
        bool sectionSeen = cfg_.docSection.empty();
        // A heading "matches" the configured section when its text
        // (after the markdown hashes) starts with docSection, e.g.
        // docSection "5." matches "## 5. Configuration keys".
        auto headingText = [](const std::string &line) -> std::string {
            size_t p = 0;
            while (p < line.size() && line[p] == '#')
                ++p;
            if (p == 0)
                return "";      // not a heading
            while (p < line.size() && line[p] == ' ')
                ++p;
            return line.substr(p);
        };
        for (size_t li = 0; li < docSrc.lines.size(); ++li) {
            const std::string &line = docSrc.lines[li];
            if (!cfg_.docSection.empty() && !line.empty() &&
                line[0] == '#') {
                inSection =
                    headingText(line).rfind(cfg_.docSection, 0) == 0;
                sectionSeen = sectionSeen || inSection;
            }
            if (!inSection)
                continue;
            size_t pos = 0;
            while ((pos = line.find('`', pos)) != std::string::npos) {
                auto close = line.find('`', pos + 1);
                if (close == std::string::npos)
                    break;
                std::string span = line.substr(pos + 1, close - pos - 1);
                if (looksLikeKey(span)) {
                    docKeys.emplace(span,
                                    KeyRef{cfg_.docFile,
                                           static_cast<int>(li + 1)});
                }
                pos = close + 1;
            }
        }
        // If the configured heading never matched, the key-reference
        // scan read nothing — a silently disabled check. Manual
        // restructuring must update doc-section in rules.cfg.
        if (!sectionSeen) {
            emit(docSrc, 1, "R4", "config-key-parity",
                 "doc-section heading '" + cfg_.docSection +
                     "' not found in " + cfg_.docFile +
                     "; the manual key-reference scan matched nothing "
                     "(update doc-section in rules.cfg)");
        }
    }

    // Parser keys must be set somewhere or documented.
    for (const auto &[key, ref] : parserKeys) {
        if (!cfgKeys.count(key) && !docKeys.count(key)) {
            emit(parserSrc, ref.line, "R4", "config-key-parity",
                 "config key '" + key +
                 "' is accepted by the parser but neither set in any "
                 ".cfg nor documented in the manual's key reference");
        }
    }
    // .cfg keys must be accepted by the parser (dead-key detection).
    for (const auto &[key, ref] : cfgKeys) {
        if (!parserKeys.count(key)) {
            for (const auto &[rel, src] : cfgSources) {
                if (rel == ref.file) {
                    emit(src, ref.line, "R4", "config-key-parity",
                         "config key '" + key +
                         "' is set here but not accepted by the parser "
                         "(dead key)");
                    break;
                }
            }
        }
    }
    // Documented keys must be accepted by the parser.
    for (const auto &[key, ref] : docKeys) {
        if (!parserKeys.count(key)) {
            emit(docSrc, ref.line, "R4", "config-key-parity",
                 "manual documents config key '" + key +
                 "' which the parser does not accept");
        }
    }
}

std::string
Linter::expectedGuard(const std::string &rel) const
{
    std::string p = rel;
    for (const auto &strip : cfg_.guardStrip) {
        if (p.rfind(strip, 0) == 0) {
            p = p.substr(strip.size());
            break;
        }
    }
    std::string g = cfg_.guardPrefix;
    for (char c : p) {
        g += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
    }
    return g;
}

void
Linter::checkHygiene()
{
    if (!enabled("R5"))
        return;
    auto files = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});
    for (const auto &rel : files) {
        bool exempt = false;
        for (const auto &d : cfg_.bannedExempt) {
            if (underDir(rel, d)) {
                exempt = true;
                break;
            }
        }
        const SourceFile &src = tokens(rel);

        if (!exempt) {
            for (const auto &tok : src.tokens) {
                if (tok.kind != TokKind::Identifier ||
                    !cfg_.banned.count(tok.text)) {
                    continue;
                }
                std::string why =
                    tok.text == "new"
                        ? "naked 'new' (use std::make_unique or a "
                          "container)"
                        : "banned nondeterminism source '" + tok.text +
                              "'";
                emit(src, tok.line, "R5", "hygiene", why);
            }
        }

        // Include-guard conformance for headers.
        if (rel.size() > 3 && rel.compare(rel.size() - 3, 3, ".hh") == 0) {
            std::string expect = expectedGuard(rel);
            int ifndefLine = 0;
            std::string ifndefMacro, defineMacro;
            bool inBlockComment = false;
            for (size_t li = 0;
                 li < src.lines.size() && defineMacro.empty(); ++li) {
                std::string line = trim(src.lines[li]);
                if (inBlockComment) {
                    if (line.find("*/") != std::string::npos)
                        inBlockComment = false;
                    continue;
                }
                if (line.empty() || line.rfind("//", 0) == 0)
                    continue;
                if (line.rfind("/*", 0) == 0) {
                    if (line.find("*/") == std::string::npos)
                        inBlockComment = true;
                    continue;
                }
                std::istringstream iss(line);
                std::string word;
                iss >> word;
                if (ifndefMacro.empty()) {
                    if (word == "#ifndef") {
                        iss >> ifndefMacro;
                        ifndefLine = static_cast<int>(li + 1);
                        continue;
                    }
                    if (word == "#pragma")
                        continue;   // handled below as non-conforming
                    break;          // first real content isn't a guard
                }
                if (word == "#define") {
                    iss >> defineMacro;
                } else {
                    break;
                }
            }
            if (ifndefMacro.empty()) {
                emit(src, 1, "R5", "hygiene",
                     "header has no include guard (expected #ifndef " +
                     expect + ")");
            } else if (ifndefMacro != expect) {
                emit(src, ifndefLine, "R5", "hygiene",
                     "include guard '" + ifndefMacro +
                     "' does not match the path-derived macro '" + expect +
                     "'");
            } else if (defineMacro != expect) {
                emit(src, ifndefLine, "R5", "hygiene",
                     "include guard #ifndef " + expect +
                     " is not followed by a matching #define");
            }
        }
    }
}

void
Linter::checkGlobals()
{
    if (!enabled("R6") || cfg_.globalDirs.empty())
        return;

    // The committed ratchet baseline: `<file> <symbol>` per line.
    struct BaseEntry
    {
        std::string file, symbol;
        int line = 0;
        bool used = false;
    };
    std::vector<BaseEntry> baseline;
    const std::string basePath = cfg_.r6Baseline;
    if (!basePath.empty() && fs::exists(abs(basePath))) {
        std::ifstream in(abs(basePath));
        std::string line;
        int no = 0;
        while (std::getline(in, line)) {
            ++no;
            std::string t = trim(line);
            if (t.empty() || t[0] == '#')
                continue;
            BaseEntry e;
            std::istringstream iss(t);
            iss >> e.file >> e.symbol;
            e.line = no;
            baseline.push_back(e);
        }
    }
    auto inBaseline = [&](const std::string &file, const std::string &sym) {
        bool hit = false;
        for (auto &e : baseline) {
            if (e.file == file && e.symbol == sym)
                e.used = hit = true;
        }
        return hit;
    };

    for (const auto &rel : listFiles(root_, cfg_.globalDirs,
                                     {".hh", ".cc"})) {
        const SourceFile &src = tokens(rel);
        const ScopeTree &tree = scopes(rel);
        const auto &t = src.tokens;
        for (const auto &stmt : tree.stmts) {
            const ScopeKind k = tree.scopes[stmt.scope].kind;
            if (k == ScopeKind::Init)
                continue;
            bool isStatic = false, isConstexpr = false, isConst = false,
                 isThreadLocal = false, nonPod = false;
            for (size_t pi : stmt.toks) {
                const Token &tok = t[pi];
                if (tok.kind != TokKind::Identifier)
                    continue;
                if (tok.text == "static")
                    isStatic = true;
                else if (tok.text == "constexpr")
                    isConstexpr = true;
                else if (tok.text == "const")
                    isConst = true;
                else if (tok.text == "thread_local")
                    isThreadLocal = true;
                if (cfg_.nonPodTypes.count(tok.text))
                    nonPod = true;
            }
            const bool fnScope =
                k == ScopeKind::Func || k == ScopeKind::Block;
            // Namespace-scope definitions always count; inside
            // functions and classes only `static` storage is global
            // state (plain locals / data members are instance state).
            if (fnScope && !isStatic && !isThreadLocal)
                continue;
            if (k == ScopeKind::Class && !isStatic)
                continue;
            if (isConstexpr)
                continue;
            size_t decl = declaratorOf(t, stmt, fnScope);
            if (decl == std::string::npos)
                continue;
            if (isConst && !nonPod)
                continue;       // const POD: immutable after load
            const std::string sym = t[decl].text;
            const int line = t[decl].line;

            if (suppressed(src, line, "R6", "no-mutable-global-state")) {
                if (inBaseline(rel, sym)) {
                    if (keepAllowed_) {
                        findings_.push_back(
                            {rel, line, "R6", "no-mutable-global-state",
                             "mutable global '" + sym +
                                 "' (annotated, baselined)",
                             true});
                    }
                } else {
                    emitRaw(rel, line, "R6", "no-mutable-global-state",
                            "mutable global '" + sym +
                                "' is allow-annotated but not in the "
                                "ratchet baseline " +
                                basePath +
                                "; the inventory may only shrink");
                }
            } else {
                emit(src, line, "R6", "no-mutable-global-state",
                     "mutable " +
                         std::string(fnScope ? "function-local static"
                                             : k == ScopeKind::Class
                                                   ? "static data member"
                                                   : "namespace-scope "
                                                     "variable") +
                         " '" + sym +
                         "'; move it behind a System-owned context "
                         "object (or annotate and baseline it)");
            }
        }
    }

    // Stale baseline entries are findings too: the ratchet only turns
    // one way, so a refactored-away global must also leave the file.
    for (const auto &e : baseline) {
        if (!e.used) {
            emitRaw(basePath, e.line, "R6", "no-mutable-global-state",
                    "stale baseline entry '" + e.file + " " + e.symbol +
                        "' has no matching annotated global; delete it");
        }
    }
}

void
Linter::checkOwnership()
{
    if (!enabled("R7") || cfg_.ownedTypes.empty())
        return;
    for (const auto &rel : listFiles(root_, cfg_.scanDirs,
                                     {".hh", ".cc"})) {
        const SourceFile &src = tokens(rel);
        const ScopeTree &tree = scopes(rel);
        const auto &t = src.tokens;
        for (const auto &stmt : tree.stmts) {
            if (tree.scopes[stmt.scope].kind != ScopeKind::Class)
                continue;
            const std::string &cls = tree.scopes[stmt.scope].name;
            if (cfg_.ownerClasses.count(cls))
                continue;
            size_t decl = declaratorOf(t, stmt, false);
            if (decl == std::string::npos)
                continue;
            // Member pattern `Type *name;` / `Type &name;`: the token
            // before the declarator must be the pointer/reference
            // sigil (smart-pointer members end in `>` instead).
            size_t at = stmt.toks.size();
            for (size_t k2 = 0; k2 < stmt.toks.size(); ++k2) {
                if (stmt.toks[k2] == decl) {
                    at = k2;
                    break;
                }
            }
            if (at == std::string::npos || at == 0 ||
                at >= stmt.toks.size()) {
                continue;
            }
            const Token &sigil = t[stmt.toks[at - 1]];
            if (sigil.kind != TokKind::Punct ||
                (sigil.text != "*" && sigil.text != "&")) {
                continue;
            }
            // Type name: last identifier before the sigil run,
            // skipping cv-qualifiers.
            std::string type;
            for (size_t k2 = at - 1; k2-- > 0;) {
                const Token &tt = t[stmt.toks[k2]];
                if (tt.kind == TokKind::Punct &&
                    (tt.text == "*" || tt.text == "&")) {
                    continue;
                }
                if (tt.kind == TokKind::Identifier &&
                    (tt.text == "const" || tt.text == "volatile")) {
                    continue;
                }
                if (tt.kind == TokKind::Identifier)
                    type = tt.text;
                break;
            }
            if (!cfg_.ownedTypes.count(type))
                continue;
            emit(src, t[decl].line, "R7", "ownership-escape",
                 "class '" + (cls.empty() ? "<anonymous>" : cls) +
                     "' stores a raw " +
                     (sigil.text == "*" ? "pointer" : "reference") +
                     " to System-owned component type '" + type +
                     "' ('" + t[decl].text +
                     "'); only classes transitively owned by a System "
                     "may borrow core components (rules.cfg "
                     "owner-class)");
        }
    }
}

void
Linter::checkLocks()
{
    if (!enabled("R8"))
        return;

    // Hot-path purity: simulator-core directories are single-threaded
    // by contract and must not mention locks or atomics at all.
    if (!cfg_.lockIdents.empty()) {
        for (const auto &rel : listFiles(root_, cfg_.lockFreeDirs,
                                         {".hh", ".cc"})) {
            const SourceFile &src = tokens(rel);
            for (const auto &tok : src.tokens) {
                if (tok.kind == TokKind::Identifier &&
                    cfg_.lockIdents.count(tok.text)) {
                    emit(src, tok.line, "R8", "lock-discipline",
                         "'" + tok.text +
                             "' in simulator-core directory: the hot "
                             "path is single-threaded by contract and "
                             "must stay lock- and atomic-free");
                }
            }
        }
    }

    // Guarded members: every access must be downstream of a
    // lock_guard/unique_lock/scoped_lock naming the right mutex in an
    // enclosing scope.
    static const std::set<std::string> kLockTakers = {
        "lock_guard", "unique_lock", "scoped_lock"};
    for (const auto &gm : cfg_.guardedMembers) {
        if (!fs::exists(abs(gm.file)))
            continue;
        const SourceFile &src = tokens(gm.file);
        const ScopeTree &tree = scopes(gm.file);
        const auto &t = src.tokens;

        struct LockEvent
        {
            size_t pos;
            int scope;
        };
        std::vector<LockEvent> locks;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                !kLockTakers.count(t[i].text)) {
                continue;
            }
            // Scan the constructor argument list for the mutex name:
            // find the declaration's opening paren / brace first.
            size_t open = i;
            while (open < t.size() &&
                   !(t[open].kind == TokKind::Punct &&
                     (t[open].text == "(" || t[open].text == "{")) &&
                   !(t[open].kind == TokKind::Punct &&
                     t[open].text == ";")) {
                ++open;
            }
            if (open >= t.size() || t[open].text == ";")
                continue;
            bool names = false;
            int depth = 0;
            for (size_t k2 = open; k2 < t.size(); ++k2) {
                if (t[k2].kind == TokKind::Punct) {
                    if (t[k2].text == "(" || t[k2].text == "{")
                        ++depth;
                    else if (t[k2].text == ")" || t[k2].text == "}") {
                        if (--depth == 0)
                            break;
                    }
                } else if (t[k2].kind == TokKind::Identifier &&
                           t[k2].text == gm.mutex) {
                    names = true;
                }
            }
            if (names)
                locks.push_back({i, tree.scopeOf[i]});
        }

        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier ||
                t[i].text != gm.member) {
                continue;
            }
            const int sc = tree.scopeOf[i];
            if (tree.enclosingFunc(sc) == -1)
                continue;   // declaration / ctor-init, not an access
            bool held = false;
            for (const auto &le : locks) {
                if (le.pos < i && tree.isAncestor(le.scope, sc)) {
                    held = true;
                    break;
                }
            }
            if (!held) {
                emit(src, t[i].line, "R8", "lock-discipline",
                     "access to guarded member '" + gm.member +
                         "' without holding '" + gm.mutex +
                         "' (no lock_guard/unique_lock/scoped_lock in "
                         "an enclosing scope)");
            }
        }
    }
}

void
Linter::checkDeterminism()
{
    if (!enabled("R9") || cfg_.detSinks.empty())
        return;

    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};

    const auto files = listFiles(root_, cfg_.scanDirs, {".hh", ".cc"});

    // Pass A: names of variables/members declared with an unordered
    // type, functions returning one by reference, and pointer-keyed
    // ordered maps (iteration order = allocation order: just as
    // nondeterministic across runs with ASLR or allocator changes).
    std::set<std::string> unorderedNames;
    std::map<std::string, std::string> why;     // name -> description
    for (const auto &rel : files) {
        const auto &t = tokens(rel).tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier)
                continue;
            bool unordered = kUnorderedTypes.count(t[i].text) > 0;
            bool ptrKeyed = false;
            if (!unordered &&
                (t[i].text == "map" || t[i].text == "multimap")) {
                // Pointer-keyed ordered map: `map<T *, ...>`.
                if (i + 1 < t.size() && t[i + 1].text == "<") {
                    int depth = 0;
                    for (size_t j = i + 1; j < t.size(); ++j) {
                        if (t[j].kind != TokKind::Punct)
                            continue;
                        if (t[j].text == "<") {
                            ++depth;
                        } else if (t[j].text == ">") {
                            if (--depth == 0)
                                break;
                        } else if (t[j].text == "," && depth == 1) {
                            break;
                        } else if (t[j].text == "*" && depth == 1) {
                            ptrKeyed = true;
                        } else if (t[j].text == ";") {
                            break;
                        }
                    }
                }
            }
            if (!unordered && !ptrKeyed)
                continue;
            if (i + 1 >= t.size() || t[i + 1].text != "<")
                continue;
            size_t j = skipAngles(t, i + 1);
            while (j < t.size() &&
                   ((t[j].kind == TokKind::Punct &&
                     (t[j].text == "&" || t[j].text == "*")) ||
                    (t[j].kind == TokKind::Identifier &&
                     t[j].text == "const"))) {
                ++j;
            }
            if (j >= t.size() || t[j].kind != TokKind::Identifier)
                continue;
            const std::string &name = t[j].text;
            unorderedNames.insert(name);
            why.emplace(name, unordered
                                  ? "unordered container"
                                  : "pointer-keyed map (iteration "
                                    "order tracks allocation)");
        }
    }
    if (unorderedNames.empty())
        return;

    // Pass B: a function that both iterates one of those names and
    // reaches a determinism sink (stats recording / observer hook
    // call) is tainted.
    for (const auto &rel : files) {
        const SourceFile &src = tokens(rel);
        const ScopeTree &tree = scopes(rel);
        const auto &t = src.tokens;

        struct IterEvent
        {
            int func;
            int line;
            std::string name;
        };
        std::vector<IterEvent> iters;
        std::set<int> sinkFuncs;

        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Identifier)
                continue;
            const int func = tree.enclosingFunc(tree.scopeOf[i]);
            if (func == -1)
                continue;

            // Sink: member call of a det-sink name.
            if (cfg_.detSinks.count(t[i].text) && i > 0 &&
                t[i - 1].kind == TokKind::Punct &&
                (t[i - 1].text == "." || t[i - 1].text == "->")) {
                sinkFuncs.insert(func);
                continue;
            }

            // Iteration: range-for whose range expression mentions an
            // unordered name...
            if (t[i].text == "for" && i + 1 < t.size() &&
                t[i + 1].text == "(") {
                int depth = 0;
                size_t colon = 0, close = 0;
                for (size_t j = i + 1; j < t.size(); ++j) {
                    if (t[j].kind != TokKind::Punct)
                        continue;
                    if (t[j].text == "(") {
                        ++depth;
                    } else if (t[j].text == ")") {
                        if (--depth == 0) {
                            close = j;
                            break;
                        }
                    } else if (t[j].text == ":" && depth == 1 &&
                               !colon) {
                        colon = j;
                    }
                }
                if (colon && close) {
                    for (size_t j = colon + 1; j < close; ++j) {
                        if (t[j].kind == TokKind::Identifier &&
                            unorderedNames.count(t[j].text)) {
                            iters.push_back(
                                {func, t[j].line, t[j].text});
                            break;
                        }
                    }
                }
                continue;
            }

            // ... or explicit iterator walks: name.begin()/cbegin().
            if ((t[i].text == "begin" || t[i].text == "cbegin") &&
                i >= 2 && t[i - 1].kind == TokKind::Punct &&
                (t[i - 1].text == "." || t[i - 1].text == "->") &&
                t[i - 2].kind == TokKind::Identifier &&
                unorderedNames.count(t[i - 2].text)) {
                iters.push_back({func, t[i].line, t[i - 2].text});
            }
        }

        for (const auto &ev : iters) {
            if (!sinkFuncs.count(ev.func))
                continue;
            auto w = why.find(ev.name);
            emit(src, ev.line, "R9", "determinism-taint",
                 "iteration over " +
                     (w == why.end() ? std::string("unordered container")
                                     : w->second) +
                     " '" + ev.name +
                     "' in a function that records stats or fires "
                     "observer hooks; use an ordered container or "
                     "sort before iterating");
        }
    }
}

std::vector<Finding>
Linter::run()
{
    checkKernel();
    checkStats();
    checkConfigParity();
    checkHygiene();
    checkGlobals();
    checkOwnership();
    checkLocks();
    checkDeterminism();
    std::sort(findings_.begin(), findings_.end());
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding &a, const Finding &b) {
                                    return !(a < b) && !(b < a);
                                }),
                    findings_.end());
    return std::move(findings_);
}

} // namespace

std::vector<Finding>
runLint(const std::string &root, const RulesConfig &cfg,
        const std::set<std::string> &only, bool keepAllowed)
{
    return Linter(root, cfg, only, keepAllowed).run();
}

} // namespace mtlblint
