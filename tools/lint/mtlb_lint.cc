/**
 * @file
 * mtlb-lint CLI: repo-specific semantic lint over the simulator
 * sources. See tools/lint/lint.hh for the rule catalogue and
 * docs/manual.md §11 for usage.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or IO error.
 */

#include <cstring>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "lint.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: mtlb-lint [--root DIR] [--rules FILE] [--only R1,R2,...]"
          " [--quiet]\n"
          "  --root DIR    repo root to lint (default: current directory)\n"
          "  --rules FILE  rules file (default: <root>/tools/lint/"
          "rules.cfg)\n"
          "  --only LIST   comma-separated rule ids to run (default: all)\n"
          "  --quiet       suppress the summary line on success\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string rules;
    std::set<std::string> only;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mtlb-lint: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value();
        } else if (arg == "--rules") {
            rules = value();
        } else if (arg == "--only") {
            std::istringstream iss(value());
            std::string id;
            while (std::getline(iss, id, ','))
                only.insert(id);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "mtlb-lint: unknown argument '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (rules.empty())
        rules = root + "/tools/lint/rules.cfg";

    try {
        auto cfg = mtlblint::RulesConfig::load(rules);
        auto findings = mtlblint::runLint(root, cfg, only);
        for (const auto &f : findings)
            std::cout << mtlblint::format(f) << "\n";
        if (!findings.empty()) {
            std::cerr << "mtlb-lint: " << findings.size()
                      << " finding(s)\n";
            return 1;
        }
        if (!quiet)
            std::cerr << "mtlb-lint: clean\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
