/**
 * @file
 * mtlb-lint CLI: repo-specific semantic lint over the simulator
 * sources. See tools/lint/lint.hh for the rule catalogue and
 * docs/manual.md §11 for usage.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or IO error. Allowed
 * (annotated) findings never affect the exit code; they are only
 * reported in --json output.
 */

#include <cstring>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "lint.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: mtlb-lint [--root DIR] [--rules FILE] [--only R1,R2,...]"
          " [--format text|json|github] [--quiet]\n"
          "  --root DIR     repo root to lint (default: current "
          "directory)\n"
          "  --rules FILE   rules file (default: <root>/tools/lint/"
          "rules.cfg)\n"
          "  --only LIST    comma-separated rule ids to run (default: "
          "all;\n"
          "                 R1-R12 plus SA, the stale-allow "
          "diagnostic,\n"
          "                 which executes the other checks for "
          "bookkeeping\n"
          "                 and reports annotations that suppress "
          "nothing)\n"
          "  --format KIND  output format: text (default), json "
          "(machine\n"
          "                 readable, includes allowed findings), or "
          "github\n"
          "                 (workflow error annotations)\n"
          "  --json         shorthand for --format json\n"
          "  --quiet        suppress the summary line on success\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string rules;
    std::string fmt = "text";
    std::set<std::string> only;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mtlb-lint: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value();
        } else if (arg == "--rules") {
            rules = value();
        } else if (arg == "--only") {
            std::istringstream iss(value());
            std::string id;
            while (std::getline(iss, id, ','))
                only.insert(id);
        } else if (arg == "--format") {
            fmt = value();
            if (fmt != "text" && fmt != "json" && fmt != "github") {
                std::cerr << "mtlb-lint: unknown format '" << fmt
                          << "'\n";
                return 2;
            }
        } else if (arg == "--json") {
            fmt = "json";
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "mtlb-lint: unknown argument '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (rules.empty())
        rules = root + "/tools/lint/rules.cfg";

    try {
        auto cfg = mtlblint::RulesConfig::load(rules);
        // JSON output reports allowed findings too (allow-status is
        // part of the machine-readable record).
        auto findings =
            mtlblint::runLint(root, cfg, only, fmt == "json");
        size_t live = 0;
        for (const auto &f : findings) {
            if (!f.allowed)
                ++live;
        }
        if (fmt == "json") {
            std::cout << mtlblint::formatJson(findings);
        } else {
            for (const auto &f : findings) {
                std::cout << (fmt == "github"
                                  ? mtlblint::formatGithub(f)
                                  : mtlblint::format(f))
                          << "\n";
            }
        }
        if (live) {
            std::cerr << "mtlb-lint: " << live << " finding(s)\n";
            return 1;
        }
        if (!quiet && fmt != "json")
            std::cerr << "mtlb-lint: clean\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
