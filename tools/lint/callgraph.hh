/**
 * @file
 * Interprocedural call-graph engine for mtlb-lint.
 *
 * Builds a project-wide call graph over the token streams of every
 * scanned translation unit and computes one summary per function
 * definition:
 *
 *   - bumpsEpoch            calls bumpTranslationEpoch() somewhere
 *   - broadcastsShootdown   calls shootdownRemote() somewhere
 *   - flushesBatch          calls flushBatch() somewhere
 *   - mutates               calls a configured translation-state
 *                           mutator somewhere
 *   - touchesPerCore        subscripts a configured per-core
 *                           container with a non-active-core index
 *   - unprotectedRead       reads deferred statistics (a configured
 *                           r12-reader call) with no batch flush
 *                           earlier in the body
 *   - hooksFired            KernelObserver hooks fired somewhere
 *
 * Summaries propagate through calls to a fixpoint so that helper
 * indirection is transparent to the protocol rules: a kernel function
 * that mutates and then calls a helper which bumps the epoch and
 * broadcasts the shootdown satisfies R1/R10 without `allow()`
 * escapes.
 *
 * Name resolution is per unqualified name (no type inference), and
 * deliberately confined to the *defining file* of the caller: a call
 * site resolves to every function definition sharing its name in the
 * same file. Helper chains the protocol rules care about
 * (kernel.cc's map/demote/remap helpers, system.cc's flush helpers)
 * are file-local, while cross-file resolution by bare name drowns in
 * collisions — `x.load(std::memory_order_relaxed)` is not a call to
 * `Cpu::load`, and `std::string("info")` is not a call to a JSON
 * parser's `string()` production. "Must" facts (bumps, broadcasts,
 * flushes, hooks) take the intersection over the candidates — a call
 * counts as bumping only when every same-file definition of that
 * name bumps — while "may" facts (mutates, touches per-core state,
 * unprotected read) take the union. That keeps the engine
 * sound-for-the-rules in both directions: it never credits a call
 * with a guarantee one overload lacks, and never misses a hazard one
 * overload has.
 *
 * All summary bits only flip false -> true during propagation, so the
 * fixpoint terminates on cyclic call graphs (recursion is handled,
 * not special-cased). `unprotectedRead` depends on the *flush* facts,
 * so it is computed in a second monotone phase after the flush
 * fixpoint has settled.
 */

#ifndef MTLBSIM_TOOLS_LINT_CALLGRAPH_HH
#define MTLBSIM_TOOLS_LINT_CALLGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"
#include "lint.hh"
#include "scopes.hh"

namespace mtlblint
{

/** One call site inside a function body. */
struct CallSite
{
    std::string name;       ///< unqualified callee name
    std::string receiver;   ///< identifier before '.' / '->' ("" if none)
    bool member = false;    ///< receiver-qualified call
    size_t pos = 0;         ///< token index in the defining file
    int line = 0;
};

/** One `container[index]` use of a per-core container (R11). */
struct PerCoreSubscript
{
    std::string container;
    std::string index;      ///< joined token text of the index expr
    size_t pos = 0;
    int line = 0;
};

/** One function definition found in a scanned file. */
struct FnDef
{
    std::string file;       ///< repo-relative path
    std::string cls;        ///< enclosing/qualifying class ("" if free)
    std::string name;       ///< unqualified function name
    int line = 0;
    size_t open = 0;        ///< token index of the body '{'
    size_t close = 0;       ///< token index of the body '}'
    std::vector<CallSite> calls;
    std::vector<PerCoreSubscript> subscripts;
};

/** Propagated per-function facts. */
struct FnSummary
{
    bool bumpsEpoch = false;
    bool broadcastsShootdown = false;
    bool flushesBatch = false;
    bool mutates = false;
    bool touchesPerCore = false;
    bool unprotectedRead = false;
    std::set<std::string> hooksFired;
};

class CallGraph
{
  public:
    /** Extract every function definition (with its call sites,
     *  per-core subscripts, and direct facts) from one file. */
    void addFile(const SourceFile &src, const ScopeTree &tree,
                 const RulesConfig &cfg);

    /** Run the summary fixpoint. Call once, after all addFile()s. */
    void propagate(const RulesConfig &cfg);

    const std::vector<FnDef> &functions() const { return fns_; }
    const FnSummary &summary(size_t i) const { return sums_[i]; }

    /** Indices of every definition of @p name in @p file (empty when
     *  the name resolves to nothing there). */
    std::vector<size_t> resolve(const std::string &file,
                                const std::string &name) const;

    // Call-level queries: what a call to @p name from code in @p file
    // guarantees (must, intersection over same-file candidates) or
    // risks (may, union). A name with no same-file definition
    // guarantees and risks nothing.
    bool callMustBump(const std::string &file,
                      const std::string &name) const;
    bool callMustBroadcast(const std::string &file,
                           const std::string &name) const;
    bool callMustFlush(const std::string &file,
                       const std::string &name) const;
    bool callMayMutate(const std::string &file,
                       const std::string &name) const;
    bool callMayTouchPerCore(const std::string &file,
                             const std::string &name) const;
    bool callMayReadUnprotected(const std::string &file,
                                const std::string &name) const;
    /** Hooks every same-file definition of @p name fires. */
    std::set<std::string> callMustHooks(const std::string &file,
                                        const std::string &name) const;

  private:
    bool isReaderCall(const CallSite &c, const RulesConfig &cfg) const;
    bool mustAll(const std::string &file, const std::string &name,
                 bool FnSummary::*bit) const;
    bool mayAny(const std::string &file, const std::string &name,
                bool FnSummary::*bit) const;

    std::vector<FnDef> fns_;
    std::vector<FnSummary> sums_;
    std::map<std::string, std::vector<size_t>> byName_;
};

/** Joined source text of the arguments of the call whose callee
 *  identifier sits at token index @p callee (expects `(` next,
 *  possibly after a `<...>` template argument group). Tokens are
 *  concatenated without spaces ("pageBase(vaddr)"), one string per
 *  top-level argument. Empty when no argument list follows. */
std::vector<std::string> callArgs(const std::vector<Token> &t,
                                  size_t callee);

} // namespace mtlblint

#endif // MTLBSIM_TOOLS_LINT_CALLGRAPH_HH
