#include "lexer.hh"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mtlblint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Record a `mtlb-lint: allow(a,b)` directive found in a comment.
 * Tolerates arbitrary whitespace and trailing comment text.
 */
void
parseSuppression(const std::string &comment, int line, SourceFile &out)
{
    const std::string tag = "mtlb-lint:";
    auto pos = comment.find(tag);
    if (pos == std::string::npos)
        return;
    pos += tag.size();
    while (pos < comment.size() && std::isspace(
               static_cast<unsigned char>(comment[pos]))) {
        ++pos;
    }
    if (comment.compare(pos, 5, "allow") != 0)
        return;
    pos = comment.find('(', pos);
    if (pos == std::string::npos)
        return;
    auto close = comment.find(')', pos);
    if (close == std::string::npos)
        return;
    std::string list = comment.substr(pos + 1, close - pos - 1);
    std::string item;
    std::istringstream iss(list);
    while (std::getline(iss, item, ',')) {
        // Trim whitespace.
        auto b = item.find_first_not_of(" \t");
        auto e = item.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        out.suppressions[line].insert(item.substr(b, e - b + 1));
    }
}

} // namespace

void
addSuppressionsFromLine(const std::string &line, int lineNo,
                        SourceFile &out)
{
    parseSuppression(line, lineNo, out);
}

SourceFile
tokenize(const std::string &path, const std::string &text)
{
    SourceFile out;
    out.path = path;

    // Split into raw lines for the line-wise rules.
    {
        std::string cur;
        for (char c : text) {
            if (c == '\n') {
                out.lines.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(c);
            }
        }
        if (!cur.empty())
            out.lines.push_back(cur);
    }

    size_t i = 0;
    const size_t n = text.size();
    int line = 1;

    auto peek = [&](size_t off) -> char {
        return i + off < n ? text[i + off] : '\0';
    };

    while (i < n) {
        char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment. A backslash immediately before the newline
        // splices the next source line into the comment (the
        // preprocessor's line-continuation rule applies to // text
        // too), so keep consuming — and keep counting lines — until
        // an unescaped newline ends it.
        if (c == '/' && peek(1) == '/') {
            size_t start = i;
            int startLine = line;
            while (i < n) {
                if (text[i] == '\n') {
                    size_t back = i;
                    while (back > start && text[back - 1] == '\r')
                        --back;
                    if (back > start && text[back - 1] == '\\') {
                        ++line;
                        ++i;
                        continue;
                    }
                    break;
                }
                ++i;
            }
            parseSuppression(text.substr(start, i - start), startLine,
                             out);
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            size_t start = i;
            int startLine = line;
            i += 2;
            while (i < n && !(text[i] == '*' && peek(1) == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            if (i < n)
                i += 2;
            parseSuppression(text.substr(start, i - start), startLine, out);
            continue;
        }
        // Raw string literal: R"delim( ... )delim"
        if (c == 'R' && peek(1) == '"') {
            size_t j = i + 2;
            std::string delim;
            while (j < n && text[j] != '(')
                delim.push_back(text[j++]);
            std::string close = ")" + delim + "\"";
            size_t end = text.find(close, j);
            int startLine = line;
            size_t bodyEnd = end == std::string::npos ? n : end;
            std::string content = text.substr(j + 1, bodyEnd - j - 1);
            end = end == std::string::npos ? n : end + close.size();
            for (size_t k = i; k < end; ++k) {
                if (text[k] == '\n')
                    ++line;
            }
            out.tokens.push_back({TokKind::String, content, startLine});
            i = end;
            continue;
        }
        // String / char literal (handles escapes). Contents are kept
        // verbatim (minus surrounding quotes): R4 matches config-key
        // literals against them.
        if (c == '"' || c == '\'') {
            char quote = c;
            int startLine = line;
            size_t start = ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\') {
                    ++i;
                    if (i < n && text[i] == '\n')
                        ++line;     // spliced literal line
                } else if (text[i] == '\n') {
                    ++line;     // unterminated; keep going defensively
                }
                ++i;
            }
            std::string content = text.substr(start, i - start);
            if (i < n)
                ++i;    // past closing quote
            out.tokens.push_back({
                quote == '"' ? TokKind::String : TokKind::CharLit,
                content, startLine});
            continue;
        }
        if (isIdentStart(c)) {
            size_t start = i;
            while (i < n && isIdentChar(text[i]))
                ++i;
            out.tokens.push_back({TokKind::Identifier,
                                  text.substr(start, i - start), line});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            while (i < n &&
                   (isIdentChar(text[i]) || text[i] == '.' ||
                    ((text[i] == '+' || text[i] == '-') &&
                     (text[i - 1] == 'e' || text[i - 1] == 'E')) ||
                    // C++14 digit separator: 100'000 is one number,
                    // not a number followed by a char literal.
                    (text[i] == '\'' && i + 1 < n &&
                     isIdentChar(text[i + 1])))) {
                ++i;
            }
            out.tokens.push_back({TokKind::Number,
                                  text.substr(start, i - start), line});
            continue;
        }
        // Punctuator: one character at a time except -> and :: which
        // the rules want as single tokens.
        if (c == '-' && peek(1) == '>') {
            out.tokens.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        if (c == ':' && peek(1) == ':') {
            out.tokens.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }

    return out;
}

SourceFile
tokenizeFile(const std::string &path, const std::string &displayPath)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("mtlb-lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return tokenize(displayPath, ss.str());
}

bool
suppressed(const SourceFile &file, int line,
           const std::string &id, const std::string &name)
{
    for (int l : {line, line - 1}) {
        auto it = file.suppressions.find(l);
        if (it == file.suppressions.end())
            continue;
        if (it->second.count(id) || it->second.count(name))
            return true;
    }
    return false;
}

} // namespace mtlblint
