/**
 * @file
 * CLI driver for the bounded exhaustive model checker (src/model).
 *
 *   modelcheck [--depth N] [--config] [--stats]
 *              [--fault KIND] [--max-states N] [--progress]
 *
 * Exit status: 0 when the bounded search finds no violation, 1 when
 * a counterexample was found (it is printed, one op per line), 2 on
 * usage errors.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "fuzz/schedule.hh"
#include "model/modelcheck.hh"

namespace
{

using namespace mtlbsim;

int
usage()
{
    std::cerr
        << "usage: modelcheck [options]\n"
           "  --depth N      bound the op-sequence length (default 6)\n"
           "  --cores N      model-machine cores; ops dispatch on\n"
           "                 core i %% N (default 1)\n"
           "  --config       print the model machine/alphabet and exit\n"
           "  --stats        print per-depth search statistics\n"
           "  --fault KIND   plant a FaultInjector corruption op and\n"
           "                 expect a minimal counterexample\n"
           "  --max-states N stop after N canonical states\n"
           "  --progress     one progress line per depth level\n";
    return 2;
}

void
printConfig(const model::ModelConfig &cfg)
{
    const fuzz::FuzzParams p = model::modelParams(cfg.cores);
    std::cout << "model machine:\n"
              << "  cores          " << p.cores << "\n"
              << "  tlb_entries    " << p.tlbEntries << "\n"
              << "  mtlb           " << p.mtlbEntries << " entries, "
              << p.mtlbAssoc << "-way\n"
              << "  l0_entries     " << p.l0Entries << "\n"
              << "  user_frames    "
              << ((p.installedBytes - Addr{8} * 1024 * 1024) >>
                  basePageShift)
              << "\n"
              << "  cache_bytes    " << p.cacheBytes << "\n"
              << "  shadow_bytes   " << p.shadowBytes << "\n"
              << "  audit_every    " << p.auditEvery << "\n"
              << "alphabet (" << model::modelAlphabet(cfg).size()
              << " ops):\n";
    for (const fuzz::FuzzOp &op : model::modelAlphabet(cfg))
        std::cout << "  " << model::opToString(op) << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mtlbsim;

    model::ModelConfig cfg;
    bool show_config = false;
    bool show_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto operand = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "modelcheck: " << arg
                          << " needs an operand\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--depth") {
            cfg.depth = static_cast<unsigned>(std::atoi(operand()));
        } else if (arg == "--cores") {
            cfg.cores = static_cast<unsigned>(std::atoi(operand()));
            if (cfg.cores == 0) {
                std::cerr << "modelcheck: --cores wants a positive "
                             "count\n";
                return 2;
            }
        } else if (arg == "--config") {
            show_config = true;
        } else if (arg == "--stats") {
            show_stats = true;
        } else if (arg == "--max-states") {
            cfg.maxStates =
                static_cast<std::uint64_t>(std::atoll(operand()));
        } else if (arg == "--progress") {
            cfg.progress = true;
        } else if (arg == "--fault") {
            const std::string name = operand();
            bool found = false;
            for (unsigned k = 0; k < fuzz::numFaultKinds; ++k) {
                const auto kind = static_cast<fuzz::FaultKind>(k);
                if (name == fuzz::faultKindName(kind)) {
                    cfg.plantFault = kind;
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::cerr << "modelcheck: unknown fault kind '" << name
                          << "'; known kinds:\n";
                for (unsigned k = 0; k < fuzz::numFaultKinds; ++k) {
                    std::cerr << "  "
                              << fuzz::faultKindName(
                                     static_cast<fuzz::FaultKind>(k))
                              << "\n";
                }
                return 2;
            }
        } else {
            std::cerr << "modelcheck: unknown option '" << arg
                      << "'\n";
            return usage();
        }
    }

    if (show_config) {
        printConfig(cfg);
        return 0;
    }

    const model::ModelResult r = model::runModelCheck(cfg);

    std::cout << "modelcheck: depth " << cfg.depth << ": "
              << r.stats.statesExplored << " states explored, "
              << r.stats.statesPruned << " pruned, "
              << r.stats.edgesExecuted << " edges\n";
    if (r.truncated)
        std::cout << "modelcheck: truncated by --max-states\n";
    if (show_stats) {
        for (std::size_t d = 0; d < r.stats.levelSizes.size(); ++d) {
            std::cout << "  depth " << d << ": "
                      << r.stats.levelSizes[d] << " new states\n";
        }
    }

    if (r.failed) {
        std::cout << "modelcheck: VIOLATION [" << r.failure.detector
                  << "] " << r.failure.detail << "\n"
                  << "counterexample (" << r.counterexample.size()
                  << " ops):\n";
        for (const fuzz::FuzzOp &op : r.counterexample)
            std::cout << "  " << model::opToString(op) << "\n";
        return 1;
    }

    std::cout << "modelcheck: no violations within depth bound\n";
    return 0;
}
