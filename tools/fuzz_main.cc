/**
 * @file
 * The differential-fuzzer CLI.
 *
 * Runs seeded schedules against a real System in lockstep with the
 * oracle reference model (src/fuzz). On a mismatch the failing
 * schedule is written as a versioned `.fztrace` replay file and a
 * greedy shrinker minimizes it.
 *
 * Examples:
 *
 *   # nightly sweep: 200 schedules starting at seed 1
 *   tools/fuzz --seed 1 --runs 200 --ops 2000
 *
 *   # two-core sweep: ops round-robin over the cores, stale remote
 *   # TLB entries and missed shootdowns become lockstep failures
 *   tools/fuzz --seed 1 --runs 50 --cores 2
 *
 *   # prove every FaultInjector corruption class is caught
 *   tools/fuzz --self-test
 *
 *   # reproduce a failure byte-for-byte
 *   tools/fuzz --replay fuzz-42.fztrace
 *
 *   # minimize a recorded failure
 *   tools/fuzz --shrink fuzz-42.fztrace
 *
 * Exit status: 0 all runs clean / replay reproduced / self-test
 * passed; 1 mismatch found, replay diverged, or self-test failed;
 * 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/schedule.hh"
#include "fuzz/shrink.hh"

using namespace mtlbsim;
using namespace mtlbsim::fuzz;

namespace
{

void
usage()
{
    std::printf(
        "usage: fuzz [options]\n"
        "  --seed S           first schedule seed (default 1)\n"
        "  --runs N           schedules to run, seeds S..S+N-1 "
        "(default 1)\n"
        "  --ops N            operations per schedule (default "
        "2000)\n"
        "  --audit-every N    ops between oracle sweeps + audits "
        "(default 16)\n"
        "  --cores N          machine cores; ops are dispatched on\n"
        "                     core i %% N, all sharing one address\n"
        "                     space (default 1)\n"
        "  --batch            run with the batched access engine on\n"
        "                     (cpu.batch_window 4096); lockstep and\n"
        "                     final stats must be unchanged\n"
        "  --self-test        plant every FaultInjector corruption "
        "class and\n"
        "                     require the fuzzer to catch it\n"
        "  --replay FILE      re-run a recorded .fztrace and verify "
        "the outcome\n"
        "                     (including final stats) is "
        "byte-identical\n"
        "  --shrink FILE      minimize a failing .fztrace; writes "
        "FILE.min\n"
        "  --out-dir DIR      where failure traces go (default .)\n"
        "  --quiet            suppress per-run progress on stderr\n");
}

std::string
tracePath(const std::string &out_dir, std::uint64_t seed,
          bool minimized)
{
    return out_dir + "/fuzz-" + std::to_string(seed) +
           (minimized ? ".min.fztrace" : ".fztrace");
}

int
selfTest(bool quiet)
{
    const std::vector<SelfTestOutcome> outcomes = runSelfTest(true);
    std::size_t passed = 0;
    for (const SelfTestOutcome &out : outcomes) {
        const char *name = faultKindName(out.kind);
        const bool ok = out.detected && out.shrunkStillFails &&
                        out.shrunkOps <= 64;
        if (ok)
            ++passed;
        if (!quiet || !ok) {
            if (out.detected) {
                std::fprintf(
                    stderr,
                    "  %-20s %s via %s (shrunk to %u op%s%s)\n",
                    name, ok ? "caught" : "CAUGHT BUT NOT MINIMAL",
                    out.failure.detector.c_str(), out.shrunkOps,
                    out.shrunkOps == 1 ? "" : "s",
                    out.shrunkStillFails ? "" : ", shrink LOST it");
            } else {
                std::fprintf(stderr, "  %-20s MISSED\n", name);
            }
        }
    }
    std::printf("self-test: %zu/%zu corruption classes caught\n",
                passed, outcomes.size());
    return passed == outcomes.size() ? 0 : 1;
}

int
replay(const std::string &path, bool quiet)
{
    const FuzzTrace trace = loadTrace(path);
    const RunResult result = runSchedule(trace.schedule);

    bool ok = result.failed == trace.hasFailure;
    if (ok && trace.hasFailure) {
        ok = result.failure.opIndex == trace.failure.opIndex &&
             result.failure.detector == trace.failure.detector;
    }
    if (ok && !trace.finalStats.isNull()) {
        ok = result.finalStats.dumped(2) == trace.finalStats.dumped(2);
        if (!ok) {
            std::fprintf(stderr,
                         "replay: final stats diverge from the "
                         "recorded run\n");
        }
    }

    if (!quiet || !ok) {
        if (result.failed) {
            std::fprintf(stderr, "replay: op %u failed [%s] %s\n",
                         result.failure.opIndex,
                         result.failure.detector.c_str(),
                         result.failure.detail.c_str());
        } else {
            std::fprintf(stderr, "replay: run completed cleanly\n");
        }
    }
    std::printf("replay %s: %s\n", path.c_str(),
                ok ? "reproduced" : "DIVERGED");
    return ok ? 0 : 1;
}

int
shrinkFile(const std::string &path, bool quiet)
{
    const FuzzTrace trace = loadTrace(path);
    if (!trace.hasFailure) {
        std::fprintf(stderr,
                     "%s records no failure; nothing to shrink\n",
                     path.c_str());
        return 2;
    }

    const ShrinkResult sr =
        shrinkSchedule(trace.schedule.params, trace.schedule.ops,
                       trace.failure.detector);
    if (!sr.stillFails) {
        std::fprintf(stderr,
                     "failure in %s did not reproduce; is the bug "
                     "already fixed?\n",
                     path.c_str());
        return 1;
    }

    Schedule minimized;
    minimized.params = trace.schedule.params;
    minimized.params.numOps = static_cast<unsigned>(sr.ops.size());
    minimized.ops = sr.ops;
    const RunResult rerun = runSchedule(minimized);
    const std::string out_path = path + ".min";
    writeTrace(out_path, minimized, rerun);

    if (!quiet) {
        std::fprintf(stderr,
                     "shrunk %zu -> %zu ops in %u trials [%s]\n",
                     trace.schedule.ops.size(), sr.ops.size(),
                     sr.trials, sr.detector.c_str());
    }
    std::printf("minimized reproducer: %s (%zu ops)\n",
                out_path.c_str(), sr.ops.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::uint64_t seed = 1;
    unsigned runs = 1;
    unsigned ops = 2000;
    unsigned audit_every = 16;
    unsigned cores = 1;
    bool batch = false;
    bool self_test = false;
    std::string replay_file;
    std::string shrink_file;
    std::string out_dir = ".";
    bool quiet = false;

    auto next_arg = [&](int &i) -> const char * {
        if (++i >= argc) {
            usage();
            std::exit(2);
        }
        return argv[i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token == "--help" || token == "-h") {
            usage();
            return 0;
        } else if (token == "--seed") {
            seed = static_cast<std::uint64_t>(
                std::strtoull(next_arg(i), nullptr, 0));
        } else if (token == "--runs") {
            runs = static_cast<unsigned>(std::atoi(next_arg(i)));
        } else if (token == "--ops") {
            ops = static_cast<unsigned>(std::atoi(next_arg(i)));
        } else if (token == "--audit-every") {
            audit_every =
                static_cast<unsigned>(std::atoi(next_arg(i)));
        } else if (token == "--cores") {
            cores = static_cast<unsigned>(std::atoi(next_arg(i)));
            if (cores == 0) {
                std::fprintf(stderr,
                             "--cores wants a positive count\n");
                return 2;
            }
        } else if (token == "--batch") {
            batch = true;
        } else if (token == "--self-test") {
            self_test = true;
        } else if (token == "--replay") {
            replay_file = next_arg(i);
        } else if (token == "--shrink") {
            shrink_file = next_arg(i);
        } else if (token == "--out-dir") {
            out_dir = next_arg(i);
        } else if (token == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n",
                         token.c_str());
            usage();
            return 2;
        }
    }

    if (self_test)
        return selfTest(quiet);
    if (!replay_file.empty())
        return replay(replay_file, quiet);
    if (!shrink_file.empty())
        return shrinkFile(shrink_file, quiet);

    unsigned failures = 0;
    for (unsigned r = 0; r < runs; ++r) {
        const std::uint64_t run_seed = seed + r;
        FuzzParams params =
            paramsForSeed(run_seed, ops, audit_every);
        params.cores = cores;
        if (batch)
            params.batchWindow = 4096;
        const Schedule schedule = generateSchedule(params);
        const RunResult result = runSchedule(schedule);

        if (!result.failed) {
            if (!quiet) {
                std::fprintf(stderr, "  [%u/%u] seed %llu clean\n",
                             r + 1, runs,
                             static_cast<unsigned long long>(
                                 run_seed));
            }
            continue;
        }

        ++failures;
        const std::string path =
            tracePath(out_dir, run_seed, false);
        writeTrace(path, schedule, result);
        std::fprintf(stderr,
                     "  [%u/%u] seed %llu FAILED at op %u [%s] %s\n"
                     "          trace: %s\n",
                     r + 1, runs,
                     static_cast<unsigned long long>(run_seed),
                     result.failure.opIndex,
                     result.failure.detector.c_str(),
                     result.failure.detail.c_str(), path.c_str());

        // Minimize immediately: the shrunk trace is the artifact a
        // human debugs from.
        const ShrinkResult sr =
            shrinkSchedule(schedule.params, schedule.ops,
                           result.failure.detector, 300);
        if (sr.stillFails) {
            Schedule minimized;
            minimized.params = schedule.params;
            minimized.params.numOps =
                static_cast<unsigned>(sr.ops.size());
            minimized.ops = sr.ops;
            const RunResult rerun = runSchedule(minimized);
            const std::string min_path =
                tracePath(out_dir, run_seed, true);
            writeTrace(min_path, minimized, rerun);
            std::fprintf(stderr, "          minimized to %zu ops: %s\n",
                         sr.ops.size(), min_path.c_str());
        }
    }

    std::printf("fuzz: %u/%u runs clean (%u ops each, seeds %llu..%llu)\n",
                runs - failures, runs, ops,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed + runs - 1));
    return failures ? 1 : 0;
}
