/**
 * @file
 * The sweep CLI: run a job matrix in parallel, dump results as
 * JSON, and record or check golden-stats baselines.
 *
 * Examples:
 *
 *   # parallel fig3 sweep; stdout JSON is identical for any --jobs
 *   tools/sweep --matrix fig3 --scale 0.05 --jobs 8 --out fig3.json
 *
 *   # re-record the committed baselines (commit the diff with the
 *   # change that legitimately moved the numbers)
 *   tools/sweep --matrix golden --config configs/paper.cfg \
 *       --scale 0.05 --record --golden-dir tests/golden
 *
 *   # regression-check a build against the baselines
 *   tools/sweep --matrix golden --config configs/paper.cfg \
 *       --scale 0.05 --check --golden-dir tests/golden
 *
 * Exit status: 0 on success, 1 when a job fails or --check finds
 * out-of-tolerance drift.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/config_parser.hh"
#include "stats/golden.hh"
#include "sweep/matrix.hh"

using namespace mtlbsim;

namespace
{

void
usage()
{
    std::printf(
        "usage: sweep [options] [key=value ...]\n"
        "  --matrix NAME      job matrix: fig3 | fig4 | golden "
        "(default golden)\n"
        "  --scale S          dataset scale in (0,1] (default 0.05)\n"
        "  --jobs N           worker threads (default 1; 0 = all "
        "cores)\n"
        "  --filter SUBSTR    keep only jobs whose id contains "
        "SUBSTR\n"
        "  --list             print the matrix's job ids and exit\n"
        "  --config FILE      machine config file (golden matrix; "
        "key=value args\n"
        "                     override it)\n"
        "  --record           write per-job golden files into "
        "--golden-dir\n"
        "  --check            compare against golden files; exit 1 "
        "on drift\n"
        "  --golden-dir DIR   golden file directory (default "
        "tests/golden)\n"
        "  --tol-rel X        default relative tolerance for --check "
        "(default 0)\n"
        "  --tol-abs X        default absolute tolerance for --check "
        "(default 0)\n"
        "  --out FILE         write the full sweep JSON to FILE\n"
        "  --quiet            suppress per-job progress on stderr\n");
}

/** Golden-file name for a job id: '/' becomes '-'. */
std::string
goldenFileName(const std::string &id)
{
    std::string stem = id;
    for (auto &c : stem) {
        if (c == '/')
            c = '-';
    }
    return stem + ".json";
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    std::string matrix_name = "golden";
    double scale = 0.05;
    unsigned jobs = 1;
    std::string filter;
    bool list = false;
    bool record = false;
    bool check = false;
    std::string golden_dir = "tests/golden";
    std::string out_file;
    bool quiet = false;
    stats::ToleranceSpec tolerances;

    ConfigParser parser;

    auto next_arg = [&](int &i) -> const char * {
        if (++i >= argc) {
            usage();
            std::exit(2);
        }
        return argv[i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token == "--help" || token == "-h") {
            usage();
            return 0;
        } else if (token == "--matrix") {
            matrix_name = next_arg(i);
        } else if (token == "--scale") {
            scale = std::atof(next_arg(i));
        } else if (token == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(next_arg(i)));
        } else if (token == "--filter") {
            filter = next_arg(i);
        } else if (token == "--list") {
            list = true;
        } else if (token == "--config") {
            parser.parseFile(next_arg(i));
        } else if (token == "--record") {
            record = true;
        } else if (token == "--check") {
            check = true;
        } else if (token == "--golden-dir") {
            golden_dir = next_arg(i);
        } else if (token == "--tol-rel") {
            tolerances.fallback.rel = std::atof(next_arg(i));
        } else if (token == "--tol-abs") {
            tolerances.fallback.abs = std::atof(next_arg(i));
        } else if (token == "--out") {
            out_file = next_arg(i);
        } else if (token == "--quiet") {
            quiet = true;
        } else if (token.find('=') != std::string::npos) {
            const auto eq = token.find('=');
            parser.set(token.substr(0, eq), token.substr(eq + 1));
        } else {
            std::fprintf(stderr, "unknown option: %s\n",
                         token.c_str());
            usage();
            return 2;
        }
    }
    if (record && check) {
        std::fprintf(stderr,
                     "--record and --check are mutually exclusive\n");
        return 2;
    }

    auto matrix =
        sweep::makeMatrix(matrix_name, scale, parser.config());
    if (!filter.empty()) {
        std::vector<sweep::SweepJob> kept;
        for (auto &job : matrix.jobs) {
            if (job.id.find(filter) != std::string::npos)
                kept.push_back(std::move(job));
        }
        matrix.jobs = std::move(kept);
    }
    if (list) {
        for (const auto &job : matrix.jobs)
            std::printf("%s\n", job.id.c_str());
        return 0;
    }
    if (matrix.jobs.empty()) {
        std::fprintf(stderr, "no jobs (filter too strict?)\n");
        return 2;
    }

    sweep::SweepOptions options;
    options.jobs = jobs;
    options.captureStats = true;

    sweep::SweepRunner::Progress progress;
    if (!quiet) {
        progress = [](const sweep::SweepResult &r, std::size_t done,
                      std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] %s%s%s\n", done, total,
                         r.id.c_str(), r.ok ? "" : " FAILED: ",
                         r.ok ? "" : r.error.c_str());
        };
    }

    const auto results =
        sweep::SweepRunner(options).run(matrix.jobs, progress);

    int status = 0;
    for (const auto &r : results) {
        if (!r.ok) {
            std::fprintf(stderr, "job %s failed: %s\n", r.id.c_str(),
                         r.error.c_str());
            status = 1;
        }
    }

    if (!out_file.empty()) {
        std::ofstream out(out_file);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         out_file.c_str());
            return 1;
        }
        sweep::sweepToJson(results).dump(out);
        out << '\n';
    } else if (!record && !check) {
        sweep::sweepToJson(results).dump(std::cout);
        std::printf("\n");
    }

    if (record && status == 0) {
        for (const auto &r : results) {
            const std::string path =
                golden_dir + "/" + goldenFileName(r.id);
            stats::writeGoldenFile(path, sweep::resultToJson(r));
            std::fprintf(stderr, "recorded %s\n", path.c_str());
        }
    }

    if (check && status == 0) {
        std::size_t bad = 0;
        for (const auto &r : results) {
            const std::string path =
                golden_dir + "/" + goldenFileName(r.id);
            const auto golden = stats::readGoldenFile(path);
            const auto diffs = stats::compareGolden(
                golden, sweep::resultToJson(r), tolerances);
            if (diffs.empty()) {
                if (!quiet)
                    std::fprintf(stderr, "ok: %s\n", r.id.c_str());
                continue;
            }
            ++bad;
            std::fprintf(stderr, "DRIFT in %s (%zu stats):\n",
                         r.id.c_str(), diffs.size());
            for (const auto &d : diffs)
                std::fprintf(stderr, "  %s\n", d.describe().c_str());
        }
        if (bad) {
            std::fprintf(stderr, "%zu of %zu jobs drifted\n", bad,
                         results.size());
            status = 1;
        } else {
            std::fprintf(stderr, "all %zu jobs match the goldens\n",
                         results.size());
        }
    }
    return status;
}
