# Empty dependencies file for test_mtlb.
# This may be replaced when dependencies are built.
