file(REMOVE_RECURSE
  "CMakeFiles/test_mtlb.dir/test_mtlb.cc.o"
  "CMakeFiles/test_mtlb.dir/test_mtlb.cc.o.d"
  "test_mtlb"
  "test_mtlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mtlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
