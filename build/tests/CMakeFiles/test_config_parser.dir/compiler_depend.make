# Empty compiler generated dependencies file for test_config_parser.
# This may be replaced when dependencies are built.
