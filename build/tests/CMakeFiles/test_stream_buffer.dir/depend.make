# Empty dependencies file for test_stream_buffer.
# This may be replaced when dependencies are built.
