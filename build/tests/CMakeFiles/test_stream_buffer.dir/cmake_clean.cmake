file(REMOVE_RECURSE
  "CMakeFiles/test_stream_buffer.dir/test_stream_buffer.cc.o"
  "CMakeFiles/test_stream_buffer.dir/test_stream_buffer.cc.o.d"
  "test_stream_buffer"
  "test_stream_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
