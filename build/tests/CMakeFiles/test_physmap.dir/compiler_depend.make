# Empty compiler generated dependencies file for test_physmap.
# This may be replaced when dependencies are built.
