file(REMOVE_RECURSE
  "CMakeFiles/test_physmap.dir/test_physmap.cc.o"
  "CMakeFiles/test_physmap.dir/test_physmap.cc.o.d"
  "test_physmap"
  "test_physmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
