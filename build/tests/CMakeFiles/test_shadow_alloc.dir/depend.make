# Empty dependencies file for test_shadow_alloc.
# This may be replaced when dependencies are built.
