file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_alloc.dir/test_shadow_alloc.cc.o"
  "CMakeFiles/test_shadow_alloc.dir/test_shadow_alloc.cc.o.d"
  "test_shadow_alloc"
  "test_shadow_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
