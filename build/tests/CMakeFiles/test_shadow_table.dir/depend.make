# Empty dependencies file for test_shadow_table.
# This may be replaced when dependencies are built.
