file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_table.dir/test_shadow_table.cc.o"
  "CMakeFiles/test_shadow_table.dir/test_shadow_table.cc.o.d"
  "test_shadow_table"
  "test_shadow_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
