file(REMOVE_RECURSE
  "CMakeFiles/test_promotion.dir/test_promotion.cc.o"
  "CMakeFiles/test_promotion.dir/test_promotion.cc.o.d"
  "test_promotion"
  "test_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
