# Empty dependencies file for test_promotion.
# This may be replaced when dependencies are built.
