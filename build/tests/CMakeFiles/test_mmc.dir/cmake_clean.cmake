file(REMOVE_RECURSE
  "CMakeFiles/test_mmc.dir/test_mmc.cc.o"
  "CMakeFiles/test_mmc.dir/test_mmc.cc.o.d"
  "test_mmc"
  "test_mmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
