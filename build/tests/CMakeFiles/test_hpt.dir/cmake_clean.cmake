file(REMOVE_RECURSE
  "CMakeFiles/test_hpt.dir/test_hpt.cc.o"
  "CMakeFiles/test_hpt.dir/test_hpt.cc.o.d"
  "test_hpt"
  "test_hpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
