file(REMOVE_RECURSE
  "libmtlbsim_os.a"
)
