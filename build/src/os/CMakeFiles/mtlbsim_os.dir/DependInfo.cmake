
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/address_space.cc" "src/os/CMakeFiles/mtlbsim_os.dir/address_space.cc.o" "gcc" "src/os/CMakeFiles/mtlbsim_os.dir/address_space.cc.o.d"
  "/root/repo/src/os/frame_alloc.cc" "src/os/CMakeFiles/mtlbsim_os.dir/frame_alloc.cc.o" "gcc" "src/os/CMakeFiles/mtlbsim_os.dir/frame_alloc.cc.o.d"
  "/root/repo/src/os/hpt.cc" "src/os/CMakeFiles/mtlbsim_os.dir/hpt.cc.o" "gcc" "src/os/CMakeFiles/mtlbsim_os.dir/hpt.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/mtlbsim_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/mtlbsim_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/shadow_alloc.cc" "src/os/CMakeFiles/mtlbsim_os.dir/shadow_alloc.cc.o" "gcc" "src/os/CMakeFiles/mtlbsim_os.dir/shadow_alloc.cc.o.d"
  "/root/repo/src/os/shadow_page_pool.cc" "src/os/CMakeFiles/mtlbsim_os.dir/shadow_page_pool.cc.o" "gcc" "src/os/CMakeFiles/mtlbsim_os.dir/shadow_page_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mtlbsim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mtlbsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtlbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/mtlbsim_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mtlbsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mmc/CMakeFiles/mtlbsim_mmc.dir/DependInfo.cmake"
  "/root/repo/build/src/mtlb/CMakeFiles/mtlbsim_mtlb.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mtlbsim_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
