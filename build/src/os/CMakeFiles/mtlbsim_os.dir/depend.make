# Empty dependencies file for mtlbsim_os.
# This may be replaced when dependencies are built.
