file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_os.dir/address_space.cc.o"
  "CMakeFiles/mtlbsim_os.dir/address_space.cc.o.d"
  "CMakeFiles/mtlbsim_os.dir/frame_alloc.cc.o"
  "CMakeFiles/mtlbsim_os.dir/frame_alloc.cc.o.d"
  "CMakeFiles/mtlbsim_os.dir/hpt.cc.o"
  "CMakeFiles/mtlbsim_os.dir/hpt.cc.o.d"
  "CMakeFiles/mtlbsim_os.dir/kernel.cc.o"
  "CMakeFiles/mtlbsim_os.dir/kernel.cc.o.d"
  "CMakeFiles/mtlbsim_os.dir/shadow_alloc.cc.o"
  "CMakeFiles/mtlbsim_os.dir/shadow_alloc.cc.o.d"
  "CMakeFiles/mtlbsim_os.dir/shadow_page_pool.cc.o"
  "CMakeFiles/mtlbsim_os.dir/shadow_page_pool.cc.o.d"
  "libmtlbsim_os.a"
  "libmtlbsim_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
