file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_cpu.dir/cpu.cc.o"
  "CMakeFiles/mtlbsim_cpu.dir/cpu.cc.o.d"
  "libmtlbsim_cpu.a"
  "libmtlbsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
