# Empty compiler generated dependencies file for mtlbsim_cpu.
# This may be replaced when dependencies are built.
