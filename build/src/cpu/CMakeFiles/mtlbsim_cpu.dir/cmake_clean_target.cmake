file(REMOVE_RECURSE
  "libmtlbsim_cpu.a"
)
