file(REMOVE_RECURSE
  "libmtlbsim_mem.a"
)
