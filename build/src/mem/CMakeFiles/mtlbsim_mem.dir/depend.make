# Empty dependencies file for mtlbsim_mem.
# This may be replaced when dependencies are built.
