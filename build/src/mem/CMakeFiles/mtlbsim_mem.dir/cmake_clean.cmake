file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_mem.dir/dram.cc.o"
  "CMakeFiles/mtlbsim_mem.dir/dram.cc.o.d"
  "CMakeFiles/mtlbsim_mem.dir/physmap.cc.o"
  "CMakeFiles/mtlbsim_mem.dir/physmap.cc.o.d"
  "libmtlbsim_mem.a"
  "libmtlbsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
