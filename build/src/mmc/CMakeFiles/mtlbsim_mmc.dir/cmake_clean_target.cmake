file(REMOVE_RECURSE
  "libmtlbsim_mmc.a"
)
