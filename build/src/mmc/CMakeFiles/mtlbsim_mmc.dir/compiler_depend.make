# Empty compiler generated dependencies file for mtlbsim_mmc.
# This may be replaced when dependencies are built.
