# Empty dependencies file for mtlbsim_mmc.
# This may be replaced when dependencies are built.
