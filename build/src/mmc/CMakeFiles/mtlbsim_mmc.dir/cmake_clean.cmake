file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_mmc.dir/mmc.cc.o"
  "CMakeFiles/mtlbsim_mmc.dir/mmc.cc.o.d"
  "CMakeFiles/mtlbsim_mmc.dir/stream_buffer.cc.o"
  "CMakeFiles/mtlbsim_mmc.dir/stream_buffer.cc.o.d"
  "libmtlbsim_mmc.a"
  "libmtlbsim_mmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_mmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
