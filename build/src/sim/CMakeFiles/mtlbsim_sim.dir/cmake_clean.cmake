file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_sim.dir/config_parser.cc.o"
  "CMakeFiles/mtlbsim_sim.dir/config_parser.cc.o.d"
  "CMakeFiles/mtlbsim_sim.dir/system.cc.o"
  "CMakeFiles/mtlbsim_sim.dir/system.cc.o.d"
  "libmtlbsim_sim.a"
  "libmtlbsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
