# Empty dependencies file for mtlbsim_sim.
# This may be replaced when dependencies are built.
