
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config_parser.cc" "src/sim/CMakeFiles/mtlbsim_sim.dir/config_parser.cc.o" "gcc" "src/sim/CMakeFiles/mtlbsim_sim.dir/config_parser.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/mtlbsim_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/mtlbsim_sim.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mtlbsim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mtlbsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtlbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mtlbsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mtlbsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/mtlbsim_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mtlb/CMakeFiles/mtlbsim_mtlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mmc/CMakeFiles/mtlbsim_mmc.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mtlbsim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mtlbsim_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
