file(REMOVE_RECURSE
  "libmtlbsim_sim.a"
)
