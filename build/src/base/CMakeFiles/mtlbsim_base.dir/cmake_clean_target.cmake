file(REMOVE_RECURSE
  "libmtlbsim_base.a"
)
