file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_base.dir/debug.cc.o"
  "CMakeFiles/mtlbsim_base.dir/debug.cc.o.d"
  "CMakeFiles/mtlbsim_base.dir/logging.cc.o"
  "CMakeFiles/mtlbsim_base.dir/logging.cc.o.d"
  "libmtlbsim_base.a"
  "libmtlbsim_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
