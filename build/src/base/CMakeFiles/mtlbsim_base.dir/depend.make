# Empty dependencies file for mtlbsim_base.
# This may be replaced when dependencies are built.
