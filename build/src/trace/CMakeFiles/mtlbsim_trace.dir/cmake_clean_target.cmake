file(REMOVE_RECURSE
  "libmtlbsim_trace.a"
)
