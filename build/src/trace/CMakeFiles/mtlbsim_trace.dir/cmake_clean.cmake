file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_trace.dir/trace.cc.o"
  "CMakeFiles/mtlbsim_trace.dir/trace.cc.o.d"
  "libmtlbsim_trace.a"
  "libmtlbsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
