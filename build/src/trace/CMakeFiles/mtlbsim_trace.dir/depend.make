# Empty dependencies file for mtlbsim_trace.
# This may be replaced when dependencies are built.
