file(REMOVE_RECURSE
  "libmtlbsim_tlb.a"
)
