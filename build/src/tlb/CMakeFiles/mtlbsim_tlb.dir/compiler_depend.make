# Empty compiler generated dependencies file for mtlbsim_tlb.
# This may be replaced when dependencies are built.
