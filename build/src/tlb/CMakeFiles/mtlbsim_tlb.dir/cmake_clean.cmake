file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_tlb.dir/tlb.cc.o"
  "CMakeFiles/mtlbsim_tlb.dir/tlb.cc.o.d"
  "libmtlbsim_tlb.a"
  "libmtlbsim_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
