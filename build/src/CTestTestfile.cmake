# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("stats")
subdirs("mem")
subdirs("bus")
subdirs("cache")
subdirs("tlb")
subdirs("mtlb")
subdirs("mmc")
subdirs("os")
subdirs("cpu")
subdirs("sim")
subdirs("trace")
subdirs("workloads")
