file(REMOVE_RECURSE
  "libmtlbsim_cache.a"
)
