# Empty compiler generated dependencies file for mtlbsim_cache.
# This may be replaced when dependencies are built.
