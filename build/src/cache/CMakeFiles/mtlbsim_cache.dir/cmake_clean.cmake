file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_cache.dir/cache.cc.o"
  "CMakeFiles/mtlbsim_cache.dir/cache.cc.o.d"
  "libmtlbsim_cache.a"
  "libmtlbsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
