# Empty compiler generated dependencies file for mtlbsim_workloads.
# This may be replaced when dependencies are built.
