
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/compress.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/compress.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/compress.cc.o.d"
  "/root/repo/src/workloads/em3d.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/em3d.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/em3d.cc.o.d"
  "/root/repo/src/workloads/experiment.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/experiment.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/experiment.cc.o.d"
  "/root/repo/src/workloads/gcc.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/gcc.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/gcc.cc.o.d"
  "/root/repo/src/workloads/oltp.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/oltp.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/oltp.cc.o.d"
  "/root/repo/src/workloads/radix.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/radix.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/radix.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/vortex.cc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/vortex.cc.o" "gcc" "src/workloads/CMakeFiles/mtlbsim_workloads.dir/vortex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mtlbsim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtlbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mtlbsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mtlbsim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/mtlbsim_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mmc/CMakeFiles/mtlbsim_mmc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtlbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mtlbsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mtlbsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mtlb/CMakeFiles/mtlbsim_mtlb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mtlbsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
