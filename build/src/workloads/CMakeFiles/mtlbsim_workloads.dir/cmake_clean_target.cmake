file(REMOVE_RECURSE
  "libmtlbsim_workloads.a"
)
