file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_workloads.dir/compress.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/compress.cc.o.d"
  "CMakeFiles/mtlbsim_workloads.dir/em3d.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/em3d.cc.o.d"
  "CMakeFiles/mtlbsim_workloads.dir/experiment.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/experiment.cc.o.d"
  "CMakeFiles/mtlbsim_workloads.dir/gcc.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/gcc.cc.o.d"
  "CMakeFiles/mtlbsim_workloads.dir/oltp.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/oltp.cc.o.d"
  "CMakeFiles/mtlbsim_workloads.dir/radix.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/radix.cc.o.d"
  "CMakeFiles/mtlbsim_workloads.dir/registry.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/registry.cc.o.d"
  "CMakeFiles/mtlbsim_workloads.dir/vortex.cc.o"
  "CMakeFiles/mtlbsim_workloads.dir/vortex.cc.o.d"
  "libmtlbsim_workloads.a"
  "libmtlbsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
