file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_mtlb.dir/mtlb.cc.o"
  "CMakeFiles/mtlbsim_mtlb.dir/mtlb.cc.o.d"
  "libmtlbsim_mtlb.a"
  "libmtlbsim_mtlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_mtlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
