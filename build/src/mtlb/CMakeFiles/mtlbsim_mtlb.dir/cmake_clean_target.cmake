file(REMOVE_RECURSE
  "libmtlbsim_mtlb.a"
)
