# Empty dependencies file for mtlbsim_mtlb.
# This may be replaced when dependencies are built.
