file(REMOVE_RECURSE
  "libmtlbsim_bus.a"
)
