# Empty dependencies file for mtlbsim_bus.
# This may be replaced when dependencies are built.
