file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_bus.dir/bus.cc.o"
  "CMakeFiles/mtlbsim_bus.dir/bus.cc.o.d"
  "libmtlbsim_bus.a"
  "libmtlbsim_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
