# Empty compiler generated dependencies file for mtlbsim_bus.
# This may be replaced when dependencies are built.
