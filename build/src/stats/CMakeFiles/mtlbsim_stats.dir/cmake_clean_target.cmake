file(REMOVE_RECURSE
  "libmtlbsim_stats.a"
)
