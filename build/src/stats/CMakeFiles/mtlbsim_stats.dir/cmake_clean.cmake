file(REMOVE_RECURSE
  "CMakeFiles/mtlbsim_stats.dir/stats.cc.o"
  "CMakeFiles/mtlbsim_stats.dir/stats.cc.o.d"
  "libmtlbsim_stats.a"
  "libmtlbsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtlbsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
