# Empty compiler generated dependencies file for mtlbsim_stats.
# This may be replaced when dependencies are built.
