
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_machine.cpp" "examples/CMakeFiles/custom_machine.dir/custom_machine.cpp.o" "gcc" "examples/CMakeFiles/custom_machine.dir/custom_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mtlbsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mtlbsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtlbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mtlbsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mtlbsim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/mtlbsim_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mmc/CMakeFiles/mtlbsim_mmc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtlbsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mtlbsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mtlbsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mtlb/CMakeFiles/mtlbsim_mtlb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mtlbsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mtlbsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
