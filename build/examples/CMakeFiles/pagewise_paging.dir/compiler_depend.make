# Empty compiler generated dependencies file for pagewise_paging.
# This may be replaced when dependencies are built.
