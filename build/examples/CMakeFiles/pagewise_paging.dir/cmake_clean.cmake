file(REMOVE_RECURSE
  "CMakeFiles/pagewise_paging.dir/pagewise_paging.cpp.o"
  "CMakeFiles/pagewise_paging.dir/pagewise_paging.cpp.o.d"
  "pagewise_paging"
  "pagewise_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagewise_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
