# Empty compiler generated dependencies file for fig3_runtimes.
# This may be replaced when dependencies are built.
