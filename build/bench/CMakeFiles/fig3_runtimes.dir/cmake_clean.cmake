file(REMOVE_RECURSE
  "CMakeFiles/fig3_runtimes.dir/fig3_runtimes.cc.o"
  "CMakeFiles/fig3_runtimes.dir/fig3_runtimes.cc.o.d"
  "fig3_runtimes"
  "fig3_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
