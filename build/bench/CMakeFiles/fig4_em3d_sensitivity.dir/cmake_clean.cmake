file(REMOVE_RECURSE
  "CMakeFiles/fig4_em3d_sensitivity.dir/fig4_em3d_sensitivity.cc.o"
  "CMakeFiles/fig4_em3d_sensitivity.dir/fig4_em3d_sensitivity.cc.o.d"
  "fig4_em3d_sensitivity"
  "fig4_em3d_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_em3d_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
