# Empty dependencies file for fig4_em3d_sensitivity.
# This may be replaced when dependencies are built.
