# Empty dependencies file for promotion_ablation.
# This may be replaced when dependencies are built.
