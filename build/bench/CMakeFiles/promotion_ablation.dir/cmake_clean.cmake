file(REMOVE_RECURSE
  "CMakeFiles/promotion_ablation.dir/promotion_ablation.cc.o"
  "CMakeFiles/promotion_ablation.dir/promotion_ablation.cc.o.d"
  "promotion_ablation"
  "promotion_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promotion_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
