# Empty compiler generated dependencies file for sec33_init_costs.
# This may be replaced when dependencies are built.
