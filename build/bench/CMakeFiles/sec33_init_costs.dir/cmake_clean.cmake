file(REMOVE_RECURSE
  "CMakeFiles/sec33_init_costs.dir/sec33_init_costs.cc.o"
  "CMakeFiles/sec33_init_costs.dir/sec33_init_costs.cc.o.d"
  "sec33_init_costs"
  "sec33_init_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec33_init_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
