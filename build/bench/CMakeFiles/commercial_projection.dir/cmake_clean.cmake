file(REMOVE_RECURSE
  "CMakeFiles/commercial_projection.dir/commercial_projection.cc.o"
  "CMakeFiles/commercial_projection.dir/commercial_projection.cc.o.d"
  "commercial_projection"
  "commercial_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commercial_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
