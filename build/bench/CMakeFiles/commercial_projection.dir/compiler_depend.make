# Empty compiler generated dependencies file for commercial_projection.
# This may be replaced when dependencies are built.
