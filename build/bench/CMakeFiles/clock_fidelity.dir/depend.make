# Empty dependencies file for clock_fidelity.
# This may be replaced when dependencies are built.
