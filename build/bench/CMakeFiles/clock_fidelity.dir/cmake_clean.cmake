file(REMOVE_RECURSE
  "CMakeFiles/clock_fidelity.dir/clock_fidelity.cc.o"
  "CMakeFiles/clock_fidelity.dir/clock_fidelity.cc.o.d"
  "clock_fidelity"
  "clock_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
