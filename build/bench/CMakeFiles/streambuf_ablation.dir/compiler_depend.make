# Empty compiler generated dependencies file for streambuf_ablation.
# This may be replaced when dependencies are built.
