file(REMOVE_RECURSE
  "CMakeFiles/streambuf_ablation.dir/streambuf_ablation.cc.o"
  "CMakeFiles/streambuf_ablation.dir/streambuf_ablation.cc.o.d"
  "streambuf_ablation"
  "streambuf_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streambuf_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
