file(REMOVE_RECURSE
  "CMakeFiles/swap_ablation.dir/swap_ablation.cc.o"
  "CMakeFiles/swap_ablation.dir/swap_ablation.cc.o.d"
  "swap_ablation"
  "swap_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
