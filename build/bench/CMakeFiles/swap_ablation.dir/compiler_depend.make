# Empty compiler generated dependencies file for swap_ablation.
# This may be replaced when dependencies are built.
