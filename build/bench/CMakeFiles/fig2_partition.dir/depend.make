# Empty dependencies file for fig2_partition.
# This may be replaced when dependencies are built.
