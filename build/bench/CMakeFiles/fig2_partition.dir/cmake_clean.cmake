file(REMOVE_RECURSE
  "CMakeFiles/fig2_partition.dir/fig2_partition.cc.o"
  "CMakeFiles/fig2_partition.dir/fig2_partition.cc.o.d"
  "fig2_partition"
  "fig2_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
