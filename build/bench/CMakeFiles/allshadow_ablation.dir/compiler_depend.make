# Empty compiler generated dependencies file for allshadow_ablation.
# This may be replaced when dependencies are built.
