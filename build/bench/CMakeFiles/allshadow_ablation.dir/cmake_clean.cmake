file(REMOVE_RECURSE
  "CMakeFiles/allshadow_ablation.dir/allshadow_ablation.cc.o"
  "CMakeFiles/allshadow_ablation.dir/allshadow_ablation.cc.o.d"
  "allshadow_ablation"
  "allshadow_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allshadow_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
