file(REMOVE_RECURSE
  "CMakeFiles/recolor_ablation.dir/recolor_ablation.cc.o"
  "CMakeFiles/recolor_ablation.dir/recolor_ablation.cc.o.d"
  "recolor_ablation"
  "recolor_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recolor_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
