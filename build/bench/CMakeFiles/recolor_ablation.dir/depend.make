# Empty dependencies file for recolor_ablation.
# This may be replaced when dependencies are built.
