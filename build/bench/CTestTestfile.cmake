# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig2 "/root/repo/build/bench/fig2_partition")
set_tests_properties(bench_smoke_fig2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3 "/root/repo/build/bench/fig3_runtimes" "0.05")
set_tests_properties(bench_smoke_fig3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4 "/root/repo/build/bench/fig4_em3d_sensitivity" "0.05")
set_tests_properties(bench_smoke_fig4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sec33 "/root/repo/build/bench/sec33_init_costs" "0.05")
set_tests_properties(bench_smoke_sec33 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_swap "/root/repo/build/bench/swap_ablation")
set_tests_properties(bench_smoke_swap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_recolor "/root/repo/build/bench/recolor_ablation")
set_tests_properties(bench_smoke_recolor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_promotion "/root/repo/build/bench/promotion_ablation" "0.05")
set_tests_properties(bench_smoke_promotion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_streambuf "/root/repo/build/bench/streambuf_ablation" "0.05")
set_tests_properties(bench_smoke_streambuf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_commercial "/root/repo/build/bench/commercial_projection")
set_tests_properties(bench_smoke_commercial PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_clock "/root/repo/build/bench/clock_fidelity")
set_tests_properties(bench_smoke_clock PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
