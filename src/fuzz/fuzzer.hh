/**
 * @file
 * The lockstep differential fuzzer.
 *
 * Drives a real System through a schedule while an OracleMemory
 * reference model shadows every mapping event through the kernel's
 * KernelObserver hooks. After every access the fuzzer compares the
 * machine against the oracle:
 *
 *  - translation: the TLB entry covering the access — followed
 *    through the shadow table when it names a shadow address — must
 *    resolve to the oracle's real frame;
 *  - presence and protection: the access must leave the page
 *    present, under a TLB entry whose protection matches the
 *    oracle's region;
 *  - R/D soundness: hardware referenced/dirty bits (table bits
 *    joined with the MTLB's deferred copies, valid PTEs only) may
 *    never exceed what the program actually did;
 *  - swap results: a pagewise swap must write exactly the oracle's
 *    dirty pages; a whole-superpage swap exactly the present ones;
 *  - superpage records and every TranslationAuditor invariant.
 *
 * With FuzzParams::cores > 1 the op stream round-robins over the
 * cores, all bound to process 0 (the oracle stays flat per address
 * space). After every access the fuzzer validates not just the
 * issuing core's entry but any translation a remote core still
 * caches for that address, and the periodic auditor pass covers the
 * cross-core-coherence invariant — so a missed shootdown broadcast
 * is caught either way.
 *
 * On a mismatch the run stops with a detector tag and the schedule
 * can be written to a versioned `.fztrace` replay file; replaying a
 * trace reproduces the run — including its final statistics —
 * byte-identically. A self-test mode asserts that every
 * FaultInjector corruption class is caught.
 */

#ifndef MTLBSIM_FUZZ_FUZZER_HH
#define MTLBSIM_FUZZ_FUZZER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/oracle.hh"
#include "fuzz/schedule.hh"
#include "sim/system.hh"
#include "stats/json.hh"

namespace mtlbsim::fuzz
{

/** The `.fztrace` format marker and version. */
constexpr const char *fztraceFormat = "mtlbsim-fztrace";
constexpr unsigned fztraceVersion = 1;

/** One detected mismatch. */
struct FuzzFailure
{
    unsigned opIndex = 0;
    /** Detector category — stable across reruns of the same bug, so
     *  the shrinker can insist on reproducing the *same* failure:
     *  "translation", "presence", "protection", "rd-soundness",
     *  "swap-result", "superpage-records", "oracle-events",
     *  "audit:<invariant>", or "exception". */
    std::string detector;
    std::string detail;
};

/** Outcome of running one schedule. */
struct RunResult
{
    bool failed = false;
    FuzzFailure failure;
    unsigned opsExecuted = 0;
    /** Root stats at the point the run stopped (end of schedule, or
     *  the failing op); deterministic, so replay can compare it
     *  byte-for-byte. */
    json::Value finalStats;
};

/**
 * One fuzzing run: a fresh System lockstepped against a fresh
 * oracle. Single-use — construct a new instance per schedule.
 */
class DifferentialFuzzer
{
  public:
    explicit DifferentialFuzzer(const FuzzParams &params);
    ~DifferentialFuzzer();

    DifferentialFuzzer(const DifferentialFuzzer &) = delete;
    DifferentialFuzzer &operator=(const DifferentialFuzzer &) = delete;

    /** Execute @p ops until done or the first mismatch. */
    RunResult run(const std::vector<FuzzOp> &ops);

    System &system() { return *sys_; }
    const OracleMemory &oracle() const { return oracle_; }

  private:
    class ObserverAdapter;

    void applyOp(const FuzzOp &op, unsigned index);
    void applyInject(FaultKind kind, unsigned index);
    void checkAccess(Addr vaddr, unsigned index, unsigned core);
    void runPeriodicChecks(unsigned index);
    void fail(unsigned index, std::string detector, std::string detail);

    FuzzParams params_;
    OracleMemory oracle_;
    std::unique_ptr<ObserverAdapter> adapter_;
    std::unique_ptr<System> sys_;
    std::optional<FuzzFailure> failure_;
};

/** Convenience: run @p schedule on a fresh fuzzer. */
RunResult runSchedule(const Schedule &schedule);

/** @name Self-test: every FaultInjector class must be caught */
/** @{ */

/** Machine/checking parameters the self-test schedules assume. */
FuzzParams selfTestParams(unsigned num_ops);

/** Hand-crafted minimal schedule that plants @p kind and gives the
 *  fuzzer one chance to catch it. */
Schedule selfTestSchedule(FaultKind kind);

struct SelfTestOutcome
{
    FaultKind kind = FaultKind::DoubleMapFrame;
    bool detected = false;
    FuzzFailure failure;        ///< valid when detected
    unsigned shrunkOps = 0;     ///< minimized reproducer size
    bool shrunkStillFails = false;
};

/** Run the self-test for every fault kind; @p shrink additionally
 *  minimizes each reproducer. */
std::vector<SelfTestOutcome> runSelfTest(bool shrink);

/** @} */

/** @name .fztrace files */
/** @{ */
json::Value traceToJson(const Schedule &schedule,
                        const RunResult &result);

struct FuzzTrace
{
    Schedule schedule;
    bool hasFailure = false;
    FuzzFailure failure;
    json::Value finalStats;     ///< null when the trace omitted it
};

FuzzTrace traceFromJson(const json::Value &v);
void writeTrace(const std::string &path, const Schedule &schedule,
                const RunResult &result);
FuzzTrace loadTrace(const std::string &path);
/** @} */

} // namespace mtlbsim::fuzz

#endif // MTLBSIM_FUZZ_FUZZER_HH
