#include "fuzz/fuzzer.hh"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "base/logging.hh"
#include "check/fault_injector.hh"
#include "check/translation_auditor.hh"
#include "fuzz/shrink.hh"

namespace mtlbsim::fuzz
{

namespace
{

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

SystemConfig
makeSystemConfig(const FuzzParams &p)
{
    SystemConfig cfg;
    // Multi-core fuzzing: every core is bound to process 0, so the
    // flat per-address-space oracle stays valid; the cores disagree
    // only in what their private TLBs cache.
    cfg.cores = p.cores ? p.cores : 1;
    cfg.tlbEntries = p.tlbEntries;
    cfg.mtlb.numEntries = p.mtlbEntries;
    cfg.mtlb.associativity = p.mtlbAssoc;
    cfg.installedBytes = p.installedBytes;
    cfg.cache.sizeBytes = p.cacheBytes;
    cfg.cpu.l0Entries = p.l0Entries;
    cfg.cpu.batchEnable = p.batchWindow != 0;
    cfg.cpu.batchWindow = p.batchWindow;
    cfg.kernel.allShadowMode = p.allShadowMode;
    cfg.kernel.onlinePromotion = p.onlinePromotion;
    // A tiny threshold so promotion actually triggers within a few
    // thousand ops on the deliberately thrashing TLB.
    cfg.kernel.promotionThresholdCycles = 2000;
    cfg.kernel.frameSeed = p.frameSeed;
    // The shadow region defaults to the paper's 512 MB; the kernel's
    // bucket allocator scales its partition to whatever it gets
    // (BucketShadowAllocator::partitionFor). The model checker
    // shrinks it so per-state audits stay cheap; fuzzing keeps the
    // default and gets pressure from the small TLB, MTLB, cache, and
    // installed memory instead.
    cfg.shadow.size = p.shadowBytes;
    return cfg;
}

} // namespace

/** Forwards kernel mapping events to the oracle, verbatim. */
class DifferentialFuzzer::ObserverAdapter : public KernelObserver
{
  public:
    explicit ObserverAdapter(OracleMemory &oracle) : oracle_(oracle) {}

    void
    onPageMapped(Addr vbase, Addr pfn) override
    {
        oracle_.onPageMapped(vbase, pfn);
    }

    void
    onPageUnmapped(Addr vbase, Addr pfn) override
    {
        oracle_.onPageUnmapped(vbase, pfn);
    }

    void
    onSuperpageCreated(Addr vbase, Addr shadow_base,
                       unsigned size_class) override
    {
        oracle_.onSuperpageCreated(vbase, shadow_base, size_class);
    }

    void
    onSuperpageDemoted(Addr vbase) override
    {
        oracle_.onSuperpageDemoted(vbase);
    }

    void
    onShadowFault(Addr vaddr) override
    {
        oracle_.onShadowFault(vaddr);
    }

  private:
    OracleMemory &oracle_;
};

DifferentialFuzzer::DifferentialFuzzer(const FuzzParams &params)
    : params_(params),
      adapter_(std::make_unique<ObserverAdapter>(oracle_)),
      sys_(std::make_unique<System>(makeSystemConfig(params)))
{
    sys_->kernel().setObserver(adapter_.get());

    AddressSpace &space = sys_->kernel().addressSpace();
    space.addRegion("data", fuzzDataBase, fuzzDataBytes,
                    PageProtection{true, true});
    space.addRegion("rodata", fuzzRoBase, fuzzRoBytes,
                    PageProtection{false, true});
    oracle_.addRegion(fuzzDataBase, fuzzDataBytes, true);
    oracle_.addRegion(fuzzRoBase, fuzzRoBytes, false);
}

DifferentialFuzzer::~DifferentialFuzzer()
{
    sys_->kernel().setObserver(nullptr);
}

RunResult
DifferentialFuzzer::run(const std::vector<FuzzOp> &ops)
{
    RunResult result;
    const unsigned every = params_.auditEvery ? params_.auditEvery : 1;

    for (unsigned i = 0; i < ops.size() && !failure_; ++i) {
        try {
            applyOp(ops[i], i);
            if (!failure_ &&
                ((i + 1) % every == 0 || i + 1 == ops.size())) {
                // Checks read statistics: realize deferred batch
                // counts on every core so every sweep sees final
                // values.
                for (unsigned c = 0; c < sys_->numCores(); ++c)
                    sys_->cpu(c).flushBatch();
                runPeriodicChecks(i);
            }
        } catch (const FatalError &e) {
            fail(i, "exception", e.what());
        } catch (const PanicError &e) {
            fail(i, "exception", e.what());
        }
        result.opsExecuted = i + 1;
    }

    if (failure_) {
        result.failed = true;
        result.failure = *failure_;
    }
    for (unsigned c = 0; c < sys_->numCores(); ++c)
        sys_->cpu(c).flushBatch();
    result.finalStats = sys_->rootStats().toJson();
    return result;
}

void
DifferentialFuzzer::fail(unsigned index, std::string detector,
                         std::string detail)
{
    if (failure_)
        return;
    failure_ = FuzzFailure{index, std::move(detector),
                           std::move(detail)};
}

void
DifferentialFuzzer::applyOp(const FuzzOp &op, unsigned index)
{
    // Round-robin the op stream over the cores (all bound to process
    // 0), so every core builds private TLB/L0 state over the same
    // address space and only shootdown broadcasts keep them coherent.
    const unsigned core = index % sys_->numCores();
    Cpu &cpu = sys_->cpu(core);
    Kernel &kernel = sys_->kernel();
    AddressSpace &space = kernel.addressSpace();

    switch (op.kind) {
      case OpKind::Load:
      case OpKind::LoadRo:
        cpu.load(op.a);
        oracle_.noteAccess(op.a, false);
        checkAccess(op.a, index, core);
        break;

      case OpKind::Store:
        cpu.store(op.a);
        oracle_.noteAccess(op.a, true);
        checkAccess(op.a, index, core);
        break;

      case OpKind::Remap:
        cpu.remap(op.a, op.b);
        break;

      case OpKind::SwapPagewise:
      case OpKind::SwapWhole: {
        const ShadowSuperpage *sp = space.findSuperpage(op.a);
        // Skip when no superpage covers the address. Single-page
        // shadow mappings (recoloring, all-shadow) are also skipped:
        // they are not paging units, and leaving one swapped out
        // would trip remap()'s demotion path on the absent page.
        if (sp == nullptr || sp->sizeClass == 0)
            return;
        const Addr vbase = sp->vbase;
        const bool pagewise = op.kind == OpKind::SwapPagewise;
        // Snapshot expectations first: the per-page unmap events the
        // swap emits update the oracle as they happen.
        const unsigned expect_present =
            oracle_.expectedWholeWrites(vbase);
        const unsigned expect_written =
            pagewise ? oracle_.expectedPagewiseWrites(vbase)
                     : expect_present;
        // Direct kernel calls bypass the Cpu wrappers, so name the
        // issuing core explicitly: the shootdown broadcast must skip
        // it and hit everyone else.
        kernel.setActiveCore(core);
        const SwapOutResult r =
            pagewise ? kernel.swapOutSuperpagePagewise(vbase, cpu.now())
                     : kernel.swapOutSuperpageWhole(vbase, cpu.now());
        if (r.pagesWritten != expect_written ||
            r.pagesClean != expect_present - expect_written) {
            std::ostringstream os;
            os << (pagewise ? "pagewise" : "whole")
               << " swap of superpage at " << hexAddr(vbase)
               << ": wrote " << r.pagesWritten << " / skipped "
               << r.pagesClean << ", oracle expects "
               << expect_written << " dirty of " << expect_present
               << " present";
            fail(index, "swap-result", os.str());
        }
        break;
      }

      case OpKind::Recolor: {
        const Addr vbase = pageBase(op.a);
        if (!space.isPagePresent(vbase))
            return;
        if (const ShadowSuperpage *sp = space.findSuperpage(vbase);
            sp != nullptr && sp->sizeClass != 0) {
            return;     // fixed superpage layout; not recolorable
        }
        const unsigned colors = static_cast<unsigned>(
            params_.cacheBytes >> basePageShift);
        cpu.recolorPage(vbase, static_cast<unsigned>(op.b) % colors);
        break;
      }

      case OpKind::Inject:
        applyInject(static_cast<FaultKind>(op.a), index);
        break;
    }
}

void
DifferentialFuzzer::checkAccess(Addr vaddr, unsigned index,
                                unsigned core)
{
    if (failure_)
        return;

    if (!oracle_.present(vaddr)) {
        fail(index, "presence",
             "oracle saw no frame installed for " + hexAddr(vaddr) +
                 " after the access completed");
        return;
    }

    const Addr oracle_pfn = *oracle_.frameOf(vaddr);
    const PhysMap &pm = sys_->physmap();

    // An entry on core c must resolve — through the shadow table
    // when it names a shadow address — to the oracle's frame.
    const auto validate = [&](unsigned c, const TlbEntry &e) {
        const Addr paddr = e.translate(vaddr);
        switch (pm.classify(paddr)) {
          case AddrKind::Real:
            if ((paddr >> basePageShift) != oracle_pfn) {
                std::ostringstream os;
                os << "core " << c << " TLB maps " << hexAddr(vaddr)
                   << " to real frame " << (paddr >> basePageShift)
                   << ", oracle says " << oracle_pfn;
                fail(index, "translation", os.str());
            }
            break;

          case AddrKind::Shadow: {
            const Addr spi = pm.shadowPageIndex(paddr);
            const ShadowPte &pte =
                sys_->memsys().mmc().shadowTable().entry(spi);
            if (!pte.valid) {
                fail(index, "translation",
                     "shadow PTE " + hexAddr(spi) + " for " +
                         hexAddr(vaddr) +
                         " is invalid right after the access");
            } else if (pte.realPfn != oracle_pfn) {
                std::ostringstream os;
                os << "shadow PTE " << hexAddr(spi) << " for "
                   << hexAddr(vaddr) << " names frame " << pte.realPfn
                   << ", oracle says " << oracle_pfn;
                fail(index, "translation", os.str());
            }
            break;
          }

          default:
            fail(index, "translation",
                 "core " + std::to_string(c) + " TLB maps " +
                     hexAddr(vaddr) + " to non-memory address " +
                     hexAddr(paddr));
            break;
        }
    };

    // The entry the access just used must still be resident: nothing
    // between its insert and this probe can evict it (kernel accesses
    // bypass the TLB and the access itself touches one entry).
    const std::optional<TlbEntry> entry = sys_->tlb(core).probe(vaddr);
    if (!entry) {
        fail(index, "translation",
             "no TLB entry on core " + std::to_string(core) +
                 " covers " + hexAddr(vaddr) +
                 " immediately after the access");
        return;
    }

    const OracleRegion *region = oracle_.regionOf(vaddr);
    if (region == nullptr) {
        fail(index, "presence",
             "access at " + hexAddr(vaddr) + " outside every region");
        return;
    }
    if (entry->prot.writable != region->writable) {
        std::ostringstream os;
        os << "TLB entry for " << hexAddr(vaddr) << " is "
           << (entry->prot.writable ? "writable" : "read-only")
           << " but the region is "
           << (region->writable ? "writable" : "read-only");
        fail(index, "protection", os.str());
        return;
    }

    validate(core, *entry);

    // Every other core that still caches a translation for this
    // address must agree with the oracle too — a missed shootdown
    // surfaces here as a stale remote entry naming the old frame.
    for (unsigned c = 0; c < sys_->numCores() && !failure_; ++c) {
        if (c == core)
            continue;
        if (const std::optional<TlbEntry> remote =
                sys_->tlb(c).probe(vaddr)) {
            validate(c, *remote);
        }
    }
}

void
DifferentialFuzzer::runPeriodicChecks(unsigned index)
{
    if (failure_)
        return;

    // 1. The event stream itself must have been self-consistent.
    if (!oracle_.eventErrors().empty()) {
        std::ostringstream os;
        os << oracle_.eventErrors().front();
        if (oracle_.eventErrors().size() > 1) {
            os << " (+" << oracle_.eventErrors().size() - 1
               << " more)";
        }
        fail(index, "oracle-events", os.str());
        return;
    }

    // 2. Superpage records must agree exactly.
    const auto &recorded =
        sys_->kernel().addressSpace().superpages();
    const auto &expected = oracle_.superpages();
    if (recorded.size() != expected.size()) {
        std::ostringstream os;
        os << "kernel records " << recorded.size()
           << " superpages, oracle " << expected.size();
        fail(index, "superpage-records", os.str());
        return;
    }
    auto ei = expected.begin();
    for (auto ri = recorded.begin(); ri != recorded.end();
         ++ri, ++ei) {
        if (ri->second.vbase != ei->second.vbase ||
            ri->second.shadowBase != ei->second.shadowBase ||
            ri->second.sizeClass != ei->second.sizeClass) {
            std::ostringstream os;
            os << "superpage record mismatch: kernel has "
               << hexAddr(ri->second.vbase) << "->"
               << hexAddr(ri->second.shadowBase) << " class "
               << ri->second.sizeClass << ", oracle expects "
               << hexAddr(ei->second.vbase) << "->"
               << hexAddr(ei->second.shadowBase) << " class "
               << ei->second.sizeClass;
            fail(index, "superpage-records", os.str());
            return;
        }
    }

    // 3. R/D soundness: hardware bits (table entries joined with the
    // MTLB's deferred copies) may never claim an access the program
    // did not make. Only valid PTEs are swept — invalidate()
    // deliberately preserves R/M bits on swapped-out pages for OS
    // inspection, and those stale bits are not claims.
    const PhysMap &pm = sys_->physmap();
    Mmc &mmc = sys_->memsys().mmc();
    std::unordered_map<Addr, std::pair<bool, bool>> pending;
    for (const Mtlb::AuditEntry &e : mmc.mtlb().auditState()) {
        if (e.pte.valid) {
            pending[e.spi] = {e.pte.referenced != 0,
                              e.pte.modified != 0};
        }
    }
    for (const auto &[vbase, sp] : oracle_.superpages()) {
        const Addr spi0 = pm.shadowPageIndex(sp.shadowBase);
        const Addr n = sp.size() >> basePageShift;
        for (Addr i = 0; i < n; ++i) {
            const Addr va = sp.vbase + (i << basePageShift);
            const ShadowPte &pte = mmc.shadowTable().entry(spi0 + i);
            if (!pte.valid)
                continue;
            bool hw_ref = pte.referenced != 0;
            bool hw_mod = pte.modified != 0;
            if (auto it = pending.find(spi0 + i);
                it != pending.end()) {
                hw_ref = hw_ref || it->second.first;
                hw_mod = hw_mod || it->second.second;
            }
            if ((hw_ref && !oracle_.referenced(va)) ||
                (hw_mod && !oracle_.dirty(va))) {
                std::ostringstream os;
                os << "page " << hexAddr(va) << " (spi "
                   << spi0 + i << ") claims"
                   << (hw_ref && !oracle_.referenced(va)
                           ? " referenced"
                           : "")
                   << (hw_mod && !oracle_.dirty(va) ? " modified"
                                                    : "")
                   << " but the program never did that";
                fail(index, "rd-soundness", os.str());
                return;
            }
        }
    }

    // 4. Every invariant the auditor knows about.
    const AuditReport report = sys_->auditor().collect();
    if (!report.clean()) {
        const AuditViolation &v = report.violations.front();
        std::ostringstream os;
        os << v.detail;
        if (report.violations.size() > 1)
            os << " (+" << report.violations.size() - 1 << " more)";
        fail(index, "audit:" + v.invariant, os.str());
    }
}

void
DifferentialFuzzer::applyInject(FaultKind kind, unsigned index)
{
    (void)index;
    System &sys = *sys_;
    FaultInjector inject(sys);
    AddressSpace &space = sys.kernel().addressSpace();
    const PhysMap &pm = sys.physmap();

    // Shadow page index backing the base page at va, when one exists.
    const auto spi_of = [&](Addr va) -> std::optional<Addr> {
        const ShadowSuperpage *sp = space.findSuperpage(va);
        if (sp == nullptr)
            return std::nullopt;
        return pm.shadowPageIndex(sp->shadowBase) +
               ((pageBase(va) - sp->vbase) >> basePageShift);
    };

    // Each injection has a guard consulting only deterministic
    // simulated state, so an Inject op whose setup was shrunk away
    // degrades to a no-op instead of a crash.
    switch (kind) {
      case FaultKind::DoubleMapFrame: {
        const Addr src = fuzzDataBase;
        const Addr dst = fuzzDataBase + 0x80000;
        if (!space.isPagePresent(src) || space.isPagePresent(dst))
            return;
        inject.doubleMapFrame(src, dst);
        break;
      }

      case FaultKind::StaleMtlbEntry: {
        const auto spi = spi_of(fuzzDataBase);
        if (!spi || !space.isPagePresent(fuzzDataBase))
            return;
        inject.staleMtlbEntry(*spi,
                              space.frameOf(fuzzDataBase) + 1);
        break;
      }

      case FaultKind::DesyncDirtyBit: {
        const Addr va = fuzzDataBase + basePageSize;
        const auto spi = spi_of(va);
        if (!spi || !space.isPagePresent(va) || oracle_.dirty(va))
            return;
        inject.desyncDirtyBit(*spi);
        break;
      }

      case FaultKind::LeakShadowMapping: {
        const Addr spi = pm.numShadowPages() - 1;
        if (sys.memsys().mmc().shadowTable().entry(spi).valid)
            return;
        inject.leakShadowMapping(spi, KernelLayout::firstUserPfn);
        break;
      }

      case FaultKind::LeakFrame:
        inject.leakFrame();
        break;

      case FaultKind::StaleTlbEntry: {
        const Addr va = fuzzDataBase + 0x90000;
        if (space.isPagePresent(va) ||
            space.findSuperpage(va) != nullptr) {
            return;
        }
        inject.staleTlbEntry(va, KernelLayout::framePoolBase);
        break;
      }

      case FaultKind::StaleL0Entry: {
        const Addr va = fuzzDataBase + 2 * basePageSize;
        const Cpu &cpu = sys.cpu();
        if (!cpu.l0().enabled() ||
            cpu.l0().probe(va, sys.tlb().translationEpoch()) ==
                nullptr) {
            return;
        }
        inject.staleL0Entry(va);
        break;
      }

      case FaultKind::ShadowEscape:
        inject.leakShadowAddressToDram();
        break;

      case FaultKind::RebindFrame:
        if (!space.isPagePresent(fuzzDataBase))
            return;
        inject.rebindFrame(fuzzDataBase);
        break;

      case FaultKind::DropHptEntry: {
        const Addr va = fuzzDataBase + 0x80000;
        if (!space.isPagePresent(va) ||
            space.findSuperpage(va) != nullptr) {
            return;
        }
        inject.dropHptEntry(va);
        break;
      }

      case FaultKind::ClearDirtyBit: {
        const auto spi = spi_of(fuzzDataBase);
        if (!spi || !space.isPagePresent(fuzzDataBase) ||
            !oracle_.dirty(fuzzDataBase)) {
            return;
        }
        inject.clearDirtyBit(*spi);
        break;
      }

      case FaultKind::SkipShootdown:
        // Only meaningful with a remote core to leave stale.
        if (sys.numCores() < 2)
            return;
        sys.kernel().suppressNextShootdown();
        break;
    }
}

RunResult
runSchedule(const Schedule &schedule)
{
    DifferentialFuzzer fuzzer(schedule.params);
    return fuzzer.run(schedule.ops);
}

FuzzParams
selfTestParams(unsigned num_ops)
{
    FuzzParams p;
    p.seed = 0;
    p.numOps = num_ops;
    // Check after every op so the failing op is pinpointed.
    p.auditEvery = 1;
    // Fixed machine shape: L0 on (the StaleL0Entry case needs it),
    // no all-shadow single-page noise, no online promotion.
    p.l0Entries = 512;
    p.allShadowMode = false;
    p.onlinePromotion = false;
    return p;
}

Schedule
selfTestSchedule(FaultKind kind)
{
    std::vector<FuzzOp> ops;

    if (kind == FaultKind::SkipShootdown) {
        // Two cores; ops alternate core 0 / core 1 (index % cores).
        // Core 0 caches a base-page translation, then core 1 recolors
        // the page — which moves it behind a shadow mapping — with
        // the shootdown broadcast suppressed. Core 0's entry is now
        // stale, and the per-op audit must name cross-core-coherence.
        const Addr va = fuzzDataBase + 0x80000;
        ops.push_back({OpKind::Load, va, 0});       // core 0
        ops.push_back({OpKind::Load, va, 0});       // core 1
        ops.push_back({OpKind::Inject,
                       static_cast<std::uint64_t>(kind), 0});
        ops.push_back({OpKind::Recolor, va, 1});    // core 1
        Schedule schedule;
        schedule.params =
            selfTestParams(static_cast<unsigned>(ops.size()));
        schedule.params.cores = 2;
        schedule.ops = std::move(ops);
        return schedule;
    }

    // Common prologue: one 64 KB shadow superpage with a dirty first
    // page and a clean-but-referenced second page.
    ops.push_back({OpKind::Remap, fuzzDataBase, Addr{64} * 1024});
    ops.push_back({OpKind::Store, fuzzDataBase, 0});
    ops.push_back({OpKind::Load, fuzzDataBase + basePageSize, 0});

    switch (kind) {
      case FaultKind::StaleL0Entry:
        // Give the L0 a live entry to corrupt.
        ops.push_back(
            {OpKind::Load, fuzzDataBase + 2 * basePageSize, 0});
        break;
      case FaultKind::DropHptEntry:
        // Materialise a base-paged page outside the superpage.
        ops.push_back({OpKind::Load, fuzzDataBase + 0x80000, 0});
        break;
      case FaultKind::ClearDirtyBit:
        // Conflict-evict the dirty line (same index one cache size
        // up in the direct-mapped VIPT cache) so its write-back
        // carries the modification into the MTLB *before* the
        // injection purges and clears it. Without this the line
        // would re-dirty the page during the swap's own flush.
        ops.push_back({OpKind::Load, fuzzDataBase + 16384, 0});
        break;
      default:
        break;
    }

    ops.push_back({OpKind::Inject,
                   static_cast<std::uint64_t>(kind), 0});

    if (kind == FaultKind::ClearDirtyBit) {
        // The lost dirty bit only matters when the page is paged
        // out: the swap misclassifies it as clean.
        ops.push_back({OpKind::SwapPagewise, fuzzDataBase, 0});
    }

    Schedule schedule;
    schedule.params =
        selfTestParams(static_cast<unsigned>(ops.size()));
    schedule.ops = std::move(ops);
    return schedule;
}

std::vector<SelfTestOutcome>
runSelfTest(bool shrink)
{
    std::vector<SelfTestOutcome> outcomes;
    for (unsigned k = 0; k < numFaultKinds; ++k) {
        const FaultKind kind = static_cast<FaultKind>(k);
        const Schedule schedule = selfTestSchedule(kind);

        SelfTestOutcome out;
        out.kind = kind;
        const RunResult result = runSchedule(schedule);
        out.detected = result.failed;
        if (result.failed)
            out.failure = result.failure;

        if (shrink && result.failed) {
            const ShrinkResult sr =
                shrinkSchedule(schedule.params, schedule.ops,
                               result.failure.detector, 200);
            out.shrunkOps = static_cast<unsigned>(sr.ops.size());
            out.shrunkStillFails = sr.stillFails;
        }
        outcomes.push_back(out);
    }
    return outcomes;
}

json::Value
traceToJson(const Schedule &schedule, const RunResult &result)
{
    json::Value v = json::Value::object();
    v.set("format", json::Value(fztraceFormat));
    v.set("version", json::Value(fztraceVersion));
    v.set("params", paramsToJson(schedule.params));
    v.set("ops", opsToJson(schedule.ops));
    if (result.failed) {
        json::Value f = json::Value::object();
        f.set("op", json::Value(result.failure.opIndex));
        f.set("detector", json::Value(result.failure.detector));
        f.set("detail", json::Value(result.failure.detail));
        v.set("failure", std::move(f));
    }
    v.set("final_stats", result.finalStats);
    return v;
}

FuzzTrace
traceFromJson(const json::Value &v)
{
    const json::Value *format = v.find("format");
    fatalIf(format == nullptr || !format->isString() ||
                format->asString() != fztraceFormat,
            "not an ", fztraceFormat, " file");
    const json::Value *version = v.find("version");
    fatalIf(version == nullptr || !version->isNumber() ||
                static_cast<unsigned>(version->asNumber()) !=
                    fztraceVersion,
            "unsupported fztrace version");

    FuzzTrace trace;
    const json::Value *params = v.find("params");
    fatalIf(params == nullptr, "fztrace: missing params");
    trace.schedule.params = paramsFromJson(*params);
    const json::Value *ops = v.find("ops");
    fatalIf(ops == nullptr, "fztrace: missing ops");
    trace.schedule.ops = opsFromJson(*ops);

    if (const json::Value *f = v.find("failure")) {
        const json::Value *op = f->find("op");
        const json::Value *detector = f->find("detector");
        const json::Value *detail = f->find("detail");
        fatalIf(op == nullptr || detector == nullptr ||
                    detail == nullptr,
                "fztrace: malformed failure record");
        trace.hasFailure = true;
        trace.failure.opIndex =
            static_cast<unsigned>(op->asNumber());
        trace.failure.detector = detector->asString();
        trace.failure.detail = detail->asString();
    }
    if (const json::Value *s = v.find("final_stats"))
        trace.finalStats = *s;
    return trace;
}

void
writeTrace(const std::string &path, const Schedule &schedule,
           const RunResult &result)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot write trace file ", path);
    traceToJson(schedule, result).dump(out, 2);
    out << "\n";
    fatalIf(!out.good(), "error writing trace file ", path);
}

FuzzTrace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot read trace file ", path);
    return traceFromJson(json::Value::parse(in));
}

} // namespace mtlbsim::fuzz
