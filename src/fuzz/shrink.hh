/**
 * @file
 * Greedy schedule minimizer for failing fuzz runs.
 *
 * A ddmin-style reducer: starting from half the schedule length and
 * halving down to single ops, repeatedly delete contiguous chunks
 * and keep each deletion that still reproduces the *same* detector
 * category on a fresh run. Apply-time guards (see schedule.hh) make
 * any subsequence of a schedule executable — removing a setup op
 * turns its dependents into deterministic no-ops — so the reducer
 * never has to repair the schedule.
 */

#ifndef MTLBSIM_FUZZ_SHRINK_HH
#define MTLBSIM_FUZZ_SHRINK_HH

#include <string>
#include <vector>

#include "fuzz/schedule.hh"

namespace mtlbsim::fuzz
{

/** Outcome of minimizing one failing schedule. */
struct ShrinkResult
{
    /** The minimized op stream (still failing when stillFails). */
    std::vector<FuzzOp> ops;
    /** Whether the final ops still reproduce the original detector.
     *  False only if the input schedule did not fail as claimed. */
    bool stillFails = false;
    /** Detector of the minimized failure. */
    std::string detector;
    /** Fresh runs spent. */
    unsigned trials = 0;
};

/**
 * Minimize @p ops under @p params so the run still fails with
 * detector category @p detector. At most @p maxTrials fresh runs are
 * spent; the best schedule found so far is returned when the budget
 * runs out.
 */
ShrinkResult shrinkSchedule(const FuzzParams &params,
                            const std::vector<FuzzOp> &ops,
                            const std::string &detector,
                            unsigned maxTrials = 500);

} // namespace mtlbsim::fuzz

#endif // MTLBSIM_FUZZ_SHRINK_HH
