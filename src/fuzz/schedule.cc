#include "fuzz/schedule.hh"

#include "base/logging.hh"
#include "base/random.hh"

namespace mtlbsim::fuzz
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DoubleMapFrame: return "double-map-frame";
      case FaultKind::StaleMtlbEntry: return "stale-mtlb-entry";
      case FaultKind::DesyncDirtyBit: return "desync-dirty-bit";
      case FaultKind::LeakShadowMapping: return "leak-shadow-mapping";
      case FaultKind::LeakFrame: return "leak-frame";
      case FaultKind::StaleTlbEntry: return "stale-tlb-entry";
      case FaultKind::StaleL0Entry: return "stale-l0-entry";
      case FaultKind::ShadowEscape: return "shadow-escape";
      case FaultKind::RebindFrame: return "rebind-frame";
      case FaultKind::DropHptEntry: return "drop-hpt-entry";
      case FaultKind::ClearDirtyBit: return "clear-dirty-bit";
      case FaultKind::SkipShootdown: return "skip-shootdown";
    }
    panic("unknown fault kind ", static_cast<unsigned>(kind));
}

FuzzParams
paramsForSeed(std::uint64_t seed, unsigned num_ops,
              unsigned audit_every)
{
    FuzzParams p;
    p.seed = seed;
    p.numOps = num_ops;
    p.auditEvery = audit_every;
    // Derive the machine-shape corners from the seed so a multi-seed
    // sweep exercises the L0-off, all-shadow, and explicit-only
    // configurations without separate plumbing.
    switch (seed % 3) {
      case 0: p.l0Entries = 0; break;
      case 1: p.l0Entries = 4; break;
      default: p.l0Entries = 512; break;
    }
    p.allShadowMode = (seed % 4) == 1;
    p.onlinePromotion = (seed % 2) == 0;
    p.frameSeed = 12345 + seed;
    return p;
}

Schedule
generateSchedule(const FuzzParams &params)
{
    Schedule schedule;
    schedule.params = params;
    schedule.ops.reserve(params.numOps);

    Random rng(params.seed * 0x9e3779b97f4a7c15ULL + 1);

    // Accesses favour a sliding hot window so the same pages are
    // touched often enough for online promotion to trigger, while
    // the uniform tail keeps the tiny TLB/MTLB thrashing.
    constexpr Addr hot_bytes = Addr{64} * 1024;
    Addr hot_base = 0;

    for (unsigned i = 0; i < params.numOps; ++i) {
        if (i % 192 == 0)
            hot_base = rng.below(fuzzDataBytes - hot_bytes) & ~Addr{4095};

        FuzzOp op;
        const std::uint64_t pick = rng.below(100);
        if (pick < 65) {
            // Load or store in the data region.
            op.kind = rng.chance(45, 100) ? OpKind::Store : OpKind::Load;
            Addr offset;
            if (rng.chance(60, 100))
                offset = hot_base + rng.below(hot_bytes);
            else
                offset = rng.below(fuzzDataBytes);
            op.a = fuzzDataBase + (offset & ~Addr{3});
        } else if (pick < 70) {
            op.kind = OpKind::LoadRo;
            op.a = fuzzRoBase + (rng.below(fuzzRoBytes) & ~Addr{3});
        } else if (pick < 78) {
            op.kind = OpKind::Remap;
            const Addr sizes[] = {Addr{16} * 1024, Addr{64} * 1024,
                                  Addr{256} * 1024};
            const Addr bytes = sizes[rng.below(3)];
            const Addr base =
                rng.below(fuzzDataBytes - bytes) & ~Addr{16 * 1024 - 1};
            op.a = fuzzDataBase + base;
            op.b = bytes;
        } else if (pick < 86) {
            op.kind = rng.chance(2, 3) ? OpKind::SwapPagewise
                                       : OpKind::SwapWhole;
            op.a = fuzzDataBase + pageBase(rng.below(fuzzDataBytes));
        } else {
            op.kind = OpKind::Recolor;
            op.a = fuzzDataBase + pageBase(rng.below(fuzzDataBytes));
            op.b = rng.below(16);   // applied modulo the color count
        }
        schedule.ops.push_back(op);
    }
    return schedule;
}

namespace
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Load: return "load";
      case OpKind::Store: return "store";
      case OpKind::LoadRo: return "load_ro";
      case OpKind::Remap: return "remap";
      case OpKind::SwapPagewise: return "swap_pagewise";
      case OpKind::SwapWhole: return "swap_whole";
      case OpKind::Recolor: return "recolor";
      case OpKind::Inject: return "inject";
    }
    panic("unknown op kind ", static_cast<unsigned>(kind));
}

OpKind
opKindFromName(const std::string &name)
{
    for (unsigned k = 0; k <= static_cast<unsigned>(OpKind::Inject);
         ++k) {
        const OpKind kind = static_cast<OpKind>(k);
        if (name == opKindName(kind))
            return kind;
    }
    fatal("fztrace: unknown op kind '", name, "'");
}

std::uint64_t
u64Member(const json::Value &v, const char *key)
{
    const json::Value *m = v.find(key);
    fatalIf(m == nullptr || !m->isNumber(),
            "fztrace: missing numeric member '", key, "'");
    return static_cast<std::uint64_t>(m->asNumber());
}

bool
boolMember(const json::Value &v, const char *key)
{
    const json::Value *m = v.find(key);
    fatalIf(m == nullptr || !m->isBool(),
            "fztrace: missing boolean member '", key, "'");
    return m->asBool();
}

} // namespace

json::Value
paramsToJson(const FuzzParams &params)
{
    json::Value v = json::Value::object();
    v.set("seed", json::Value(params.seed));
    v.set("num_ops", json::Value(params.numOps));
    v.set("audit_every", json::Value(params.auditEvery));
    v.set("cores", json::Value(params.cores));
    v.set("tlb_entries", json::Value(params.tlbEntries));
    v.set("mtlb_entries", json::Value(params.mtlbEntries));
    v.set("mtlb_assoc", json::Value(params.mtlbAssoc));
    v.set("l0_entries", json::Value(params.l0Entries));
    v.set("batch_window", json::Value(params.batchWindow));
    v.set("installed_bytes", json::Value(params.installedBytes));
    v.set("cache_bytes", json::Value(params.cacheBytes));
    v.set("shadow_bytes", json::Value(params.shadowBytes));
    v.set("all_shadow", json::Value(params.allShadowMode));
    v.set("online_promotion", json::Value(params.onlinePromotion));
    v.set("frame_seed", json::Value(params.frameSeed));
    return v;
}

FuzzParams
paramsFromJson(const json::Value &v)
{
    FuzzParams p;
    p.seed = u64Member(v, "seed");
    p.numOps = static_cast<unsigned>(u64Member(v, "num_ops"));
    p.auditEvery = static_cast<unsigned>(u64Member(v, "audit_every"));
    p.tlbEntries = static_cast<unsigned>(u64Member(v, "tlb_entries"));
    p.mtlbEntries = static_cast<unsigned>(u64Member(v, "mtlb_entries"));
    p.mtlbAssoc = static_cast<unsigned>(u64Member(v, "mtlb_assoc"));
    p.l0Entries = static_cast<unsigned>(u64Member(v, "l0_entries"));
    p.installedBytes = u64Member(v, "installed_bytes");
    p.cacheBytes = u64Member(v, "cache_bytes");
    // Optional: traces recorded before the field existed replay with
    // the historical default.
    if (v.find("shadow_bytes") != nullptr)
        p.shadowBytes = u64Member(v, "shadow_bytes");
    if (v.find("batch_window") != nullptr)
        p.batchWindow = static_cast<unsigned>(u64Member(v, "batch_window"));
    if (v.find("cores") != nullptr)
        p.cores = static_cast<unsigned>(u64Member(v, "cores"));
    p.allShadowMode = boolMember(v, "all_shadow");
    p.onlinePromotion = boolMember(v, "online_promotion");
    p.frameSeed = u64Member(v, "frame_seed");
    return p;
}

json::Value
opsToJson(const std::vector<FuzzOp> &ops)
{
    json::Value arr = json::Value::array();
    for (const FuzzOp &op : ops) {
        json::Value triple = json::Value::array();
        triple.push(json::Value(opKindName(op.kind)));
        triple.push(json::Value(op.a));
        triple.push(json::Value(op.b));
        arr.push(std::move(triple));
    }
    return arr;
}

std::vector<FuzzOp>
opsFromJson(const json::Value &v)
{
    fatalIf(!v.isArray(), "fztrace: ops must be an array");
    std::vector<FuzzOp> ops;
    ops.reserve(v.items().size());
    for (const json::Value &item : v.items()) {
        fatalIf(!item.isArray() || item.items().size() != 3,
                "fztrace: each op must be a [kind, a, b] triple");
        FuzzOp op;
        op.kind = opKindFromName(item.items()[0].asString());
        op.a = static_cast<std::uint64_t>(item.items()[1].asNumber());
        op.b = static_cast<std::uint64_t>(item.items()[2].asNumber());
        ops.push_back(op);
    }
    return ops;
}

} // namespace mtlbsim::fuzz
