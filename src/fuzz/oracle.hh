/**
 * @file
 * Dependency-free reference model for the differential fuzzer.
 *
 * The paper's claim (§2) is that the two-level translation — CPU TLB
 * vpage->shadow, MTLB shadow->real, with per-base-page R/D bits kept
 * by the MTLB — is behaviourally identical to a flat vpage->real
 * mapping maintained by a conventional OS. OracleMemory *is* that
 * flat mapping: a map from virtual page to real frame plus
 * per-base-page referenced/dirty bits, updated only from the
 * kernel-event stream (KernelObserver) and the program's own
 * accesses. It deliberately knows nothing about shadow addresses,
 * the MTLB, the cache, or timing, so any disagreement between it and
 * the machine localises a translation bug.
 *
 * Only base/types.hh and standard containers are used; the model
 * must stay independent of everything it checks.
 */

#ifndef MTLBSIM_FUZZ_ORACLE_HH
#define MTLBSIM_FUZZ_ORACLE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/types.hh"

namespace mtlbsim::fuzz
{

/** One declared region of the oracle's address space. */
struct OracleRegion
{
    Addr base = 0;
    Addr size = 0;
    bool writable = true;

    bool
    contains(Addr a) const
    {
        return a >= base && a - base < size;
    }
};

/** One shadow superpage record, mirrored from kernel events. */
struct OracleSuperpage
{
    Addr vbase = 0;
    Addr shadowBase = 0;
    unsigned sizeClass = 0;

    Addr size() const { return basePageSize << (2 * sizeClass); }

    bool
    covers(Addr vaddr) const
    {
        return vaddr >= vbase && vaddr - vbase < size();
    }
};

/**
 * The flat reference model.
 */
class OracleMemory
{
  public:
    /** Declare a region the fuzzed program may touch. */
    void addRegion(Addr base, Addr size, bool writable);

    /** @name Kernel events (fed by the KernelObserver adapter) */
    /** @{ */
    void onPageMapped(Addr vbase, Addr pfn);
    void onPageUnmapped(Addr vbase, Addr pfn);
    void onSuperpageCreated(Addr vbase, Addr shadow_base,
                            unsigned size_class);
    void onSuperpageDemoted(Addr vbase);
    void onShadowFault(Addr vaddr);
    /** @} */

    /** Record one program access (after the machine performed it). */
    void noteAccess(Addr vaddr, bool store);

    /** @name Queries the fuzzer compares the machine against */
    /** @{ */
    bool present(Addr vaddr) const;
    /** Real frame backing @p vaddr, or nullopt when absent. */
    std::optional<Addr> frameOf(Addr vaddr) const;
    const OracleRegion *regionOf(Addr vaddr) const;
    bool referenced(Addr vaddr) const;
    bool dirty(Addr vaddr) const;
    const OracleSuperpage *superpageCovering(Addr vaddr) const;
    const std::map<Addr, OracleSuperpage> &superpages() const
    {
        return superpages_;
    }
    std::size_t numPresentPages() const { return frames_.size(); }

    /** Expected SwapOutResult for a pagewise swap of the superpage
     *  at @p vbase: only present+dirty pages are written. */
    unsigned expectedPagewiseWrites(Addr vbase) const;
    /** Expected writes for a whole-superpage swap: every present
     *  page. */
    unsigned expectedWholeWrites(Addr vbase) const;
    /** @} */

    /** Inconsistencies in the event stream itself (e.g. a page
     *  mapped twice). Empty on a healthy run. */
    const std::vector<std::string> &eventErrors() const
    {
        return eventErrors_;
    }

  private:
    Addr vpn(Addr vaddr) const { return vaddr >> basePageShift; }

    std::vector<OracleRegion> regions_;
    std::unordered_map<Addr, Addr> frames_;     ///< vpn -> pfn
    std::unordered_set<Addr> referenced_;       ///< vpns
    std::unordered_set<Addr> dirty_;            ///< vpns
    std::map<Addr, OracleSuperpage> superpages_;
    std::vector<std::string> eventErrors_;
};

} // namespace mtlbsim::fuzz

#endif // MTLBSIM_FUZZ_ORACLE_HH
