/**
 * @file
 * Fuzz schedules: the op vocabulary, the seeded generator, and the
 * JSON (de)serialization used by `.fztrace` replay files.
 *
 * A schedule is a pure function of its parameters: the generator
 * draws every operand from the deterministic xorshift generator up
 * front, so recording the parameter block is enough to regenerate
 * the exact op stream. Ops carry absolute virtual addresses (not
 * draws), which keeps replay independent of generator evolution.
 *
 * Ops that are momentarily inapplicable (a swap with no covering
 * superpage, a recolor inside a multi-page superpage) are *skipped
 * by guards at apply time*, not rejected at generation time — the
 * guards consult only simulated state, which is itself
 * deterministic, so record and replay take identical paths. The
 * same property makes schedule shrinking safe: removing a setup op
 * turns its dependents into no-ops instead of crashes.
 */

#ifndef MTLBSIM_FUZZ_SCHEDULE_HH
#define MTLBSIM_FUZZ_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "stats/json.hh"

namespace mtlbsim::fuzz
{

/** The fuzzer's op vocabulary. */
enum class OpKind : std::uint8_t
{
    Load,           ///< data load at a
    Store,          ///< data store at a
    LoadRo,         ///< load in the read-only region at a
    Remap,          ///< remap([a, a+b)) to shadow superpages
    SwapPagewise,   ///< pagewise swap-out of the superpage covering a
    SwapWhole,      ///< whole-superpage swap-out of the one covering a
    Recolor,        ///< recolor the page at a to color b
    Inject,         ///< plant FaultInjector corruption a (self-test)
};

/** One schedule operation; a/b meanings depend on kind. */
struct FuzzOp
{
    OpKind kind = OpKind::Load;
    std::uint64_t a = 0;
    std::uint64_t b = 0;

    bool operator==(const FuzzOp &) const = default;
};

/** Every FaultInjector corruption class the self-test must catch. */
enum class FaultKind : std::uint8_t
{
    DoubleMapFrame,
    StaleMtlbEntry,
    DesyncDirtyBit,
    LeakShadowMapping,
    LeakFrame,
    StaleTlbEntry,
    StaleL0Entry,
    ShadowEscape,
    RebindFrame,
    DropHptEntry,
    ClearDirtyBit,
    /** Swallow the next shootdown broadcast, leaving remote cores
     *  stale (multi-core machines; proves the auditor's cross-core
     *  coherence invariant fires). */
    SkipShootdown,
};

constexpr unsigned numFaultKinds = 12;

const char *faultKindName(FaultKind kind);

/**
 * Everything needed to reconstruct a run: machine shape + schedule
 * shape. Recorded verbatim in `.fztrace` files.
 */
struct FuzzParams
{
    std::uint64_t seed = 1;
    unsigned numOps = 2000;
    /** Run the sweep checks + auditor every N ops (and always after
     *  the last op). Affects only *when* a corruption is detected,
     *  never simulated behaviour. */
    unsigned auditEvery = 16;

    /** @name Machine shape: tiny structures for maximal pressure */
    /** @{ */
    /** Core count. Every core shares process 0 (the oracle stays flat
     *  per address space); op i is dispatched on core i % cores, so
     *  remote cores accumulate TLB state that only shootdown
     *  broadcasts keep coherent. Pre-existing traces without the
     *  field replay single-core. */
    unsigned cores = 1;
    unsigned tlbEntries = 8;
    unsigned mtlbEntries = 8;
    unsigned mtlbAssoc = 2;
    unsigned l0Entries = 512;
    /** Batch-engine window (cpu.batch_window); 0 runs unbatched.
     *  Off by default so pre-existing traces replay on the exact
     *  machine shape they recorded; the equivalence contract makes
     *  their final stats identical either way, but the recorded
     *  params stay the source of truth. */
    unsigned batchWindow = 0;
    Addr installedBytes = Addr{16} * 1024 * 1024;
    Addr cacheBytes = Addr{16} * 1024;
    /** Shadow region size. The kernel's bucket allocator partitions
     *  whatever it gets (BucketShadowAllocator::partitionFor); the
     *  model checker (src/model) shrinks this so per-state audits
     *  stay cheap. Pre-existing traces without the field replay with
     *  the historical 512 MB. */
    Addr shadowBytes = Addr{512} * 1024 * 1024;
    bool allShadowMode = false;
    bool onlinePromotion = true;
    std::uint64_t frameSeed = 12345;
    /** @} */

    bool operator==(const FuzzParams &) const = default;
};

/** @name Fuzzed address-space layout (fixed; recorded implicitly) */
/** @{ */
constexpr Addr fuzzDataBase = 0x10000000;
constexpr Addr fuzzDataBytes = Addr{1024} * 1024;    // 256 base pages
constexpr Addr fuzzRoBase = 0x20000000;
constexpr Addr fuzzRoBytes = Addr{64} * 1024;        // 16 base pages
/** @} */

/** A complete schedule: parameters plus the op stream. */
struct Schedule
{
    FuzzParams params;
    std::vector<FuzzOp> ops;
};

/** Machine-shape variation for a fuzzing seed: perturbs the L0 size,
 *  all-shadow mode, online promotion, and the frame shuffle so one
 *  `--runs N` sweep covers several corners. */
FuzzParams paramsForSeed(std::uint64_t seed, unsigned num_ops,
                         unsigned audit_every);

/** Generate the op stream for @p params (pure function). */
Schedule generateSchedule(const FuzzParams &params);

/** @name JSON round-trip (the `.fztrace` building blocks) */
/** @{ */
json::Value paramsToJson(const FuzzParams &params);
FuzzParams paramsFromJson(const json::Value &v);
json::Value opsToJson(const std::vector<FuzzOp> &ops);
std::vector<FuzzOp> opsFromJson(const json::Value &v);
/** @} */

} // namespace mtlbsim::fuzz

#endif // MTLBSIM_FUZZ_SCHEDULE_HH
