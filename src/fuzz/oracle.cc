#include "fuzz/oracle.hh"

#include <sstream>

namespace mtlbsim::fuzz
{

namespace
{

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

void
OracleMemory::addRegion(Addr base, Addr size, bool writable)
{
    regions_.push_back({base, size, writable});
}

void
OracleMemory::onPageMapped(Addr vbase, Addr pfn)
{
    const Addr page = vpn(vbase);
    if (frames_.count(page)) {
        eventErrors_.push_back("onPageMapped for already-present page " +
                               hexAddr(vbase));
    }
    frames_[page] = pfn;
    // The kernel's materialise/swap-in paths install a fresh
    // shadow-table entry (or none at all); either way the page's
    // hardware R/D state starts clean.
    referenced_.erase(page);
    dirty_.erase(page);
}

void
OracleMemory::onPageUnmapped(Addr vbase, Addr pfn)
{
    const Addr page = vpn(vbase);
    auto it = frames_.find(page);
    if (it == frames_.end()) {
        eventErrors_.push_back("onPageUnmapped for absent page " +
                               hexAddr(vbase));
        return;
    }
    if (it->second != pfn) {
        eventErrors_.push_back("onPageUnmapped frame mismatch at " +
                               hexAddr(vbase));
    }
    frames_.erase(it);
    referenced_.erase(page);
    dirty_.erase(page);
}

void
OracleMemory::onSuperpageCreated(Addr vbase, Addr shadow_base,
                                 unsigned size_class)
{
    OracleSuperpage sp{vbase, shadow_base, size_class};
    if (superpageCovering(vbase) != nullptr) {
        eventErrors_.push_back("onSuperpageCreated over existing "
                               "superpage at " + hexAddr(vbase));
    }
    superpages_[vbase] = sp;
    // Every covered page's shadow PTE was rewritten by the kernel,
    // which clears its R/D bits.
    for (Addr va = vbase; va < vbase + sp.size(); va += basePageSize) {
        referenced_.erase(vpn(va));
        dirty_.erase(vpn(va));
    }
}

void
OracleMemory::onSuperpageDemoted(Addr vbase)
{
    auto it = superpages_.find(vbase);
    if (it == superpages_.end()) {
        eventErrors_.push_back("onSuperpageDemoted for unknown "
                               "superpage at " + hexAddr(vbase));
        return;
    }
    superpages_.erase(it);
    // The page is republished at its real address; its shadow-table
    // entry (and with it the hardware R/D state) is gone.
    referenced_.erase(vpn(vbase));
    dirty_.erase(vpn(vbase));
}

void
OracleMemory::onShadowFault(Addr vaddr)
{
    if (superpageCovering(vaddr) == nullptr) {
        eventErrors_.push_back("onShadowFault outside any superpage "
                               "at " + hexAddr(vaddr));
    }
    if (present(vaddr)) {
        eventErrors_.push_back("onShadowFault for a present page at " +
                               hexAddr(vaddr));
    }
}

void
OracleMemory::noteAccess(Addr vaddr, bool store)
{
    const Addr page = vpn(vaddr);
    referenced_.insert(page);
    if (store)
        dirty_.insert(page);
}

bool
OracleMemory::present(Addr vaddr) const
{
    return frames_.count(vpn(vaddr)) != 0;
}

std::optional<Addr>
OracleMemory::frameOf(Addr vaddr) const
{
    auto it = frames_.find(vpn(vaddr));
    if (it == frames_.end())
        return std::nullopt;
    return it->second;
}

const OracleRegion *
OracleMemory::regionOf(Addr vaddr) const
{
    for (const auto &r : regions_) {
        if (r.contains(vaddr))
            return &r;
    }
    return nullptr;
}

bool
OracleMemory::referenced(Addr vaddr) const
{
    return referenced_.count(vpn(vaddr)) != 0;
}

bool
OracleMemory::dirty(Addr vaddr) const
{
    return dirty_.count(vpn(vaddr)) != 0;
}

const OracleSuperpage *
OracleMemory::superpageCovering(Addr vaddr) const
{
    auto it = superpages_.upper_bound(vaddr);
    if (it == superpages_.begin())
        return nullptr;
    --it;
    return it->second.covers(vaddr) ? &it->second : nullptr;
}

unsigned
OracleMemory::expectedPagewiseWrites(Addr vbase) const
{
    const OracleSuperpage *sp = superpageCovering(vbase);
    if (sp == nullptr)
        return 0;
    unsigned writes = 0;
    for (Addr va = sp->vbase; va < sp->vbase + sp->size();
         va += basePageSize) {
        if (present(va) && dirty(va))
            ++writes;
    }
    return writes;
}

unsigned
OracleMemory::expectedWholeWrites(Addr vbase) const
{
    const OracleSuperpage *sp = superpageCovering(vbase);
    if (sp == nullptr)
        return 0;
    unsigned writes = 0;
    for (Addr va = sp->vbase; va < sp->vbase + sp->size();
         va += basePageSize) {
        if (present(va))
            ++writes;
    }
    return writes;
}

} // namespace mtlbsim::fuzz
