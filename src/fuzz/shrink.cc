#include "fuzz/shrink.hh"

#include <algorithm>
#include <cstddef>

#include "fuzz/fuzzer.hh"

namespace mtlbsim::fuzz
{

namespace
{

/** Does @p ops still fail with @p detector on a fresh run? */
bool
stillFails(const FuzzParams &params, const std::vector<FuzzOp> &ops,
           const std::string &detector)
{
    Schedule schedule;
    schedule.params = params;
    schedule.params.numOps = static_cast<unsigned>(ops.size());
    schedule.ops = ops;
    const RunResult result = runSchedule(schedule);
    return result.failed && result.failure.detector == detector;
}

} // namespace

ShrinkResult
shrinkSchedule(const FuzzParams &params,
               const std::vector<FuzzOp> &ops,
               const std::string &detector, unsigned maxTrials)
{
    ShrinkResult result;
    result.ops = ops;
    result.detector = detector;

    // The claimed failure must reproduce at all before spending any
    // reduction effort on it.
    ++result.trials;
    result.stillFails = stillFails(params, result.ops, detector);
    if (!result.stillFails)
        return result;

    // ddmin-style greedy pass: delete [i, i+len) chunks, halving len
    // whenever a full sweep at that granularity removes nothing.
    std::size_t len = std::max<std::size_t>(result.ops.size() / 2, 1);
    while (len >= 1 && result.trials < maxTrials) {
        bool removed_any = false;
        std::size_t i = 0;
        while (i < result.ops.size() && result.trials < maxTrials) {
            const std::size_t n =
                std::min(len, result.ops.size() - i);
            std::vector<FuzzOp> candidate;
            candidate.reserve(result.ops.size() - n);
            candidate.insert(candidate.end(), result.ops.begin(),
                             result.ops.begin() +
                                 static_cast<std::ptrdiff_t>(i));
            candidate.insert(candidate.end(),
                             result.ops.begin() +
                                 static_cast<std::ptrdiff_t>(i + n),
                             result.ops.end());

            ++result.trials;
            if (!candidate.empty() &&
                stillFails(params, candidate, detector)) {
                result.ops = std::move(candidate);
                removed_any = true;
                // Same index now names the next chunk.
            } else {
                i += n;
            }
        }
        if (len == 1 && !removed_any)
            break;
        if (!removed_any)
            len /= 2;
        else
            len = std::min(len, std::max<std::size_t>(
                                    result.ops.size() / 2, 1));
    }

    return result;
}

} // namespace mtlbsim::fuzz
