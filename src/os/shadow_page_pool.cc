#include "os/shadow_page_pool.hh"

#include "base/intmath.hh"

namespace mtlbsim
{

ShadowPagePool::ShadowPagePool(ShadowAllocator &backing,
                               unsigned num_colors)
    : backing_(backing), numColors_(num_colors),
      freeByColor_(num_colors)
{
    fatalIf(!isPowerOf2(num_colors), "colors must be a power of two");
    const Addr block_pages =
        pageSizeForClass(refillClass) >> basePageShift;
    fatalIf(num_colors > block_pages,
            "more colors than pages in a refill block");
}

bool
ShadowPagePool::refill()
{
    // Prefer large blocks (fewer backing allocations). When the
    // preferred bucket is exhausted — or was never populated, as with
    // the model checker's 4 MB shadow region whose partition has no
    // 1 MB regions at all — fall back to smaller classes, down to the
    // smallest block that still covers every color once (anything
    // smaller would make allocateColored() unable to satisfy some
    // colors from a fresh block).
    unsigned min_class = minShadowSizeClass;
    while ((pageSizeForClass(min_class) >> basePageShift) < numColors_)
        ++min_class;
    for (unsigned c = refillClass + 1; c-- > min_class;) {
        const auto block = backing_.allocate(c);
        if (!block)
            continue;
        const Addr pages = pageSizeForClass(c) >> basePageShift;
        for (Addr i = 0; i < pages; ++i) {
            const Addr page = *block + (i << basePageShift);
            freeByColor_[colorOf(page)].push_back(page);
        }
        return true;
    }
    return false;
}

std::optional<Addr>
ShadowPagePool::allocate()
{
    for (auto &bucket : freeByColor_) {
        if (!bucket.empty()) {
            const Addr page = bucket.back();
            bucket.pop_back();
            return page;
        }
    }
    if (!refill())
        return std::nullopt;
    return allocate();
}

std::optional<Addr>
ShadowPagePool::allocateColored(unsigned color)
{
    fatalIf(color >= numColors_, "color out of range: ", color);
    if (freeByColor_[color].empty() && !refill())
        return std::nullopt;
    auto &bucket = freeByColor_[color];
    panicIf(bucket.empty(),
            "refill failed to produce the requested color");
    const Addr page = bucket.back();
    bucket.pop_back();
    return page;
}

void
ShadowPagePool::free(Addr page)
{
    fatalIf(page & basePageMask, "freeing a misaligned shadow page");
    freeByColor_[colorOf(page)].push_back(page);
}

std::size_t
ShadowPagePool::numFree() const
{
    std::size_t n = 0;
    for (const auto &bucket : freeByColor_)
        n += bucket.size();
    return n;
}

} // namespace mtlbsim
