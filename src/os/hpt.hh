/**
 * @file
 * HP PA-RISC-style hashed page table (HPT) model.
 *
 * The paper's TLB misses are handled by a software trap routine that
 * probes a 16 K-entry virtual-to-physical hash table with 16-byte
 * entries (§3.2), following the hashed-page-table organisation of
 * Huck & Hays [10]. The table is a kernel data structure in ordinary
 * cacheable memory — so HPT probes compete with application data for
 * cache space, which the paper calls out as a real effect (§3.5).
 *
 * The table is hashed at base-page granularity, as PA-RISC's is:
 * a superpage mapping is entered once per base page it covers, each
 * replica carrying the full superpage mapping. The miss handler
 * therefore performs exactly one hash + chain walk regardless of
 * which page sizes are in use; the cost of replication is paid at
 * remap() time, where it is part of the paper's "remaining overhead"
 * (§3.3).
 *
 * This class models both the *content* (so lookups return the right
 * mapping) and the *addresses touched* (so the cache and memory
 * system see the handler's loads). Chained overflow entries live in
 * a kernel pool after the main table.
 */

#ifndef MTLBSIM_OS_HPT_HH
#define MTLBSIM_OS_HPT_HH

#include <optional>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

/** A translation as stored by the OS (input to TLB inserts). */
struct VmMapping
{
    Addr vbase = 0;
    Addr pbase = 0;         ///< real or shadow physical base
    unsigned sizeClass = 0;
    PageProtection prot;
};

/**
 * The hashed page table.
 */
class Hpt
{
  public:
    /**
     * @param table_base  kernel physical address of bucket 0
     * @param num_buckets bucket count (power of 2; 16 K in §3.2)
     */
    Hpt(Addr table_base, unsigned num_buckets);

    /**
     * Result of a probe: the mapping found (if any) and the kernel
     * address of every 16-byte entry the handler examined, in order.
     */
    struct LookupResult
    {
        std::optional<VmMapping> mapping;
        std::vector<Addr> probeAddrs;
    };

    /** Probe for a translation of @p vaddr in address space @p asid
     *  (single hash, one chain walk — page-size independent). */
    LookupResult lookup(Addr vaddr, unsigned asid = 0) const;

    /**
     * Insert a mapping, replicating one entry per base page it
     * covers. @return kernel addresses written, for cost accounting.
     */
    std::vector<Addr> insert(const VmMapping &mapping,
                             unsigned asid = 0);

    /**
     * Insert only the replica for the single base page containing
     * @p vaddr (used by remap()'s per-page loop so costs accrue
     * per page). @return kernel addresses written.
     */
    std::vector<Addr> insertBasePageReplica(const VmMapping &mapping,
                                            Addr vaddr,
                                            unsigned asid = 0);

    /**
     * Remove the mapping with this base and size class (all its
     * replicas). @return kernel addresses touched.
     */
    std::vector<Addr> remove(Addr vbase, unsigned size_class,
                             unsigned asid = 0);

    /** One live entry as seen by the invariant auditor. */
    struct AuditEntry
    {
        Addr vpn = 0;       ///< base-page virtual page number (key)
        unsigned asid = 0;  ///< owning address space
        VmMapping mapping;  ///< the (possibly superpage) mapping
    };

    /** Snapshot of every live entry, replicas included, for the
     *  invariant auditor (src/check). */
    std::vector<AuditEntry> auditState() const;

    unsigned numBuckets() const { return numBuckets_; }
    Addr tableBase() const { return tableBase_; }

    /** Bytes of the main bucket array (16 B per bucket). */
    Addr tableBytes() const { return Addr{numBuckets_} * entryBytes; }

    /** Number of live entries (replicas counted individually). */
    std::size_t size() const { return liveEntries_; }

    static constexpr Addr entryBytes = 16;

    /**
     * Chain keys carry the owning address space above the VPN: the
     * simulated space is 32-bit, so base-page VPNs fit in 20 bits and
     * the ASID sits safely at bit 40. ASID 0 keys therefore equal the
     * raw VPN, keeping single-process machines bit-identical.
     */
    static constexpr unsigned asidKeyShift = 40;

    static Addr
    keyFor(Addr vpn, unsigned asid)
    {
        return vpn | (Addr{asid} << asidKeyShift);
    }

  private:
    struct ChainedEntry
    {
        Addr vpn;           ///< base-page virtual page number (key)
        VmMapping mapping;
        Addr entryAddr;     ///< where this entry lives in memory
    };

    unsigned bucketOf(Addr vpn) const;
    Addr allocOverflowEntry();
    std::vector<Addr> insertOne(Addr vpn, const VmMapping &mapping);
    std::vector<Addr> removeOne(Addr vpn, unsigned size_class);

    Addr tableBase_;
    unsigned numBuckets_;
    /** Per-bucket chains; element 0 occupies the in-table slot. */
    std::vector<std::vector<ChainedEntry>> chains_;
    /** Bump allocator for overflow entries (recycled via free list). */
    Addr overflowCursor_;
    std::vector<Addr> overflowFree_;
    std::size_t liveEntries_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_OS_HPT_HH
