/**
 * @file
 * Per-process virtual address space.
 *
 * Tracks VM regions (text, data, heap, ...), the base pages that have
 * been materialised with real frames, and the shadow-backed
 * superpages created by remap(). Also models the process's two-level
 * page table as kernel data with concrete node addresses, so that
 * page-table walks on HPT misses generate realistic memory traffic.
 */

#ifndef MTLBSIM_OS_ADDRESS_SPACE_HH
#define MTLBSIM_OS_ADDRESS_SPACE_HH

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "os/hpt.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

/** A contiguous region of user virtual address space. */
struct VmRegion
{
    std::string name;
    Addr base = 0;
    Addr size = 0;
    PageProtection prot;

    bool
    contains(Addr a) const
    {
        return a >= base && a - base < size;
    }

    Addr end() const { return base + size; }
};

/** A shadow-backed superpage created by remap() (§2.4). */
struct ShadowSuperpage
{
    Addr vbase = 0;         ///< virtual base, aligned to size
    Addr shadowBase = 0;    ///< shadow physical base, aligned to size
    unsigned sizeClass = 0;

    Addr size() const { return pageSizeForClass(sizeClass); }
    Addr numBasePages() const { return size() >> basePageShift; }

    bool
    covers(Addr vaddr) const
    {
        return vaddr >= vbase && vaddr - vbase < size();
    }
};

/**
 * One process's virtual address space.
 */
class AddressSpace
{
  public:
    /**
     * @param pt_pool_base kernel physical base of this process's
     *                     page-table node pool
     * @param pool_bytes   pool capacity; 0 means unbounded. Bounded
     *                     pools let many processes pack their tables
     *                     into one kernel region without colliding.
     */
    explicit AddressSpace(Addr pt_pool_base, Addr pool_bytes = 0);

    /** Declare a region. Regions must not overlap. */
    void addRegion(const std::string &name, Addr base, Addr size,
                   PageProtection prot);

    /** Grow a region in place (used by sbrk on the heap). */
    void growRegion(const std::string &name, Addr new_size);

    /** The region covering @p vaddr, or null. */
    const VmRegion *findRegion(Addr vaddr) const;

    const VmRegion *findRegionByName(const std::string &name) const;

    /** All declared regions, in declaration order. */
    const std::vector<VmRegion> &regions() const { return regions_; }

    /** Is this base page materialised with a real frame? */
    bool isPagePresent(Addr vaddr) const;

    /** PFN backing the base page at @p vaddr (page must be present). */
    Addr frameOf(Addr vaddr) const;

    /** Record that @p vaddr's base page is backed by frame @p pfn. */
    void installFrame(Addr vaddr, Addr pfn);

    /** Remove the frame backing @p vaddr's page; returns the PFN. */
    Addr removeFrame(Addr vaddr);

    /** Record a shadow-backed superpage. */
    void addSuperpage(const ShadowSuperpage &sp);

    /** Remove a superpage record (e.g. on region teardown). */
    void removeSuperpage(Addr vbase);

    /** The shadow superpage covering @p vaddr, if any. */
    const ShadowSuperpage *findSuperpage(Addr vaddr) const;

    /** All superpages, ordered by virtual base. */
    const std::map<Addr, ShadowSuperpage> &superpages() const
    {
        return superpages_;
    }

    /** Number of materialised base pages. */
    std::size_t numPresentPages() const { return pages_.size(); }

    /** All materialised base pages (vpn -> pfn), for the invariant
     *  auditor (src/check). */
    const std::unordered_map<Addr, Addr> &presentPages() const
    {
        return pages_;
    }

    /**
     * @name Page-table walk address modelling
     * Two-level radix table over a 32-bit space: the L1 node holds
     * 1024 4-byte entries indexed by vpn[19:10]; each L2 node holds
     * 1024 entries indexed by vpn[9:0]. Both reads of a walk hit
     * these addresses in kernel memory.
     * @{
     */
    Addr l1EntryAddr(Addr vaddr) const;
    Addr l2EntryAddr(Addr vaddr);
    /** @} */

  private:
    std::vector<VmRegion> regions_;
    std::unordered_map<Addr, Addr> pages_;  ///< vpn -> pfn
    std::map<Addr, ShadowSuperpage> superpages_;

    Addr ptPoolBase_;
    Addr ptPoolBytes_;  ///< 0 = unbounded
    Addr ptPoolCursor_;
    std::unordered_map<Addr, Addr> l2Nodes_; ///< l1 index -> node addr
};

} // namespace mtlbsim

#endif // MTLBSIM_OS_ADDRESS_SPACE_HH
