/**
 * @file
 * Single-page shadow address pool.
 *
 * Two of the paper's §4/§6 extensions need *individual* shadow base
 * pages rather than whole superpages:
 *
 *  - no-copy page recoloring (§6): remap one page to a shadow
 *    address whose cache-index ("color") bits are chosen freely;
 *  - all-shadow operation (§4): on machines with no free physical
 *    addresses above DRAM, every page is accessed through shadow
 *    space so the kernel can reclaim the real address map.
 *
 * The pool carves large blocks out of a ShadowAllocator and serves
 * 4 KB pages from them, with an optional color constraint. A page's
 * color is its index bits within a physically indexed cache:
 * color = (addr >> 12) % (cache_size / page_size).
 */

#ifndef MTLBSIM_OS_SHADOW_PAGE_POOL_HH
#define MTLBSIM_OS_SHADOW_PAGE_POOL_HH

#include <array>
#include <optional>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "os/shadow_alloc.hh"

namespace mtlbsim
{

/**
 * Allocates single shadow base pages, by color when requested.
 */
class ShadowPagePool
{
  public:
    /**
     * @param backing    where to obtain large shadow blocks
     * @param num_colors page colors in the target cache
     *                   (cache bytes / page bytes); must be a power
     *                   of two and at most blockPages
     */
    ShadowPagePool(ShadowAllocator &backing, unsigned num_colors);

    /** Allocate any shadow page. */
    std::optional<Addr> allocate();

    /** Allocate a shadow page of the given color. */
    std::optional<Addr> allocateColored(unsigned color);

    /** Return a page to the pool. */
    void free(Addr page);

    unsigned numColors() const { return numColors_; }

    /** Color of an address in the target cache. */
    unsigned
    colorOf(Addr addr) const
    {
        return static_cast<unsigned>(addr >> basePageShift) &
               (numColors_ - 1);
    }

    /** Pages currently free (all colors). */
    std::size_t numFree() const;

  private:
    /** Pull one more block from the backing allocator and carve it;
     *  returns false when shadow space is exhausted. */
    bool refill();

    ShadowAllocator &backing_;
    unsigned numColors_;
    /** Free pages bucketed by color. */
    std::vector<std::vector<Addr>> freeByColor_;

    /** Preferred block class for refills: 1 MB covers every color of
     *  a 512 KB cache twice. refill() falls back to smaller classes
     *  when this one is exhausted. */
    static constexpr unsigned refillClass = 4;
};

} // namespace mtlbsim

#endif // MTLBSIM_OS_SHADOW_PAGE_POOL_HH
