#include "os/address_space.hh"

namespace mtlbsim
{

AddressSpace::AddressSpace(Addr pt_pool_base, Addr pool_bytes)
    : ptPoolBase_(pt_pool_base), ptPoolBytes_(pool_bytes),
      ptPoolCursor_(pt_pool_base + basePageSize) // slot 0 is the L1 node
{
    fatalIf(pool_bytes != 0 && pool_bytes < 2 * basePageSize,
            "page-table pool too small for the L1 node plus one L2");
}

void
AddressSpace::addRegion(const std::string &name, Addr base, Addr size,
                        PageProtection prot)
{
    fatalIf(base & basePageMask, "region base must be page aligned");
    fatalIf(size == 0 || (size & basePageMask),
            "region size must be a nonzero page multiple");
    for (const auto &r : regions_) {
        fatalIf(base < r.end() && r.base < base + size,
                "region '", name, "' overlaps region '", r.name, "'");
    }
    regions_.push_back({name, base, size, prot});
}

void
AddressSpace::growRegion(const std::string &name, Addr new_size)
{
    for (auto &r : regions_) {
        if (r.name != name)
            continue;
        fatalIf(new_size < r.size, "regions can only grow");
        fatalIf(new_size & basePageMask,
                "region size must be a page multiple");
        for (const auto &other : regions_) {
            if (&other == &r)
                continue;
            fatalIf(r.base < other.end() &&
                        other.base < r.base + new_size,
                    "growing region '", name, "' would overlap '",
                    other.name, "'");
        }
        r.size = new_size;
        return;
    }
    fatal("no region named '", name, "'");
}

const VmRegion *
AddressSpace::findRegion(Addr vaddr) const
{
    for (const auto &r : regions_) {
        if (r.contains(vaddr))
            return &r;
    }
    return nullptr;
}

const VmRegion *
AddressSpace::findRegionByName(const std::string &name) const
{
    for (const auto &r : regions_) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

bool
AddressSpace::isPagePresent(Addr vaddr) const
{
    return pages_.count(pageFrame(vaddr)) > 0;
}

Addr
AddressSpace::frameOf(Addr vaddr) const
{
    auto it = pages_.find(pageFrame(vaddr));
    panicIf(it == pages_.end(), "page not present: 0x", std::hex, vaddr);
    return it->second;
}

void
AddressSpace::installFrame(Addr vaddr, Addr pfn)
{
    const Addr vpn = pageFrame(vaddr);
    panicIf(pages_.count(vpn) > 0,
            "page already present: 0x", std::hex, vaddr);
    pages_[vpn] = pfn;
}

Addr
AddressSpace::removeFrame(Addr vaddr)
{
    auto it = pages_.find(pageFrame(vaddr));
    panicIf(it == pages_.end(),
            "removing absent page: 0x", std::hex, vaddr);
    const Addr pfn = it->second;
    pages_.erase(it);
    return pfn;
}

void
AddressSpace::addSuperpage(const ShadowSuperpage &sp)
{
    const Addr size = sp.size();
    fatalIf(sp.vbase & (size - 1),
            "superpage virtual base not aligned to its size");
    fatalIf(sp.shadowBase & (size - 1),
            "superpage shadow base not aligned to its size");
    auto [it, inserted] = superpages_.emplace(sp.vbase, sp);
    (void)it;
    panicIf(!inserted, "duplicate superpage at 0x", std::hex, sp.vbase);
}

void
AddressSpace::removeSuperpage(Addr vbase)
{
    panicIf(superpages_.erase(vbase) == 0,
            "no superpage at 0x", std::hex, vbase);
}

const ShadowSuperpage *
AddressSpace::findSuperpage(Addr vaddr) const
{
    // The first superpage with vbase <= vaddr is the only candidate,
    // since superpages never overlap.
    auto it = superpages_.upper_bound(vaddr);
    if (it == superpages_.begin())
        return nullptr;
    --it;
    return it->second.covers(vaddr) ? &it->second : nullptr;
}

Addr
AddressSpace::l1EntryAddr(Addr vaddr) const
{
    const Addr l1_index = (vaddr >> 22) & 0x3ff;
    return ptPoolBase_ + l1_index * 4;
}

Addr
AddressSpace::l2EntryAddr(Addr vaddr)
{
    const Addr l1_index = (vaddr >> 22) & 0x3ff;
    const Addr l2_index = (vaddr >> basePageShift) & 0x3ff;
    auto it = l2Nodes_.find(l1_index);
    if (it == l2Nodes_.end()) {
        const Addr node = ptPoolCursor_;
        fatalIf(ptPoolBytes_ != 0 &&
                    node + basePageSize > ptPoolBase_ + ptPoolBytes_,
                "page-table pool exhausted at 0x", std::hex, node);
        ptPoolCursor_ += basePageSize;
        it = l2Nodes_.emplace(l1_index, node).first;
    }
    return it->second + l2_index * 4;
}

} // namespace mtlbsim
