/**
 * @file
 * Shadow-address-range allocators (§2.4).
 *
 * Two implementations of the same interface:
 *
 *  - BucketShadowAllocator: the paper's scheme — the shadow region is
 *    statically pre-partitioned into buckets of each legal superpage
 *    size (Figure 2), and allocation pops any region from the
 *    matching bucket. Simple and fast; can run out of one size while
 *    others sit free.
 *
 *  - BuddyShadowAllocator: the buddy-system variant the paper names
 *    as the natural next step — regions split on demand and
 *    recombine on free, so no size can be exhausted while enough
 *    total space remains at coarser granularity.
 *
 * Superpage sizes are the TLB's legal sizes: 16 KB .. 16 MB in
 * powers of 4 (classes 1..6). Class-0 (4 KB) regions are never
 * allocated from shadow space — a lone base page gains nothing from
 * shadow backing.
 */

#ifndef MTLBSIM_OS_SHADOW_ALLOC_HH
#define MTLBSIM_OS_SHADOW_ALLOC_HH

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "mem/physmap.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

/** Smallest and largest shadow superpage size classes. */
constexpr unsigned minShadowSizeClass = 1;  ///< 16 KB
constexpr unsigned maxShadowSizeClass = 6;  ///< 16 MB

/** Interface shared by the bucket and buddy allocators. */
class ShadowAllocator
{
  public:
    virtual ~ShadowAllocator() = default;

    /**
     * Allocate a shadow region of superpage class @p size_class
     * (aligned to its size). Returns nullopt when that size is
     * exhausted.
     */
    virtual std::optional<Addr> allocate(unsigned size_class) = 0;

    /** Return a region allocated earlier. */
    virtual void free(Addr base, unsigned size_class) = 0;

    /** Regions of @p size_class currently available. */
    virtual Addr available(unsigned size_class) const = 0;
};

/**
 * Figure 2's static bucket partitioning of the shadow region.
 */
class BucketShadowAllocator : public ShadowAllocator
{
  public:
    /** Count of regions per size class, index 0 unused. */
    using Partition = std::array<Addr, numPageSizeClasses>;

    /** The paper's example partition of 512 MB (Figure 2):
     *  1024x16KB, 256x64KB, 128x256KB, 64x1MB, 32x4MB, 16x16MB. */
    static Partition defaultPartition();

    /**
     * Figure 2's partition scaled to an arbitrary shadow region:
     * each class keeps the same *byte* share it has of the default
     * 512 MB, rounded down to whole regions (classes whose share
     * rounds to zero get no regions). For a 512 MB region this is
     * exactly defaultPartition(); tiny regions (the model checker's
     * few MB) get proportionally few small regions.
     */
    static Partition partitionFor(const AddrRange &shadow);

    /**
     * @param shadow    the shadow region to carve up
     * @param partition regions per size class; must fit in shadow
     */
    BucketShadowAllocator(const AddrRange &shadow,
                          const Partition &partition);

    std::optional<Addr> allocate(unsigned size_class) override;
    void free(Addr base, unsigned size_class) override;
    Addr available(unsigned size_class) const override;

  private:
    std::array<std::vector<Addr>, numPageSizeClasses> buckets_;
    AddrRange shadow_;
};

/**
 * Buddy-system allocator over the shadow region (the paper's §2.4
 * "more complex scheme" for when buckets prove too rigid).
 */
class BuddyShadowAllocator : public ShadowAllocator
{
  public:
    explicit BuddyShadowAllocator(const AddrRange &shadow);

    std::optional<Addr> allocate(unsigned size_class) override;
    void free(Addr base, unsigned size_class) override;
    Addr available(unsigned size_class) const override;

  private:
    /** Try to split a block of a larger class down to @p size_class. */
    bool splitDownTo(unsigned size_class);

    AddrRange shadow_;
    /** Free lists per class; key = block base. std::map gives O(log)
     *  buddy lookup on free(). */
    std::array<std::map<Addr, bool>, numPageSizeClasses + 2> freeBlocks_;
    unsigned topClass_;
};

} // namespace mtlbsim

#endif // MTLBSIM_OS_SHADOW_ALLOC_HH
