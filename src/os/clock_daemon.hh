/**
 * @file
 * CLOCK page-replacement daemon over MTLB reference bits.
 *
 * §2.5 of the paper notes that the MTLB's per-base-page *referenced*
 * information is only approximate: the MMC sees cache-fill requests,
 * so a page whose hot lines stay resident in the cache generates no
 * fills and "will appear to be unreferenced even though it might be
 * quite active. This could reduce the effectiveness of CLOCK and
 * similar page replacement strategies. Evaluation of the efficacy of
 * this detailed reference information is beyond the scope of this
 * paper." — this daemon (plus bench/clock_fidelity) is that
 * evaluation.
 *
 * The daemon keeps a circular list of watched shadow-backed base
 * pages. One sweep advances CLOCK's hand over every watched page:
 * pages whose referenced bit is clear are reported as idle
 * (candidates for eviction); every page's bit is then cleared for
 * the next interval. Reads and clears go through the MMC's uncached
 * control-register interface, and their cycle costs are returned so
 * callers can charge the daemon's work to the simulated clock.
 */

#ifndef MTLBSIM_OS_CLOCK_DAEMON_HH
#define MTLBSIM_OS_CLOCK_DAEMON_HH

#include <vector>

#include "base/logging.hh"
#include "mmc/memsys.hh"
#include "os/address_space.hh"

namespace mtlbsim
{

/**
 * CLOCK sweeps over MTLB-maintained reference bits.
 */
class ClockDaemon
{
  public:
    /**
     * @param space  the address space whose pages are watched
     * @param memsys the memory system carrying the MMC control path
     * @param map    the physical map (for shadow page indices)
     */
    ClockDaemon(AddressSpace &space, MemorySystem &memsys,
                const PhysMap &map)
        : space_(space), memsys_(memsys), map_(map)
    {}

    /**
     * Watch every base page of the shadow superpage at @p vbase.
     * Pages must be shadow-backed (their reference bits live in the
     * MTLB/shadow table).
     */
    void
    watch(Addr vbase)
    {
        const ShadowSuperpage *sp = space_.findSuperpage(vbase);
        fatalIf(sp == nullptr, "no shadow superpage at 0x", std::hex,
                vbase);
        for (Addr i = 0; i < sp->numBasePages(); ++i) {
            watched_.push_back(
                {sp->vbase + (i << basePageShift),
                 map_.shadowPageIndex(sp->shadowBase) + i});
        }
    }

    /** Result of one CLOCK sweep. */
    struct SweepResult
    {
        /** Watched pages whose referenced bit was clear. */
        std::vector<Addr> idle;
        /** CPU cycles the sweep consumed (control-register I/O). */
        Cycles cycles = 0;
    };

    /**
     * Advance the hand over all watched pages: report unreferenced
     * pages and reset every referenced bit for the next interval.
     */
    SweepResult
    sweep(Cycles now)
    {
        SweepResult result;
        for (const auto &page : watched_) {
            if (!space_.isPagePresent(page.vaddr))
                continue;   // already swapped out
            ShadowPte pte{};
            result.cycles += memsys_.controlOp(
                now + result.cycles, [&](Mmc &mmc) {
                    pte = mmc.readShadowEntry(page.spi);
                    return Cycles{4};
                });
            if (!pte.referenced)
                result.idle.push_back(page.vaddr);
            result.cycles += memsys_.controlOp(
                now + result.cycles, [&](Mmc &mmc) {
                    return mmc.clearReferencedBit(page.spi);
                });
        }
        return result;
    }

    std::size_t numWatched() const { return watched_.size(); }

  private:
    struct WatchedPage
    {
        Addr vaddr;
        Addr spi;
    };

    AddressSpace &space_;
    MemorySystem &memsys_;
    const PhysMap &map_;
    std::vector<WatchedPage> watched_;
};

} // namespace mtlbsim

#endif // MTLBSIM_OS_CLOCK_DAEMON_HH
