/**
 * @file
 * The mini-kernel VM model.
 *
 * Plays the role of the paper's BSD-based microkernel (§3.2): it owns
 * the physical frame allocator, the process address space, the hashed
 * page table the TLB-miss trap probes, and the shadow-region
 * allocator; and it implements the three OS-visible mechanisms the
 * paper adds:
 *
 *  - remap(): convert a virtual range to shadow-backed superpages
 *    (§2.3/§2.4) — allocate shadow ranges, install MMC mappings via
 *    uncached control writes, flush the affected cache lines, shoot
 *    down stale TLB/HPT entries, and insert superpage mappings.
 *
 *  - a superpage-aware sbrk() that preallocates large remapped
 *    chunks and satisfies small allocations from them (§2.3).
 *
 *  - per-base-page swap-out of shadow superpages using the MTLB's
 *    per-base-page dirty bits (§2.5), with a conventional
 *    whole-superpage variant for comparison.
 *
 * Every method returns the CPU cycles it consumed; memory accesses
 * made by kernel code go through the cache so that page tables
 * compete with user data for cache space (§3.5).
 */

#ifndef MTLBSIM_OS_KERNEL_HH
#define MTLBSIM_OS_KERNEL_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/debug.hh"
#include "cache/cache.hh"
#include "mmc/memsys.hh"
#include "os/address_space.hh"
#include "os/frame_alloc.hh"
#include "os/hpt.hh"
#include "os/shadow_alloc.hh"
#include "os/shadow_page_pool.hh"
#include "stats/stats.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

/** Kernel cost-model and policy configuration. */
struct KernelConfig
{
    /** @name TLB-miss trap handler (§3.2) */
    /** @{ */
    Cycles trapEntryCycles = 12;    ///< pipeline drain + state save
    Cycles trapExitCycles = 8;      ///< state restore + return
    Cycles perProbeCycles = 4;      ///< instructions per HPT probe
    Cycles tlbInsertCycles = 8;     ///< format + insert instruction
    /** @} */

    /** @name VM fault path (demand-zero) */
    /** @{ */
    Cycles vmFaultOverheadCycles = 120;
    Cycles zeroFillPerLineCycles = 2;
    /** @} */

    /** @name remap() and sbrk() (§2.3, §2.4, §3.3) */
    /** @{ */
    Cycles syscallOverheadCycles = 150;
    Cycles remapPerSuperpageCycles = 60;
    Cycles remapPerPageCycles = 12;
    Cycles shootdownPerPageCycles = 2;
    /** @} */

    /** @name Paging (§2.5) */
    /** @{ */
    /** CPU cost to queue one page's disk write (I/O is async). */
    Cycles diskQueueCycles = 400;
    /** Synchronous disk read latency for a faulted base page. */
    Cycles diskReadCycles = 1'200'000; ///< ~5 ms at 240 MHz
    /** @} */

    /** Cycles a remote core spends servicing one TLB-shootdown IPI
     *  (interrupt entry + invalidate + acknowledge). Charged to each
     *  remote core running the mutated address space; single-core
     *  machines never pay it. */
    Cycles ipiCycles = 300;

    unsigned hptBuckets = 16384;    ///< 16 K entries (§3.2)

    /** Create shadow superpages on remap()/sbrk(). When false the
     *  calls succeed but leave everything base-paged (the paper's
     *  no-MTLB baseline runs). */
    bool superpagesEnabled = true;

    /** All-shadow operation (§4): every materialised page is mapped
     *  through a single shadow page, so the machine never exposes
     *  real physical addresses to the CPU — the mode the paper
     *  proposes for systems whose entire physical address space is
     *  populated with DRAM. remap() promotes such pages to proper
     *  superpages as usual. */
    bool allShadowMode = false;

    /** @name Online superpage promotion (§5, Romer-style) */
    /** @{ */
    /** Promote regions to shadow superpages automatically, without
     *  any remap() instrumentation in the program: the kernel
     *  accumulates TLB-miss handler time per candidate chunk and
     *  promotes a chunk once that time would have paid for the
     *  promotion — the competitive policy of Romer et al., with the
     *  threshold reflecting remapping's much lower cost than
     *  copying (the paper's §5 point). */
    bool onlinePromotion = false;
    /** Candidate chunk size class (2 = 64 KB). */
    unsigned promotionChunkClass = 2;
    /** Accumulated miss-handler cycles that trigger promotion. */
    Cycles promotionThresholdCycles = 20'000;
    /** Honour the program's explicit remap()/sbrk() superpage
     *  instrumentation. Set false to study online promotion alone:
     *  explicit requests become no-ops while the promotion policy
     *  (and remap()s it issues internally) still work. */
    bool honorExplicitRemap = true;
    /** @} */

    /** Initial sbrk() preallocation chunk (vortex used 8 MB, §3.1). */
    Addr sbrkPreallocBytes = 8 * 1024 * 1024;

    /** Seed for the frame allocator's free-list shuffle. Sweep jobs
     *  may perturb it to decorrelate physical layouts; runs with the
     *  same seed are bit-identical. */
    std::uint64_t frameSeed = 12345;
};

/** Fixed kernel physical-memory layout. */
struct KernelLayout
{
    static constexpr Addr kernelTextBase = 0x00000000;
    static constexpr Addr kernelTextBytes = 0x00100000;     // 1 MB
    /** Shadow table at 0x00100000 (Mmc::shadowTableBase). */
    static constexpr Addr hptBase = 0x00200000;
    static constexpr Addr ptPoolBase = 0x00400000;
    static constexpr Addr framePoolBase = 0x00800000;       // 8 MB
    static constexpr Addr firstUserPfn = framePoolBase >> basePageShift;

    /** Page-table pool slice for each process after the first. The
     *  4 MB pool region bounds the machine at 16 processes. */
    static constexpr Addr perProcessPtPoolBytes = 0x00040000; // 256 KB
    static constexpr unsigned maxProcesses =
        static_cast<unsigned>((framePoolBase - ptPoolBase) /
                              perProcessPtPoolBytes);
};

/**
 * Narrow observer interface over the kernel's mapping events.
 *
 * Every mutation of the ground-truth vpage->frame mapping — and of
 * the superpage records layered over it — is announced through one
 * of these callbacks, at the point where the kernel's own records
 * have just been updated. The lockstep differential fuzzer
 * (src/fuzz) maintains its flat reference model from exactly these
 * events; nothing in the kernel reads the observer back, so
 * attaching one cannot perturb simulated behaviour or statistics.
 *
 * Contract (see docs/manual.md §10):
 *  - onPageMapped fires whenever a base page gains a real frame
 *    (demand-zero materialisation and shadow-fault swap-in). The
 *    page's shadow-table R/D bits, if any, are clean afterwards.
 *  - onPageUnmapped fires whenever a base page loses its frame
 *    (both swap-out flavours), after the kernel dropped its record.
 *  - onSuperpageCreated fires after a shadow superpage record is
 *    installed (remap(), all-shadow single-page mappings, and
 *    recoloring; sizeClass 0 denotes a single-page mapping). Every
 *    covered page's shadow PTE was rewritten, so its R/D bits are
 *    clean.
 *  - onSuperpageDemoted fires after a single-page shadow mapping is
 *    retired and the page republished at its real address.
 *  - onShadowFault fires on entry to the precise-MTLB-fault handler,
 *    before the onPageMapped it will cause.
 *  - onSwapOut fires on entry to either swap-out flavour, before
 *    the per-page onPageUnmapped events.
 */
class KernelObserver
{
  public:
    virtual ~KernelObserver() = default;

    virtual void onPageMapped(Addr vbase, Addr pfn)
    {
        (void)vbase;
        (void)pfn;
    }

    virtual void onPageUnmapped(Addr vbase, Addr pfn)
    {
        (void)vbase;
        (void)pfn;
    }

    virtual void
    onSuperpageCreated(Addr vbase, Addr shadow_base, unsigned size_class)
    {
        (void)vbase;
        (void)shadow_base;
        (void)size_class;
    }

    virtual void onSuperpageDemoted(Addr vbase) { (void)vbase; }

    virtual void onShadowFault(Addr vaddr) { (void)vaddr; }

    virtual void onSwapOut(Addr vbase, bool pagewise)
    {
        (void)vbase;
        (void)pagewise;
    }
};

/** Result of an sbrk() call. */
struct SbrkResult
{
    Addr oldBreak = 0;  ///< start of the newly granted range
    Cycles cycles = 0;  ///< CPU cycles the call consumed
};

/** Result of swapping a superpage out. */
struct SwapOutResult
{
    unsigned pagesWritten = 0;  ///< base pages queued to disk
    unsigned pagesClean = 0;    ///< base pages skipped (not dirty)
    Cycles cycles = 0;
};

/**
 * One process: its address space plus the per-process kernel state
 * (sbrk bookkeeping, online-promotion credit). Process 0 exists from
 * construction so single-process machines behave exactly as before.
 */
struct Process
{
    std::unique_ptr<AddressSpace> space;

    /** Online-promotion accounting: chunk base -> accumulated
     *  miss-handler cycles. */
    std::unordered_map<Addr, Cycles> promotionCredit;

    /** sbrk state. */
    Addr heapBase = 0;
    Addr brk = 0;
    Addr remapFrontier = 0;
    Addr sbrkPrealloc = 0;
};

/**
 * The kernel.
 */
class Kernel
{
  public:
    Kernel(const KernelConfig &config, const PhysMap &physmap,
           Tlb &tlb, MicroItlb &uitlb, Cache &cache,
           MemorySystem &memsys, stats::StatGroup &parent);

    /** @name CPU-side trap entry points */
    /** @{ */

    /**
     * Service a CPU TLB miss at @p vaddr: probe the HPT, fall back
     * to the VM fault path (page-table walk + demand-zero) when the
     * translation is absent, and insert the mapping into the TLB.
     *
     * @return CPU cycles consumed by the handler
     */
    Cycles handleTlbMiss(Addr vaddr, AccessType type, Cycles now);

    /**
     * Service a precise MTLB fault (§4): the base page backing
     * @p vaddr inside a shadow superpage was swapped out. Reads it
     * back from disk, reinstalls the MMC mapping, and returns.
     */
    Cycles handleShadowPageFault(Addr vaddr, Cycles now);

    /** @} */

    /** @name System calls / libc services used by workloads */
    /** @{ */

    /**
     * remap(): back [vbase, vbase+bytes) with shadow superpages
     * (§2.4). Sub-16 KB head/tail fragments stay base-paged.
     *
     * @param internal true for kernel-originated calls (online
     *        promotion), which bypass the honorExplicitRemap policy
     */
    Cycles remap(Addr vbase, Addr bytes, Cycles now,
                 bool internal = false);

    /**
     * Declare the heap: reserves [base, base+max_bytes) as the
     * "heap" region and arms sbrk(). @p base should be aligned to
     * the smallest superpage (16 KB) so remapping starts cleanly.
     */
    void initHeap(Addr base, Addr max_bytes);

    /** Superpage-aware sbrk() (§2.3). */
    SbrkResult sbrk(Addr bytes, Cycles now);

    /** Current program break (of the active process). */
    Addr currentBreak() const { return proc().brk; }

    /** Change the sbrk() preallocation chunk (vortex shrinks it
     *  from 8 MB to 2 MB after building its datasets, §3.1). */
    void setSbrkPrealloc(Addr bytes) { proc().sbrkPrealloc = bytes; }

    /** @} */

    /** @name Cores and processes (multi-core machine model)
     *
     * The kernel is shared machine state: every core traps into the
     * same instance, and the CPU model names itself via
     * setActiveCore() before each kernel entry. Core 0 is the
     * construction-time TLB/micro-ITLB pair; further cores attach
     * their private translation structures with attachCore().
     * Processes are distinct address spaces time-sliced onto cores
     * by the scheduler (src/workloads/multiprog.*).
     */
    /** @{ */

    /** Register one more core's private translation structures.
     *  @p charge_ipi is invoked on that core's CPU model for every
     *  shootdown IPI it services. */
    void attachCore(Tlb *tlb, MicroItlb *uitlb,
                    std::function<void(Cycles)> charge_ipi);

    /** (Re)set a core's IPI-service hook; used for core 0, whose
     *  translation structures are bound at construction. */
    void
    setCoreIpi(unsigned core, std::function<void(Cycles)> charge_ipi)
    {
        panicIf(core >= cores_.size(), "no core ", core);
        cores_[core].chargeIpi = std::move(charge_ipi);
    }

    /** Name the core whose trap/syscall the kernel is servicing.
     *  Called by the CPU model before every kernel entry. */
    void
    setActiveCore(unsigned core)
    {
        panicIf(core >= cores_.size(), "no core ", core);
        activeCore_ = core;
    }

    unsigned activeCore() const { return activeCore_; }

    unsigned
    numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Create a new process (empty address space, fresh sbrk state);
     *  returns its index. Bounded by KernelLayout::maxProcesses. */
    unsigned createProcess();

    unsigned
    numProcesses() const
    {
        return static_cast<unsigned>(processes_.size());
    }

    /**
     * Context-switch @p core to @p proc: purge the core's TLB and
     * micro-ITLB (entries are not ASID-tagged) and retarget its
     * kernel entries at the new address space.
     *
     * @return true when a switch happened (false if already bound,
     *         letting the scheduler charge switch cost only for real
     *         switches)
     */
    bool bindProcess(unsigned core, unsigned proc);

    unsigned
    coreProcess(unsigned core) const
    {
        panicIf(core >= cores_.size(), "no core ", core);
        return cores_[core].proc;
    }

    const Tlb &
    coreTlb(unsigned core) const
    {
        panicIf(core >= cores_.size(), "no core ", core);
        return *cores_[core].tlb;
    }

    AddressSpace &
    processSpace(unsigned proc)
    {
        panicIf(proc >= processes_.size(), "no process ", proc);
        return *processes_[proc]->space;
    }

    const AddressSpace &
    processSpace(unsigned proc) const
    {
        panicIf(proc >= processes_.size(), "no process ", proc);
        return *processes_[proc]->space;
    }

    /** Shootdown IPIs serviced by @p core (0 on single-core
     *  machines, where no IPC ever fires). */
    std::uint64_t
    shootdownsReceived(unsigned core) const
    {
        if (core >= shootdownStats_.size())
            return 0;
        return static_cast<std::uint64_t>(
            shootdownStats_[core]->value());
    }

    /**
     * Swallow the next shootdownRemote() broadcast, leaving remote
     * cores stale. Fault-injection support only (tools/fuzz's
     * skipShootdown class): proves the cross-core coherence
     * invariant actually fires.
     */
    void suppressNextShootdown() { suppressNextShootdown_ = true; }

    /** Is a suppression pending? The model checker hashes this:
     *  the flag changes future behaviour without touching any other
     *  architectural state, so ignoring it would let a planted
     *  skip-shootdown state be pruned against its clean twin. */
    bool shootdownSuppressed() const { return suppressNextShootdown_; }

    /** @} */

    /** @name Paging (§2.5) */
    /** @{ */

    /** Swap out only the dirty base pages of a shadow superpage,
     *  using the MTLB's per-base-page dirty bits. */
    SwapOutResult swapOutSuperpagePagewise(Addr vbase, Cycles now);

    /** Conventional superpage swap-out: every base page goes to
     *  disk because no per-base-page dirty state exists. */
    SwapOutResult swapOutSuperpageWhole(Addr vbase, Cycles now);

    /** @} */

    /** @name Shadow-memory extensions (§6 future work) */
    /** @{ */

    /**
     * No-copy page recoloring: remap the (present) base page at
     * @p vaddr to a shadow address of cache color @p color, without
     * copying any data. Only meaningful with a physically indexed
     * cache, where the shadow address chooses the set.
     *
     * @return CPU cycles consumed
     */
    Cycles recolorPage(Addr vaddr, unsigned color, Cycles now);

    /** Cache color a virtual page currently resolves to (follows
     *  the shadow mapping when one exists). */
    unsigned colorOf(Addr vaddr);

    /** @} */

    /** Define the active process's regions before running a
     *  workload. */
    AddressSpace &addressSpace() { return space(); }

    FrameAllocator &frames() { return frames_; }
    Hpt &hpt() { return hpt_; }
    ShadowAllocator &shadowAllocator() { return *shadowAlloc_; }

    /** Attach (or detach, with nullptr) a mapping-event observer.
     *  At most one observer is supported; it must outlive the
     *  kernel or be detached first. */
    void setObserver(KernelObserver *observer) { observer_ = observer; }

    const KernelConfig &config() const { return config_; }

    /** Total cycles spent inside handleTlbMiss (Fig 3's miss time). */
    Cycles
    tlbMissCycles() const
    {
        return static_cast<Cycles>(tlbMissCycles_.value());
    }

    /** Number of handleTlbMiss invocations; the auditor checks this
     *  against the TLB's own miss counter (src/check). */
    std::uint64_t
    tlbMissCount() const
    {
        return static_cast<std::uint64_t>(tlbMisses_.value());
    }

    /** Precise MTLB faults serviced (handleShadowPageFault calls). */
    std::uint64_t
    shadowFaultCount() const
    {
        return static_cast<std::uint64_t>(shadowFaults_.value());
    }

    /** Cycles remap() spent flushing caches (§3.3 breakdown). */
    Cycles
    remapFlushCycles() const
    {
        return static_cast<Cycles>(remapFlushCycles_.value());
    }

    /** Total remap() cycles (§3.3). */
    Cycles
    remapTotalCycles() const
    {
        return static_cast<Cycles>(remapCycles_.value());
    }

    /** Base pages converted to shadow backing by remap(). */
    std::uint64_t
    remapPages() const
    {
        return static_cast<std::uint64_t>(remapPages_.value());
    }

  private:
    /** One cached kernel memory access (kernel is identity mapped
     *  through the pinned block TLB entry, so no TLB cost). */
    Cycles kernelAccess(Addr paddr, bool write, Cycles now);

    /** Zero-fill a freshly allocated frame through the cache. */
    Cycles zeroFill(Addr pfn, Cycles now);

    /** Allocate + zero a frame for @p vaddr and install the PTE. */
    Cycles materialisePage(Addr vaddr, Cycles now);

    /** Lazily constructed single-page shadow pool (§4/§6 modes). */
    ShadowPagePool &pagePool();

    /** Map a present base page through a single shadow page. A
     *  @p fresh page (zeroed, never yet mapped) skips the cache
     *  flush. */
    Cycles mapPageToShadow(Addr vaddr, Addr shadow_page, Cycles now,
                           bool fresh = false);

    /** Undo a single-page shadow mapping (frees the shadow page). */
    Cycles demoteSingleShadowPage(Addr vaddr, Cycles now);

    /** Charge HPT-touch costs for a list of entry addresses. */
    Cycles chargeHptTouches(const std::vector<Addr> &addrs, bool write,
                            Cycles now);

    /** Build the mapping the TLB should hold for @p vaddr. */
    VmMapping mappingFor(Addr vaddr) const;

    /** Highest heap address already granted (and remapped). */
    Addr grantedFrontier() const { return proc().remapFrontier; }

    /**
     * Broadcast a TLB-shootdown IPI for [vbase, vbase+bytes) to
     * every *other* core. TLB entries are not ASID-tagged, so the
     * kernel cannot prove a remote core caches nothing from the
     * mutated address space without tracking residency history; it
     * conservatively IPIs them all, the classic pre-ASID Unix
     * discipline. bytes==0 sends an epoch-only shootdown (frame
     * reuse below an unchanged CPU-visible translation — the
     * shadow-fault and swap-out sites); bytes>0 also purges the
     * range. @p inval_uitlb mirrors remap()'s micro-ITLB
     * invalidate. Each remote core is charged
     * KernelConfig::ipiCycles and counts one received shootdown.
     */
    void shootdownRemote(Addr vbase, Addr bytes, bool inval_uitlb);

    /** Account a miss against the online-promotion policy and
     *  promote the containing chunk when it crosses the threshold.
     *  @return extra cycles spent promoting (0 normally). */
    Cycles notePromotionCandidate(Addr vaddr, Cycles handler_cycles,
                                  Cycles now);

    /** One core's private translation structures, as seen by the
     *  shared kernel. */
    struct CoreCtx
    {
        Tlb *tlb = nullptr;
        MicroItlb *uitlb = nullptr;
        /** Charges IPI-service cycles to the core's CPU model. */
        std::function<void(Cycles)> chargeIpi;
        unsigned proc = 0;  ///< process currently bound to the core
    };

    /** @name Active-core plumbing (all reads go through these) */
    /** @{ */
    Tlb &activeTlb() { return *cores_[activeCore_].tlb; }
    MicroItlb &activeUitlb() { return *cores_[activeCore_].uitlb; }
    Process &proc() { return *processes_[cores_[activeCore_].proc]; }
    const Process &
    proc() const
    {
        return *processes_[cores_[activeCore_].proc];
    }
    AddressSpace &space() { return *proc().space; }
    const AddressSpace &space() const { return *proc().space; }
    /** HPT key tag for the active address space. */
    unsigned asid() const { return cores_[activeCore_].proc; }
    /** @} */

    KernelConfig config_;
    const PhysMap &physMap_;
    /** Per-instance trace flag: every System's kernel registers its
     *  own "Kernel" flag (enable-by-name toggles them all). */
    debug::Flag traceFlag_{"Kernel"};
    KernelObserver *observer_ = nullptr;
    Tlb &tlb_;
    MicroItlb &uitlb_;
    Cache &cache_;
    MemorySystem &memsys_;

    FrameAllocator frames_;
    Hpt hpt_;
    std::unique_ptr<ShadowAllocator> shadowAlloc_;
    std::unique_ptr<ShadowPagePool> pagePool_;

    /** All processes; [0] exists from construction. */
    std::vector<std::unique_ptr<Process>> processes_;
    /** All cores; [0] wraps the construction-time references. */
    std::vector<CoreCtx> cores_;
    unsigned activeCore_ = 0;
    /** Fault injection (see suppressNextShootdown()). */
    bool suppressNextShootdown_ = false;

    /** True while remap() materialises pages: suppresses all-shadow
     *  single-page mappings that the superpage under construction
     *  would immediately supersede. */
    bool inRemap_ = false;

    stats::StatGroup statGroup_;
    stats::Scalar &tlbMisses_;
    stats::Scalar &tlbMissCycles_;
    stats::Scalar &vmFaults_;
    stats::Scalar &vmFaultCycles_;
    stats::Scalar &zeroFilledPages_;
    stats::Scalar &remapCalls_;
    stats::Scalar &remapSuperpages_;
    stats::Scalar &remapPages_;
    stats::Scalar &remapCycles_;
    stats::Scalar &remapFlushCycles_;
    stats::Scalar &sbrkCalls_;
    stats::Scalar &shadowFaults_;
    stats::Scalar &pagesSwappedOut_;
    stats::Scalar &pagesSwappedIn_;
    stats::Scalar &recoloredPages_;
    stats::Scalar &allShadowPages_;

    /** Per-core received-shootdown counters; registered only when a
     *  second core attaches, so single-core stat output is
     *  byte-identical to the single-core machine's. */
    std::vector<stats::Scalar *> shootdownStats_;
};

} // namespace mtlbsim

#endif // MTLBSIM_OS_KERNEL_HH
