#include "os/kernel.hh"

#include <string>

#include "base/intmath.hh"
#include "mmc/mmc.hh"

namespace mtlbsim
{

Kernel::Kernel(const KernelConfig &config, const PhysMap &physmap,
               Tlb &tlb, MicroItlb &uitlb, Cache &cache,
               MemorySystem &memsys, stats::StatGroup &parent)
    : config_(config), physMap_(physmap), tlb_(tlb), uitlb_(uitlb),
      cache_(cache), memsys_(memsys),
      frames_(KernelLayout::firstUserPfn,
              physmap.numRealPages() - KernelLayout::firstUserPfn,
              config.frameSeed),
      hpt_(KernelLayout::hptBase, config.hptBuckets),
      statGroup_("kernel"),
      tlbMisses_(statGroup_.addScalar("tlb_misses",
                                      "TLB miss traps handled")),
      tlbMissCycles_(statGroup_.addScalar("tlb_miss_cycles",
                                          "CPU cycles in the TLB miss "
                                          "handler (Fig 3 metric)")),
      vmFaults_(statGroup_.addScalar("vm_faults",
                                     "demand-zero page faults")),
      vmFaultCycles_(statGroup_.addScalar("vm_fault_cycles",
                                          "CPU cycles in the VM fault "
                                          "path (excluded from TLB "
                                          "miss time)")),
      zeroFilledPages_(statGroup_.addScalar("zero_filled_pages",
                                            "frames zero-filled")),
      remapCalls_(statGroup_.addScalar("remap_calls", "remap() calls")),
      remapSuperpages_(statGroup_.addScalar("remap_superpages",
                                            "shadow superpages created")),
      remapPages_(statGroup_.addScalar("remap_pages",
                                       "base pages remapped")),
      remapCycles_(statGroup_.addScalar("remap_cycles",
                                        "total cycles inside remap() "
                                        "(§3.3)")),
      remapFlushCycles_(statGroup_.addScalar("remap_flush_cycles",
                                             "remap() cycles spent "
                                             "flushing the cache (§3.3)")),
      sbrkCalls_(statGroup_.addScalar("sbrk_calls", "sbrk() calls")),
      shadowFaults_(statGroup_.addScalar("shadow_faults",
                                         "MTLB precise faults handled")),
      pagesSwappedOut_(statGroup_.addScalar("pages_swapped_out",
                                            "base pages written to disk")),
      pagesSwappedIn_(statGroup_.addScalar("pages_swapped_in",
                                           "base pages read from disk")),
      recoloredPages_(statGroup_.addScalar("recolored_pages",
                                           "pages recolored via shadow "
                                           "remapping (§6)")),
      allShadowPages_(statGroup_.addScalar("all_shadow_pages",
                                           "pages mapped through "
                                           "single shadow pages (§4)"))
{
    parent.addChild(&statGroup_);

    fatalIf(physmap.numRealPages() <= KernelLayout::firstUserPfn,
            "installed memory too small for the kernel layout");

    if (physmap.shadowRange().size > 0) {
        shadowAlloc_ = std::make_unique<BucketShadowAllocator>(
            physmap.shadowRange(),
            BucketShadowAllocator::partitionFor(physmap.shadowRange()));
    }

    // Process 0: the whole page-table pool, exactly as the
    // single-process kernel laid it out. Later processes carve
    // bounded slices (createProcess).
    auto p0 = std::make_unique<Process>();
    p0->space =
        std::make_unique<AddressSpace>(KernelLayout::ptPoolBase);
    p0->sbrkPrealloc = config.sbrkPreallocBytes;
    processes_.push_back(std::move(p0));

    // Core 0 wraps the construction-time references; its IPI hook is
    // installed by the System once the CPU model exists.
    cores_.push_back(CoreCtx{&tlb_, &uitlb_, {}, 0});
}

unsigned
Kernel::createProcess()
{
    const unsigned id = static_cast<unsigned>(processes_.size());
    fatalIf(id >= KernelLayout::maxProcesses,
            "page-table pool supports at most ",
            KernelLayout::maxProcesses, " processes");
    auto p = std::make_unique<Process>();
    p->space = std::make_unique<AddressSpace>(
        KernelLayout::ptPoolBase +
            Addr{id} * KernelLayout::perProcessPtPoolBytes,
        KernelLayout::perProcessPtPoolBytes);
    p->sbrkPrealloc = config_.sbrkPreallocBytes;
    processes_.push_back(std::move(p));
    return id;
}

void
Kernel::attachCore(Tlb *tlb, MicroItlb *uitlb,
                   std::function<void(Cycles)> charge_ipi)
{
    panicIf(tlb == nullptr || uitlb == nullptr,
            "attachCore needs a TLB and a micro-ITLB");
    cores_.push_back(CoreCtx{tlb, uitlb, std::move(charge_ipi), 0});

    // Received-shootdown counters exist only on multi-core machines
    // (conditional registration keeps single-core output
    // byte-identical). The second core's arrival registers core 0's
    // counter too.
    if (cores_.size() == 2) {
        shootdownStats_.push_back(&statGroup_.addScalar(
            "shootdowns_core0",
            "TLB shootdown IPIs serviced by core 0"));
    }
    const unsigned id = static_cast<unsigned>(cores_.size()) - 1;
    shootdownStats_.push_back(&statGroup_.addScalar(
        "shootdowns_core" + std::to_string(id),
        "TLB shootdown IPIs serviced by core " + std::to_string(id)));
}

bool
Kernel::bindProcess(unsigned core, unsigned proc)
{
    panicIf(core >= cores_.size(), "no core ", core);
    panicIf(proc >= processes_.size(), "no process ", proc);
    CoreCtx &ctx = cores_[core];
    if (ctx.proc == proc)
        return false;

    ctx.proc = proc;
    // Entries are not ASID-tagged: a context switch flushes the
    // core's whole translation state. The explicit epoch bump also
    // kills L0 memoizations and batch anchors even when the TLB held
    // no purgeable entry.
    ctx.tlb->purgeAll();
    ctx.tlb->bumpTranslationEpoch();
    ctx.uitlb->invalidate();
    return true;
}

void
Kernel::shootdownRemote(Addr vbase, Addr bytes, bool inval_uitlb)
{
    if (cores_.size() < 2)
        return;
    if (suppressNextShootdown_) {
        suppressNextShootdown_ = false;
        return;
    }

    for (unsigned c = 0; c < cores_.size(); ++c) {
        // Every remote core is a target: entries are not ASID-tagged,
        // so without residency tracking the kernel cannot rule out
        // that core c still caches something from this address space.
        if (c == activeCore_)
            continue;
        Tlb &tlb = *cores_[c].tlb;
        if (bytes > 0)
            tlb.purgeRange(vbase, bytes);
        // Mirror the local site: the epoch bump retires the remote
        // core's L0 memoizations and batch anchors even when no TLB
        // entry covered the range (epoch-only shootdowns pass
        // bytes==0).
        tlb.bumpTranslationEpoch();
        if (inval_uitlb)
            cores_[c].uitlb->invalidate();
        if (cores_[c].chargeIpi)
            cores_[c].chargeIpi(config_.ipiCycles);
        ++*shootdownStats_[c];
    }
}

Cycles
Kernel::kernelAccess(Addr paddr, bool write, Cycles now)
{
    // Kernel structures are identity mapped through the pinned block
    // TLB entry (§3.2), so kernel loads/stores pay cache/memory time
    // but never TLB-miss time.
    return cache_.access(paddr, paddr, write, now).latency;
}

Cycles
Kernel::zeroFill(Addr pfn, Cycles now)
{
    ++zeroFilledPages_;
    // Fresh frames are zeroed with non-allocating block stores that
    // stream straight to DRAM over the bus: zeroing a 4 KB page (or
    // a freshly granted multi-megabyte sbrk chunk) must not displace
    // the contents of the 512 KB cache.
    Cycles cycles = 0;
    const Addr frame_base = pfn << basePageShift;
    const unsigned lines = basePageSize >> cacheLineShift;
    for (unsigned i = 0; i < lines; ++i) {
        cycles += config_.zeroFillPerLineCycles;
        cycles += memsys_.writeBack(
            frame_base + (static_cast<Addr>(i) << cacheLineShift),
            now + cycles);
    }
    return cycles;
}

Cycles
Kernel::materialisePage(Addr vaddr, Cycles now)
{
    const Addr pfn = frames_.allocate();
    space().installFrame(vaddr, pfn);
    if (observer_)
        observer_->onPageMapped(pageBase(vaddr), pfn);
    Cycles cycles = zeroFill(pfn, now);
    // Install the PTE in the two-level page table.
    cycles += kernelAccess(space().l2EntryAddr(vaddr), true,
                           now + cycles);

    // §4 all-shadow operation: the CPU never sees real addresses;
    // every fresh page is published through a single shadow page.
    // Pages materialised inside remap() skip this: the superpage
    // being built will map them in a moment.
    if (config_.allShadowMode && shadowAlloc_ && !inRemap_ &&
        memsys_.mmc().hasMtlb() &&
        space().findSuperpage(vaddr) == nullptr) {
        if (auto page = pagePool().allocate()) {
            // The page was zeroed through non-allocating stores and
            // was never mapped, so there is nothing to flush.
            cycles += mapPageToShadow(pageBase(vaddr), *page,
                                      now + cycles, true);
            ++allShadowPages_;
        } else {
            warn("shadow space exhausted; page stays real-mapped");
        }
    }
    return cycles;
}

ShadowPagePool &
Kernel::pagePool()
{
    panicIf(!shadowAlloc_, "no shadow space for a page pool");
    if (!pagePool_) {
        const unsigned colors = static_cast<unsigned>(
            cache_.config().sizeBytes >> basePageShift);
        pagePool_ =
            std::make_unique<ShadowPagePool>(*shadowAlloc_, colors);
    }
    return *pagePool_;
}

Cycles
Kernel::mapPageToShadow(Addr vbase, Addr shadow_page, Cycles now,
                        bool fresh)
{
    const Addr pfn = space().frameOf(vbase);
    const Addr spi = physMap_.shadowPageIndex(shadow_page);

    Cycles cycles = memsys_.controlOp(
        now, [&](Mmc &mmc) { return mmc.setShadowMapping(spi, pfn); });

    // The page's cached lines carry real-address tags (and, in a
    // physically indexed cache, real-address indices); flush before
    // the mapping switches. Freshly zeroed pages were never mapped
    // and have nothing cached.
    if (!fresh) {
        cycles += cache_.flushPage(vbase, pfn << basePageShift,
                                   now + cycles);
    }

    cycles += chargeHptTouches(hpt_.remove(vbase, 0, asid()), true,
                               now + cycles);
    const VmRegion *region = space().findRegion(vbase);
    panicIf(region == nullptr, "shadow-mapping an unmapped page");
    cycles += chargeHptTouches(
        hpt_.insert({vbase, shadow_page, 0, region->prot}, asid()),
        true, now + cycles);

    activeTlb().purgeRange(vbase, basePageSize);
    // purgeRange only bumps the translation epoch when it drops an
    // entry; the mapping switched real->shadow regardless.
    activeTlb().bumpTranslationEpoch();
    shootdownRemote(vbase, basePageSize, false);
    space().addSuperpage({vbase, shadow_page, 0});
    if (observer_)
        observer_->onSuperpageCreated(vbase, shadow_page, 0);
    return cycles;
}

Cycles
Kernel::demoteSingleShadowPage(Addr vaddr, Cycles now)
{
    const ShadowSuperpage *sp = space().findSuperpage(vaddr);
    panicIf(sp == nullptr || sp->sizeClass != 0,
            "not a single-page shadow mapping");
    const Addr vbase = sp->vbase;
    const Addr shadow_page = sp->shadowBase;
    const Addr spi = physMap_.shadowPageIndex(shadow_page);
    const VmRegion *region = space().findRegion(vbase);

    // Flush shadow-tagged lines, retire the mapping, and republish
    // the page at its real address.
    Cycles cycles = cache_.flushPage(vbase, shadow_page, now);
    cycles += memsys_.controlOp(
        now + cycles,
        [&](Mmc &mmc) { return mmc.clearShadowMapping(spi); });
    cycles += chargeHptTouches(hpt_.remove(vbase, 0, asid()), true,
                               now + cycles);
    cycles += chargeHptTouches(
        hpt_.insert({vbase, space().frameOf(vbase) << basePageShift,
                     0, region->prot},
                    asid()),
        true, now + cycles);
    activeTlb().purgeRange(vbase, basePageSize);
    activeTlb().bumpTranslationEpoch(); // switched shadow->real
    shootdownRemote(vbase, basePageSize, false);
    space().removeSuperpage(vbase);
    pagePool().free(shadow_page);
    if (observer_)
        observer_->onSuperpageDemoted(vbase);
    return cycles;
}

Cycles
Kernel::recolorPage(Addr vaddr, unsigned color, Cycles now)
{
    fatalIf(!shadowAlloc_ || !memsys_.mmc().hasMtlb(),
            "recoloring requires shadow memory and an MTLB");
    fatalIf(!space().isPagePresent(vaddr),
            "recoloring an absent page");

    Cycles cycles = config_.syscallOverheadCycles;
    const Addr vbase = pageBase(vaddr);

    // Already shadow-mapped? Retire the old single-page mapping
    // first (recoloring a page inside a genuine superpage is not
    // supported — the superpage's layout is fixed).
    if (const ShadowSuperpage *sp = space().findSuperpage(vbase)) {
        fatalIf(sp->sizeClass != 0,
                "cannot recolor inside a multi-page superpage");
        cycles += demoteSingleShadowPage(vbase, now + cycles);
    }

    auto page = pagePool().allocateColored(color);
    fatalIf(!page, "shadow space exhausted; cannot recolor");
    cycles += mapPageToShadow(vbase, *page, now + cycles);
    ++recoloredPages_;
    return cycles;
}

unsigned
Kernel::colorOf(Addr vaddr)
{
    const unsigned colors = static_cast<unsigned>(
        cache_.config().sizeBytes >> basePageShift);
    Addr paddr;
    if (const ShadowSuperpage *sp = space().findSuperpage(vaddr)) {
        paddr = sp->shadowBase | (vaddr - sp->vbase);
    } else {
        paddr = (space().frameOf(vaddr) << basePageShift) |
                pageOffset(vaddr);
    }
    return static_cast<unsigned>(paddr >> basePageShift) &
           (colors - 1);
}

Cycles
Kernel::chargeHptTouches(const std::vector<Addr> &addrs, bool write,
                         Cycles now)
{
    Cycles cycles = 0;
    for (const Addr a : addrs) {
        cycles += config_.perProbeCycles;
        cycles += kernelAccess(a, write, now + cycles);
    }
    return cycles;
}

VmMapping
Kernel::mappingFor(Addr vaddr) const
{
    const VmRegion *region = space().findRegion(vaddr);
    panicIf(region == nullptr,
            "mappingFor on unmapped address 0x", std::hex, vaddr);

    if (const ShadowSuperpage *sp = space().findSuperpage(vaddr)) {
        return {sp->vbase, sp->shadowBase, sp->sizeClass, region->prot};
    }
    return {pageBase(vaddr), space().frameOf(vaddr) << basePageShift, 0,
            region->prot};
}

Cycles
Kernel::handleTlbMiss(Addr vaddr, AccessType type, Cycles now)
{
    (void)type;
    ++tlbMisses_;
    Cycles cycles = config_.trapEntryCycles;

    // Probe the hashed page table; every entry examined is a real
    // cached load.
    Hpt::LookupResult lookup = hpt_.lookup(vaddr, asid());
    cycles += chargeHptTouches(lookup.probeAddrs, false, now + cycles);

    // Cycles spent in the VM fault path (page-table walk + demand
    // zero). These are kernel time but *not* TLB-miss-handling time
    // in the Figure 3 sense — a conventional page fault costs the
    // same on any system.
    Cycles fault_cycles = 0;

    if (!lookup.mapping) {
        ++vmFaults_;
        fault_cycles += config_.vmFaultOverheadCycles;
        fault_cycles += kernelAccess(space().l1EntryAddr(vaddr), false,
                                     now + cycles + fault_cycles);
        fault_cycles += kernelAccess(space().l2EntryAddr(vaddr), false,
                                     now + cycles + fault_cycles);

        const VmRegion *region = space().findRegion(vaddr);
        fatalIf(region == nullptr,
                "segmentation fault: access to 0x", std::hex, vaddr);

        panicIf(space().findSuperpage(vaddr) != nullptr,
                "superpage lost its HPT entry");

        if (!space().isPagePresent(vaddr))
            fault_cycles += materialisePage(vaddr,
                                            now + cycles + fault_cycles);

        lookup.mapping = mappingFor(vaddr);
        fault_cycles += chargeHptTouches(
            hpt_.insert(*lookup.mapping, asid()), true,
            now + cycles + fault_cycles);
        vmFaultCycles_ += static_cast<double>(fault_cycles);
    }

    cycles += config_.tlbInsertCycles + config_.trapExitCycles;

    // Online promotion (§5): charge this miss against the candidate
    // chunk; when the accumulated handler time would have paid for a
    // promotion, remap the chunk now. The promotion changes the
    // mapping, so it runs before the TLB insert.
    Cycles promo_cycles = 0;
    if (config_.onlinePromotion && lookup.mapping->sizeClass == 0) {
        promo_cycles = notePromotionCandidate(vaddr, cycles,
                                              now + cycles +
                                                  fault_cycles);
        if (promo_cycles > 0)
            lookup.mapping = mappingFor(vaddr);
    }

    const VmMapping &m = *lookup.mapping;
    activeTlb().insert(m.vbase, m.pbase, m.sizeClass, m.prot);

    tlbMissCycles_ += static_cast<double>(cycles);
    return cycles + fault_cycles + promo_cycles;
}

Cycles
Kernel::notePromotionCandidate(Addr vaddr, Cycles handler_cycles,
                               Cycles now)
{
    if (!shadowAlloc_ || !memsys_.mmc().hasMtlb())
        return 0;

    const Addr chunk_bytes =
        pageSizeForClass(config_.promotionChunkClass);
    const Addr chunk = vaddr & ~(chunk_bytes - 1);

    // Only whole chunks inside one region are candidates.
    const VmRegion *region = space().findRegion(chunk);
    if (region == nullptr || region->end() < chunk + chunk_bytes)
        return 0;

    Cycles &credit = proc().promotionCredit[chunk];
    credit += handler_cycles;
    if (credit < config_.promotionThresholdCycles)
        return 0;

    proc().promotionCredit.erase(chunk);
    debugPrintf(traceFlag_, "promoting chunk 0x", std::hex, chunk);
    const Cycles cost = remap(chunk, chunk_bytes, now, true);
    remapCalls_ += -1;  // kernel-internal, not a user remap()
    return cost;
}

namespace
{

/** Largest superpage class that is aligned at @p cursor and fits
 *  before @p end; 0 when not even a 16 KB superpage fits. */
unsigned
maximalClassAt(Addr cursor, Addr end)
{
    for (unsigned c = maxShadowSizeClass; c >= minShadowSizeClass; --c) {
        const Addr size = pageSizeForClass(c);
        if ((cursor & (size - 1)) == 0 && cursor + size <= end)
            return c;
    }
    return 0;
}

} // namespace

Cycles
Kernel::remap(Addr vbase, Addr bytes, Cycles now, bool internal)
{
    ++remapCalls_;
    Cycles cycles = config_.syscallOverheadCycles;

    if (!config_.superpagesEnabled || !shadowAlloc_ ||
        !memsys_.mmc().hasMtlb() ||
        (!internal && !config_.honorExplicitRemap)) {
        // Advisory call on a system without shadow support.
        remapCycles_ += static_cast<double>(cycles);
        return cycles;
    }

    const Addr end = vbase + bytes;
    // Skip any sub-16 KB head; it stays base-paged (§2.4).
    Addr cursor = roundUp(vbase, pageSizeForClass(minShadowSizeClass));

    const AddrRange &shadow = physMap_.shadowRange();

    while (true) {
        // Skip genuine superpages (idempotent remap). Single-page
        // shadow mappings from all-shadow mode or recoloring are
        // demoted page by page below and re-covered by the superpage
        // being built.
        if (const ShadowSuperpage *sp = space().findSuperpage(cursor)) {
            if (sp->sizeClass != 0) {
                cursor = sp->vbase + sp->size();
                continue;
            }
        }

        // A genuine superpage may also start above the cursor but
        // inside the largest chunk that would otherwise fit. A new
        // superpage must never span it: its pages already have live
        // shadow mappings, and installing a second spi for the same
        // frame double-maps it. Cap the chunk at the first such
        // superpage; the skip above steps over it next iteration.
        Addr chunk_end = end;
        for (auto it = space().superpages().upper_bound(cursor);
             it != space().superpages().end() &&
             it->second.vbase < chunk_end;
             ++it) {
            if (it->second.sizeClass != 0) {
                chunk_end = it->second.vbase;
                break;
            }
        }

        unsigned c = maximalClassAt(cursor, chunk_end);
        if (c == 0) {
            if (chunk_end < end) {
                // Blocked before the capped boundary; resume at the
                // existing superpage so the skip above advances past
                // it.
                cursor = chunk_end;
                continue;
            }
            break;
        }

        // Allocate a shadow region, falling back to smaller classes
        // when the preferred bucket is exhausted.
        std::optional<Addr> shadow_base;
        while (c >= minShadowSizeClass) {
            shadow_base = shadowAlloc_->allocate(c);
            if (shadow_base)
                break;
            --c;
        }
        if (!shadow_base) {
            warn("shadow address space exhausted; leaving 0x", std::hex,
                 cursor, "..0x", end, " base-paged");
            break;
        }

        cycles += config_.remapPerSuperpageCycles;
        const Addr sp_size = pageSizeForClass(c);
        const Addr n_pages = sp_size >> basePageShift;
        const Addr spi0 = physMap_.shadowPageIndex(*shadow_base);
        (void)shadow;

        const VmRegion *region = space().findRegion(cursor);
        fatalIf(region == nullptr,
                "remap() of unmapped range at 0x", std::hex, cursor);
        fatalIf(region->end() < cursor + sp_size,
                "remap() range crosses a region boundary");

        const VmMapping sp_mapping{cursor, *shadow_base, c,
                                   region->prot};

        for (Addr i = 0; i < n_pages; ++i) {
            const Addr va = cursor + (i << basePageShift);
            cycles += config_.remapPerPageCycles;

            // Retire any single-page shadow mapping first.
            if (const ShadowSuperpage *single =
                    space().findSuperpage(va);
                single && single->sizeClass == 0) {
                cycles += demoteSingleShadowPage(va, now + cycles);
            }

            // Ensure the base page is materialised (the paper's runs
            // remapped regions whose pages were already zero-filled;
            // fresh sbrk chunks are materialised here instead).
            const bool fresh = !space().isPagePresent(va);
            if (fresh) {
                inRemap_ = true;
                cycles += materialisePage(va, now + cycles);
                inRemap_ = false;
            }
            const Addr pfn = space().frameOf(va);

            // Install the shadow->real mapping via an uncached write
            // to the MMC control registers (§2.4).
            cycles += memsys_.controlOp(
                now + cycles,
                [&](Mmc &mmc) { return mmc.setShadowMapping(spi0 + i,
                                                            pfn); });

            // Flush every line of the page from the cache: its tags
            // are about to change from real to shadow (§2.3). Pages
            // materialised within this very call were never mapped
            // at any address, so there is nothing to flush for them.
            if (!fresh) {
                const Cycles flush = cache_.flushPage(
                    va, pfn << basePageShift, now + cycles);
                cycles += flush;
                remapFlushCycles_ += static_cast<double>(flush);
            }

            // Retire the old base-page HPT entry (if any) and write
            // this page's replica of the superpage mapping — the
            // PA-RISC HPT hashes at base-page grain, so a superpage
            // is entered once per base page it covers.
            cycles += chargeHptTouches(
                hpt_.remove(pageBase(va), 0, asid()), true,
                now + cycles);
            cycles += chargeHptTouches(
                hpt_.insertBasePageReplica(sp_mapping, va, asid()),
                true, now + cycles);

            cycles += config_.shootdownPerPageCycles;
            ++remapPages_;
        }

        // Purge stale TLB mappings for the range and publish the
        // superpage mapping. The explicit epoch bump covers pages
        // that had no TLB entry to purge (superpage promotion).
        activeTlb().purgeRange(cursor, sp_size);
        activeTlb().bumpTranslationEpoch();
        activeUitlb().invalidate();
        shootdownRemote(cursor, sp_size, true);
        debugPrintf(traceFlag_, "remap: superpage v=0x", std::hex,
                    cursor, " -> shadow 0x", *shadow_base, std::dec,
                    " class ", c);
        space().addSuperpage({cursor, *shadow_base, c});
        if (observer_)
            observer_->onSuperpageCreated(cursor, *shadow_base, c);
        ++remapSuperpages_;

        cursor += sp_size;
    }

    remapCycles_ += static_cast<double>(cycles);
    return cycles;
}

void
Kernel::initHeap(Addr base, Addr max_bytes)
{
    fatalIf(proc().heapBase != 0, "heap already initialised");
    fatalIf(base & (pageSizeForClass(minShadowSizeClass) - 1),
            "heap base should be 16 KB aligned");
    space().addRegion("heap", base, max_bytes, PageProtection{});
    proc().heapBase = base;
    proc().brk = base;
    proc().remapFrontier = base;
}

SbrkResult
Kernel::sbrk(Addr bytes, Cycles now)
{
    ++sbrkCalls_;
    fatalIf(proc().heapBase == 0,
            "sbrk() before setupHeap(): add a 'heap' region and call "
            "initHeap()");

    SbrkResult result;
    result.oldBreak = proc().brk;
    result.cycles = 20;  // libc-level bump allocation

    if (bytes == 0)
        return result;

    const Addr new_brk = proc().brk + bytes;
    const VmRegion *heap = space().findRegionByName("heap");
    fatalIf(new_brk > heap->end(), "heap reservation exhausted");

    if (new_brk > grantedFrontier()) {
        // Grow the granted range by at least the preallocation chunk
        // so subsequent small requests are satisfied without another
        // kernel entry (§2.3).
        result.cycles += config_.syscallOverheadCycles;
        const Addr min_superpage = pageSizeForClass(minShadowSizeClass);
        Addr chunk = roundUp(new_brk - grantedFrontier(), min_superpage);
        if (chunk < proc().sbrkPrealloc)
            chunk = proc().sbrkPrealloc;
        if (grantedFrontier() + chunk > heap->end())
            chunk = heap->end() - grantedFrontier();

        if (config_.superpagesEnabled && shadowAlloc_ &&
            memsys_.mmc().hasMtlb()) {
            result.cycles += remap(grantedFrontier(), chunk,
                                   now + result.cycles);
            remapCalls_ += -1;  // internal call, not a user remap()
        }
        proc().remapFrontier = grantedFrontier() + chunk;
    }

    proc().brk = new_brk;
    return result;
}

Cycles
Kernel::handleShadowPageFault(Addr vaddr, Cycles now)
{
    (void)now;
    ++shadowFaults_;
    ++pagesSwappedIn_;
    if (observer_)
        observer_->onShadowFault(vaddr);

    const ShadowSuperpage *sp = space().findSuperpage(vaddr);
    panicIf(sp == nullptr,
            "MTLB fault outside any shadow superpage: 0x", std::hex,
            vaddr);

    Cycles cycles = config_.trapEntryCycles +
                    config_.vmFaultOverheadCycles;

    // Read the page back from disk into a fresh frame.
    const Addr pfn = frames_.allocate();
    space().installFrame(vaddr, pfn);
    if (observer_)
        observer_->onPageMapped(pageBase(vaddr), pfn);
    cycles += config_.diskReadCycles;

    // Reinstall the shadow mapping; the CPU TLB superpage entry was
    // never disturbed (§2.1), so the faulting access simply retries.
    const Addr spi = physMap_.shadowPageIndex(sp->shadowBase) +
                     ((pageBase(vaddr) - sp->vbase) >> basePageShift);
    cycles += memsys_.controlOp(
        now + cycles,
        [&](Mmc &mmc) { return mmc.setShadowMapping(spi, pfn); });

    // Frame reuse + MMC mapping change: the CPU-visible translation
    // is untouched (§2.1), but invalidate the L0 fast path anyway so
    // no memoized state can outlive a frame's identity. Remote cores
    // get the same epoch-only shootdown.
    activeTlb().bumpTranslationEpoch();
    shootdownRemote(pageBase(vaddr), 0, false);

    cycles += config_.trapExitCycles;
    return cycles;
}

SwapOutResult
Kernel::swapOutSuperpagePagewise(Addr vbase, Cycles now)
{
    const ShadowSuperpage *sp = space().findSuperpage(vbase);
    fatalIf(sp == nullptr, "no shadow superpage at 0x", std::hex, vbase);
    if (observer_)
        observer_->onSwapOut(sp->vbase, true);

    SwapOutResult result;
    result.cycles = config_.syscallOverheadCycles;

    const Addr spi0 = physMap_.shadowPageIndex(sp->shadowBase);
    for (Addr i = 0; i < sp->numBasePages(); ++i) {
        const Addr va = sp->vbase + (i << basePageShift);
        if (!space().isPagePresent(va))
            continue;  // already swapped out

        // Cleaning flushes all the page's lines from the cache; tags
        // are shadow addresses after remap. The flush must precede
        // the dirty-bit read below: a store that hit a shared-filled
        // line dirties it in the cache without any memory traffic,
        // so its write-back is what carries the modification to the
        // MTLB — reading first would see a stale clean bit and lose
        // the page's data.
        result.cycles += cache_.flushPage(
            va, sp->shadowBase + (i << basePageShift),
            now + result.cycles);

        // Read the per-base-page dirty bit the MTLB maintains (§2.5).
        ShadowPte pte{};
        result.cycles += memsys_.controlOp(
            now + result.cycles, [&](Mmc &mmc) {
                pte = mmc.readShadowEntry(spi0 + i);
                return Cycles{8};
            });

        if (pte.modified) {
            // Only dirty base pages travel to disk — the payoff of
            // per-base-page dirty bits (§2.5).
            result.cycles += config_.diskQueueCycles;
            ++result.pagesWritten;
            ++pagesSwappedOut_;
        } else {
            ++result.pagesClean;
        }

        result.cycles += memsys_.controlOp(
            now + result.cycles, [&](Mmc &mmc) {
                return mmc.invalidateShadowMapping(spi0 + i);
            });

        const Addr pfn = space().removeFrame(va);
        if (observer_)
            observer_->onPageUnmapped(va, pfn);
        frames_.free(pfn);
    }
    // The CPU TLB superpage entry and the HPT mapping stay valid:
    // the MMC faults precisely on any access to a swapped base page.
    // The freed frames may be reused, so drop every L0 memoization —
    // on remote cores too (epoch-only shootdown).
    activeTlb().bumpTranslationEpoch();
    shootdownRemote(vbase, 0, false);
    return result;
}

SwapOutResult
Kernel::swapOutSuperpageWhole(Addr vbase, Cycles now)
{
    const ShadowSuperpage *sp = space().findSuperpage(vbase);
    fatalIf(sp == nullptr, "no shadow superpage at 0x", std::hex, vbase);
    if (observer_)
        observer_->onSwapOut(sp->vbase, false);

    SwapOutResult result;
    result.cycles = config_.syscallOverheadCycles;

    const Addr spi0 = physMap_.shadowPageIndex(sp->shadowBase);
    for (Addr i = 0; i < sp->numBasePages(); ++i) {
        const Addr va = sp->vbase + (i << basePageShift);
        if (!space().isPagePresent(va))
            continue;

        result.cycles += cache_.flushPage(
            va, sp->shadowBase + (i << basePageShift),
            now + result.cycles);

        // Conventional superpages have a single dirty bit for the
        // whole superpage, so every base page must be written (§2.5).
        result.cycles += config_.diskQueueCycles;
        ++result.pagesWritten;
        ++pagesSwappedOut_;

        result.cycles += memsys_.controlOp(
            now + result.cycles, [&](Mmc &mmc) {
                return mmc.invalidateShadowMapping(spi0 + i);
            });

        const Addr pfn = space().removeFrame(va);
        if (observer_)
            observer_->onPageUnmapped(va, pfn);
        frames_.free(pfn);
    }
    // As in the pagewise path: frames freed here may be reused.
    activeTlb().bumpTranslationEpoch();
    shootdownRemote(vbase, 0, false);
    return result;
}

} // namespace mtlbsim
