#include "os/hpt.hh"

#include "base/intmath.hh"

namespace mtlbsim
{

Hpt::Hpt(Addr table_base, unsigned num_buckets)
    : tableBase_(table_base), numBuckets_(num_buckets),
      chains_(num_buckets),
      overflowCursor_(table_base + tableBytes())
{
    fatalIf(!isPowerOf2(num_buckets), "HPT buckets must be a power of 2");
    fatalIf(table_base & (entryBytes - 1),
            "HPT base must be entry aligned");
}

unsigned
Hpt::bucketOf(Addr vpn) const
{
    Addr h = vpn * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return static_cast<unsigned>(h & (numBuckets_ - 1));
}

Addr
Hpt::allocOverflowEntry()
{
    if (!overflowFree_.empty()) {
        const Addr a = overflowFree_.back();
        overflowFree_.pop_back();
        return a;
    }
    const Addr a = overflowCursor_;
    overflowCursor_ += entryBytes;
    return a;
}

Hpt::LookupResult
Hpt::lookup(Addr vaddr, unsigned asid) const
{
    LookupResult result;
    const Addr vpn = keyFor(pageFrame(vaddr), asid);
    const auto &chain = chains_[bucketOf(vpn)];

    if (chain.empty()) {
        // The handler still reads the empty head slot.
        result.probeAddrs.push_back(
            tableBase_ + Addr{bucketOf(vpn)} * entryBytes);
        return result;
    }
    for (const auto &entry : chain) {
        result.probeAddrs.push_back(entry.entryAddr);
        if (entry.vpn == vpn) {
            result.mapping = entry.mapping;
            return result;
        }
    }
    return result;
}

std::vector<Addr>
Hpt::insertOne(Addr vpn, const VmMapping &mapping)
{
    const unsigned b = bucketOf(vpn);
    auto &chain = chains_[b];

    std::vector<Addr> touched;

    // Replace an existing entry for the same base page if present.
    for (auto &entry : chain) {
        if (entry.vpn == vpn) {
            entry.mapping = mapping;
            touched.push_back(entry.entryAddr);
            return touched;
        }
    }

    ChainedEntry entry;
    entry.vpn = vpn;
    entry.mapping = mapping;
    if (chain.empty()) {
        entry.entryAddr = tableBase_ + Addr{b} * entryBytes;
    } else {
        entry.entryAddr = allocOverflowEntry();
        // Linking in also rewrites the predecessor's chain pointer.
        touched.push_back(chain.back().entryAddr);
    }
    touched.push_back(entry.entryAddr);
    chain.push_back(entry);
    ++liveEntries_;
    return touched;
}

std::vector<Addr>
Hpt::removeOne(Addr vpn, unsigned size_class)
{
    auto &chain = chains_[bucketOf(vpn)];

    std::vector<Addr> touched;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        touched.push_back(chain[i].entryAddr);
        if (chain[i].vpn == vpn &&
            chain[i].mapping.sizeClass == size_class) {
            // Unlinking rewrites this slot (or the predecessor's
            // pointer); freed overflow slots are recycled. The head
            // slot is fixed table storage, so when the head dies the
            // next entry is copied into it (classic open-chain HPT).
            if (i == 0 && chain.size() > 1) {
                overflowFree_.push_back(chain[1].entryAddr);
                chain[1].entryAddr = chain[0].entryAddr;
            } else if (i > 0) {
                overflowFree_.push_back(chain[i].entryAddr);
            }
            chain.erase(chain.begin() + static_cast<long>(i));
            --liveEntries_;
            return touched;
        }
    }
    return touched;
}

std::vector<Addr>
Hpt::insert(const VmMapping &mapping, unsigned asid)
{
    const unsigned c = mapping.sizeClass;
    fatalIf(c >= numPageSizeClasses, "bad size class");
    const Addr size = pageSizeForClass(c);
    fatalIf(mapping.vbase & (size - 1),
            "HPT mapping base not aligned to its page size");

    // One replica per base page (PA-RISC-style base-grain hashing).
    std::vector<Addr> touched;
    const Addr n_pages = size >> basePageShift;
    const Addr vpn0 = keyFor(pageFrame(mapping.vbase), asid);
    for (Addr i = 0; i < n_pages; ++i) {
        auto t = insertOne(vpn0 + i, mapping);
        touched.insert(touched.end(), t.begin(), t.end());
    }
    return touched;
}

std::vector<Addr>
Hpt::insertBasePageReplica(const VmMapping &mapping, Addr vaddr,
                           unsigned asid)
{
    fatalIf(vaddr < mapping.vbase ||
                vaddr >= mapping.vbase + pageSizeForClass(
                                             mapping.sizeClass),
            "replica address outside the mapping");
    return insertOne(keyFor(pageFrame(vaddr), asid), mapping);
}

std::vector<Hpt::AuditEntry>
Hpt::auditState() const
{
    std::vector<AuditEntry> live;
    live.reserve(liveEntries_);
    for (const auto &chain : chains_) {
        for (const auto &entry : chain) {
            const auto asid =
                static_cast<unsigned>(entry.vpn >> asidKeyShift);
            const Addr vpn =
                entry.vpn & ((Addr{1} << asidKeyShift) - 1);
            live.push_back({vpn, asid, entry.mapping});
        }
    }
    return live;
}

std::vector<Addr>
Hpt::remove(Addr vbase, unsigned size_class, unsigned asid)
{
    fatalIf(size_class >= numPageSizeClasses, "bad size class");
    std::vector<Addr> touched;
    const Addr n_pages = pageSizeForClass(size_class) >> basePageShift;
    const Addr vpn0 = keyFor(pageFrame(vbase), asid);
    for (Addr i = 0; i < n_pages; ++i) {
        auto t = removeOne(vpn0 + i, size_class);
        touched.insert(touched.end(), t.begin(), t.end());
    }
    return touched;
}

} // namespace mtlbsim
