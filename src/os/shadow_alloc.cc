#include "os/shadow_alloc.hh"

#include "base/intmath.hh"

namespace mtlbsim
{

BucketShadowAllocator::Partition
BucketShadowAllocator::defaultPartition()
{
    Partition p{};
    p[1] = 1024;    // 16 KB   x 1024 =  16 MB
    p[2] = 256;     // 64 KB   x  256 =  16 MB
    p[3] = 128;     // 256 KB  x  128 =  32 MB
    p[4] = 64;      // 1 MB    x   64 =  64 MB
    p[5] = 32;      // 4 MB    x   32 = 128 MB
    p[6] = 16;      // 16 MB   x   16 = 256 MB
    return p;       // total: 512 MB (Figure 2)
}

BucketShadowAllocator::Partition
BucketShadowAllocator::partitionFor(const AddrRange &shadow)
{
    const Partition def = defaultPartition();
    constexpr Addr defaultBytes = Addr{512} * 1024 * 1024;
    Partition p{};
    for (unsigned c = minShadowSizeClass; c <= maxShadowSizeClass; ++c) {
        const Addr size = pageSizeForClass(c);
        const Addr def_bytes = def[c] * size;
        // def_bytes * shadow.size / defaultBytes, split to avoid
        // overflow for very large shadow regions.
        const Addr bytes = shadow.size / defaultBytes * def_bytes +
                           shadow.size % defaultBytes * def_bytes /
                               defaultBytes;
        p[c] = bytes / size;
    }
    return p;
}

BucketShadowAllocator::BucketShadowAllocator(const AddrRange &shadow,
                                             const Partition &partition)
    : shadow_(shadow)
{
    fatalIf(shadow.size == 0, "no shadow region to partition");
    fatalIf(partition[0] != 0,
            "4 KB regions cannot be allocated from shadow space");

    // Lay buckets out largest-first so every region is naturally
    // aligned to its own size (the shadow base itself must be
    // aligned to the largest allocated class).
    Addr cursor = shadow.base;
    for (unsigned c = numPageSizeClasses; c-- > minShadowSizeClass;) {
        const Addr size = pageSizeForClass(c);
        if (partition[c] == 0)
            continue;
        fatalIf(cursor & (size - 1),
                "shadow base not aligned for size class ", c);
        for (Addr i = 0; i < partition[c]; ++i) {
            fatalIf(cursor + size > shadow.end(),
                    "partition exceeds the shadow region");
            buckets_[c].push_back(cursor);
            cursor += size;
        }
    }
}

std::optional<Addr>
BucketShadowAllocator::allocate(unsigned size_class)
{
    fatalIf(size_class < minShadowSizeClass ||
                size_class > maxShadowSizeClass,
            "illegal shadow superpage class ", size_class);
    auto &bucket = buckets_[size_class];
    if (bucket.empty())
        return std::nullopt;
    const Addr base = bucket.back();
    bucket.pop_back();
    return base;
}

void
BucketShadowAllocator::free(Addr base, unsigned size_class)
{
    panicIf(size_class < minShadowSizeClass ||
                size_class > maxShadowSizeClass,
            "illegal shadow superpage class ", size_class);
    panicIf(!shadow_.contains(base), "freeing outside the shadow region");
    buckets_[size_class].push_back(base);
}

Addr
BucketShadowAllocator::available(unsigned size_class) const
{
    if (size_class >= numPageSizeClasses)
        return 0;
    return buckets_[size_class].size();
}

BuddyShadowAllocator::BuddyShadowAllocator(const AddrRange &shadow)
    : shadow_(shadow), topClass_(maxShadowSizeClass)
{
    fatalIf(shadow.size == 0, "no shadow region");
    const Addr top_size = pageSizeForClass(topClass_);
    fatalIf(shadow.base & (top_size - 1),
            "shadow base must be aligned to the largest superpage");
    fatalIf(shadow.size < top_size,
            "shadow region smaller than one largest superpage");

    for (Addr b = shadow.base; b + top_size <= shadow.end(); b += top_size)
        freeBlocks_[topClass_][b] = true;
}

bool
BuddyShadowAllocator::splitDownTo(unsigned size_class)
{
    // Find the smallest larger class with a free block.
    unsigned donor = size_class + 1;
    while (donor <= topClass_ && freeBlocks_[donor].empty())
        ++donor;
    if (donor > topClass_)
        return false;

    // Split one block per level on the way down; each split of a
    // class-c block yields 4 class-(c-1) blocks (sizes are powers
    // of 4).
    while (donor > size_class) {
        auto it = freeBlocks_[donor].begin();
        const Addr base = it->first;
        freeBlocks_[donor].erase(it);
        const Addr child_size = pageSizeForClass(donor - 1);
        for (unsigned i = 0; i < 4; ++i)
            freeBlocks_[donor - 1][base + i * child_size] = true;
        --donor;
    }
    return true;
}

std::optional<Addr>
BuddyShadowAllocator::allocate(unsigned size_class)
{
    fatalIf(size_class < minShadowSizeClass ||
                size_class > maxShadowSizeClass,
            "illegal shadow superpage class ", size_class);

    if (freeBlocks_[size_class].empty() && !splitDownTo(size_class))
        return std::nullopt;

    auto it = freeBlocks_[size_class].begin();
    const Addr base = it->first;
    freeBlocks_[size_class].erase(it);
    return base;
}

void
BuddyShadowAllocator::free(Addr base, unsigned size_class)
{
    panicIf(!shadow_.contains(base), "freeing outside the shadow region");

    unsigned c = size_class;
    Addr b = base;
    freeBlocks_[c][b] = true;

    // Coalesce: when all 4 siblings of the enclosing class-(c+1)
    // block are free, replace them with the parent.
    while (c < topClass_) {
        const Addr parent_size = pageSizeForClass(c + 1);
        const Addr child_size = pageSizeForClass(c);
        const Addr parent = b & ~(parent_size - 1);

        bool all_free = true;
        for (unsigned i = 0; i < 4 && all_free; ++i)
            all_free = freeBlocks_[c].count(parent + i * child_size) > 0;
        if (!all_free)
            break;

        for (unsigned i = 0; i < 4; ++i)
            freeBlocks_[c].erase(parent + i * child_size);
        freeBlocks_[c + 1][parent] = true;
        b = parent;
        ++c;
    }
}

Addr
BuddyShadowAllocator::available(unsigned size_class) const
{
    if (size_class >= numPageSizeClasses)
        return 0;
    // Count blocks at the exact class plus what could be split from
    // larger classes.
    Addr count = freeBlocks_[size_class].size();
    Addr factor = 4;
    for (unsigned c = size_class + 1; c <= topClass_; ++c) {
        count += freeBlocks_[c].size() * factor;
        factor *= 4;
    }
    return count;
}

} // namespace mtlbsim
