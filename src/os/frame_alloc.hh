/**
 * @file
 * Real physical page-frame allocator.
 *
 * A central premise of the paper is that after any period of normal
 * operation, free physical frames are *dispersed* throughout memory
 * (§2.1) — which is exactly why conventional superpages (contiguous,
 * aligned) are so hard to build and why shadow-backed superpages from
 * discontiguous frames matter. To model that honestly, the allocator
 * hands out frames in a deterministically shuffled order rather than
 * sequentially, so no allocation ever receives naturally contiguous
 * frames.
 */

#ifndef MTLBSIM_OS_FRAME_ALLOC_HH
#define MTLBSIM_OS_FRAME_ALLOC_HH

#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/types.hh"

namespace mtlbsim
{

/**
 * Allocator of 4 KB real physical frames.
 */
class FrameAllocator
{
  public:
    /**
     * @param first_pfn first allocatable frame (frames below this are
     *                  reserved for the kernel, HPT, shadow table)
     * @param num_pfns  number of allocatable frames
     * @param seed      shuffle seed (deterministic dispersal)
     */
    FrameAllocator(Addr first_pfn, Addr num_pfns,
                   std::uint64_t seed = 12345);

    /** Allocate one frame; returns its PFN. Fails fatally when
     *  memory is exhausted (the simulated machine has no swap device
     *  backing ordinary allocations). */
    Addr allocate();

    /** Return a frame to the free pool. */
    void free(Addr pfn);

    Addr numFree() const { return freeList_.size(); }
    Addr numTotal() const { return numPfns_; }
    Addr firstPfn() const { return firstPfn_; }

    /** The current free list, for the invariant auditor (src/check).
     *  Order is allocation order; contents are what matters. */
    const std::vector<Addr> &auditFreeList() const { return freeList_; }

  private:
    Addr firstPfn_;
    Addr numPfns_;
    std::vector<Addr> freeList_;
};

} // namespace mtlbsim

#endif // MTLBSIM_OS_FRAME_ALLOC_HH
