#include "os/frame_alloc.hh"

namespace mtlbsim
{

FrameAllocator::FrameAllocator(Addr first_pfn, Addr num_pfns,
                               std::uint64_t seed)
    : firstPfn_(first_pfn), numPfns_(num_pfns)
{
    fatalIf(num_pfns == 0, "frame allocator with no frames");
    freeList_.reserve(num_pfns);
    for (Addr i = 0; i < num_pfns; ++i)
        freeList_.push_back(first_pfn + i);

    // Fisher-Yates shuffle with the deterministic generator: frames
    // come out dispersed, never contiguous runs.
    Random rng(seed);
    for (Addr i = num_pfns - 1; i > 0; --i) {
        const Addr j = rng.below(i + 1);
        std::swap(freeList_[i], freeList_[j]);
    }
}

Addr
FrameAllocator::allocate()
{
    fatalIf(freeList_.empty(), "out of physical memory");
    const Addr pfn = freeList_.back();
    freeList_.pop_back();
    return pfn;
}

void
FrameAllocator::free(Addr pfn)
{
    panicIf(pfn < firstPfn_ || pfn >= firstPfn_ + numPfns_,
            "freeing a frame outside the allocatable range: ", pfn);
    freeList_.push_back(pfn);
}

} // namespace mtlbsim
