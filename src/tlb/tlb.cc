#include "tlb/tlb.hh"

namespace mtlbsim
{

unsigned
sizeClassFor(Addr bytes)
{
    for (unsigned c = 0; c < numPageSizeClasses; ++c) {
        if (pageSizeForClass(c) >= bytes)
            return c;
    }
    return numPageSizeClasses - 1;
}

Tlb::Tlb(unsigned num_entries, const std::string &name,
         stats::StatGroup &parent)
    : numEntries_(num_entries),
      entries_(num_entries),
      statGroup_(name),
      hits_(statGroup_.addScalar("hits", "TLB hits")),
      misses_(statGroup_.addScalar("misses", "TLB misses")),
      protFaults_(statGroup_.addScalar("prot_faults",
                                       "protection faults on TLB hits")),
      inserts_(statGroup_.addScalar("inserts", "entries inserted")),
      evictions_(statGroup_.addScalar("evictions",
                                      "entries evicted by NRU"))
{
    fatalIf(num_entries == 0, "TLB must have at least one entry");
    parent.addChild(&statGroup_);
    freeList_.reserve(num_entries);
    for (unsigned i = 0; i < num_entries; ++i)
        freeList_.push_back(num_entries - 1 - i);
}

int
Tlb::findEntry(Addr vaddr) const
{
    for (unsigned c = 0; c < numPageSizeClasses; ++c) {
        if (liveInClass_[c] == 0)
            continue;
        const Addr key = vaddr >> pageShiftForClass(c);
        auto it = index_[c].find(key);
        if (it != index_[c].end())
            return static_cast<int>(it->second);
    }
    return -1;
}

TlbLookupResult
Tlb::lookup(Addr vaddr, AccessType type, AccessMode mode)
{
    const int idx = findEntry(vaddr);
    if (idx < 0) {
        ++misses_;
        return {};
    }

    TlbEntry &entry = entries_[idx];
    entry.referenced = true;

    if (type == AccessType::Write && !entry.prot.writable) {
        ++protFaults_;
        return {true, true, 0};
    }
    if (mode == AccessMode::User && !entry.prot.userAccessible) {
        ++protFaults_;
        return {true, true, 0};
    }

    ++hits_;
    return {true, false, entry.translate(vaddr), idx};
}

unsigned
Tlb::pickVictim()
{
    // NRU: scan for an unreferenced, unpinned entry starting from a
    // rotating clock hand; if every candidate is referenced, clear
    // all reference bits and take the first unpinned entry.
    for (int pass = 0; pass < 2; ++pass) {
        // Wrap-around scan without division: nruClock_ is always in
        // [0, numEntries_), so one compare-and-reset per step replaces
        // the two modulo operations of the obvious formulation.
        unsigned idx = nruClock_;
        for (unsigned i = 0; i < numEntries_; ++i) {
            const TlbEntry &e = entries_[idx];
            if (e.valid && !e.pinned && !e.referenced) {
                nruClock_ = idx + 1 == numEntries_ ? 0 : idx + 1;
                return idx;
            }
            idx = idx + 1 == numEntries_ ? 0 : idx + 1;
        }
        // All referenced: age everything (the NRU epoch reset).
        for (auto &e : entries_) {
            if (e.valid && !e.pinned)
                e.referenced = false;
        }
    }
    panic("TLB victim search failed: all entries pinned?");
}

void
Tlb::dropEntry(unsigned idx)
{
    TlbEntry &e = entries_[idx];
    panicIf(!e.valid, "dropping an invalid TLB entry");
    const unsigned c = e.sizeClass;
    index_[c].erase(e.vbase >> pageShiftForClass(c));
    --liveInClass_[c];
    e.valid = false;
    e.pinned = false;
    freeList_.push_back(idx);
    // The dropped entry may be memoized in the L0 fast path.
    bumpTranslationEpoch();
}

void
Tlb::insert(Addr vbase, Addr pbase, unsigned size_class,
            PageProtection prot, bool pinned)
{
    fatalIf(size_class >= numPageSizeClasses,
            "illegal page size class ", size_class);
    const Addr size = pageSizeForClass(size_class);
    fatalIf(vbase & (size - 1),
            "virtual base not aligned to its superpage size");
    fatalIf(pbase & (size - 1),
            "physical base not aligned to its superpage size");

    // Discard overlapping pre-existing mappings (§2.3).
    purgeRange(vbase, size);
    // An existing larger mapping covering vbase also overlaps.
    const int covering = findEntry(vbase);
    if (covering >= 0)
        dropEntry(static_cast<unsigned>(covering));

    unsigned idx;
    if (!freeList_.empty()) {
        idx = freeList_.back();
        freeList_.pop_back();
    } else {
        idx = pickVictim();
        ++evictions_;
        dropEntry(idx);
        freeList_.pop_back();
    }

    TlbEntry &e = entries_[idx];
    e.vbase = vbase;
    e.pbase = pbase;
    e.sizeClass = size_class;
    e.prot = prot;
    e.valid = true;
    e.pinned = pinned;
    e.referenced = true;

    index_[size_class][vbase >> pageShiftForClass(size_class)] = idx;
    ++liveInClass_[size_class];
    ++inserts_;
    // A new mapping (and a possible NRU reference-bit reset inside
    // pickVictim) invalidates every memoized L0 translation.
    bumpTranslationEpoch();
}

void
Tlb::purgeRange(Addr vbase, Addr bytes)
{
    const Addr vend = vbase + bytes;
    for (unsigned i = 0; i < numEntries_; ++i) {
        TlbEntry &e = entries_[i];
        if (!e.valid)
            continue;
        const Addr e_end = e.vbase + e.size();
        if (e.vbase < vend && vbase < e_end)
            dropEntry(i);
    }
}

void
Tlb::purgeAll()
{
    for (unsigned i = 0; i < numEntries_; ++i) {
        if (entries_[i].valid && !entries_[i].pinned)
            dropEntry(i);
    }
}

unsigned
Tlb::occupancy() const
{
    return numEntries_ - static_cast<unsigned>(freeList_.size());
}

std::optional<TlbEntry>
Tlb::probe(Addr vaddr) const
{
    const int idx = findEntry(vaddr);
    if (idx < 0)
        return std::nullopt;
    return entries_[idx];
}

std::vector<TlbEntry>
Tlb::auditState() const
{
    std::vector<TlbEntry> valid;
    for (const TlbEntry &e : entries_) {
        if (e.valid)
            valid.push_back(e);
    }
    return valid;
}

MicroItlb::MicroItlb(stats::StatGroup &parent)
    : statGroup_("uitlb"),
      hits_(statGroup_.addScalar("hits", "micro-ITLB hits")),
      misses_(statGroup_.addScalar("misses", "micro-ITLB misses"))
{
    parent.addChild(&statGroup_);
}

} // namespace mtlbsim
