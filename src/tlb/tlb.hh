/**
 * @file
 * CPU-resident translation lookaside buffer model.
 *
 * Models the paper's processor TLBs (§3.2): unified I/D, single
 * cycle, fully associative, not-recently-used (NRU) replacement.
 * Entries may map superpages — power-of-4 multiples of the 4 KB base
 * page (16 KB up to 64 MB), as in PA-RISC 2.0 and the R10000 (§1).
 *
 * A superpage entry's physical base may be a *shadow* address; the
 * TLB is agnostic — shadow addresses flow through it exactly like
 * real ones (§2.1).
 *
 * Misses are serviced by a software trap routine modelled in the CPU;
 * this class only tracks the architectural content and hit/miss
 * statistics. A single pinned "block TLB" entry maps kernel code and
 * data and is never replaced (§3.2).
 */

#ifndef MTLBSIM_TLB_TLB_HH
#define MTLBSIM_TLB_TLB_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

/**
 * Legal page-size classes: size = 4 KB * 4^sizeClass.
 * Class 0 is the base page; classes 1..7 are superpages (§1).
 */
constexpr unsigned numPageSizeClasses = 8;

/** Byte shift for a page-size class. */
constexpr unsigned
pageShiftForClass(unsigned size_class)
{
    return basePageShift + 2 * size_class;
}

/** Byte size for a page-size class. */
constexpr Addr
pageSizeForClass(unsigned size_class)
{
    return Addr{1} << pageShiftForClass(size_class);
}

/** Smallest size class whose page size is >= bytes (caps at max). */
unsigned sizeClassFor(Addr bytes);

/** Page protection attributes carried in each TLB entry (§2.1). */
struct PageProtection
{
    bool writable = true;
    bool userAccessible = true;

    bool operator==(const PageProtection &) const = default;
};

/** One TLB entry: maps a (super)page of virtual space. */
struct TlbEntry
{
    Addr vbase = 0;         ///< virtual base (aligned to the size)
    Addr pbase = 0;         ///< physical/shadow base (aligned too)
    unsigned sizeClass = 0; ///< page size = 4 KB * 4^sizeClass
    PageProtection prot;
    bool valid = false;
    bool pinned = false;    ///< block-TLB entry, never replaced
    bool referenced = false; ///< NRU reference bit

    Addr size() const { return pageSizeForClass(sizeClass); }

    bool
    covers(Addr vaddr) const
    {
        return valid && (vaddr >> pageShiftForClass(sizeClass)) ==
                            (vbase >> pageShiftForClass(sizeClass));
    }

    /** Translate an address this entry covers. */
    Addr
    translate(Addr vaddr) const
    {
        const Addr mask = size() - 1;
        return pbase | (vaddr & mask);
    }
};

/** Outcome of a TLB lookup. */
struct TlbLookupResult
{
    bool hit = false;
    bool protFault = false; ///< hit, but the access is not permitted
    Addr paddr = 0;         ///< valid when hit && !protFault
    /** Slot of the entry that hit (-1 on a miss); lets the CPU's L0
     *  fast path memoize the translation without a second probe. */
    int slot = -1;
};

/**
 * Fully associative, NRU-replacement TLB with superpage support.
 */
class Tlb
{
  public:
    /**
     * @param num_entries capacity including the pinned block entry
     * @param name        stats group name (e.g. "dtlb")
     */
    Tlb(unsigned num_entries, const std::string &name,
        stats::StatGroup &parent);

    /**
     * Look up @p vaddr for an access of kind @p type in mode @p mode.
     * On a hit the entry's NRU bit is set.
     */
    TlbLookupResult lookup(Addr vaddr, AccessType type, AccessMode mode);

    /**
     * Insert a mapping, evicting an NRU victim if full. The caller
     * (the miss handler model) has already charged the trap cost.
     *
     * Pre-existing entries overlapping the same virtual range are
     * discarded first, as on TLBs that auto-purge duplicates (§2.3).
     */
    void insert(Addr vbase, Addr pbase, unsigned size_class,
                PageProtection prot, bool pinned = false);

    /** Remove any entries overlapping [vbase, vbase+bytes). */
    void purgeRange(Addr vbase, Addr bytes);

    /** Remove all non-pinned entries. */
    void purgeAll();

    /** Number of valid entries. */
    unsigned occupancy() const;

    unsigned capacity() const { return numEntries_; }

    /** Probe without updating NRU state or stats (test support). */
    std::optional<TlbEntry> probe(Addr vaddr) const;

    /** The entry in @p slot (the L0 fast path fills from the slot a
     *  lookup just hit; the auditor cross-checks L0 slot bindings). */
    const TlbEntry &
    entryAt(unsigned slot) const
    {
        panicIf(slot >= numEntries_, "TLB slot ", slot,
                " out of range");
        return entries_[slot];
    }

    /**
     * @name Translation epoch (L0 fast-path invalidation)
     *
     * A monotonic counter bumped by every mutation of CPU-visible
     * translation state. insert()/dropEntry()/purgeRange()/purgeAll()
     * bump it internally; kernel paths that mutate translation state
     * below the TLB (MTLB shadow-mapping changes, frame reuse on
     * swap) call bumpTranslationEpoch() explicitly. L0 entries stamp
     * the epoch at fill time and are live only while it matches, so
     * one increment lazily invalidates every memoized translation.
     */
    /** @{ */
    std::uint64_t translationEpoch() const { return epoch_; }

    /**
     * Advance the epoch. Wrap-safe: a 64-bit counter bumped once per
     * simulated cycle at the paper's 240 MHz would take ~2400 years
     * to wrap, but if it ever does, 0 is skipped — 0 marks a
     * never-filled L0 entry, so an epoch of 0 would make stale
     * entries look permanently live (the auditor asserts both sides
     * of this, see TranslationAuditor::checkL0Coherence).
     */
    void
    bumpTranslationEpoch()
    {
        if (++epoch_ == 0)
            epoch_ = 1;
    }
    /** @} */

    /** NRU victim-scan start point (canonical-state capture by the
     *  model checker, src/model; replacement behaviour depends on
     *  it). */
    unsigned nruClock() const { return nruClock_; }

    /** Account an L0 fast-path hit. The slow path's bookkeeping on a
     *  hit is one hits_ increment plus an (idempotent, see
     *  l0_cache.hh) referenced-bit store, so this is all that is
     *  needed to keep statistics bit-identical. */
    void noteL0Hit() { ++hits_; }

    /** Account @p n deferred batched hits in one exact bulk add
     *  (Scalar::addCount). Sound by the same argument as noteL0Hit:
     *  while a batch is live the epoch is unchanged, so the owning
     *  entry's referenced bit is still set and the per-hit
     *  referenced-bit store the slow path would perform is a no-op —
     *  and that holds with the L0 disabled too, because a batch is
     *  only established from a completed access, whose lookup (L0 or
     *  full) set the bit. */
    void noteBatchedHits(std::uint64_t n) { hits_.addCount(n); }

    /** Snapshot of every valid entry, for the invariant auditor
     *  (src/check). Does not touch NRU state or statistics. */
    std::vector<TlbEntry> auditState() const;

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }

  private:
    /** Map key for the per-size-class lookup index. */
    using VpnMap = std::unordered_map<Addr, unsigned>;

    int findEntry(Addr vaddr) const;
    unsigned pickVictim();
    void dropEntry(unsigned idx);

    unsigned numEntries_;
    std::vector<TlbEntry> entries_;
    std::vector<unsigned> freeList_;
    /** Per-size-class index: (vaddr >> shift) -> entry slot. Only
     *  classes with live entries are probed on lookup. */
    VpnMap index_[numPageSizeClasses];
    unsigned liveInClass_[numPageSizeClasses] = {};
    unsigned nruClock_ = 0; ///< rotating start point for victim scan
    /** Translation epoch; starts at 1 so a zero-initialized L0 entry
     *  can never appear live. */
    std::uint64_t epoch_ = 1;

    stats::StatGroup statGroup_;
    stats::Scalar &hits_;
    stats::Scalar &misses_;
    stats::Scalar &protFaults_;
    stats::Scalar &inserts_;
    stats::Scalar &evictions_;
};

/**
 * Single-entry micro-ITLB holding the most recent instruction
 * translation (§3.2). Instruction fetches that hit here do not
 * consult the unified TLB at all.
 */
class MicroItlb
{
  public:
    explicit MicroItlb(stats::StatGroup &parent);

    /** True if the fetch at @p vaddr hits the cached translation. */
    bool
    hit(Addr vaddr)
    {
        if (valid_ && entry_.covers(vaddr)) {
            ++hits_;
            return true;
        }
        ++misses_;
        return false;
    }

    /**
     * Would hit() succeed? A pure probe with no statistics — the
     * batch engine's ifetch fast path tests this per fetch and
     * defers the hit count (noteBatchedHits realizes it), so the
     * decision stays exactly per-access while the bookkeeping is
     * bulk-replayed.
     */
    bool
    covers(Addr vaddr) const
    {
        return valid_ && entry_.covers(vaddr);
    }

    /** Account @p n deferred batched fetch hits (see covers()). */
    void
    noteBatchedHits(std::uint64_t n)
    {
        hits_.addCount(n);
    }

    /** Install the translation used by the last fetch. */
    void
    fill(const TlbEntry &entry)
    {
        entry_ = entry;
        valid_ = true;
    }

    void invalidate() { valid_ = false; }

  private:
    TlbEntry entry_;
    bool valid_ = false;

    stats::StatGroup statGroup_;
    stats::Scalar &hits_;
    stats::Scalar &misses_;
};

} // namespace mtlbsim

#endif // MTLBSIM_TLB_TLB_HH
