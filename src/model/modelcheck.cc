#include "model/modelcheck.hh"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <unordered_set>

#include "cache/cache.hh"
#include "mmc/memsys.hh"
#include "mmc/mmc.hh"
#include "mtlb/mtlb.hh"
#include "mtlb/shadow_table.hh"
#include "os/address_space.hh"
#include "os/frame_alloc.hh"
#include "os/hpt.hh"
#include "os/kernel.hh"
#include "sim/system.hh"

namespace mtlbsim::model
{

using fuzz::DifferentialFuzzer;
using fuzz::FuzzOp;
using fuzz::FuzzParams;
using fuzz::OpKind;

namespace
{

/** The two 16 KB-aligned chunks the alphabet operates on. Together
 *  they span 8 base pages — exactly the model machine's user-frame
 *  count, so materialisation can never exhaust the pool. */
constexpr Addr chunkA = fuzz::fuzzDataBase;
constexpr Addr chunkB = fuzz::fuzzDataBase + 64 * 1024;
constexpr Addr chunkBytes = 16 * 1024;
constexpr unsigned pagesPerChunk =
    static_cast<unsigned>(chunkBytes >> basePageShift);

/** 64-bit FNV-1a, fed one value at a time. */
class StateHasher
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xff;
            hash_ *= 0x100000001b3ull;
        }
    }

    void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Physical (or shadow) base address backing the present page at
 *  @p vbase — the tag its cache lines carry. */
Addr
pageBackingAddr(AddressSpace &space, Addr vbase)
{
    if (const ShadowSuperpage *sp = space.findSuperpage(vbase))
        return sp->shadowBase + (vbase - sp->vbase);
    return space.frameOf(vbase) << basePageShift;
}

} // namespace

FuzzParams
modelParams(unsigned cores)
{
    FuzzParams p;
    p.cores = cores ? cores : 1;
    p.seed = 1;
    p.numOps = 0;       // the search supplies the op streams
    p.auditEvery = 1;   // full sweep after every single op
    p.tlbEntries = 2;
    p.mtlbEntries = 2;
    p.mtlbAssoc = 2;    // one set: maximal conflict pressure
    p.l0Entries = 0;    // the epoch would defeat state dedup
    // 8 user frames past KernelLayout::firstUserPfn (the frame pool
    // starts at 8 MB).
    p.installedBytes = Addr{8} * 1024 * 1024 + 8 * basePageSize;
    p.cacheBytes = Addr{16} * 1024;     // 4 page colors
    // 4 MB shadow: partitionFor gives 8 x 16 KB, 2 x 64 KB,
    // 1 x 256 KB regions and a 1024-entry shadow table.
    p.shadowBytes = Addr{4} * 1024 * 1024;
    p.allShadowMode = false;
    p.onlinePromotion = false;  // promotions fire at op granularity
    p.frameSeed = 12345;
    return p;
}

std::vector<FuzzOp>
modelAlphabet(const ModelConfig &cfg)
{
    std::vector<FuzzOp> ops;
    // Touch three distinct pages of chunk A (base, second, last) and
    // the base of chunk B: enough to create partially-present,
    // partially-dirty superpages without blowing up the fan-out.
    ops.push_back({OpKind::Load, chunkA, 0});
    ops.push_back({OpKind::Store, chunkA, 0});
    ops.push_back({OpKind::Load, chunkA + basePageSize, 0});
    ops.push_back({OpKind::Store, chunkA + basePageSize, 0});
    ops.push_back({OpKind::Store, chunkA + chunkBytes - basePageSize,
                   0});
    ops.push_back({OpKind::Load, chunkB, 0});
    ops.push_back({OpKind::Store, chunkB, 0});
    ops.push_back({OpKind::Remap, chunkA, chunkBytes});
    ops.push_back({OpKind::Remap, chunkB, chunkBytes});
    ops.push_back({OpKind::SwapPagewise, chunkA, 0});
    ops.push_back({OpKind::SwapWhole, chunkA, 0});
    ops.push_back({OpKind::SwapPagewise, chunkB, 0});
    ops.push_back({OpKind::SwapWhole, chunkB, 0});
    ops.push_back({OpKind::Recolor, chunkA, 1});
    if (cfg.plantFault) {
        ops.push_back({OpKind::Inject,
                       static_cast<std::uint64_t>(*cfg.plantFault),
                       0});
    }
    return ops;
}

std::uint64_t
canonicalHash(DifferentialFuzzer &fuzzer)
{
    System &sys = fuzzer.system();
    AddressSpace &space = sys.kernel().addressSpace();
    StateHasher h;

    // Present pages, sorted (the kernel keeps them in a hash map).
    std::vector<std::pair<Addr, Addr>> present(
        space.presentPages().begin(), space.presentPages().end());
    std::sort(present.begin(), present.end());
    h.mix(present.size());
    for (const auto &[vpn, pfn] : present) {
        h.mix(vpn);
        h.mix(pfn);
    }

    // Superpage records (already an ordered map).
    h.mix(space.superpages().size());
    for (const auto &[vbase, sp] : space.superpages()) {
        h.mix(vbase);
        h.mix(sp.shadowBase);
        h.mix(static_cast<std::uint64_t>(sp.sizeClass));
    }

    // Every core's TLB content by slot, plus the NRU scan position
    // (replacement depends on it). The internal free-slot order is
    // *not* captured (documented completeness caveat, docs/manual.md
    // §11).
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        const Tlb &tlb = sys.tlb(c);
        h.mix(static_cast<std::uint64_t>(tlb.nruClock()));
        for (unsigned s = 0; s < tlb.capacity(); ++s) {
            const TlbEntry &e = tlb.entryAt(s);
            h.mix(e.valid);
            if (!e.valid)
                continue;
            h.mix(e.vbase);
            h.mix(e.pbase);
            h.mix(static_cast<std::uint64_t>(e.sizeClass));
            h.mix(e.prot.writable);
            h.mix(e.prot.userAccessible);
            h.mix(e.pinned);
            h.mix(e.referenced);
        }
    }

    // MTLB entries (snapshot order is set/way order: deterministic
    // and itself part of replacement state).
    MemorySystem &memsys = sys.memsys();
    if (memsys.mmc().hasMtlb()) {
        const auto mtlb = memsys.mmc().mtlb().auditState();
        h.mix(mtlb.size());
        for (const auto &e : mtlb) {
            h.mix(e.spi);
            h.mix(static_cast<std::uint64_t>(e.pte.realPfn));
            h.mix(static_cast<bool>(e.pte.valid));
            h.mix(static_cast<bool>(e.pte.fault));
            h.mix(static_cast<bool>(e.pte.referenced));
            h.mix(static_cast<bool>(e.pte.modified));
            h.mix(e.dirtyBits);
        }

        // The full shadow table (1024 entries on the model machine).
        const ShadowTable &st = memsys.mmc().shadowTable();
        for (Addr i = 0; i < st.numEntries(); ++i) {
            const ShadowPte &pte = st.entry(i);
            if (!pte.valid && !pte.fault && !pte.referenced &&
                !pte.modified) {
                continue;   // hash only non-empty entries
            }
            h.mix(i);
            h.mix(static_cast<std::uint64_t>(pte.realPfn));
            h.mix(static_cast<bool>(pte.valid));
            h.mix(static_cast<bool>(pte.fault));
            h.mix(static_cast<bool>(pte.referenced));
            h.mix(static_cast<bool>(pte.modified));
        }
    }

    // A pending (injected) shootdown suppression changes what the
    // next mutation does to remote TLBs without touching anything
    // else; without this mix the flagged state would be pruned
    // against its clean twin and the planted fault never found.
    h.mix(sys.kernel().shootdownSuppressed());

    // Frame free list *in order*: allocation order determines which
    // frame the next materialisation gets.
    const auto &free_list = sys.kernel().frames().auditFreeList();
    h.mix(free_list.size());
    for (Addr pfn : free_list)
        h.mix(pfn);

    // Hashed page table, snapshot order.
    const auto hpt = sys.kernel().hpt().auditState();
    h.mix(hpt.size());
    for (const auto &e : hpt) {
        h.mix(e.vpn);
        h.mix(e.mapping.vbase);
        h.mix(e.mapping.pbase);
        h.mix(static_cast<std::uint64_t>(e.mapping.sizeClass));
        h.mix(e.mapping.prot.writable);
        h.mix(e.mapping.prot.userAccessible);
    }

    // Cache line presence/dirtiness for every present page under its
    // current tag. Lines of pages that have since been swapped out
    // were flushed by the kernel; anything else unreachable from a
    // present page cannot affect future behaviour at these pages'
    // addresses (documented caveat).
    const Cache &cache = sys.cache();
    for (const auto &[vpn, pfn] : present) {
        const Addr vbase = vpn << basePageShift;
        const Addr pbase = pageBackingAddr(space, vbase);
        for (Addr off = 0; off < basePageSize;
             off += Addr{1} << cacheLineShift) {
            const bool there = cache.probe(vbase + off, pbase + off);
            h.mix(there);
            if (there)
                h.mix(cache.probeDirty(vbase + off, pbase + off));
        }
    }

    // The oracle mirror over the model pages (it tracks nothing
    // else in a non-failing run).
    const fuzz::OracleMemory &oracle = fuzzer.oracle();
    h.mix(oracle.numPresentPages());
    for (Addr chunk : {chunkA, chunkB}) {
        for (unsigned i = 0; i < pagesPerChunk; ++i) {
            const Addr va = chunk + (Addr{i} << basePageShift);
            const bool p = oracle.present(va);
            h.mix(p);
            if (!p)
                continue;
            h.mix(oracle.frameOf(va).value_or(~Addr{0}));
            h.mix(oracle.referenced(va));
            h.mix(oracle.dirty(va));
        }
    }
    h.mix(oracle.superpages().size());
    for (const auto &[vbase, sp] : oracle.superpages()) {
        h.mix(vbase);
        h.mix(sp.shadowBase);
        h.mix(static_cast<std::uint64_t>(sp.sizeClass));
    }

    return h.value();
}

std::string
opToString(const FuzzOp &op)
{
    std::ostringstream os;
    os << std::hex;
    switch (op.kind) {
      case OpKind::Load:
        os << "load 0x" << op.a;
        break;
      case OpKind::LoadRo:
        os << "load-ro 0x" << op.a;
        break;
      case OpKind::Store:
        os << "store 0x" << op.a;
        break;
      case OpKind::Remap:
        os << "remap 0x" << op.a << " +0x" << op.b;
        break;
      case OpKind::SwapPagewise:
        os << "swap-pagewise 0x" << op.a;
        break;
      case OpKind::SwapWhole:
        os << "swap-whole 0x" << op.a;
        break;
      case OpKind::Recolor:
        os << "recolor 0x" << op.a << " color " << std::dec << op.b;
        break;
      case OpKind::Inject:
        os << "inject "
           << fuzz::faultKindName(static_cast<fuzz::FaultKind>(op.a));
        break;
    }
    return os.str();
}

ModelResult
runModelCheck(const ModelConfig &cfg)
{
    const unsigned cores = cfg.cores ? cfg.cores : 1;
    const FuzzParams params = modelParams(cores);
    const std::vector<FuzzOp> alphabet = modelAlphabet(cfg);

    // Ops dispatch on core (index % cores), so which core executes
    // the *next* op is a function of the trace length: equal
    // architectural states at different dispatch phases have
    // different successors and must not prune each other. For one
    // core the phase is always 0 and the key is the bare hash.
    const auto state_key = [cores](DifferentialFuzzer &fuzzer,
                                   std::size_t trace_len) {
        return canonicalHash(fuzzer) ^
               (0x9e3779b97f4a7c15ull * (trace_len % cores));
    };

    ModelResult result;
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::vector<FuzzOp>> frontier;

    {
        DifferentialFuzzer root(params);
        (void)root.run({});
        seen.insert(state_key(root, 0));
    }
    result.stats.statesExplored = 1;
    result.stats.levelSizes.push_back(1);
    frontier.push_back({});

    for (unsigned depth = 1;
         depth <= cfg.depth && !frontier.empty(); ++depth) {
        std::vector<std::vector<FuzzOp>> next;
        for (const std::vector<FuzzOp> &trace : frontier) {
            for (const FuzzOp &op : alphabet) {
                std::vector<FuzzOp> child = trace;
                child.push_back(op);

                // Replay from scratch: the simulator is
                // deterministic, so the prefix re-derives the parent
                // state exactly; only the new op can fail.
                DifferentialFuzzer fuzzer(params);
                const fuzz::RunResult r = fuzzer.run(child);
                ++result.stats.edgesExecuted;

                if (r.failed) {
                    result.failed = true;
                    result.failure = r.failure;
                    result.counterexample = std::move(child);
                    return result;
                }

                if (!seen.insert(state_key(fuzzer, child.size()))
                         .second) {
                    ++result.stats.statesPruned;
                    continue;
                }
                ++result.stats.statesExplored;
                next.push_back(std::move(child));

                if (cfg.maxStates &&
                    result.stats.statesExplored >= cfg.maxStates) {
                    result.truncated = true;
                    result.stats.levelSizes.push_back(next.size());
                    return result;
                }
            }
        }
        result.stats.levelSizes.push_back(next.size());
        if (cfg.progress) {
            std::cerr << "model: depth " << depth << ": "
                      << next.size() << " new states, "
                      << result.stats.statesExplored << " total, "
                      << result.stats.edgesExecuted << " edges\n";
        }
        frontier = std::move(next);
    }

    return result;
}

} // namespace mtlbsim::model
