/**
 * @file
 * Bounded exhaustive model checker for the kernel superpage state
 * machine.
 *
 * The differential fuzzer (src/fuzz) samples long random schedules;
 * this module instead enumerates *every* kernel-operation sequence
 * up to a small depth over a deliberately tiny machine — 2 TLB
 * entries, a 1-set MTLB, 8 user frames, a 4 MB shadow region — so
 * that interleavings the random generator is unlikely to hit
 * (swap-out of a superpage whose pages were never touched, remap
 * over a half-swapped region, back-to-back whole swaps) are all
 * visited.  Every edge replays its operation sequence on a fresh
 * DifferentialFuzzer with auditEvery=1, so each operation is
 * followed by the full TranslationAuditor sweep plus the oracle
 * lockstep comparison; any disagreement terminates the search with
 * the (minimal, by breadth-first construction) counterexample trace.
 *
 * States are deduplicated by a canonical 64-bit FNV-1a hash over the
 * architectural state (page tables, TLB, MTLB, shadow table, frame
 * free list, cache line presence, oracle mirror).  Deliberately
 * *excluded* from the hash: simulated time, statistics, and the
 * translation epoch — all strictly monotone along any path, so
 * including them would make every state unique and defeat pruning.
 * Two abstractions are accepted and documented (docs/manual.md §11):
 * the TLB's internal free-slot order and cache lines belonging to
 * no-longer-present pages are not hashed, and a 64-bit hash can in
 * principle collide.  Both can only *prune* a state the checker
 * should have expanded (a completeness caveat), never mask a
 * violation on an explored edge (soundness is per-edge).
 */

#ifndef MTLBSIM_MODEL_MODELCHECK_HH
#define MTLBSIM_MODEL_MODELCHECK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "fuzz/schedule.hh"

namespace mtlbsim::model
{

/** Search parameters. */
struct ModelConfig
{
    /** Maximum operation-sequence length to enumerate. */
    unsigned depth = 6;

    /** Model-machine cores. Ops dispatch on core i % cores (the
     *  fuzzer's rule), so the dedup key folds in the dispatch phase:
     *  equal architectural states whose *next* op lands on different
     *  cores are distinct search nodes. */
    unsigned cores = 1;

    /** When set, an Inject op planting this corruption joins the
     *  alphabet; the checker is then expected to *fail*, and the
     *  breadth-first order guarantees the reported counterexample is
     *  a minimal-length reproducer. */
    std::optional<fuzz::FaultKind> plantFault;

    /** Stop after this many canonical states (0 = unlimited). The
     *  result is then truncated, not exhaustive. */
    std::uint64_t maxStates = 0;

    /** Print one progress line per depth level to stderr. */
    bool progress = false;
};

/** Search counters. */
struct ModelStats
{
    std::uint64_t statesExplored = 0;   ///< unique canonical states
    std::uint64_t statesPruned = 0;     ///< duplicate successors
    std::uint64_t edgesExecuted = 0;    ///< replays performed
    /** Unique states first reached at each depth (index = depth). */
    std::vector<std::uint64_t> levelSizes;
};

/** Outcome of a bounded search. */
struct ModelResult
{
    /** An invariant violation (or planted fault) was detected. */
    bool failed = false;
    fuzz::FuzzFailure failure;              ///< valid when failed
    /** Minimal op sequence reproducing the failure. */
    std::vector<fuzz::FuzzOp> counterexample;
    /** The maxStates budget ran out before the depth bound. */
    bool truncated = false;
    ModelStats stats;
};

/** The tiny machine every model run uses: 2 TLB entries, one 2-way
 *  MTLB set, no L0 (the epoch is monotone and would defeat state
 *  dedup), exactly 8 user frames, a 16 KB cache (4 page colors) and
 *  a 4 MB shadow region (8 x 16 KB, 2 x 64 KB, 1 x 256 KB regions
 *  after BucketShadowAllocator::partitionFor). With @p cores > 1
 *  every core gets that private TLB over the shared rest. */
fuzz::FuzzParams modelParams(unsigned cores = 1);

/** The operation alphabet: loads/stores at three pages of chunk A
 *  and one of chunk B, 16 KB remaps of both chunks, pagewise and
 *  whole swap-outs of both, and one recolor — plus one Inject when
 *  @p cfg.plantFault is set. Chunk A is fuzzDataBase, chunk B is
 *  fuzzDataBase + 64 KB; together they cover exactly the 8 user
 *  frames, so no reachable sequence can exhaust the frame pool. */
std::vector<fuzz::FuzzOp> modelAlphabet(const ModelConfig &cfg);

/** Canonical architectural-state hash of a fuzzer that has finished
 *  a (non-failing) replay. Exposed for the determinism tests. */
std::uint64_t canonicalHash(fuzz::DifferentialFuzzer &fuzzer);

/** Human-readable form of one op ("store 0x10001000", "swap-whole
 *  0x10000000", ...) for counterexample printing. */
std::string opToString(const fuzz::FuzzOp &op);

/** Enumerate all sequences up to cfg.depth, breadth-first. */
ModelResult runModelCheck(const ModelConfig &cfg);

} // namespace mtlbsim::model

#endif // MTLBSIM_MODEL_MODELCHECK_HH
