#include "cache/cache.hh"

namespace mtlbsim
{

Cache::Cache(const CacheConfig &config, MemBackend &backend,
             stats::StatGroup &parent)
    : config_(config), backend_(backend),
      numLines_(config.sizeBytes >> cacheLineShift),
      indexMask_(numLines_ - 1),
      lines_(numLines_),
      statGroup_("cache"),
      accesses_(statGroup_.addScalar("accesses", "demand accesses")),
      hits_(statGroup_.addScalar("hits", "cache hits")),
      misses_(statGroup_.addScalar("misses", "cache misses (line fills)")),
      writeBacks_(statGroup_.addScalar("write_backs",
                                       "dirty lines written back")),
      flushedLines_(statGroup_.addScalar("flushed_lines",
                                         "lines flushed by remap()")),
      fillLatency_(statGroup_.addAverage("fill_latency",
                                         "CPU cycles per cache fill "
                                         "(Fig 4B metric)"))
{
    fatalIf(!isPowerOf2(config.sizeBytes), "cache size must be power of 2");
    fatalIf(config.sizeBytes < basePageSize,
            "cache smaller than a page is not supported");
    parent.addChild(&statGroup_);
}

CacheAccessResult
Cache::access(Addr vaddr, Addr paddr, bool write, Cycles now)
{
    ++accesses_;
    Line &line = lines_[indexOf(vaddr, paddr)];
    const Addr line_tag = lineBase(paddr);

    if (line.valid && line.tag == line_tag) {
        ++hits_;
        if (write)
            line.dirty = true;
        return {true, config_.hitCycles};
    }

    ++misses_;
    Cycles latency = config_.hitCycles;

    // Evict the victim first; the write-back occupies the bus but the
    // fill does not wait for the memory write to complete (the MMC
    // buffers it), so only the bus-acceptance latency is serial.
    if (line.valid) {
        if (line.dirty) {
            ++writeBacks_;
            latency += backend_.writeBack(line.tag, now + latency);
        }
        noteLineDropped(line.tag);
    }

    const Cycles fill = backend_.lineFill(line_tag, write, now + latency);
    fillLatency_.sample(static_cast<double>(fill));
    latency += fill;

    noteLineInstalled(line_tag);
    line.valid = true;
    line.dirty = write;
    line.tag = line_tag;
    return {false, latency};
}

Cycles
Cache::flushPage(Addr vaddr, Addr paddr, Cycles now)
{
    const Addr vbase = pageBase(vaddr);
    const Addr pbase = pageBase(paddr);
    Cycles cost = 0;

    const unsigned lines_per_page = basePageSize >> cacheLineShift;

    // Cold-page early-out: the per-page counters prove no line of
    // this physical page is resident, so the probe loop below cannot
    // hit. The flushing code still executes its full probe sequence
    // in *simulated* time, so the cycle charge is identical.
    if (residentInPage(pbase) == 0)
        return static_cast<Cycles>(lines_per_page) *
               config_.flushProbeCycles;

    for (unsigned i = 0; i < lines_per_page; ++i) {
        const Addr va = vbase + (static_cast<Addr>(i) << cacheLineShift);
        const Addr ptag = pbase + (static_cast<Addr>(i) << cacheLineShift);
        cost += config_.flushProbeCycles;
        Line &line = lines_[indexOf(va, ptag)];
        if (line.valid && line.tag == ptag) {
            ++flushedLines_;
            if (line.dirty) {
                ++writeBacks_;
                cost += backend_.writeBack(line.tag, now + cost);
            }
            noteLineDropped(line.tag);
            line.valid = false;
            line.dirty = false;
        }
    }
    return cost;
}

void
Cache::invalidateLine(Addr vaddr, Addr paddr)
{
    Line &line = lines_[indexOf(vaddr, paddr)];
    if (line.valid && line.tag == lineBase(paddr)) {
        noteLineDropped(line.tag);
        line.valid = false;
        line.dirty = false;
    }
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    linesInPage_.assign(linesInPage_.size(), 0);
}

unsigned
Cache::residentInPage(Addr paddr) const
{
    const Addr page = pageFrame(paddr);
    return page < linesInPage_.size() ? linesInPage_[page] : 0;
}

bool
Cache::probe(Addr vaddr, Addr paddr) const
{
    const Line &line = lines_[indexOf(vaddr, paddr)];
    return line.valid && line.tag == lineBase(paddr);
}

bool
Cache::probeDirty(Addr vaddr, Addr paddr) const
{
    const Line &line = lines_[indexOf(vaddr, paddr)];
    return line.valid && line.dirty && line.tag == lineBase(paddr);
}

} // namespace mtlbsim
