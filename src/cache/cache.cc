#include "cache/cache.hh"

namespace mtlbsim
{

Cache::Cache(const CacheConfig &config, MemBackend &backend,
             stats::StatGroup &parent)
    : config_(config), backend_(backend),
      numLines_(config.sizeBytes >> cacheLineShift),
      indexMask_(numLines_ - 1),
      lines_(numLines_),
      statGroup_("cache"),
      accesses_(statGroup_.addScalar("accesses", "demand accesses")),
      hits_(statGroup_.addScalar("hits", "cache hits")),
      misses_(statGroup_.addScalar("misses", "cache misses (line fills)")),
      writeBacks_(statGroup_.addScalar("write_backs",
                                       "dirty lines written back")),
      flushedLines_(statGroup_.addScalar("flushed_lines",
                                         "lines flushed by remap()")),
      fillLatency_(statGroup_.addAverage("fill_latency",
                                         "CPU cycles per cache fill "
                                         "(Fig 4B metric)"))
{
    fatalIf(!isPowerOf2(config.sizeBytes), "cache size must be power of 2");
    fatalIf(config.sizeBytes < basePageSize,
            "cache smaller than a page is not supported");
    parent.addChild(&statGroup_);
}

unsigned
Cache::indexOf(Addr vaddr, Addr paddr) const
{
    const Addr key = config_.virtuallyIndexed ? vaddr : paddr;
    return static_cast<unsigned>(key >> cacheLineShift) & indexMask_;
}

CacheAccessResult
Cache::access(Addr vaddr, Addr paddr, bool write, Cycles now)
{
    ++accesses_;
    Line &line = lines_[indexOf(vaddr, paddr)];
    const Addr line_tag = lineBase(paddr);

    if (line.valid && line.tag == line_tag) {
        ++hits_;
        if (write)
            line.dirty = true;
        return {true, config_.hitCycles};
    }

    ++misses_;
    Cycles latency = config_.hitCycles;

    // Evict the victim first; the write-back occupies the bus but the
    // fill does not wait for the memory write to complete (the MMC
    // buffers it), so only the bus-acceptance latency is serial.
    if (line.valid && line.dirty) {
        ++writeBacks_;
        latency += backend_.writeBack(line.tag, now + latency);
    }

    const Cycles fill = backend_.lineFill(line_tag, write, now + latency);
    fillLatency_.sample(static_cast<double>(fill));
    latency += fill;

    line.valid = true;
    line.dirty = write;
    line.tag = line_tag;
    return {false, latency};
}

Cycles
Cache::flushPage(Addr vaddr, Addr paddr, Cycles now)
{
    const Addr vbase = pageBase(vaddr);
    const Addr pbase = pageBase(paddr);
    Cycles cost = 0;

    const unsigned lines_per_page = basePageSize >> cacheLineShift;
    for (unsigned i = 0; i < lines_per_page; ++i) {
        const Addr va = vbase + (static_cast<Addr>(i) << cacheLineShift);
        const Addr ptag = pbase + (static_cast<Addr>(i) << cacheLineShift);
        cost += config_.flushProbeCycles;
        Line &line = lines_[indexOf(va, ptag)];
        if (line.valid && line.tag == ptag) {
            ++flushedLines_;
            if (line.dirty) {
                ++writeBacks_;
                cost += backend_.writeBack(line.tag, now + cost);
            }
            line.valid = false;
            line.dirty = false;
        }
    }
    return cost;
}

void
Cache::invalidateLine(Addr vaddr, Addr paddr)
{
    Line &line = lines_[indexOf(vaddr, paddr)];
    if (line.valid && line.tag == lineBase(paddr)) {
        line.valid = false;
        line.dirty = false;
    }
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

bool
Cache::probe(Addr vaddr, Addr paddr) const
{
    const Line &line = lines_[indexOf(vaddr, paddr)];
    return line.valid && line.tag == lineBase(paddr);
}

bool
Cache::probeDirty(Addr vaddr, Addr paddr) const
{
    const Line &line = lines_[indexOf(vaddr, paddr)];
    return line.valid && line.dirty && line.tag == lineBase(paddr);
}

} // namespace mtlbsim
