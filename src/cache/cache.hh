/**
 * @file
 * Single-level data cache model.
 *
 * Per the paper's simulation environment (§3.2): single level, direct
 * mapped, 512 KB, virtually indexed / physically tagged, 32-byte
 * lines, single-cycle hits, non-blocking, write-back. The instruction
 * cache is assumed perfect and is not modelled here.
 *
 * The cache is virtually indexed: the line index is taken from the
 * virtual address, and the stored tag is the full physical line
 * address. This matters for the OS's remap() flush (§2.3/§3.3): all
 * lines of a page being switched between real and shadow mappings
 * must be flushed, and with virtual indexing the flush loop probes
 * exactly the page's 128 candidate line slots.
 *
 * "Physical" tags may be shadow addresses — the whole point of the
 * design is that shadow addresses appear on cache tags and the bus
 * exactly like real physical addresses (§1).
 */

#ifndef MTLBSIM_CACHE_CACHE_HH
#define MTLBSIM_CACHE_CACHE_HH

#include <vector>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

/**
 * Interface the cache uses to reach memory on a miss. Implemented by
 * the MemorySubsystem (bus + MMC + DRAM composition).
 */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /**
     * Fetch one line. @param exclusive true for store misses (the
     * MMC uses this to maintain per-base-page dirty bits, §2.5).
     * @return latency in CPU cycles until the line is delivered.
     */
    virtual Cycles lineFill(Addr paddr, bool exclusive, Cycles now) = 0;

    /** Write one dirty line back to memory.
     *  @return CPU cycles until the bus accepted the line. */
    virtual Cycles writeBack(Addr paddr, Cycles now) = 0;
};

/** Cache geometry and timing configuration. */
struct CacheConfig
{
    Addr sizeBytes = 512 * 1024;    ///< total capacity (§3.2)
    Cycles hitCycles = 1;           ///< single-cycle hits (§3.2)
    /** CPU cycles of instruction overhead per line in an explicit
     *  flush loop (contributes to the ~1400-cycle/4 KB remap flush
     *  cost reported in §3.3). */
    Cycles flushProbeCycles = 10;
    /** Virtually indexed (the paper's PA8000-style cache, §3.2).
     *  Set false for a physically indexed cache — the configuration
     *  where shadow-memory page recoloring (§6) applies, because
     *  there the *physical* (or shadow) address chooses the set. */
    bool virtuallyIndexed = true;
};

/** Result of a cache access, consumed by the CPU's timing model. */
struct CacheAccessResult
{
    bool hit = false;
    Cycles latency = 0;     ///< total CPU cycles for this access
};

/**
 * Direct-mapped, virtually indexed, physically tagged cache.
 */
class Cache
{
  public:
    Cache(const CacheConfig &config, MemBackend &backend,
          stats::StatGroup &parent);

    /**
     * Perform one data access.
     *
     * @param vaddr  virtual address (supplies the index)
     * @param paddr  physical or shadow-physical address (the tag)
     * @param write  true for stores
     * @param now    current CPU-cycle time
     */
    CacheAccessResult access(Addr vaddr, Addr paddr, bool write,
                             Cycles now);

    /**
     * @name Batched-access fast path (src/cpu batch engine)
     *
     * A batched access replays the hit path of access() without the
     * per-access statistics: batchHit() applies the architectural
     * side effect (the dirty bit on a store — kernel swap paths read
     * it directly, so it can never be deferred) and the caller
     * accumulates the access/hit counts, replaying them later in one
     * noteBatchedHits() call. The pair is byte-identical to n calls
     * of access() that hit: a hit touches no other cache state, and
     * Scalar::addCount is exact (see stats.hh). Defined inline —
     * this is the innermost loop of the whole simulator.
     */
    /** @{ */

    /** If (vaddr, paddr) hits, apply the hit's side effects minus
     *  the stat counts and return true; on a miss do nothing (the
     *  caller falls back to access()). */
    bool
    batchHit(Addr vaddr, Addr paddr, bool write)
    {
        Line &line = lines_[indexOf(vaddr, paddr)];
        if (!line.valid || line.tag != lineBase(paddr))
            return false;
        if (write)
            line.dirty = true;
        return true;
    }

    /** Account @p n deferred batched hits (n accesses, n hits). */
    void
    noteBatchedHits(std::uint64_t n)
    {
        accesses_.addCount(n);
        hits_.addCount(n);
    }
    /** @} */

    /**
     * Flush (write back + invalidate) every line of the 4 KB page at
     * virtual address @p vaddr whose tag matches physical page
     * @p paddr. Used by remap() when converting a region between real
     * and shadow mappings.
     *
     * @return CPU cycles consumed (probe loop + write-backs)
     */
    Cycles flushPage(Addr vaddr, Addr paddr, Cycles now);

    /** Invalidate the whole cache without write-back (test support). */
    void invalidateAll();

    /** Invalidate one line without write-back. Used when a fill was
     *  answered with a precise MMC fault (§4): the returned data is
     *  garbage and must not stay cached. */
    void invalidateLine(Addr vaddr, Addr paddr);

    /** True if the line holding (vaddr, paddr) is present. */
    bool probe(Addr vaddr, Addr paddr) const;

    /** True if the line holding (vaddr, paddr) is present and dirty. */
    bool probeDirty(Addr vaddr, Addr paddr) const;

    unsigned numLines() const { return numLines_; }
    const CacheConfig &config() const { return config_; }

    double
    avgFillLatency() const
    {
        return fillLatency_.mean();
    }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }
    /** Total demand accesses; the auditor checks
     *  accesses == hits + misses (src/check). */
    std::uint64_t accesses() const
    {
        return static_cast<std::uint64_t>(accesses_.value());
    }

    /** Resident lines tagged with physical page @p paddr, from the
     *  per-page counters (host-side bookkeeping; test support). */
    unsigned residentInPage(Addr paddr) const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;       ///< full physical line address
    };

    /** Set index: from the virtual address in VIPT mode, from the
     *  physical/shadow address otherwise. Inline: it sits on the
     *  batchHit() hot path. */
    unsigned
    indexOf(Addr vaddr, Addr paddr) const
    {
        const Addr key = config_.virtuallyIndexed ? vaddr : paddr;
        return static_cast<unsigned>(key >> cacheLineShift) & indexMask_;
    }

    /** @name Per-page resident-line accounting
     *
     * linesInPage_[pageFrame(tag)] counts resident lines whose tag
     * lies in that physical page, so flushPage() can prove "nothing
     * of this page is cached" in O(1) instead of probing every
     * candidate slot. Pure host-side bookkeeping: the simulated
     * cycles charged are unchanged (§3.2's flush loop still runs its
     * full probe count in simulated time). The vector grows lazily
     * to the highest page frame ever cached.
     */
    /** @{ */
    void
    noteLineInstalled(Addr tag)
    {
        const Addr page = pageFrame(tag);
        if (page >= linesInPage_.size())
            linesInPage_.resize(page + 1, 0);
        ++linesInPage_[page];
    }

    void
    noteLineDropped(Addr tag)
    {
        --linesInPage_[pageFrame(tag)];
    }
    /** @} */

    CacheConfig config_;
    MemBackend &backend_;
    unsigned numLines_;
    unsigned indexMask_;
    std::vector<Line> lines_;
    std::vector<std::uint32_t> linesInPage_;

    stats::StatGroup statGroup_;
    stats::Scalar &accesses_;
    stats::Scalar &hits_;
    stats::Scalar &misses_;
    stats::Scalar &writeBacks_;
    stats::Scalar &flushedLines_;
    stats::Average &fillLatency_;
};

} // namespace mtlbsim

#endif // MTLBSIM_CACHE_CACHE_HH
