/**
 * @file
 * Physical address map: installed DRAM, the shadow region, I/O holes.
 *
 * The paper (§1, §2.1) exploits the gap between the physical address
 * range a processor can emit and the DRAM actually installed. The
 * region of "physical" addresses above installed memory is handed out
 * as shadow superpages; the MMC retranslates accesses to it. Memory-
 * mapped I/O ranges must not be treated as shadow addresses (§2.1),
 * which the paper handles with a legal-shadow-region mask; we model
 * explicit I/O holes that classification checks against.
 */

#ifndef MTLBSIM_MEM_PHYSMAP_HH
#define MTLBSIM_MEM_PHYSMAP_HH

#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace mtlbsim
{

/** Classification of a physical address emitted by the CPU. */
enum class AddrKind : std::uint8_t
{
    Real,       ///< backed by installed DRAM
    Shadow,     ///< inside the configured shadow region
    Io,         ///< memory-mapped I/O hole
    Invalid,    ///< neither DRAM, shadow, nor I/O
};

/** A half-open [base, base+size) physical address range. */
struct AddrRange
{
    Addr base = 0;
    Addr size = 0;

    bool
    contains(Addr a) const
    {
        return a >= base && a - base < size;
    }

    Addr end() const { return base + size; }
};

/**
 * The machine's physical address map.
 *
 * Mirrors the paper's running example (§2.2): e.g. 32 exported address
 * bits, 1 GB of DRAM at physical 0, and 512 MB of shadow space at
 * 0x80000000.
 */
class PhysMap
{
  public:
    /**
     * @param installed_bytes bytes of real DRAM, starting at address 0
     * @param shadow          shadow-region range (may be empty)
     * @param addr_bits       physical address bits the CPU exports
     */
    PhysMap(Addr installed_bytes, AddrRange shadow, unsigned addr_bits = 32);

    /** Classify a physical address (fast path: two compares). */
    AddrKind
    classify(Addr a) const
    {
        if (a < installedBytes_)
            return AddrKind::Real;
        if (shadow_.contains(a))
            return inIoHole(a) ? AddrKind::Io : AddrKind::Shadow;
        return inIoHole(a) ? AddrKind::Io : AddrKind::Invalid;
    }

    /** Carve an I/O hole out of the map (must not overlap DRAM). */
    void addIoHole(AddrRange range);

    Addr installedBytes() const { return installedBytes_; }
    const AddrRange &shadowRange() const { return shadow_; }
    unsigned addrBits() const { return addrBits_; }

    /** Number of base pages of installed DRAM. */
    Addr numRealPages() const { return installedBytes_ >> basePageShift; }

    /** Number of base pages in the shadow region. */
    Addr numShadowPages() const { return shadow_.size >> basePageShift; }

    /** Index of a shadow address's page within the shadow region. */
    Addr
    shadowPageIndex(Addr a) const
    {
        panicIf(!shadow_.contains(a), "address not in shadow region");
        return (a - shadow_.base) >> basePageShift;
    }

  private:
    bool
    inIoHole(Addr a) const
    {
        for (const auto &hole : ioHoles_) {
            if (hole.contains(a))
                return true;
        }
        return false;
    }

    Addr installedBytes_;
    AddrRange shadow_;
    unsigned addrBits_;
    std::vector<AddrRange> ioHoles_;
};

} // namespace mtlbsim

#endif // MTLBSIM_MEM_PHYSMAP_HH
