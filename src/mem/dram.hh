/**
 * @file
 * DRAM timing model with per-bank open-row tracking.
 *
 * The MMC in the paper is modelled on the HP 9000 J-class memory
 * controller [Hotchkiss et al. 96]. We model a small number of
 * interleaved banks, each with one open row: an access to the open
 * row costs the row-hit latency, otherwise the row-miss latency.
 * All latencies are in 120 MHz MMC cycles; callers convert to CPU
 * cycles at the boundary.
 */

#ifndef MTLBSIM_MEM_DRAM_HH
#define MTLBSIM_MEM_DRAM_HH

#include <vector>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "mem/physmap.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

/** Configuration for the DRAM timing model. */
struct DramConfig
{
    unsigned numBanks = 4;          ///< interleaved banks (power of 2)
    Addr rowBytes = 4096;           ///< row-buffer size per bank
    Cycles rowHitMmcCycles = 4;     ///< CAS-only access
    Cycles rowMissMmcCycles = 8;    ///< precharge + RAS + CAS
    /** MMC cycles to burst one 32-byte cache line over the array bus. */
    Cycles burstMmcCycles = 4;
};

/**
 * Cycle-cost DRAM model. Stateless except for open-row registers,
 * so a single instance can be shared by all requesters behind the
 * MMC's single port.
 */
class Dram
{
  public:
    Dram(const DramConfig &config, stats::StatGroup &parent);

    /**
     * Access one cache line (or a table entry) at @p addr.
     * @param is_line_fill true for full-line transfers (adds burst)
     * @return latency in MMC cycles
     */
    Cycles access(Addr addr, bool is_line_fill);

    /** Latency of a minimal (non-burst) access, e.g. an MTLB table
     *  fill read; equivalent to access(addr, false). */
    Cycles tableRead(Addr addr) { return access(addr, false); }

    /**
     * Arm the address guard: every subsequent access is classified
     * against @p map, and any address that is not installed DRAM
     * (a shadow address that escaped MTLB translation, or garbage)
     * is counted in shadowEscapes(). The MMC arms this; the
     * invariant auditor (src/check) asserts the count stays zero.
     */
    void setAddressGuard(const PhysMap *map) { physMap_ = map; }

    /** Accesses whose address was not installed DRAM. */
    std::uint64_t
    shadowEscapes() const
    {
        return static_cast<std::uint64_t>(shadowEscapes_.value());
    }

    const DramConfig &config() const { return config_; }

  private:
    unsigned bankOf(Addr addr) const;
    Addr rowOf(Addr addr) const;

    DramConfig config_;
    unsigned bankShift_;
    std::vector<Addr> openRow_;
    const PhysMap *physMap_ = nullptr;  ///< address guard (optional)

    stats::StatGroup statGroup_;
    stats::Scalar &accesses_;
    stats::Scalar &rowHits_;
    stats::Scalar &rowMisses_;
    stats::Scalar &shadowEscapes_;
};

} // namespace mtlbsim

#endif // MTLBSIM_MEM_DRAM_HH
