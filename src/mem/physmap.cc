#include "mem/physmap.hh"

#include "base/intmath.hh"

namespace mtlbsim
{

PhysMap::PhysMap(Addr installed_bytes, AddrRange shadow, unsigned addr_bits)
    : installedBytes_(installed_bytes), shadow_(shadow),
      addrBits_(addr_bits)
{
    fatalIf(installed_bytes == 0, "no DRAM installed");
    fatalIf(installed_bytes & basePageMask,
            "installed DRAM must be page aligned: ", installed_bytes);
    fatalIf(addr_bits < 20 || addr_bits > 52,
            "implausible physical address width: ", addr_bits);

    const Addr limit = Addr{1} << addr_bits;
    fatalIf(installed_bytes > limit,
            "installed DRAM exceeds the physical address space");

    if (shadow_.size > 0) {
        fatalIf(shadow_.base & basePageMask,
                "shadow region must be page aligned");
        fatalIf(shadow_.size & basePageMask,
                "shadow region size must be page aligned");
        fatalIf(shadow_.base < installed_bytes,
                "shadow region overlaps installed DRAM");
        fatalIf(shadow_.end() > limit,
                "shadow region exceeds the physical address space");
    }
}

void
PhysMap::addIoHole(AddrRange range)
{
    fatalIf(range.size == 0, "empty I/O hole");
    fatalIf(range.base < installedBytes_,
            "I/O hole overlaps installed DRAM");
    ioHoles_.push_back(range);
}

} // namespace mtlbsim
