#include "mem/dram.hh"

namespace mtlbsim
{

Dram::Dram(const DramConfig &config, stats::StatGroup &parent)
    : config_(config),
      bankShift_(floorLog2(config.rowBytes)),
      openRow_(config.numBanks, ~Addr{0}),
      statGroup_("dram"),
      accesses_(statGroup_.addScalar("accesses", "total DRAM accesses")),
      rowHits_(statGroup_.addScalar("row_hits", "open-row hits")),
      rowMisses_(statGroup_.addScalar("row_misses", "open-row misses")),
      shadowEscapes_(statGroup_.addScalar("shadow_escapes",
                                          "accesses whose address was "
                                          "not installed DRAM (must "
                                          "stay 0)"))
{
    fatalIf(!isPowerOf2(config.numBanks), "numBanks must be a power of 2");
    fatalIf(!isPowerOf2(config.rowBytes), "rowBytes must be a power of 2");
    fatalIf(config.rowHitMmcCycles == 0 || config.rowMissMmcCycles == 0,
            "DRAM latencies must be nonzero");
    parent.addChild(&statGroup_);
}

unsigned
Dram::bankOf(Addr addr) const
{
    // Interleave consecutive rows across banks.
    return (addr >> bankShift_) & (config_.numBanks - 1);
}

Addr
Dram::rowOf(Addr addr) const
{
    return addr >> (bankShift_ + floorLog2(config_.numBanks));
}

Cycles
Dram::access(Addr addr, bool is_line_fill)
{
    ++accesses_;
    // Shadow addresses must be retranslated by the MTLB before they
    // reach the array: only installed-DRAM addresses are legal here.
    if (physMap_ && physMap_->classify(addr) != AddrKind::Real)
        ++shadowEscapes_;
    const unsigned bank = bankOf(addr);
    const Addr row = rowOf(addr);

    Cycles latency;
    if (openRow_[bank] == row) {
        ++rowHits_;
        latency = config_.rowHitMmcCycles;
    } else {
        ++rowMisses_;
        latency = config_.rowMissMmcCycles;
        openRow_[bank] = row;
    }

    if (is_line_fill)
        latency += config_.burstMmcCycles;
    return latency;
}

} // namespace mtlbsim
