#include "sim/config_parser.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "base/logging.hh"

namespace mtlbsim
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

std::uint64_t
parseUnsigned(const std::string &key, const std::string &value)
{
    std::size_t pos = 0;
    std::uint64_t result = 0;
    try {
        result = std::stoull(value, &pos);
    } catch (const std::exception &) {
        fatal("config key '", key, "': '", value,
              "' is not an unsigned integer");
    }
    fatalIf(pos != value.size(), "config key '", key,
            "': trailing characters in '", value, "'");
    return result;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    std::string v = value;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '", key, "': '", value, "' is not a boolean");
}

/** Table of setters keyed by option name. */
using Setter =
    std::function<void(SystemConfig &, const std::string &key,
                       const std::string &value)>;

/** Build the setter table. Constructed on demand instead of cached
 *  in a function-local static: the table is only consulted while
 *  parsing configuration (never on the simulated hot path), and
 *  keeping it off the R6 global-state inventory is worth the
 *  rebuild. */
std::map<std::string, Setter>
makeSetters()
{
    return {
        {"cores",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cores = static_cast<unsigned>(parseUnsigned(k, v));
             fatalIf(c.cores == 0, "config key '", k,
                     "': a machine needs at least one core");
         }},
        {"sched.quantum",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.sched.quantum = parseUnsigned(k, v);
         }},
        {"sched.switch_cycles",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.sched.switchCycles = parseUnsigned(k, v);
         }},
        {"tlb.entries",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.tlbEntries =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"mtlb.enabled",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.mtlbEnabled = parseBool(k, v);
         }},
        {"mtlb.entries",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.mtlb.numEntries =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"mtlb.assoc",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.mtlb.associativity =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"mtlb.writeback_bits",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.mtlb.writeBackAccessBits = parseBool(k, v);
         }},
        {"mtlb.port_cycles",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.mtlb.portOccupancyCycles = parseUnsigned(k, v);
         }},
        {"mem.installed_mb",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.installedBytes = parseUnsigned(k, v) * 1024 * 1024;
         }},
        {"mem.shadow_mb",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.shadow.size = parseUnsigned(k, v) * 1024 * 1024;
         }},
        {"mem.phys_addr_bits",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.physAddrBits =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"cache.size_kb",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cache.sizeBytes = parseUnsigned(k, v) * 1024;
         }},
        {"cache.virtually_indexed",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cache.virtuallyIndexed = parseBool(k, v);
         }},
        {"dram.row_hit_cycles",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.dram.rowHitMmcCycles = parseUnsigned(k, v);
         }},
        {"dram.row_miss_cycles",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.dram.rowMissMmcCycles = parseUnsigned(k, v);
         }},
        {"dram.banks",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.dram.numBanks =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"stream_buffers.enabled",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.streamBuffers.enabled = parseBool(k, v);
         }},
        {"stream_buffers.count",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.streamBuffers.numBuffers =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"stream_buffers.depth",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.streamBuffers.depth =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"cpu.load_use_overlap",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cpu.loadUseOverlap = parseUnsigned(k, v);
         }},
        {"cpu.store_buffer",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cpu.storeBuffer = parseBool(k, v);
         }},
        {"cpu.l0_entries",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cpu.l0Entries =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"cpu.batch_enable",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cpu.batchEnable = parseBool(k, v);
         }},
        {"cpu.batch_window",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.cpu.batchWindow =
                 static_cast<unsigned>(parseUnsigned(k, v));
         }},
        {"kernel.superpages",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.superpagesEnabled = parseBool(k, v);
         }},
        {"kernel.all_shadow",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.allShadowMode = parseBool(k, v);
         }},
        {"kernel.online_promotion",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.onlinePromotion = parseBool(k, v);
         }},
        {"kernel.promotion_threshold",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.promotionThresholdCycles = parseUnsigned(k, v);
         }},
        {"kernel.honor_explicit_remap",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.honorExplicitRemap = parseBool(k, v);
         }},
        {"kernel.sbrk_prealloc_kb",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.sbrkPreallocBytes =
                 parseUnsigned(k, v) * 1024;
         }},
        {"kernel.frame_seed",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.frameSeed = parseUnsigned(k, v);
         }},
        {"kernel.ipi_cycles",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.kernel.ipiCycles = parseUnsigned(k, v);
         }},
        {"check.enabled",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.check.enabled = parseBool(k, v);
         }},
        {"check.interval",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.check.interval = parseUnsigned(k, v);
             fatalIf(c.check.interval == 0, "config key '", k,
                     "': audit interval must be non-zero");
         }},
        {"check.panic",
         [](SystemConfig &c, const auto &k, const auto &v) {
             c.check.panicOnViolation = parseBool(k, v);
         }},
    };
}

} // namespace

void
ConfigParser::set(const std::string &key, const std::string &value)
{
    const auto table = makeSetters();
    auto it = table.find(key);
    fatalIf(it == table.end(), "unknown config key '", key,
            "' (see ConfigParser::knownKeys())");
    it->second(config_, key, trim(value));
}

void
ConfigParser::parseStream(std::istream &in)
{
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        fatalIf(eq == std::string::npos, "config line ", line_no,
                ": expected 'key = value', got '", line, "'");
        set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
    }
}

void
ConfigParser::parseFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open config file: ", path);
    parseStream(in);
}

std::vector<std::string>
ConfigParser::parseArgs(int argc, char **argv)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        const auto eq = token.find('=');
        if (eq == std::string::npos) {
            positional.push_back(token);
            continue;
        }
        set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
    }
    return positional;
}

std::vector<std::string>
ConfigParser::knownKeys()
{
    std::vector<std::string> keys;
    for (const auto &[key, setter] : makeSetters())
        keys.push_back(key);
    return keys;
}

} // namespace mtlbsim
