/**
 * @file
 * Whole-system assembly: the public entry point of the library.
 *
 * A System wires together the paper's simulated machine (§3.2):
 *
 *   CPU (240 MHz, single issue)
 *    |- unified I/D TLB (fully associative, NRU) + micro-ITLB
 *    |- 512 KB direct-mapped VIPT write-back data cache
 *    |       (perfect instruction cache)
 *   Runway-like bus (120 MHz)
 *    |- MMC (HP J-class-like) [+ MTLB + shadow table]
 *    |- DRAM
 *   Kernel (BSD-like VM: HPT miss handler, remap()/sbrk(), paging)
 *
 * Construct a System from a SystemConfig, define the process's
 * regions through kernel().addressSpace(), then drive the CPU —
 * either directly or by running one of the bundled workloads.
 */

#ifndef MTLBSIM_SIM_SYSTEM_HH
#define MTLBSIM_SIM_SYSTEM_HH

#include <memory>
#include <ostream>

#include "bus/bus.hh"
#include "cache/cache.hh"
#include "check/checker.hh"
#include "cpu/cpu.hh"
#include "mem/physmap.hh"
#include "mmc/memsys.hh"
#include "os/kernel.hh"
#include "stats/stats.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

class TranslationAuditor;

/** Top-level machine configuration. */
struct SystemConfig
{
    /** CPU TLB entries; the paper evaluates 64/96/128/256 (§3.4). */
    unsigned tlbEntries = 96;

    /** Present an MTLB-capable MMC with a shadow region. */
    bool mtlbEnabled = true;
    /** MTLB geometry; the default matches §3.4 (128 entries,
     *  2-way, NRU). */
    MtlbConfig mtlb;

    /** Installed DRAM (default 256 MB). */
    Addr installedBytes = Addr{256} * 1024 * 1024;
    /** Shadow region; default 512 MB at 0x80000000 (§2.2). */
    AddrRange shadow = {0x80000000, Addr{512} * 1024 * 1024};
    unsigned physAddrBits = 32;

    CacheConfig cache;
    BusConfig bus;
    DramConfig dram;
    /** MMC stream buffers (§6 future work; disabled by default). */
    StreamBufferConfig streamBuffers;
    CpuConfig cpu;
    KernelConfig kernel;
    /** Invariant auditing (src/check); off by default. */
    CheckConfig check;
};

/**
 * The assembled machine.
 */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    Cpu &cpu() { return *cpu_; }
    Kernel &kernel() { return *kernel_; }
    Tlb &tlb() { return *tlb_; }
    MicroItlb &uitlb() { return *uitlb_; }
    Cache &cache() { return *cache_; }
    MemorySystem &memsys() { return *memsys_; }
    const PhysMap &physmap() const { return physMap_; }
    const SystemConfig &config() const { return config_; }

    stats::StatGroup &rootStats() { return rootStats_; }

    /** The translation-invariant auditor (always constructed; the
     *  check config only gates *periodic* audits). */
    TranslationAuditor &auditor() { return *auditor_; }

    /** Run one audit pass now, applying the configured violation
     *  policy (panic or warn). */
    void audit();

    /** Dump every statistic in gem5-style text form. */
    void dumpStats(std::ostream &os) const;

    /** @name Headline metrics for the experiments */
    /** @{ */

    /** Total simulated runtime in CPU cycles. */
    Cycles totalCycles() const { return cpu_->now(); }

    /** Cycles spent in the TLB-miss trap handler (Fig 3's shaded
     *  fraction). */
    Cycles tlbMissCycles() const { return kernel_->tlbMissCycles(); }

    /** Fraction of runtime spent handling TLB misses. */
    double
    tlbMissFraction() const
    {
        const Cycles total = totalCycles();
        return total ? static_cast<double>(tlbMissCycles()) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Average CPU cycles per cache fill (Fig 4B's metric). */
    double avgFillLatency() const { return cache_->avgFillLatency(); }

    /** @} */

  private:
    SystemConfig config_;
    stats::StatGroup rootStats_;
    PhysMap physMap_;
    std::unique_ptr<MemorySystem> memsys_;
    std::unique_ptr<Cache> cache_;
    std::unique_ptr<Tlb> tlb_;
    std::unique_ptr<MicroItlb> uitlb_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<Cpu> cpu_;
    std::unique_ptr<TranslationAuditor> auditor_;
};

} // namespace mtlbsim

#endif // MTLBSIM_SIM_SYSTEM_HH
