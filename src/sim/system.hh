/**
 * @file
 * Whole-system assembly: the public entry point of the library.
 *
 * A System wires together the paper's simulated machine (§3.2):
 *
 *   CPU (240 MHz, single issue)
 *    |- unified I/D TLB (fully associative, NRU) + micro-ITLB
 *    |- 512 KB direct-mapped VIPT write-back data cache
 *    |       (perfect instruction cache)
 *   Runway-like bus (120 MHz)
 *    |- MMC (HP J-class-like) [+ MTLB + shadow table]
 *    |- DRAM
 *   Kernel (BSD-like VM: HPT miss handler, remap()/sbrk(), paging)
 *
 * Construct a System from a SystemConfig, define the process's
 * regions through kernel().addressSpace(), then drive the CPU —
 * either directly or by running one of the bundled workloads.
 */

#ifndef MTLBSIM_SIM_SYSTEM_HH
#define MTLBSIM_SIM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "bus/bus.hh"
#include "cache/cache.hh"
#include "check/checker.hh"
#include "cpu/cpu.hh"
#include "mem/physmap.hh"
#include "mmc/memsys.hh"
#include "os/kernel.hh"
#include "stats/stats.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

class TranslationAuditor;

/** Round-robin scheduler parameters (the multiprogramming runner,
 *  src/workloads/multiprog.*). */
struct SchedConfig
{
    /** Time slice per process, in CPU cycles. */
    Cycles quantum = 1'000'000;
    /** Full context-switch cost charged when a core rebinds to a
     *  different process: register save/restore, scheduler work, and
     *  the TLB/micro-ITLB purge the ASID-less hardware requires. */
    Cycles switchCycles = 2'000;
};

/** Top-level machine configuration. */
struct SystemConfig
{
    /** Cores sharing the bus, MMC (+ MTLB), and kernel. Each core
     *  has a private CPU, unified TLB, and micro-ITLB; kernel
     *  mutations of translation state shoot down remote cores
     *  (docs/manual.md §12). */
    unsigned cores = 1;
    /** Scheduler parameters for multiprogrammed runs. */
    SchedConfig sched;

    /** CPU TLB entries; the paper evaluates 64/96/128/256 (§3.4). */
    unsigned tlbEntries = 96;

    /** Present an MTLB-capable MMC with a shadow region. */
    bool mtlbEnabled = true;
    /** MTLB geometry; the default matches §3.4 (128 entries,
     *  2-way, NRU). */
    MtlbConfig mtlb;

    /** Installed DRAM (default 256 MB). */
    Addr installedBytes = Addr{256} * 1024 * 1024;
    /** Shadow region; default 512 MB at 0x80000000 (§2.2). */
    AddrRange shadow = {0x80000000, Addr{512} * 1024 * 1024};
    unsigned physAddrBits = 32;

    CacheConfig cache;
    BusConfig bus;
    DramConfig dram;
    /** MMC stream buffers (§6 future work; disabled by default). */
    StreamBufferConfig streamBuffers;
    CpuConfig cpu;
    KernelConfig kernel;
    /** Invariant auditing (src/check); off by default. */
    CheckConfig check;
};

/**
 * The assembled machine.
 */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    /** Core @p core's CPU (core 0 by default, so single-core callers
     *  read as before). */
    Cpu &
    cpu(unsigned core = 0)
    {
        return core == 0 ? *cpu_ : *extraCores_[core - 1].cpu;
    }
    const Cpu &
    cpu(unsigned core = 0) const
    {
        return core == 0 ? *cpu_ : *extraCores_[core - 1].cpu;
    }
    Kernel &kernel() { return *kernel_; }
    Tlb &
    tlb(unsigned core = 0)
    {
        return core == 0 ? *tlb_ : *extraCores_[core - 1].tlb;
    }
    MicroItlb &
    uitlb(unsigned core = 0)
    {
        return core == 0 ? *uitlb_ : *extraCores_[core - 1].uitlb;
    }
    unsigned numCores() const { return config_.cores; }
    Cache &cache() { return *cache_; }
    MemorySystem &memsys() { return *memsys_; }
    const PhysMap &physmap() const { return physMap_; }
    const SystemConfig &config() const { return config_; }

    stats::StatGroup &rootStats() { return rootStats_; }

    /** The translation-invariant auditor (always constructed; the
     *  check config only gates *periodic* audits). */
    TranslationAuditor &auditor() { return *auditor_; }

    /** Run one audit pass now, applying the configured violation
     *  policy (panic or warn). */
    void audit();

    /** Dump every statistic in gem5-style text form. */
    void dumpStats(std::ostream &os) const;

    /** @name Headline metrics for the experiments */
    /** @{ */

    /** Total simulated runtime in CPU cycles: the furthest-ahead
     *  core's clock (they are equal on single-core machines). */
    Cycles
    totalCycles() const
    {
        Cycles t = cpu_->now();
        for (const auto &c : extraCores_)
            t = c.cpu->now() > t ? c.cpu->now() : t;
        return t;
    }

    /** Cycles spent in the TLB-miss trap handler (Fig 3's shaded
     *  fraction). */
    Cycles tlbMissCycles() const { return kernel_->tlbMissCycles(); }

    /** Fraction of runtime spent handling TLB misses. */
    double
    tlbMissFraction() const
    {
        const Cycles total = totalCycles();
        return total ? static_cast<double>(tlbMissCycles()) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Average CPU cycles per cache fill (Fig 4B's metric). */
    double avgFillLatency() const { return cache_->avgFillLatency(); }

    /** @} */

  private:
    /** Realize every core's deferred batch counters. Count-preserving
     *  (Cpu::flushBatch() only moves deferred increments into the
     *  stats), so const. Every deferred-stats reader — audit(),
     *  dumpStats(), the periodic checks — must run this first
     *  (mtlb-lint R12). */
    void flushAllBatches() const;

    /** Periodic-check callback: flush all batches, then audit at
     *  @p now. */
    void periodicAudit(Cycles now);

    /** One additional core's private machinery (cores 1..N-1; core 0
     *  uses the flat legacy members so its statistics keep their
     *  original names and order). Owned via unique_ptr throughout,
     *  so no raw borrowed pointers live outside the System. */
    struct ExtraCore
    {
        std::unique_ptr<stats::StatGroup> statGroup;    ///< "core<N>"
        std::unique_ptr<Tlb> tlb;
        std::unique_ptr<MicroItlb> uitlb;
        std::unique_ptr<Cpu> cpu;
    };

    SystemConfig config_;
    stats::StatGroup rootStats_;
    PhysMap physMap_;
    std::unique_ptr<MemorySystem> memsys_;
    std::unique_ptr<Cache> cache_;
    std::unique_ptr<Tlb> tlb_;
    std::unique_ptr<MicroItlb> uitlb_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<Cpu> cpu_;
    std::vector<ExtraCore> extraCores_;
    std::unique_ptr<TranslationAuditor> auditor_;
};

} // namespace mtlbsim

#endif // MTLBSIM_SIM_SYSTEM_HH
