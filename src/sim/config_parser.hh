/**
 * @file
 * Key=value configuration for SystemConfig.
 *
 * A small, dependency-free configuration layer so experiments can be
 * described in files and on command lines instead of C++:
 *
 *     # the paper's default machine
 *     tlb.entries = 96
 *     mtlb.enabled = true
 *     mtlb.entries = 128
 *     mtlb.assoc = 2
 *     mem.installed_mb = 256
 *
 * Unknown keys are fatal (catching typos beats silently ignoring
 * them). Booleans accept true/false/1/0; sizes ending in _mb/_kb are
 * plain integers in those units.
 */

#ifndef MTLBSIM_SIM_CONFIG_PARSER_HH
#define MTLBSIM_SIM_CONFIG_PARSER_HH

#include <istream>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace mtlbsim
{

/**
 * Parses option assignments into a SystemConfig.
 */
class ConfigParser
{
  public:
    /** Start from the library defaults (the paper's machine). */
    ConfigParser() = default;

    /** Start from an existing configuration. */
    explicit ConfigParser(const SystemConfig &base) : config_(base) {}

    /** Apply one "key = value" (or "key=value") assignment. */
    void set(const std::string &key, const std::string &value);

    /** Apply a whole stream: one assignment per line; '#' comments
     *  and blank lines are ignored. */
    void parseStream(std::istream &in);

    /** Apply a config file. */
    void parseFile(const std::string &path);

    /** Apply "key=value" command-line tokens; returns tokens that
     *  were not assignments (e.g. positional arguments). */
    std::vector<std::string> parseArgs(int argc, char **argv);

    const SystemConfig &config() const { return config_; }

    /** Names of every accepted key (for --help output). */
    static std::vector<std::string> knownKeys();

  private:
    SystemConfig config_;
};

} // namespace mtlbsim

#endif // MTLBSIM_SIM_CONFIG_PARSER_HH
