#include "sim/system.hh"

#include "check/translation_auditor.hh"

namespace mtlbsim
{

namespace
{

/** Derive the MMC configuration from the system-level switches. */
MmcConfig
mmcConfigFrom(const SystemConfig &config)
{
    MmcConfig mmc;
    mmc.hasMtlb = config.mtlbEnabled;
    mmc.mtlb = config.mtlb;
    mmc.dram = config.dram;
    mmc.streamBuffers = config.streamBuffers;
    return mmc;
}

/** The shadow region only exists on MTLB systems. */
AddrRange
shadowRangeFrom(const SystemConfig &config)
{
    return config.mtlbEnabled ? config.shadow : AddrRange{};
}

} // namespace

System::System(const SystemConfig &config)
    : config_(config),
      rootStats_("system"),
      physMap_(config.installedBytes, shadowRangeFrom(config),
               config.physAddrBits)
{
    memsys_ = std::make_unique<MemorySystem>(
        config.bus, mmcConfigFrom(config), physMap_, rootStats_);
    cache_ = std::make_unique<Cache>(config.cache, *memsys_, rootStats_);
    tlb_ = std::make_unique<Tlb>(config.tlbEntries, "tlb", rootStats_);
    uitlb_ = std::make_unique<MicroItlb>(rootStats_);

    KernelConfig kconfig = config.kernel;
    // Shadow superpages only make sense with an MTLB downstream;
    // the no-MTLB baseline keeps everything base-paged (§3.4).
    if (!config.mtlbEnabled)
        kconfig.superpagesEnabled = false;

    kernel_ = std::make_unique<Kernel>(kconfig, physMap_, *tlb_,
                                       *uitlb_, *cache_, *memsys_,
                                       rootStats_);
    cpu_ = std::make_unique<Cpu>(config.cpu, *tlb_, *uitlb_, *cache_,
                                 *memsys_, *kernel_, rootStats_);

    // The auditor is always assembled (tests can call audit() on any
    // system); the config only decides whether the CPU triggers it
    // periodically.
    auditor_ = std::make_unique<TranslationAuditor>(
        config.check, *tlb_, *cache_, *memsys_, *kernel_, physMap_,
        rootStats_);
    auditor_->attachL0(&cpu_->l0());
    if (config.check.enabled) {
        cpu_->setPeriodicCheck(config.check.interval,
                               [this](Cycles now) {
                                   auditor_->audit(now);
                               });
    }
}

System::~System() = default;

void
System::audit()
{
    // Deferred batch counts must be realized before the auditor
    // reads any statistic (and so audits see final values, not the
    // lag-tolerant intermediate ones).
    cpu_->flushBatch();
    auditor_->audit(cpu_->now());
}

void
System::dumpStats(std::ostream &os) const
{
    cpu_->flushBatch();
    rootStats_.print(os);
}

} // namespace mtlbsim
