#include "sim/system.hh"

#include <string>

#include "check/translation_auditor.hh"

namespace mtlbsim
{

namespace
{

/** Derive the MMC configuration from the system-level switches. */
MmcConfig
mmcConfigFrom(const SystemConfig &config)
{
    MmcConfig mmc;
    mmc.hasMtlb = config.mtlbEnabled;
    mmc.mtlb = config.mtlb;
    mmc.dram = config.dram;
    mmc.streamBuffers = config.streamBuffers;
    return mmc;
}

/** The shadow region only exists on MTLB systems. */
AddrRange
shadowRangeFrom(const SystemConfig &config)
{
    return config.mtlbEnabled ? config.shadow : AddrRange{};
}

} // namespace

System::System(const SystemConfig &config)
    : config_(config),
      rootStats_("system"),
      physMap_(config.installedBytes, shadowRangeFrom(config),
               config.physAddrBits)
{
    memsys_ = std::make_unique<MemorySystem>(
        config.bus, mmcConfigFrom(config), physMap_, rootStats_);
    cache_ = std::make_unique<Cache>(config.cache, *memsys_, rootStats_);
    tlb_ = std::make_unique<Tlb>(config.tlbEntries, "tlb", rootStats_);
    uitlb_ = std::make_unique<MicroItlb>(rootStats_);

    KernelConfig kconfig = config.kernel;
    // Shadow superpages only make sense with an MTLB downstream;
    // the no-MTLB baseline keeps everything base-paged (§3.4).
    if (!config.mtlbEnabled)
        kconfig.superpagesEnabled = false;

    kernel_ = std::make_unique<Kernel>(kconfig, physMap_, *tlb_,
                                       *uitlb_, *cache_, *memsys_,
                                       rootStats_);
    cpu_ = std::make_unique<Cpu>(config.cpu, *tlb_, *uitlb_, *cache_,
                                 *memsys_, *kernel_, rootStats_, 0);

    // Cores 1..N-1: private TLB/micro-ITLB/CPU under a "core<N>"
    // stats child, all sharing the cache-side machine and the kernel.
    // Constructed after the legacy members so a single-core machine's
    // statistics keep their exact names and order.
    fatalIf(config.cores == 0, "a machine needs at least one core");
    for (unsigned c = 1; c < config.cores; ++c) {
        ExtraCore core;
        core.statGroup = std::make_unique<stats::StatGroup>(
            "core" + std::to_string(c));
        core.tlb = std::make_unique<Tlb>(config.tlbEntries, "tlb",
                                         *core.statGroup);
        core.uitlb = std::make_unique<MicroItlb>(*core.statGroup);
        core.cpu = std::make_unique<Cpu>(config.cpu, *core.tlb,
                                         *core.uitlb, *cache_,
                                         *memsys_, *kernel_,
                                         *core.statGroup, c);
        rootStats_.addChild(core.statGroup.get());
        kernel_->attachCore(core.tlb.get(), core.uitlb.get(),
                            [cpu = core.cpu.get()](Cycles n) {
                                cpu->charge(n);
                            });
        extraCores_.push_back(std::move(core));
    }
    if (config.cores > 1) {
        // Core 0 receives shootdown IPIs too.
        kernel_->setCoreIpi(0, [cpu = cpu_.get()](Cycles n) {
            cpu->charge(n);
        });
        // The MTLB's single port is only observable with rivals.
        if (config.mtlbEnabled) {
            memsys_->enablePortModel(
                mmcToCpuCycles(config.mtlb.portOccupancyCycles),
                rootStats_);
        }
    }

    // The auditor is always assembled (tests can call audit() on any
    // system); the config only decides whether the CPU triggers it
    // periodically.
    auditor_ = std::make_unique<TranslationAuditor>(
        config.check, *tlb_, *cache_, *memsys_, *kernel_, physMap_,
        rootStats_);
    auditor_->attachL0(&cpu_->l0());
    for (auto &core : extraCores_)
        auditor_->attachCoreL0(&core.cpu->l0());
    if (config.check.enabled) {
        cpu_->setPeriodicCheck(config.check.interval,
                               [this](Cycles now) {
                                   periodicAudit(now);
                               });
        for (auto &core : extraCores_) {
            core.cpu->setPeriodicCheck(config.check.interval,
                                       [this](Cycles now) {
                                           periodicAudit(now);
                                       });
        }
    }
}

System::~System() = default;

void
System::flushAllBatches() const
{
    cpu_->flushBatch();
    for (const auto &core : extraCores_)
        core.cpu->flushBatch();
}

void
System::audit()
{
    // Deferred batch counts must be realized before the auditor
    // reads any statistic (and so audits see final values, not the
    // lag-tolerant intermediate ones).
    flushAllBatches();
    auditor_->audit(totalCycles());
}

void
System::periodicAudit(Cycles now)
{
    flushAllBatches();
    auditor_->audit(now);
}

void
System::dumpStats(std::ostream &os) const
{
    flushAllBatches();
    rootStats_.print(os);
}

} // namespace mtlbsim
