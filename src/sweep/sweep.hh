/**
 * @file
 * Parallel deterministic sweep runner.
 *
 * A sweep fans (workload x machine-configuration) jobs over a thread
 * pool. Every job is hermetic: it constructs its own System, drives
 * its own Workload instance, and derives every random seed from the
 * job itself — never from shared mutable state — so a sweep's results
 * are byte-identical regardless of thread count, schedule, or
 * repetition. Results come back indexed by job position, not by
 * completion order.
 *
 * The figure harnesses (bench/fig3_runtimes, bench/fig4_...) and the
 * tools/sweep CLI all build their job lists from the shared matrices
 * in sweep/matrix.hh, so one definition of each figure's design
 * space serves interactive runs, golden recording, and regression
 * checking alike.
 */

#ifndef MTLBSIM_SWEEP_SWEEP_HH
#define MTLBSIM_SWEEP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/json.hh"
#include "workloads/experiment.hh"

namespace mtlbsim::sweep
{

/** One hermetic simulation job. */
struct SweepJob
{
    /** Unique label, e.g. "fig3/em3d/tlb96+mtlb"; doubles as the
     *  golden-file stem (with '/' flattened to '-'). */
    std::string id;
    std::string workload;
    double scale = 1.0;
    SystemConfig config;
    /** 0 keeps the paper's fixed per-workload seeds (the golden
     *  configuration); a nonzero value perturbs the workload trace
     *  and the frame-allocator shuffle deterministically. */
    std::uint64_t seed = 0;
    /** Non-empty makes this a multiprogrammed job: process i runs
     *  processes[i] under runMultiprogMix() on a config.cores-core
     *  machine, and `workload` is just the mix's display name. */
    std::vector<std::string> processes;
};

/** Outcome of one job. */
struct SweepResult
{
    std::string id;
    std::string workload;
    double scale = 1.0;
    std::uint64_t seed = 0;
    /** The multiprogrammed mix, when the job had one. */
    std::vector<std::string> processes;
    bool ok = false;
    /** Failure message when !ok (fatal/panic text). */
    std::string error;
    ExperimentResult metrics;
    /** Full structured stats tree ({"system": ...}); null when
     *  stats capture is off. */
    json::Value stats;
};

struct SweepOptions
{
    /** Worker threads; 0 means hardware concurrency. */
    unsigned jobs = 1;
    /** Capture each job's full stats tree (golden runs need it;
     *  quick figure sweeps can skip the serialization). */
    bool captureStats = true;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {})
        : options_(options)
    {}

    /** Called after each job completes; @p done counts finished jobs.
     *  Invoked under a lock, in completion (not job) order. */
    using Progress = std::function<void(const SweepResult &,
                                        std::size_t done,
                                        std::size_t total)>;

    /**
     * Run every job; the result vector parallels @p jobs. Job
     * failures are captured in SweepResult::error, never thrown.
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs,
                                 const Progress &progress = {}) const;

    /** Run a single job in the calling thread. */
    static SweepResult runOne(const SweepJob &job,
                              bool capture_stats = true);

    /** FNV-1a of @p id: a stable per-job seed for sweeps that want
     *  decorrelated (but reproducible) randomness. */
    static std::uint64_t deriveSeed(const std::string &id);

  private:
    SweepOptions options_;
};

/**
 * Serialize one result as the canonical golden-file document:
 * {"meta": {...}, "metrics": {...}, "stats": {...}}.
 */
json::Value resultToJson(const SweepResult &result);

/** Serialize a whole sweep (array of resultToJson in job order). */
json::Value sweepToJson(const std::vector<SweepResult> &results);

} // namespace mtlbsim::sweep

#endif // MTLBSIM_SWEEP_SWEEP_HH
