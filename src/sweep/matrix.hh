/**
 * @file
 * Shared job matrices: each paper figure's design space, defined
 * once and consumed by the bench harnesses, the tools/sweep CLI, and
 * the regression tests.
 */

#ifndef MTLBSIM_SWEEP_MATRIX_HH
#define MTLBSIM_SWEEP_MATRIX_HH

#include <string>
#include <vector>

#include "sweep/sweep.hh"

namespace mtlbsim::sweep
{

/** A named job list. */
struct SweepMatrix
{
    std::string name;
    std::vector<SweepJob> jobs;

    /** The job with @p id; fatal when absent. */
    const SweepJob &job(const std::string &id) const;
};

/**
 * Figure 3's design space: the five §3.1 programs x CPU TLB sizes
 * {64,96,128} x {no MTLB, 128-entry 2-way MTLB}, plus the §3.4
 * radix run at a 256-entry TLB. Job ids: "fig3/<workload>/tlb<N>"
 * with "+mtlb" appended for MTLB configurations.
 */
SweepMatrix fig3Matrix(double scale);

/**
 * Figure 4's design space: em3d on a 128-entry CPU TLB, no-MTLB
 * baseline ("fig4/em3d/no-mtlb") plus MTLB size {64,128,256,512} x
 * associativity {1,2,4,8} ("fig4/em3d/m<entries>x<assoc>").
 */
SweepMatrix fig4Matrix(double scale);

/**
 * The golden-baseline matrix: each of the five paper programs on
 * @p machine (configs/paper.cfg in the committed baselines). Job
 * ids are the bare workload names.
 */
SweepMatrix goldenMatrix(double scale, const SystemConfig &machine);

/** Matrix names accepted by makeMatrix(). */
std::vector<std::string> knownMatrices();

/**
 * Build a matrix by name. @p base is the machine for "golden"
 * (ignored by the figure matrices, which define their own machines).
 */
SweepMatrix makeMatrix(const std::string &name, double scale,
                       const SystemConfig &base);

} // namespace mtlbsim::sweep

#endif // MTLBSIM_SWEEP_MATRIX_HH
