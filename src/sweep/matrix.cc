#include "sweep/matrix.hh"

#include "base/logging.hh"
#include "workloads/workload.hh"

namespace mtlbsim::sweep
{

const SweepJob &
SweepMatrix::job(const std::string &id) const
{
    for (const auto &j : jobs) {
        if (j.id == id)
            return j;
    }
    fatal("matrix '", name, "' has no job '", id, "'");
}

SweepMatrix
fig3Matrix(double scale)
{
    SweepMatrix m;
    m.name = "fig3";
    for (const auto &workload : allWorkloadNames()) {
        for (const unsigned tlb : {64u, 96u, 128u}) {
            for (const bool mtlb : {false, true}) {
                SweepJob job;
                job.id = "fig3/" + workload + "/tlb" +
                         std::to_string(tlb) + (mtlb ? "+mtlb" : "");
                job.workload = workload;
                job.scale = scale;
                job.config = paperConfig(tlb, mtlb);
                m.jobs.push_back(std::move(job));
            }
        }
    }
    // The §3.4 textual claim: radix still misses hard at 256 entries.
    SweepJob radix256;
    radix256.id = "fig3/radix/tlb256";
    radix256.workload = "radix";
    radix256.scale = scale;
    radix256.config = paperConfig(256, false);
    m.jobs.push_back(std::move(radix256));
    return m;
}

SweepMatrix
fig4Matrix(double scale)
{
    SweepMatrix m;
    m.name = "fig4";

    SweepJob base;
    base.id = "fig4/em3d/no-mtlb";
    base.workload = "em3d";
    base.scale = scale;
    base.config = paperConfig(128, false);
    m.jobs.push_back(std::move(base));

    for (const unsigned entries : {64u, 128u, 256u, 512u}) {
        for (const unsigned assoc : {1u, 2u, 4u, 8u}) {
            SweepJob job;
            job.id = "fig4/em3d/m" + std::to_string(entries) + "x" +
                     std::to_string(assoc);
            job.workload = "em3d";
            job.scale = scale;
            job.config = paperConfig(128, true, entries, assoc);
            m.jobs.push_back(std::move(job));
        }
    }
    return m;
}

SweepMatrix
goldenMatrix(double scale, const SystemConfig &machine)
{
    SweepMatrix m;
    m.name = "golden";
    for (const auto &workload : allWorkloadNames()) {
        SweepJob job;
        job.id = workload;
        job.workload = workload;
        job.scale = scale;
        job.config = machine;
        m.jobs.push_back(std::move(job));
    }

    // The multi-core baseline: a 2-core machine time-slicing a
    // 4-process mix, pinning scheduler interleaving, shootdown
    // counts, and the per-core stat layout.
    SweepJob mix;
    mix.id = "multicore_mix";
    mix.workload = "multicore_mix";
    mix.scale = scale;
    mix.config = machine;
    mix.config.cores = 2;
    mix.processes = {"compress95", "vortex", "em3d", "compress95"};
    m.jobs.push_back(std::move(mix));
    return m;
}

std::vector<std::string>
knownMatrices()
{
    return {"fig3", "fig4", "golden"};
}

SweepMatrix
makeMatrix(const std::string &name, double scale,
           const SystemConfig &base)
{
    if (name == "fig3")
        return fig3Matrix(scale);
    if (name == "fig4")
        return fig4Matrix(scale);
    if (name == "golden")
        return goldenMatrix(scale, base);
    fatal("unknown sweep matrix '", name,
          "'; expected fig3, fig4, or golden");
}

} // namespace mtlbsim::sweep
