#include "sweep/sweep.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "base/logging.hh"
#include "sim/system.hh"
#include "workloads/multiprog.hh"
#include "workloads/workload.hh"

namespace mtlbsim::sweep
{

std::uint64_t
SweepRunner::deriveSeed(const std::string &id)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : id) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    // makeWorkload treats 0 as "use the paper seed"; remap it.
    return hash ? hash : 0xcbf29ce484222325ULL;
}

SweepResult
SweepRunner::runOne(const SweepJob &job, bool capture_stats)
{
    SweepResult result;
    result.id = job.id;
    result.workload = job.workload;
    result.scale = job.scale;
    result.seed = job.seed;
    result.processes = job.processes;
    try {
        SystemConfig config = job.config;
        if (job.seed)
            config.kernel.frameSeed = job.seed ^ 0x9e3779b97f4a7c15ULL;

        System sys(config);
        if (job.processes.empty()) {
            auto workload =
                makeWorkload(job.workload, job.scale, job.seed);
            workload->setup(sys);
            workload->run(sys);
        } else {
            runMultiprogMix(sys, job.processes, job.scale, job.seed);
        }
        if (config.check.enabled)
            sys.audit();

        result.metrics = collectMetrics(sys, job.workload);
        if (capture_stats) {
            auto stats = json::Value::object();
            stats.set(sys.rootStats().name(), sys.rootStats().toJson());
            result.stats = std::move(stats);
        }
        result.ok = true;
    } catch (const std::exception &e) {
        result.ok = false;
        result.error = e.what();
    }
    return result;
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepJob> &jobs,
                 const Progress &progress) const
{
    std::vector<SweepResult> results(jobs.size());
    if (jobs.empty())
        return results;

    unsigned workers = options_.jobs;
    if (workers == 0)
        workers = std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, jobs.size()));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            results[i] = runOne(jobs[i], options_.captureStats);
            const std::size_t finished = done.fetch_add(1) + 1;
            {
                // The callback is shared across workers: check and
                // invoke it under the same lock (R8 lock-discipline).
                std::lock_guard<std::mutex> lock(progressMutex);
                if (progress)
                    progress(results[i], finished, jobs.size());
            }
        }
    };

    if (workers == 1) {
        worker();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

json::Value
resultToJson(const SweepResult &result)
{
    auto doc = json::Value::object();

    auto meta = json::Value::object();
    meta.set("id", result.id);
    meta.set("workload", result.workload);
    meta.set("scale", result.scale);
    meta.set("seed", result.seed);
    if (!result.processes.empty()) {
        // Multiprogrammed job: record the mix. Absent for classic
        // jobs so pre-multicore golden files stay byte-identical.
        auto procs = json::Value::array();
        for (const auto &p : result.processes)
            procs.push(p);
        meta.set("processes", std::move(procs));
    }
    meta.set("ok", result.ok);
    if (!result.ok)
        meta.set("error", result.error);
    doc.set("meta", std::move(meta));

    const ExperimentResult &m = result.metrics;
    auto metrics = json::Value::object();
    metrics.set("tlb_entries", m.tlbEntries);
    metrics.set("mtlb_enabled", m.mtlbEnabled);
    metrics.set("mtlb_entries", m.mtlbEntries);
    metrics.set("mtlb_assoc", m.mtlbAssoc);
    metrics.set("total_cycles", m.totalCycles);
    metrics.set("tlb_miss_cycles", m.tlbMissCycles);
    metrics.set("tlb_miss_fraction", m.tlbMissFraction);
    metrics.set("avg_fill_cycles", m.avgFillCycles);
    metrics.set("mtlb_hit_rate", m.mtlbHitRate);
    metrics.set("tlb_misses", m.tlbMisses);
    metrics.set("cache_misses", m.cacheMisses);
    metrics.set("cache_hit_rate", m.cacheHitRate);
    metrics.set("remap_total_cycles", m.remapTotalCycles);
    metrics.set("remap_flush_cycles", m.remapFlushCycles);
    metrics.set("remap_pages", m.remapPages);
    metrics.set("superpages", m.superpages);
    doc.set("metrics", std::move(metrics));

    doc.set("stats", result.stats);
    return doc;
}

json::Value
sweepToJson(const std::vector<SweepResult> &results)
{
    auto arr = json::Value::array();
    for (const auto &r : results)
        arr.push(resultToJson(r));
    return arr;
}

} // namespace mtlbsim::sweep
