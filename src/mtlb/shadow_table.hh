/**
 * @file
 * The MMC's shadow-to-physical translation table.
 *
 * Per §2.2 of the paper: a dense, flat array indexed by shadow page
 * offset. Each 4-byte entry holds a real page frame number (24 bits,
 * enough for 64 GB of real memory) plus validity, page-fault,
 * reference, and modification bits. The table itself lives in real
 * DRAM at an OS-configured base address; hardware MTLB fills read it
 * with an uncached 4-byte DRAM load.
 *
 * For a 512 MB shadow region with 4 KB pages the table is 128 K
 * entries = 512 KB, an overhead of ~0.1% of an equally sized real
 * memory.
 */

#ifndef MTLBSIM_MTLB_SHADOW_TABLE_HH
#define MTLBSIM_MTLB_SHADOW_TABLE_HH

#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace mtlbsim
{

/** One 4-byte entry of the shadow-to-physical table (§2.2). */
struct ShadowPte
{
    std::uint32_t realPfn : 24 = 0; ///< real page frame number
    std::uint32_t valid : 1 = 0;    ///< mapping established and present
    std::uint32_t fault : 1 = 0;    ///< access faulted (page swapped out)
    std::uint32_t referenced : 1 = 0;
    std::uint32_t modified : 1 = 0;
    std::uint32_t reserved : 4 = 0; ///< room for future expansion
};

static_assert(sizeof(ShadowPte) == 4, "shadow PTE must be 4 bytes");

/**
 * Flat shadow-to-physical mapping table.
 *
 * Indexed by shadow page index (shadow address minus region base,
 * divided by the base page size). The OS writes entries through MMC
 * control registers; the MTLB fill hardware reads them.
 */
class ShadowTable
{
  public:
    /**
     * @param num_entries one entry per shadow base page
     * @param table_base  real physical address of entry 0 (the fill
     *                    hardware computes entry addresses from it)
     */
    ShadowTable(Addr num_entries, Addr table_base)
        : entries_(num_entries), tableBase_(table_base)
    {
        fatalIf(num_entries == 0, "empty shadow table");
        fatalIf(table_base & 3, "table base must be 4-byte aligned");
    }

    Addr numEntries() const { return entries_.size(); }
    Addr tableBase() const { return tableBase_; }

    /** Real physical address of entry @p idx — the address the fill
     *  hardware's DRAM read goes to (§2.2: index << 2 + base). */
    Addr
    entryAddr(Addr idx) const
    {
        checkIndex(idx);
        return tableBase_ + (idx << 2);
    }

    const ShadowPte &
    entry(Addr idx) const
    {
        checkIndex(idx);
        return entries_[idx];
    }

    ShadowPte &
    entry(Addr idx)
    {
        checkIndex(idx);
        return entries_[idx];
    }

    /** Install a valid mapping (OS path, via MMC control register). */
    void
    set(Addr idx, Addr real_pfn)
    {
        checkIndex(idx);
        fatalIf(real_pfn >= (Addr{1} << 24),
                "real PFN exceeds 24-bit table field: ", real_pfn);
        ShadowPte &e = entries_[idx];
        e.realPfn = static_cast<std::uint32_t>(real_pfn);
        e.valid = 1;
        e.fault = 0;
        e.referenced = 0;
        e.modified = 0;
    }

    /** Invalidate a mapping (e.g. the base page was swapped out).
     *  Referenced/modified bits are preserved for OS inspection. */
    void
    invalidate(Addr idx)
    {
        checkIndex(idx);
        entries_[idx].valid = 0;
    }

    /** Clear an entry completely (region freed). */
    void
    clear(Addr idx)
    {
        checkIndex(idx);
        entries_[idx] = ShadowPte{};
    }

  private:
    void
    checkIndex(Addr idx) const
    {
        panicIf(idx >= entries_.size(),
                "shadow table index out of range: ", idx);
    }

    std::vector<ShadowPte> entries_;
    Addr tableBase_;
};

} // namespace mtlbsim

#endif // MTLBSIM_MTLB_SHADOW_TABLE_HH
