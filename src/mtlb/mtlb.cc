#include "mtlb/mtlb.hh"

namespace mtlbsim
{

Mtlb::Mtlb(const MtlbConfig &config, ShadowTable &table,
           stats::StatGroup &parent)
    : config_(config), table_(table),
      statGroup_("mtlb"),
      hits_(statGroup_.addScalar("hits", "MTLB hits")),
      misses_(statGroup_.addScalar("misses",
                                   "MTLB misses (hardware table fills)")),
      faults_(statGroup_.addScalar("faults",
                                   "accesses to invalid shadow mappings")),
      purges_(statGroup_.addScalar("purges", "OS purge operations")),
      bitWriteBacks_(statGroup_.addScalar("bit_write_backs",
                                          "R/M bit write-backs to the "
                                          "table"))
{
    fatalIf(config.numEntries == 0, "MTLB must have entries");
    fatalIf(config.associativity == 0, "MTLB associativity must be >= 1");
    fatalIf(config.numEntries % config.associativity != 0,
            "MTLB entries must divide evenly into sets");
    numSets_ = config.numEntries / config.associativity;
    fatalIf(!isPowerOf2(numSets_),
            "MTLB set count must be a power of 2, got ", numSets_);
    entries_.resize(config.numEntries);
    parent.addChild(&statGroup_);
}

Mtlb::Entry *
Mtlb::findEntry(Addr spi)
{
    const unsigned set = setOf(spi);
    for (unsigned w = 0; w < config_.associativity; ++w) {
        Entry &e = entries_[set * config_.associativity + w];
        if (e.valid && e.spi == spi)
            return &e;
    }
    return nullptr;
}

Mtlb::Entry &
Mtlb::victimIn(unsigned set)
{
    Entry *base = &entries_[set * config_.associativity];

    // Prefer an invalid way.
    for (unsigned w = 0; w < config_.associativity; ++w) {
        if (!base[w].valid)
            return base[w];
    }
    // NRU within the set: first unreferenced way; if all referenced,
    // clear the set's reference bits and take way 0.
    for (unsigned w = 0; w < config_.associativity; ++w) {
        if (!base[w].referenced)
            return base[w];
    }
    for (unsigned w = 0; w < config_.associativity; ++w)
        base[w].referenced = false;
    return base[0];
}

void
Mtlb::writeBackBits(Entry &entry)
{
    if (!entry.dirtyBits)
        return;
    ShadowPte &tpte = table_.entry(entry.spi);
    tpte.referenced |= entry.pte.referenced;
    tpte.modified |= entry.pte.modified;
    entry.dirtyBits = false;
    ++bitWriteBacks_;
}

void
Mtlb::applyAccessBits(Entry &entry, MtlbAccess kind)
{
    if (kind == MtlbAccess::SharedFill) {
        if (!entry.pte.referenced) {
            entry.pte.referenced = 1;
            entry.dirtyBits = true;
        }
    } else {
        // Exclusive fills and write-backs both imply the page will be
        // (or has been) modified, and a modified page was necessarily
        // referenced.
        if (!entry.pte.referenced || !entry.pte.modified) {
            entry.pte.referenced = 1;
            entry.pte.modified = 1;
            entry.dirtyBits = true;
        }
    }
    if (entry.dirtyBits && config_.writeBackAccessBits)
        writeBackBits(entry);
}

MtlbResult
Mtlb::translate(Addr spi, MtlbAccess kind)
{
    MtlbResult result;

    Entry *entry = findEntry(spi);
    if (entry) {
        ++hits_;
        result.hit = true;
    } else {
        ++misses_;
        debugPrintf(traceFlag_, "miss spi=0x", std::hex, spi,
                    " (hardware fill)");
        // Hardware fill: one uncached DRAM read of the table entry.
        result.tableReads = 1;
        const unsigned set = setOf(spi);
        Entry &victim = victimIn(set);
        if (victim.valid)
            writeBackBits(victim);
        victim.valid = true;
        victim.spi = spi;
        victim.pte = table_.entry(spi);
        victim.dirtyBits = false;
        entry = &victim;
    }

    entry->referenced = true;

    if (!entry->pte.valid) {
        // Backing base page is not present: the MMC must raise a
        // precise fault to the CPU (§4). Mark the fault bit so the
        // OS can distinguish this from a real parity error.
        ++faults_;
        debugPrintf(traceFlag_, "fault spi=0x", std::hex, spi,
                    " (backing page absent)");
        if (!entry->pte.fault) {
            entry->pte.fault = 1;
            table_.entry(spi).fault = 1;
        }
        result.fault = true;
        return result;
    }

    applyAccessBits(*entry, kind);
    result.realPfn = entry->pte.realPfn;
    return result;
}

void
Mtlb::purge(Addr spi)
{
    ++purges_;
    Entry *entry = findEntry(spi);
    if (entry) {
        writeBackBits(*entry);
        entry->valid = false;
        entry->referenced = false;
    }
}

void
Mtlb::purgeAll()
{
    ++purges_;
    for (auto &e : entries_) {
        if (e.valid) {
            writeBackBits(e);
            e.valid = false;
            e.referenced = false;
        }
    }
}

void
Mtlb::syncAccessBits()
{
    for (auto &e : entries_) {
        if (e.valid)
            writeBackBits(e);
    }
}

std::vector<Mtlb::AuditEntry>
Mtlb::auditState() const
{
    std::vector<AuditEntry> resident;
    for (const Entry &e : entries_) {
        if (e.valid)
            resident.push_back({e.spi, e.pte, e.dirtyBits});
    }
    return resident;
}

} // namespace mtlbsim
