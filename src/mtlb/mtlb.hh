/**
 * @file
 * The Memory-Controller TLB (MTLB) — the paper's core mechanism.
 *
 * A set-associative cache of shadow-to-real page translations that
 * sits in the main memory controller (§2.2). Compared to a CPU TLB it
 * can be larger because (1) MMC timing is less aggressive, (2) it is
 * single ported, (3) it supports only one page size, and (4) it can
 * use limited associativity instead of full associativity.
 *
 * A lookup that hits translates in one MMC cycle (folded into the
 * MMC's per-operation shadow check). A miss triggers a hardware fill:
 * the fill engine computes the table entry's DRAM address from the
 * shadow page index (entry base + index*4) and performs one uncached
 * DRAM read — there is no software involvement.
 *
 * The MTLB maintains per-base-page referenced and dirty bits (§2.5):
 * a shared-line fill marks the page referenced; an exclusive fill or
 * a write-back marks it dirty. Whether updated bits are continuously
 * written back to the in-memory table is configurable; the paper's
 * simulated MTLB did not write them back (§3.4) and instead the bits
 * reach the table when an entry is purged or synced.
 */

#ifndef MTLBSIM_MTLB_MTLB_HH
#define MTLBSIM_MTLB_MTLB_HH

#include <functional>
#include <optional>
#include <vector>

#include "base/debug.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "mtlb/shadow_table.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

/** MTLB geometry and behaviour configuration. */
struct MtlbConfig
{
    unsigned numEntries = 128;  ///< default configuration (§3.4)
    unsigned associativity = 2; ///< 2-way set associative (§3.4)
    /** Write updated referenced/modified bits through to the
     *  in-memory table on every change. The paper's simulated MTLB
     *  left this off and predicted a negligible effect (§3.4). */
    bool writeBackAccessBits = false;
    /** MMC cycles one shadow-classified operation holds the MTLB's
     *  single port (§2.2 notes the MTLB "is single ported"). Only
     *  observable on multi-core machines, where concurrent shadow
     *  traffic from different cores serialises at the port
     *  (MemorySystem::enablePortModel); single-core machines never
     *  enable the model and are timing-identical to older builds. */
    Cycles portOccupancyCycles = 2;
};

/** What kind of request the MMC is asking the MTLB to translate. */
enum class MtlbAccess : std::uint8_t
{
    SharedFill,     ///< cache fill for a read (sets referenced)
    ExclusiveFill,  ///< cache fill with intent to write (sets dirty)
    WriteBack,      ///< dirty line arriving from the cache (sets dirty)
};

/** Result of asking the MTLB to translate a shadow page. */
struct MtlbResult
{
    bool hit = false;       ///< translation was resident
    bool fault = false;     ///< mapping invalid: backing page absent
    Addr realPfn = 0;       ///< valid when !fault
    /** Number of table-fill DRAM reads performed (0 on hit, 1 on
     *  miss; the MMC charges DRAM latency for each). */
    unsigned tableReads = 0;
};

/**
 * Set-associative MTLB with per-set NRU replacement.
 */
class Mtlb
{
  public:
    /**
     * @param config geometry
     * @param table  the in-DRAM shadow-to-physical table to fill from
     * @param parent stats parent
     */
    Mtlb(const MtlbConfig &config, ShadowTable &table,
         stats::StatGroup &parent);

    /**
     * Translate shadow page index @p spi for an access of kind
     * @p kind, filling from the table on a miss.
     */
    MtlbResult translate(Addr spi, MtlbAccess kind);

    /**
     * OS purge of a single mapping (uncached control-register write,
     * §2.4). Accumulated referenced/modified bits are written back to
     * the table so the OS sees them.
     */
    void purge(Addr spi);

    /** Purge everything, writing accumulated bits back. */
    void purgeAll();

    /** Write all resident entries' access bits back to the table
     *  without invalidating (used by the OS before reading bits). */
    void syncAccessBits();

    /** One resident translation as seen by the invariant auditor. */
    struct AuditEntry
    {
        Addr spi = 0;           ///< shadow page index (tag)
        ShadowPte pte;          ///< cached copy of the table entry
        bool dirtyBits = false; ///< R/M bits newer than the table's
    };

    /** Snapshot of every resident entry, for the invariant auditor
     *  (src/check). Does not touch replacement state or statistics. */
    std::vector<AuditEntry> auditState() const;

    unsigned numSets() const { return numSets_; }
    const MtlbConfig &config() const { return config_; }

    std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }
    std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(misses_.value());
    }
    std::uint64_t faults() const
    {
        return static_cast<std::uint64_t>(faults_.value());
    }
    double
    hitRate() const
    {
        const double total = hits_.value() + misses_.value();
        return total > 0 ? hits_.value() / total : 0.0;
    }

  private:
    /** Per-instance trace flag ("MTLB"): one per System's MTLB. */
    debug::Flag traceFlag_{"MTLB"};
    struct Entry
    {
        bool valid = false;
        bool referenced = false;    ///< NRU bit (replacement state)
        Addr spi = 0;               ///< shadow page index (the tag)
        ShadowPte pte;              ///< cached table entry
        bool dirtyBits = false;     ///< pte R/M bits newer than table
    };

    unsigned setOf(Addr spi) const { return spi & (numSets_ - 1); }
    Entry *findEntry(Addr spi);
    Entry &victimIn(unsigned set);
    void writeBackBits(Entry &entry);
    void applyAccessBits(Entry &entry, MtlbAccess kind);

    MtlbConfig config_;
    ShadowTable &table_;
    unsigned numSets_;
    std::vector<Entry> entries_;    ///< numSets_ * associativity

    stats::StatGroup statGroup_;
    stats::Scalar &hits_;
    stats::Scalar &misses_;
    stats::Scalar &faults_;
    stats::Scalar &purges_;
    stats::Scalar &bitWriteBacks_;
};

} // namespace mtlbsim

#endif // MTLBSIM_MTLB_MTLB_HH
