#include "workloads/multiprog.hh"

#include <deque>
#include <map>
#include <memory>

#include "os/kernel.hh"
#include "workloads/workload.hh"

namespace mtlbsim
{

namespace
{

/** Replay one recorded operation on @p cpu. */
void
applyOp(Cpu &cpu, const CpuOpRecord &op)
{
    switch (op.kind) {
      case CpuOpRecord::Kind::Load:
        cpu.load(op.a);
        break;
      case CpuOpRecord::Kind::Store:
        cpu.store(op.a);
        break;
      case CpuOpRecord::Kind::Execute:
        cpu.execute(op.n);
        break;
      case CpuOpRecord::Kind::ExecuteAt:
        cpu.executeAt(op.n, op.a);
        break;
      case CpuOpRecord::Kind::Remap:
        cpu.remap(op.a, op.n);
        break;
      case CpuOpRecord::Kind::Sbrk:
        // The captured program consumed the returned address when it
        // was recorded; the replayed kernel hands back the same one
        // (sbrk state is per-process and replay preserves order).
        cpu.sbrk(op.n);
        break;
      case CpuOpRecord::Kind::SetSbrkPrealloc:
        cpu.setSbrkPrealloc(op.n);
        break;
      case CpuOpRecord::Kind::Recolor:
        cpu.recolorPage(op.a, static_cast<unsigned>(op.n));
        break;
    }
}

/** Re-create @p prog's address-space layout in process @p proc.
 *  Regions are replayed in declaration order with the heap region
 *  routed through Kernel::initHeap so the sbrk machinery is armed;
 *  initHeap acts on the active process, so the caller must have
 *  bound @p proc to the active core. */
void
declareLayout(Kernel &kernel, unsigned proc, const ProgramImage &prog)
{
    AddressSpace &space = kernel.processSpace(proc);
    for (const VmRegion &r : prog.regions) {
        if (prog.hasHeap && r.base == prog.heapBase &&
            r.name == "heap") {
            kernel.initHeap(prog.heapBase, prog.heapBytes);
        } else {
            space.addRegion(r.name, r.base, r.size, r.prot);
        }
    }
}

} // namespace

ProgramImage
captureProgram(const std::string &workload_name, double scale,
               std::uint64_t seed, const SystemConfig &machine)
{
    // The scratch machine: same knobs, one core, auditing off (the
    // capture run's correctness is covered wherever the image is
    // replayed).
    SystemConfig scratch = machine;
    scratch.cores = 1;
    scratch.check.enabled = false;

    ProgramImage image;
    image.workload = workload_name;

    System sys(scratch);
    sys.cpu().setRecorder([&image](const CpuOpRecord &op) {
        image.ops.push_back(op);
    });

    auto workload = makeWorkload(workload_name, scale, seed);
    workload->setup(sys);
    workload->run(sys);

    image.regions = sys.kernel().addressSpace().regions();
    for (const VmRegion &r : image.regions) {
        if (r.name == "heap") {
            image.hasHeap = true;
            image.heapBase = r.base;
            image.heapBytes = r.size;
            break;
        }
    }
    return image;
}

Cycles
runPrograms(System &sys, const std::vector<ProgramImage> &programs)
{
    Kernel &kernel = sys.kernel();
    const unsigned cores = sys.numCores();
    const unsigned nprog = static_cast<unsigned>(programs.size());
    fatalIf(nprog == 0, "multiprog mix needs at least one program");

    const Cycles quantum = sys.config().sched.quantum;
    const Cycles switch_cycles = sys.config().sched.switchCycles;

    // One process per program; process 0 is the kernel's initial
    // one. Layout declaration needs the process active (initHeap),
    // so each is briefly bound to core 0 — a no-op purge for the
    // 1-core/1-process case, untimed setup work otherwise.
    for (unsigned p = 0; p < nprog; ++p) {
        if (p > 0) {
            const unsigned created = kernel.createProcess();
            panicIf(created != p, "process ids not dense");
        }
        kernel.bindProcess(0, p);
        kernel.setActiveCore(0);
        declareLayout(kernel, p, programs[p]);
    }

    // Scheduler state: cores 0..C-1 start with processes 0..C-1 (no
    // switch cost — nothing ran yet); the rest wait in a global FIFO
    // ready queue.
    constexpr unsigned idle = ~0u;
    std::vector<unsigned> running(cores, idle);
    std::vector<Cycles> slice_end(cores, 0);
    std::vector<std::size_t> cursor(nprog, 0);
    std::deque<unsigned> ready;

    for (unsigned c = 0; c < cores && c < nprog; ++c) {
        kernel.bindProcess(c, c);
        running[c] = c;
        slice_end[c] = sys.cpu(c).now() + quantum;
    }
    for (unsigned p = cores; p < nprog; ++p)
        ready.push_back(p);

    // Dispatch loop: always advance the core with the smallest
    // clock (ties to the lowest id), one operation at a time. The
    // interleaving is a pure function of the inputs — no host
    // nondeterminism can leak in.
    while (true) {
        unsigned core = idle;
        for (unsigned c = 0; c < cores; ++c) {
            if (running[c] == idle)
                continue;
            if (core == idle ||
                sys.cpu(c).now() < sys.cpu(core).now()) {
                core = c;
            }
        }
        if (core == idle)
            break;

        Cpu &cpu = sys.cpu(core);
        const unsigned proc = running[core];

        if (cursor[proc] == programs[proc].ops.size()) {
            // Program done: hand the core to the next waiter.
            if (ready.empty()) {
                running[core] = idle;
            } else {
                const unsigned next = ready.front();
                ready.pop_front();
                if (kernel.bindProcess(core, next))
                    cpu.charge(switch_cycles);
                running[core] = next;
                slice_end[core] = cpu.now() + quantum;
            }
            continue;
        }

        if (quantum > 0 && cpu.now() >= slice_end[core]) {
            if (ready.empty()) {
                // Nobody waiting: renew the slice for free rather
                // than charging a switch to the same process —
                // keeps 1-core/1-process replay identical to the
                // direct run.
                slice_end[core] = cpu.now() + quantum;
            } else {
                ready.push_back(proc);
                const unsigned next = ready.front();
                ready.pop_front();
                if (kernel.bindProcess(core, next))
                    cpu.charge(switch_cycles);
                running[core] = next;
                slice_end[core] = cpu.now() + quantum;
                continue;
            }
        }

        applyOp(cpu, programs[proc].ops[cursor[proc]++]);
    }

    return sys.totalCycles();
}

Cycles
runMultiprogMix(System &sys, const std::vector<std::string> &workloads,
                double scale, std::uint64_t seed)
{
    // Capture each distinct workload once; repeats share the image
    // (distinct processes replay it into distinct address spaces).
    std::map<std::string, std::shared_ptr<const ProgramImage>> cache;
    std::vector<ProgramImage> programs;
    programs.reserve(workloads.size());
    for (const std::string &name : workloads) {
        auto it = cache.find(name);
        if (it == cache.end()) {
            it = cache.emplace(name,
                               std::make_shared<const ProgramImage>(
                                   captureProgram(name, scale, seed,
                                                  sys.config())))
                     .first;
        }
        programs.push_back(*it->second);
    }
    return runPrograms(sys, programs);
}

} // namespace mtlbsim
