/**
 * @file
 * oltp: a commercial-database projection workload.
 *
 * Not one of the paper's five benchmarks — this models the workloads
 * its §1 and §6 *project* onto: "applications with significantly
 * larger working sets and worse spatial locality, such as is often
 * found in large databases and other commercially important
 * applications [Perl & Sites]". The paper claims its mechanism is
 * "likely to be even more effective" there; bench/commercial_projection
 * quantifies that claim by sweeping this workload's footprint.
 *
 * The model is a single-node OLTP engine: a tens-of-megabytes table
 * of records indexed by a fanout-32 B-tree, point queries against a
 * scattered hot key set, updates writing records plus a sequential
 * redo log. Hot records are sparse in pages and dense in lines —
 * cache-friendly but far beyond any CPU TLB's reach.
 */

#ifndef MTLBSIM_WORKLOADS_OLTP_HH
#define MTLBSIM_WORKLOADS_OLTP_HH

#include <vector>

#include "base/random.hh"
#include "workloads/workload.hh"

namespace mtlbsim
{

/** Tuning knobs for the oltp workload. */
struct OltpConfig
{
    unsigned numRecords = 250'000;  ///< ~40 MB with record+index
    Addr recordBytes = 160;
    unsigned treeFanout = 32;
    unsigned transactions = 400'000;
    unsigned updatePercent = 25;
    /** Queries hitting the hot set. Commercial traces (Perl & Sites)
     *  show caches coping while TLB reach fails: the hot records are
     *  few enough to cache but scattered over far more pages than
     *  any CPU TLB maps. */
    unsigned hotPercent = 92;
    /** Hot-set size as a fraction of the table (1/N records). */
    unsigned hotFraction = 64;
    /** sbrk preallocation chunk. */
    Addr preallocBytes = 16 * 1024 * 1024;
    std::uint64_t seed = 0x01f90ULL;
};

/**
 * The oltp workload.
 */
class OltpWorkload : public Workload
{
  public:
    explicit OltpWorkload(const OltpConfig &config);

    std::string name() const override { return "oltp"; }
    void setup(System &sys) override;
    void run(System &sys) override;

    /** Total simulated bytes the database occupies. */
    Addr footprintBytes() const { return footprint_; }

  private:
    Addr recordAddr(unsigned record) const;

    OltpConfig config_;
    Addr tableBase_ = 0;
    Addr logBase_ = 0;
    Addr logCursor_ = 0;
    Addr footprint_ = 0;
    Addr codeBase_ = 0;
    /** Index levels, root first (node addresses). */
    std::vector<std::vector<Addr>> treeLevels_;
};

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_OLTP_HH
