/**
 * @file
 * em3d: 3-D electromagnetic wave propagation kernel (§3.1).
 *
 * The single-processor message-passing version the paper used models
 * the interleaved update of electric- and magnetic-field nodes on a
 * bipartite dependency graph. We run the genuine kernel: 6,000 nodes
 * (half E, half H), each holding a value and a list of weighted
 * dependencies on random nodes of the other side; every time step
 * recomputes each node's value from its dependencies.
 *
 * With ~64 dependencies per node the graph occupies ~4.5 MB of
 * dynamically allocated memory, which the workload remaps (after
 * initialisation, before the time steps) exactly as the paper's
 * instrumented binary did. Dependency loads are effectively random
 * across the other side's 2+ MB — the worst cache behaviour of the
 * five benchmarks, and the reason the paper uses em3d for its MTLB
 * sensitivity study (Fig 4).
 */

#ifndef MTLBSIM_WORKLOADS_EM3D_HH
#define MTLBSIM_WORKLOADS_EM3D_HH

#include <vector>

#include "workloads/workload.hh"

namespace mtlbsim
{

/** Tuning knobs for the em3d workload. */
struct Em3dConfig
{
    unsigned numNodes = 6000;   ///< total nodes, split E/H (§3.1)
    unsigned degree = 64;       ///< dependencies per node (~4.5 MB)
    unsigned iterations = 40;   ///< time steps
    /** Percentage of dependencies that land near the node's mirror
     *  position on the other side (the original em3d's %local
     *  argument); the rest are uniformly random. Tuned so the cache
     *  hit rate lands near the paper's reported 84% (§3.5). */
    unsigned localPercent = 95;
    unsigned localWindow = 200;  ///< +/- node range for local edges
    std::uint64_t seed = 0xe3d0001ULL;
};

/**
 * The em3d workload.
 */
class Em3dWorkload : public Workload
{
  public:
    explicit Em3dWorkload(const Em3dConfig &config);

    std::string name() const override { return "em3d"; }
    void setup(System &sys) override;
    void run(System &sys) override;

    Addr mappedBytes() const { return mappedBytes_; }

  private:
    /** Byte size of one node record: value + count + degree
     *  (neighbour pointer, coefficient) pairs. */
    Addr nodeBytes() const { return 16 + Addr{config_.degree} * 12; }

    Addr nodeAddr(unsigned node) const;
    Addr valueAddr(unsigned node) const;
    Addr depPtrAddr(unsigned node, unsigned dep) const;
    Addr coeffAddr(unsigned node, unsigned dep) const;

    Em3dConfig config_;
    /** Host-side graph: per node, its dependency list. */
    std::vector<std::vector<unsigned>> deps_;
    std::vector<std::vector<double>> coeffs_;
    std::vector<double> values_;

    Addr base_ = 0;
    Addr mappedBytes_ = 0;
    Addr codeBase_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_EM3D_HH
