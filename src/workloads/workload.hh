/**
 * @file
 * Workload interface and shared conventions.
 *
 * The five benchmarks of §3.1 are reimplemented as execution-driven
 * reference generators: each runs its real (or behaviourally
 * matched) algorithm over host data while issuing every data
 * reference and instruction-count to the simulated CPU. radix and
 * em3d run their genuine algorithms; compress95 runs a real LZW
 * compressor; vortex and cc1 are synthetic models matched to the
 * paper's descriptions (footprints, allocation schedules, and
 * locality). See DESIGN.md §2 for the substitution rationale.
 *
 * Superpage instrumentation follows §2.3: workloads either remap()
 * their regions explicitly (compress95, radix, em3d) or allocate
 * through the superpage-aware sbrk() (vortex, cc1). On systems
 * without an MTLB those calls are cheap no-ops, reproducing the
 * baseline configuration.
 */

#ifndef MTLBSIM_WORKLOADS_WORKLOAD_HH
#define MTLBSIM_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace mtlbsim
{

/**
 * A benchmark program driving the simulated machine.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name, e.g. "radix". */
    virtual std::string name() const = 0;

    /**
     * Declare regions, allocate and initialise data, and perform
     * superpage remapping, all on the simulated machine's clock.
     */
    virtual void setup(System &sys) = 0;

    /** Execute the measured phase. */
    virtual void run(System &sys) = 0;
};

/** Canonical user address-space layout used by all workloads. */
struct UserLayout
{
    static constexpr Addr textBase = 0x00400000;
    static constexpr Addr dataBase = 0x10000000;
    static constexpr Addr heapBase = 0x20000000;
    static constexpr Addr heapMaxBytes = Addr{192} * 1024 * 1024;
    static constexpr Addr stackBase = 0x7ff00000;
    static constexpr Addr stackBytes = 0x00100000;
};

/**
 * Factory: construct a workload by name with a size scale factor.
 *
 * @param name  one of "compress95", "vortex", "radix", "em3d", "cc1"
 * @param scale 1.0 reproduces the paper's §3.1 sizes; smaller values
 *              shrink datasets proportionally (used by unit tests)
 * @param seed  0 keeps each workload's fixed paper seed; any other
 *              value overrides it (sweep jobs derive one per job, so
 *              a job's trace depends only on its own identity)
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       double scale = 1.0,
                                       std::uint64_t seed = 0);

/** Names of all five §3.1 benchmarks, in the paper's order. */
std::vector<std::string> allWorkloadNames();

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_WORKLOAD_HH
