#include "workloads/oltp.hh"

#include "base/intmath.hh"

namespace mtlbsim
{

OltpWorkload::OltpWorkload(const OltpConfig &config) : config_(config)
{
    fatalIf(config.numRecords == 0, "oltp needs records");
    fatalIf(config.treeFanout < 2, "tree fanout must be >= 2");
}

Addr
OltpWorkload::recordAddr(unsigned record) const
{
    return tableBase_ + Addr{record} * config_.recordBytes;
}

void
OltpWorkload::setup(System &sys)
{
    Cpu &cpu = sys.cpu();
    Kernel &kernel = sys.kernel();
    AddressSpace &space = kernel.addressSpace();

    codeBase_ = UserLayout::textBase;
    space.addRegion("text", codeBase_, 96 * basePageSize,
                    PageProtection{false, true});
    space.addRegion("stack", UserLayout::stackBase,
                    UserLayout::stackBytes, PageProtection{});

    // The engine allocates its table, index, and log through the
    // superpage-aware sbrk, like vortex/cc1 (§2.3).
    kernel.initHeap(UserLayout::heapBase, UserLayout::heapMaxBytes);
    cpu.setSbrkPrealloc(config_.preallocBytes);

    cpu.executeAt(300'000, codeBase_);  // engine startup

    // Table.
    const Addr table_bytes =
        roundUp(Addr{config_.numRecords} * config_.recordBytes, 16);
    tableBase_ = cpu.sbrk(table_bytes);

    // Index, bottom-up, nodes interleaved after the table.
    const Addr node_bytes = 16 + Addr{config_.treeFanout} * 8;
    std::size_t level_count =
        divCeil(config_.numRecords, config_.treeFanout);
    std::vector<std::vector<Addr>> levels;
    while (true) {
        std::vector<Addr> level;
        level.reserve(level_count);
        const Addr level_base =
            cpu.sbrk(roundUp(Addr{level_count} * node_bytes, 16));
        for (std::size_t n = 0; n < level_count; ++n)
            level.push_back(level_base + Addr{n} * node_bytes);
        levels.push_back(std::move(level));
        if (level_count == 1)
            break;
        level_count = divCeil(level_count, config_.treeFanout);
    }
    treeLevels_.assign(levels.rbegin(), levels.rend());

    // Redo log: 4 MB ring.
    logBase_ = cpu.sbrk(4 * 1024 * 1024);
    logCursor_ = logBase_;

    footprint_ = kernel.currentBreak() - UserLayout::heapBase;

    // Populate: write every record once (sequential bulk load) and
    // initialise the index nodes.
    for (unsigned r = 0; r < config_.numRecords; ++r) {
        cpu.executeAt(6, codeBase_ + (r % 5) * basePageSize);
        cpu.store(recordAddr(r));
        cpu.store(recordAddr(r) + 64);
    }
    for (const auto &level : treeLevels_) {
        for (const Addr node : level) {
            cpu.execute(8);
            cpu.store(node);
            cpu.store(node + 16);
        }
    }
}

void
OltpWorkload::run(System &sys)
{
    Cpu &cpu = sys.cpu();
    Random rng(config_.seed ^ 0xbeef);

    const Addr log_end = logBase_ + 4 * 1024 * 1024;

    for (unsigned t = 0; t < config_.transactions; ++t) {
        // Key choice: mostly from a scattered hot set (sparse in
        // pages, dense in lines), occasionally uniform.
        unsigned key;
        if (rng.chance(config_.hotPercent, 100)) {
            const unsigned hot_count =
                config_.numRecords / config_.hotFraction + 1;
            key = static_cast<unsigned>(
                (rng.below(hot_count) * 2654435761ULL) %
                config_.numRecords);
        } else {
            key = static_cast<unsigned>(
                rng.below(config_.numRecords));
        }

        // Index descent.
        std::size_t index = key;
        for (std::size_t lvl = 0; lvl < treeLevels_.size(); ++lvl) {
            std::size_t span = 1;
            for (std::size_t below = lvl + 1;
                 below < treeLevels_.size(); ++below)
                span *= config_.treeFanout;
            const Addr node =
                treeLevels_[lvl][(index / span) %
                                 treeLevels_[lvl].size()];
            cpu.executeAt(9, codeBase_ + ((lvl + 7) % 41) *
                                             basePageSize);
            cpu.load(node);
            cpu.load(node + 16 + (index % config_.treeFanout) * 8);
        }

        // Record read.
        const Addr rec = recordAddr(key);
        cpu.executeAt(12, codeBase_ + (t % 37) * basePageSize);
        cpu.load(rec);
        cpu.load(rec + 24);
        cpu.load(rec + 88);

        if (rng.below(100) < config_.updatePercent) {
            // Update: write the record and append to the redo log.
            cpu.execute(8);
            cpu.store(rec + 8);
            cpu.store(rec + 96);
            for (unsigned w = 0; w < 3; ++w) {
                cpu.store(logCursor_);
                logCursor_ += 32;
                if (logCursor_ >= log_end)
                    logCursor_ = logBase_;
            }
        }
    }
}

} // namespace mtlbsim
