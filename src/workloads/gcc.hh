/**
 * @file
 * cc1: the gcc 2.5.3 compiler pass model (§3.1).
 *
 * The paper runs cc1 compiling "1insn-recog.c" — the largest
 * machine-generated file in gcc, consisting of enormous generated
 * functions. cc1 stresses the unified TLB in two ways: a large text
 * footprint (the compiler itself is over a megabyte of code, and
 * every pass touches a different slice of it), and RTL allocated
 * per-function from obstacks that grow through the run, walked with
 * pointer-heavy passes. All superpage creation happens through
 * sbrk() (§3.1) — the text segment stays base-paged.
 *
 * This synthetic model compiles F functions: each is "parsed" into a
 * list of 48-byte RTL nodes bump-allocated from the heap, then
 * processed by several passes that walk the node list, follow
 * cross-references to earlier nodes, and probe a global symbol hash
 * table — with instruction fetches spread across a 1.4 MB simulated
 * text segment.
 */

#ifndef MTLBSIM_WORKLOADS_GCC_HH
#define MTLBSIM_WORKLOADS_GCC_HH

#include <vector>

#include "base/random.hh"
#include "workloads/workload.hh"

namespace mtlbsim
{

/** Tuning knobs for the cc1 workload. */
struct GccConfig
{
    unsigned functions = 120;
    unsigned avgNodesPerFunction = 1600;    ///< ~9 MB of RTL total
    unsigned passes = 5;
    unsigned textPages = 350;               ///< ~1.4 MB of code
    unsigned hotPagesPerPass = 24;
    Addr symtabBytes = 256 * 1024;
    /** Modified-sbrk preallocation chunk (§2.3). */
    Addr preallocBytes = 8 * 1024 * 1024;
    std::uint64_t seed = 0x9cc0001ULL;
};

/**
 * The cc1 workload.
 */
class GccWorkload : public Workload
{
  public:
    explicit GccWorkload(const GccConfig &config);

    std::string name() const override { return "cc1"; }
    void setup(System &sys) override;
    void run(System &sys) override;

  private:
    /**
     * Next code address for pass @p pass. Instruction streams are
     * highly sequential: the model stays on the current page for
     * long runs, occasionally branching within the pass's hot
     * window, and rarely calling out to a cold helper page.
     */
    Addr codeAddr(unsigned pass, Random &rng);

    GccConfig config_;
    Addr currentCode_ = 0;
    /** Per-function node base addresses (nodes are contiguous). */
    std::vector<Addr> functionNodes_;
    std::vector<unsigned> functionSizes_;
    Addr codeBase_ = 0;
    Addr symtabBase_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_GCC_HH
