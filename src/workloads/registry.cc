/**
 * @file
 * Workload factory.
 */

#include "workloads/workload.hh"

#include "base/logging.hh"
#include "workloads/compress.hh"
#include "workloads/em3d.hh"
#include "workloads/gcc.hh"
#include "workloads/oltp.hh"
#include "workloads/radix.hh"
#include "workloads/vortex.hh"

namespace mtlbsim
{

namespace
{

/** Scale a count, keeping it at least @p floor. */
template <typename T>
T
scaled(T value, double scale, T floor)
{
    const double v = static_cast<double>(value) * scale;
    const T result = static_cast<T>(v);
    return result < floor ? floor : result;
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, double scale, std::uint64_t seed)
{
    fatalIf(scale <= 0.0 || scale > 1.0,
            "workload scale must be in (0, 1], got ", scale);

    if (name == "compress95") {
        CompressConfig c;
        c.inputChars = scaled(c.inputChars, scale, std::size_t{20'000});
        if (seed)
            c.seed = seed;
        return std::make_unique<CompressWorkload>(c);
    }
    if (name == "vortex") {
        VortexConfig c;
        c.objectsPerDb = scaled(c.objectsPerDb, scale, 500u);
        c.transactions = scaled(c.transactions, scale, 2'000u);
        c.initialPreallocBytes =
            scaled(c.initialPreallocBytes, scale, Addr{256} * 1024);
        c.laterPreallocBytes =
            scaled(c.laterPreallocBytes, scale, Addr{64} * 1024);
        if (seed)
            c.seed = seed;
        return std::make_unique<VortexWorkload>(c);
    }
    if (name == "radix") {
        RadixConfig c;
        c.numKeys = scaled(c.numKeys, scale, std::size_t{16'384});
        if (seed)
            c.seed = seed;
        return std::make_unique<RadixWorkload>(c);
    }
    if (name == "em3d") {
        Em3dConfig c;
        c.numNodes = scaled(c.numNodes, scale, 600u);
        c.iterations = scaled(c.iterations, scale, 4u);
        if (seed)
            c.seed = seed;
        return std::make_unique<Em3dWorkload>(c);
    }
    if (name == "cc1") {
        GccConfig c;
        c.functions = scaled(c.functions, scale, 4u);
        c.preallocBytes =
            scaled(c.preallocBytes, scale, Addr{256} * 1024);
        if (seed)
            c.seed = seed;
        return std::make_unique<GccWorkload>(c);
    }
    if (name == "oltp") {
        // The §1/§6 commercial-projection workload — not part of the
        // paper's five (and so absent from allWorkloadNames()).
        OltpConfig c;
        c.numRecords = scaled(c.numRecords, scale, 4'000u);
        c.transactions = scaled(c.transactions, scale, 3'000u);
        c.preallocBytes =
            scaled(c.preallocBytes, scale, Addr{512} * 1024);
        if (seed)
            c.seed = seed;
        return std::make_unique<OltpWorkload>(c);
    }
    fatal("unknown workload '", name,
          "'; expected one of compress95, vortex, radix, em3d, cc1, "
          "or oltp");
}

std::vector<std::string>
allWorkloadNames()
{
    return {"compress95", "vortex", "radix", "em3d", "cc1"};
}

} // namespace mtlbsim
