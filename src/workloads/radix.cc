#include "workloads/radix.hh"

#include "base/intmath.hh"
#include "base/random.hh"

namespace mtlbsim
{

namespace
{
/** Offset of the dynamic allocation inside the data region: 16 KB
 *  aligned but deliberately not 64 KB aligned, reproducing the
 *  arbitrary alignment of a real heap allocation (the paper's 14
 *  superpages for radix come from exactly this effect). */
constexpr Addr allocOffset = 0x4000;
}

RadixWorkload::RadixWorkload(const RadixConfig &config) : config_(config)
{
    fatalIf(config.numKeys == 0, "radix needs keys");
    fatalIf(!isPowerOf2(config.radix), "radix must be a power of 2");
}

Addr
RadixWorkload::keyAddr(bool to_array, std::size_t index) const
{
    const Addr array = to_array ? toAddr_ : fromAddr_;
    return array + Addr{index} * 4;
}

Addr
RadixWorkload::histAddr(unsigned digit) const
{
    return histBase_ + Addr{digit} * 4;
}

Addr
RadixWorkload::rankAddr(unsigned digit) const
{
    return rankBase_ + Addr{digit} * 4;
}

void
RadixWorkload::setup(System &sys)
{
    Cpu &cpu = sys.cpu();
    AddressSpace &space = sys.kernel().addressSpace();

    // Text segment: radix is a small program; one hot code page.
    codeBase_ = UserLayout::textBase;
    space.addRegion("text", codeBase_, 16 * basePageSize,
                    PageProtection{false, true});

    // The dynamic allocation: from/to key arrays, histogram, rank
    // array, and the program's other globals, padded to the paper's
    // 8,437,760 bytes.
    const Addr key_bytes = Addr{config_.numKeys} * 4;
    base_ = UserLayout::dataBase + allocOffset;
    fromAddr_ = base_;
    toAddr_ = fromAddr_ + key_bytes;
    histBase_ = toAddr_ + key_bytes;
    rankBase_ = histBase_ + Addr{config_.radix} * 4;

    Addr total = 2 * key_bytes + 2 * Addr{config_.radix} * 4;
    // The paper's run maps 8,437,760 bytes; pad the region up to it
    // (shared code/library structures in the allocation) when the
    // configured sizes leave room.
    if (config_.numKeys == 1'048'576 && total < 8'437'760)
        total = 8'437'760;
    mappedBytes_ = total;

    space.addRegion("radix_data", pageBase(base_),
                    roundUp(total + allocOffset, basePageSize),
                    PageProtection{});

    // Stack (touched implicitly by loop spill code; kept small).
    space.addRegion("stack", UserLayout::stackBase,
                    UserLayout::stackBytes, PageProtection{});

    // Program startup: ~1M instructions of loader/init.
    cpu.executeAt(100'000, codeBase_);

    // §3.1: map the entire dynamically allocated space after the
    // allocations are complete and before the larger structures are
    // initialised.
    cpu.remap(base_, total);

    // Generate and store the keys (the big initialisation).
    Random rng(config_.seed);
    keysFrom_.resize(config_.numKeys);
    keysTo_.assign(config_.numKeys, 0);
    for (std::size_t i = 0; i < config_.numKeys; ++i) {
        keysFrom_[i] =
            static_cast<std::uint32_t>(rng.below(config_.maxKey));
        cpu.executeAt(3, codeBase_);            // rng + loop overhead
        cpu.store(keyAddr(false, i));
    }
}

void
RadixWorkload::run(System &sys)
{
    Cpu &cpu = sys.cpu();

    const unsigned digit_bits = floorLog2(config_.radix);
    const unsigned num_passes =
        divCeil(ceilLog2(config_.maxKey), digit_bits);

    std::vector<std::uint32_t> hist(config_.radix);
    std::vector<std::uint32_t> rank(config_.radix);

    bool from_is_a = true;
    for (unsigned pass = 0; pass < num_passes; ++pass) {
        auto &from = from_is_a ? keysFrom_ : keysTo_;
        auto &to = from_is_a ? keysTo_ : keysFrom_;
        const unsigned shift = pass * digit_bits;

        // Phase 1: histogram the current digit.
        std::fill(hist.begin(), hist.end(), 0);
        for (unsigned d = 0; d < config_.radix; ++d) {
            cpu.executeAt(1, codeBase_);
            cpu.store(histAddr(d));
        }
        for (std::size_t i = 0; i < config_.numKeys; ++i) {
            // Loop control, digit extraction, and address generation
            // (the SPLASH-2 inner loop is ~8 instructions beyond its
            // memory operations).
            cpu.executeAt(7, codeBase_);
            cpu.load(keyAddr(!from_is_a, i));
            const unsigned d = (from[i] >> shift) & (config_.radix - 1);
            ++hist[d];
            cpu.load(histAddr(d));
            cpu.store(histAddr(d));
        }

        // Phase 2: prefix-sum the histogram into ranks.
        std::uint32_t running = 0;
        for (unsigned d = 0; d < config_.radix; ++d) {
            cpu.executeAt(3, codeBase_);
            cpu.load(histAddr(d));
            rank[d] = running;
            running += hist[d];
            cpu.store(rankAddr(d));
        }

        // Phase 3: permute into the destination array. Each key
        // lands in its digit's bucket — 1024 concurrent write
        // streams, about a page each.
        for (std::size_t i = 0; i < config_.numKeys; ++i) {
            cpu.executeAt(9, codeBase_);
            cpu.load(keyAddr(!from_is_a, i));
            const std::uint32_t key = from[i];
            const unsigned d = (key >> shift) & (config_.radix - 1);
            cpu.load(rankAddr(d));
            const std::uint32_t slot = rank[d]++;
            cpu.store(rankAddr(d));
            to[slot] = key;
            cpu.store(keyAddr(from_is_a, slot));
        }

        from_is_a = !from_is_a;
    }

    // Verify the sort really happened (execution-driven honesty).
    const auto &result = from_is_a ? keysFrom_ : keysTo_;
    for (std::size_t i = 1; i < result.size(); ++i) {
        panicIf(result[i - 1] > result[i],
                "radix sort produced unsorted output at ", i);
    }
}

} // namespace mtlbsim
