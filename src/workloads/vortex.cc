#include "workloads/vortex.hh"

#include "base/intmath.hh"

namespace mtlbsim
{

VortexWorkload::VortexWorkload(const VortexConfig &config)
    : config_(config)
{
    fatalIf(config.numDatabases == 0, "vortex needs databases");
    fatalIf(config.objectsPerDb == 0, "vortex needs objects");
    fatalIf(config.treeFanout < 2, "tree fanout must be >= 2");
}

Addr
VortexWorkload::alloc(System &sys, Addr bytes)
{
    // 16-byte allocator header + payload, like a classic malloc.
    Cpu &cpu = sys.cpu();
    const Addr block = cpu.sbrk(roundUp(bytes + 16, 16));
    cpu.execute(6);
    cpu.store(block);           // header write
    return block + 16;
}

Addr
VortexWorkload::allocObject(System &sys, Random &rng)
{
    Cpu &cpu = sys.cpu();
    const Addr size = 64 + rng.below(3) * 64;   // 64/128/192 B
    const Addr obj = alloc(sys, size);
    // Initialise the object's fields.
    for (Addr off = 0; off < size; off += 32) {
        cpu.execute(2);
        cpu.store(obj + off);
    }
    return obj;
}

void
VortexWorkload::setup(System &sys)
{
    Cpu &cpu = sys.cpu();
    Kernel &kernel = sys.kernel();
    AddressSpace &space = kernel.addressSpace();

    codeBase_ = UserLayout::textBase;
    space.addRegion("text", codeBase_, 128 * basePageSize,
                    PageProtection{false, true});
    space.addRegion("stack", UserLayout::stackBase,
                    UserLayout::stackBytes, PageProtection{});

    // §3.1: initial sbrk preallocation (8 MB at full scale) so the
    // basic datasets land in one remapped group.
    kernel.initHeap(UserLayout::heapBase, UserLayout::heapMaxBytes);
    cpu.setSbrkPrealloc(config_.initialPreallocBytes);

    cpu.executeAt(200'000, codeBase_);  // program startup

    Random rng(config_.seed);
    dbs_.resize(config_.numDatabases);

    for (auto &db : dbs_) {
        // Build the objects.
        db.objects.reserve(config_.objectsPerDb);
        for (unsigned i = 0; i < config_.objectsPerDb; ++i) {
            cpu.executeAt(24, codeBase_ + (i % 13) * basePageSize);
            db.objects.push_back(allocObject(sys, rng));
        }

        // Build the index bottom-up: leaves reference objects, inner
        // levels reference the level below. Node = fanout 8-byte
        // slots + 16 bytes of header.
        const Addr node_bytes = 16 + Addr{config_.treeFanout} * 8;
        std::size_t level_count =
            divCeil(config_.objectsPerDb, config_.treeFanout);
        std::vector<std::vector<Addr>> levels;
        while (true) {
            std::vector<Addr> level;
            level.reserve(level_count);
            for (std::size_t n = 0; n < level_count; ++n) {
                const Addr node = alloc(sys, node_bytes);
                for (unsigned s = 0; s <= config_.treeFanout; ++s) {
                    cpu.execute(2);
                    cpu.store(node + Addr{s} * 8);
                }
                level.push_back(node);
            }
            levels.push_back(std::move(level));
            if (level_count == 1)
                break;
            level_count = divCeil(level_count, config_.treeFanout);
        }
        // Store root-first.
        db.treeLevels.assign(levels.rbegin(), levels.rend());
    }

    // §3.1: after the basic datasets exist, the preallocation
    // increment drops (to 2 MB at full scale).
    cpu.setSbrkPrealloc(config_.laterPreallocBytes);
}

void
VortexWorkload::traverse(System &sys, const Database &db,
                         std::uint64_t key)
{
    Cpu &cpu = sys.cpu();
    // Root-to-leaf descent: at each node, scan a few key slots and
    // load the child pointer.
    std::size_t index = key % db.objects.size();
    for (std::size_t lvl = 0; lvl < db.treeLevels.size(); ++lvl) {
        // Which node of this level the key falls into.
        std::size_t span = 1;
        for (std::size_t below = lvl + 1; below < db.treeLevels.size();
             ++below)
            span *= config_.treeFanout;
        const std::size_t node_idx =
            (index / span) % db.treeLevels[lvl].size();
        const Addr node = db.treeLevels[lvl][node_idx];

        cpu.executeAt(8, codeBase_ + ((lvl + 3) % 29) * basePageSize);
        cpu.load(node);                     // header
        cpu.load(node + 16 + (index % config_.treeFanout) * 8);
        cpu.load(node + 16 + ((index + 1) % config_.treeFanout) * 8);
    }
}

void
VortexWorkload::run(System &sys)
{
    Cpu &cpu = sys.cpu();
    Random rng(config_.seed ^ 0xabcdef);

    for (unsigned t = 0; t < config_.transactions; ++t) {
        Database &db = dbs_[rng.below(dbs_.size())];
        // Transactions exhibit strong temporal locality over a hot
        // set of recently-active keys — but because allocation order
        // is unrelated to key order, the hot objects are *scattered*
        // across the database's address range: only a line or two
        // per page is touched. Such sparse sets fit comfortably in
        // the 512 KB cache while spanning far more pages than a
        // 64-128-entry TLB can map — the access structure behind
        // vortex's TLB-bound behaviour.
        std::uint64_t key;
        if (rng.chance(22, 25)) {
            const std::uint64_t hot_span = db.objects.size() / 24 + 1;
            const std::uint64_t hot_base =
                (t / 4096) * hot_span;  // hot set drifts over the run
            key = ((hot_base + rng.below(hot_span)) *
                   2654435761ULL) %
                  db.objects.size();
        } else {
            key = rng.next();
        }

        // Lookup.
        traverse(sys, db, key);
        const Addr obj = db.objects[key % db.objects.size()];
        cpu.executeAt(10, codeBase_ + (t % 31) * basePageSize);
        cpu.load(obj);
        cpu.load(obj + 8);
        cpu.load(obj + 24);

        const auto action = rng.below(100);
        if (action < config_.updatePercent) {
            // Update in place.
            cpu.execute(4);
            cpu.store(obj + 8);
            cpu.store(obj + 40);
        } else if (action <
                   config_.updatePercent + config_.insertPercent) {
            // Insert: allocate a result object and link it into a
            // leaf (transaction results keep accumulating, §3.1).
            const Addr fresh = allocObject(sys, rng);
            auto &leaves = db.treeLevels.back();
            const Addr leaf = leaves[key % leaves.size()];
            cpu.execute(6);
            cpu.load(leaf);
            cpu.store(leaf + 16 + (key % config_.treeFanout) * 8);
            db.objects[key % db.objects.size()] = fresh;
        }
    }
}

} // namespace mtlbsim
