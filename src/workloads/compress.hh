/**
 * @file
 * compress95: the SPEC95 LZW compressor (§3.1), run for real.
 *
 * A faithful reimplementation of `compress` 4.0's LZW algorithm
 * (double hashing into a 69,001-entry hash table, 16-bit maximum
 * codes, block-compress reset) driving the simulated machine with
 * the same table and buffer accesses the original makes.
 *
 * Working set per the paper: the hash table (4-byte entries) and
 * code table (2-byte entries) total ~440 KB and are accessed nearly
 * randomly; together with the intervening globals they form one
 * 557,056-byte remapped region (10 superpages). The original,
 * compressed, and decompressed buffers are each 999,424 bytes and
 * are remapped separately — the paper reports 13, 7, and 13
 * superpages thanks to their different alignments, which we
 * reproduce with distinct base offsets.
 *
 * The run performs 2 compress/decompress cycles of a 1,000,000-
 * character input (§3.4 notes this dampens MTLB gains versus SPEC's
 * 25 cycles).
 */

#ifndef MTLBSIM_WORKLOADS_COMPRESS_HH
#define MTLBSIM_WORKLOADS_COMPRESS_HH

#include <vector>

#include "workloads/workload.hh"

namespace mtlbsim
{

/** Tuning knobs for the compress95 workload. */
struct CompressConfig
{
    std::size_t inputChars = 1'000'000; ///< §3.1
    unsigned cycles = 2;                ///< compress/decompress cycles
    std::uint64_t seed = 0xc035e55ULL;
};

/**
 * The compress95 workload.
 */
class CompressWorkload : public Workload
{
  public:
    explicit CompressWorkload(const CompressConfig &config);

    std::string name() const override { return "compress95"; }
    void setup(System &sys) override;
    void run(System &sys) override;

  private:
    static constexpr unsigned hashSize = 69001;  // compress 4.0 HSIZE
    static constexpr unsigned maxBits = 16;
    static constexpr unsigned firstCode = 257;
    static constexpr unsigned clearCode = 256;

    Addr htabAddr(unsigned i) const;
    Addr codetabAddr(unsigned i) const;
    Addr origAddr(std::size_t i) const;
    Addr compAddr(std::size_t i) const;
    Addr decompAddr(std::size_t i) const;

    /** One LZW compression pass; returns the compressed codes. */
    std::vector<std::uint16_t> compressPass(System &sys);

    /** One LZW decompression pass; checks round-trip fidelity. */
    void decompressPass(System &sys,
                        const std::vector<std::uint16_t> &codes);

    CompressConfig config_;
    std::vector<std::uint8_t> input_;

    Addr tablesBase_ = 0;   ///< htab + codetab + globals region
    Addr origBase_ = 0;
    Addr compBase_ = 0;
    Addr decompBase_ = 0;
    Addr codeBase_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_COMPRESS_HH
