#include "workloads/gcc.hh"

#include "base/intmath.hh"

namespace mtlbsim
{

namespace
{
constexpr Addr rtlNodeBytes = 48;
}

GccWorkload::GccWorkload(const GccConfig &config) : config_(config)
{
    fatalIf(config.functions == 0, "cc1 needs functions to compile");
    fatalIf(config.passes == 0, "cc1 needs passes");
    fatalIf(config.textPages < config.hotPagesPerPass,
            "text smaller than one pass's hot set");
}

Addr
GccWorkload::codeAddr(unsigned pass, Random &rng)
{
    // Instruction fetch is overwhelmingly sequential: stay on the
    // current page most of the time. ~5% of checks branch within
    // the pass's hot window; ~0.5% call a cold helper anywhere in
    // the 1.4 MB text image. Each pass has its own window, so the
    // hot set drifts across the text over the run.
    if (currentCode_ != 0 && !rng.chance(55, 1000))
        return currentCode_;

    unsigned page;
    if (rng.chance(1, 25)) {
        page = static_cast<unsigned>(rng.below(config_.textPages));
    } else {
        const unsigned window_start =
            (pass * config_.hotPagesPerPass * 7) % config_.textPages;
        page = (window_start + static_cast<unsigned>(rng.below(
                                   config_.hotPagesPerPass))) %
               config_.textPages;
    }
    currentCode_ = codeBase_ + Addr{page} * basePageSize;
    return currentCode_;
}

void
GccWorkload::setup(System &sys)
{
    Cpu &cpu = sys.cpu();
    Kernel &kernel = sys.kernel();
    AddressSpace &space = kernel.addressSpace();

    codeBase_ = UserLayout::textBase;
    space.addRegion("text", codeBase_,
                    Addr{config_.textPages} * basePageSize,
                    PageProtection{false, true});
    space.addRegion("stack", UserLayout::stackBase,
                    UserLayout::stackBytes, PageProtection{});

    // Static data: the symbol hash table and compiler globals.
    symtabBase_ = UserLayout::dataBase;
    space.addRegion("symtab", symtabBase_,
                    roundUp(config_.symtabBytes, basePageSize),
                    PageProtection{});

    // §3.1: all superpage creation is performed by sbrk().
    kernel.initHeap(UserLayout::heapBase, UserLayout::heapMaxBytes);
    cpu.setSbrkPrealloc(config_.preallocBytes);

    Random rng(config_.seed);
    // Compiler startup: reads its tables, touches much of its text.
    for (unsigned i = 0; i < 200; ++i)
        cpu.executeAt(2'000, codeAddr(0, rng));
}

void
GccWorkload::run(System &sys)
{
    Cpu &cpu = sys.cpu();
    Random rng(config_.seed ^ 0x777);

    const Addr hash_slots = config_.symtabBytes / 8;

    for (unsigned f = 0; f < config_.functions; ++f) {
        // Function sizes vary widely in insn-recog.c.
        const unsigned nodes =
            config_.avgNodesPerFunction / 2 +
            static_cast<unsigned>(
                rng.below(config_.avgNodesPerFunction));

        // Parse: bump-allocate the RTL list from the obstack.
        const Addr base =
            cpu.sbrk(Addr{nodes} * rtlNodeBytes);
        functionNodes_.push_back(base);
        functionSizes_.push_back(nodes);
        for (unsigned n = 0; n < nodes; ++n) {
            const Addr node = base + Addr{n} * rtlNodeBytes;
            cpu.executeAt(10, codeAddr(0, rng));
            cpu.store(node);
            cpu.store(node + 16);
            cpu.store(node + 32);
            // The lexer interns identifiers in the symbol table.
            if (rng.chance(1, 8)) {
                cpu.load(symtabBase_ + rng.below(hash_slots) * 8);
            }
        }

        // Optimisation / generation passes walk the RTL.
        for (unsigned p = 1; p <= config_.passes; ++p) {
            for (unsigned n = 0; n < nodes; ++n) {
                const Addr node = base + Addr{n} * rtlNodeBytes;
                cpu.executeAt(9, codeAddr(p, rng));
                cpu.load(node);
                cpu.load(node + 24);

                // Cross-references to other RTL (shared rtx, symbol
                // refs). Mostly temporally local — the functions
                // just compiled — with occasional long-range chases
                // into older obstacks.
                if (rng.chance(1, 6) && !functionNodes_.empty()) {
                    std::size_t tf;
                    if (rng.chance(17, 20)) {
                        const std::size_t window =
                            functionNodes_.size() < 3
                                ? functionNodes_.size()
                                : 3;
                        tf = functionNodes_.size() - 1 -
                             rng.below(window);
                    } else {
                        tf = rng.below(functionNodes_.size());
                    }
                    const Addr target =
                        functionNodes_[tf] +
                        rng.below(functionSizes_[tf]) * rtlNodeBytes;
                    cpu.load(target);
                }
                // Symbol/attribute hash probes.
                if (rng.chance(1, 16)) {
                    const Addr slot =
                        symtabBase_ + rng.below(hash_slots) * 8;
                    cpu.load(slot);
                    if (rng.chance(1, 4))
                        cpu.store(slot);
                }
                // Occasional rewrite of the node.
                if (rng.chance(1, 6))
                    cpu.store(node + 8);
            }
        }
    }
}

} // namespace mtlbsim
