#include "workloads/em3d.hh"

#include <cmath>

#include "base/intmath.hh"
#include "base/random.hh"

namespace mtlbsim
{

namespace
{
/** Heap-like alignment: 16 KB aligned, not 64 KB aligned, so remap()
 *  produces the mixed superpage sizes the paper reports (16 of them
 *  for 4.5 MB). */
constexpr Addr allocOffset = 0x4000;
}

Em3dWorkload::Em3dWorkload(const Em3dConfig &config) : config_(config)
{
    fatalIf(config.numNodes < 2, "em3d needs at least two nodes");
    fatalIf(config.degree == 0, "em3d needs dependencies");
}

Addr
Em3dWorkload::nodeAddr(unsigned node) const
{
    return base_ + Addr{node} * nodeBytes();
}

Addr
Em3dWorkload::valueAddr(unsigned node) const
{
    return nodeAddr(node);
}

Addr
Em3dWorkload::depPtrAddr(unsigned node, unsigned dep) const
{
    return nodeAddr(node) + 16 + Addr{dep} * 4;
}

Addr
Em3dWorkload::coeffAddr(unsigned node, unsigned dep) const
{
    return nodeAddr(node) + 16 + Addr{config_.degree} * 4 +
           Addr{dep} * 8;
}

void
Em3dWorkload::setup(System &sys)
{
    Cpu &cpu = sys.cpu();
    AddressSpace &space = sys.kernel().addressSpace();

    codeBase_ = UserLayout::textBase;
    space.addRegion("text", codeBase_, 24 * basePageSize,
                    PageProtection{false, true});
    space.addRegion("stack", UserLayout::stackBase,
                    UserLayout::stackBytes, PageProtection{});

    base_ = UserLayout::dataBase + allocOffset;
    mappedBytes_ = Addr{config_.numNodes} * nodeBytes();
    space.addRegion("em3d_data", pageBase(base_),
                    roundUp(mappedBytes_ + allocOffset, basePageSize),
                    PageProtection{});

    cpu.executeAt(100'000, codeBase_);  // program startup

    // Build and initialise the bipartite graph: E nodes are
    // [0, half), H nodes are [half, numNodes); each node depends on
    // `degree` random nodes of the other side.
    const unsigned half = config_.numNodes / 2;
    Random rng(config_.seed);

    deps_.assign(config_.numNodes, {});
    coeffs_.assign(config_.numNodes, {});
    values_.assign(config_.numNodes, 0.0);

    for (unsigned n = 0; n < config_.numNodes; ++n) {
        const bool is_e = n < half;
        values_[n] = 1.0 + static_cast<double>(n % 17);
        cpu.executeAt(4, codeBase_);
        cpu.store(valueAddr(n));
        cpu.store(nodeAddr(n) + 8);     // count field

        deps_[n].resize(config_.degree);
        coeffs_[n].resize(config_.degree);
        for (unsigned d = 0; d < config_.degree; ++d) {
            const unsigned other_count = is_e
                                             ? config_.numNodes - half
                                             : half;
            const unsigned other_base = is_e ? half : 0;
            unsigned other_idx;
            if (rng.chance(config_.localPercent, 100)) {
                // Local edge: near the node's mirror position on the
                // other side (em3d's %local argument).
                const unsigned mirror = (n - (is_e ? 0 : half)) %
                                        other_count;
                const unsigned w = config_.localWindow;
                const unsigned lo = mirror > w ? mirror - w : 0;
                const unsigned hi = mirror + w < other_count
                                        ? mirror + w
                                        : other_count - 1;
                other_idx = lo + static_cast<unsigned>(
                                     rng.below(hi - lo + 1));
            } else {
                other_idx =
                    static_cast<unsigned>(rng.below(other_count));
            }
            const unsigned other = other_base + other_idx;
            deps_[n][d] = other;
            coeffs_[n][d] =
                0.01 * static_cast<double>(rng.below(100));
            cpu.executeAt(4, codeBase_);
            cpu.store(depPtrAddr(n, d));
            cpu.store(coeffAddr(n, d));
        }
    }

    // §3.3: em3d explicitly remaps its initialised dynamic memory
    // (1,120 pages for the paper's configuration) before the time
    // steps begin.
    cpu.remap(base_, mappedBytes_);
}

void
Em3dWorkload::run(System &sys)
{
    Cpu &cpu = sys.cpu();
    const unsigned half = config_.numNodes / 2;

    for (unsigned iter = 0; iter < config_.iterations; ++iter) {
        // Update E nodes from H values, then H nodes from E values.
        for (unsigned phase = 0; phase < 2; ++phase) {
            const unsigned begin = phase == 0 ? 0 : half;
            const unsigned end = phase == 0 ? half : config_.numNodes;
            for (unsigned n = begin; n < end; ++n) {
                double acc = 0.0;
                cpu.executeAt(3, codeBase_ + (phase << basePageShift));
                for (unsigned d = 0; d < config_.degree; ++d) {
                    cpu.execute(3);     // index + FP multiply-add
                    cpu.load(depPtrAddr(n, d));
                    cpu.load(valueAddr(deps_[n][d]));
                    cpu.load(coeffAddr(n, d));
                    acc += values_[deps_[n][d]] * coeffs_[n][d];
                }
                values_[n] = acc / (2.0 * config_.degree);
                cpu.store(valueAddr(n));
            }
        }
    }

    // Honesty check: the computation must have produced finite,
    // data-dependent values.
    for (const double v : values_)
        panicIf(!std::isfinite(v), "em3d diverged");
}

} // namespace mtlbsim
