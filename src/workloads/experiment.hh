/**
 * @file
 * Shared experiment runner used by the bench/ harnesses.
 *
 * Runs one (workload, machine configuration) pair and extracts the
 * metrics the paper's tables and figures report.
 */

#ifndef MTLBSIM_WORKLOADS_EXPERIMENT_HH
#define MTLBSIM_WORKLOADS_EXPERIMENT_HH

#include <string>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace mtlbsim
{

/** Metrics extracted from one simulated run. */
struct ExperimentResult
{
    std::string workload;
    unsigned tlbEntries = 0;
    bool mtlbEnabled = false;
    unsigned mtlbEntries = 0;
    unsigned mtlbAssoc = 0;

    Cycles totalCycles = 0;
    Cycles tlbMissCycles = 0;       ///< Fig 3's shaded fraction
    double tlbMissFraction = 0.0;
    double avgFillCycles = 0.0;     ///< Fig 4(B)'s metric
    double mtlbHitRate = 0.0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t cacheMisses = 0;
    double cacheHitRate = 0.0;

    Cycles remapTotalCycles = 0;    ///< §3.3 breakdown
    Cycles remapFlushCycles = 0;
    std::uint64_t remapPages = 0;
    std::size_t superpages = 0;
};

/**
 * Run @p workload_name at @p scale on a machine described by
 * @p config; returns the collected metrics.
 */
ExperimentResult runExperiment(const std::string &workload_name,
                               double scale,
                               const SystemConfig &config);

/**
 * Extract the paper's headline metrics from an already-driven
 * system (shared by runExperiment and the sweep runner).
 */
ExperimentResult collectMetrics(System &sys,
                                const std::string &workload_name);

/** Convenience: the paper's machine with a given CPU TLB size and
 *  MTLB presence/geometry (§3.4 defaults). */
SystemConfig paperConfig(unsigned tlb_entries, bool mtlb_enabled,
                         unsigned mtlb_entries = 128,
                         unsigned mtlb_assoc = 2);

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_EXPERIMENT_HH
