/**
 * @file
 * Multiprogramming runner: capture once, time-slice everywhere.
 *
 * The bundled workloads drive one CPU directly, so multiprogramming
 * them needs their operation streams in replayable form. A program is
 * captured by running its workload on a scratch single-core machine
 * (same configuration, checks off) with the CPU's recorder hook
 * attached; the captured image — declared regions, heap parameters,
 * and the full CpuOpRecord stream — can then be replayed into any
 * process of any machine.
 *
 * runMultiprogMix() assigns M captured programs to the kernel's M
 * processes and time-slices them over the machine's N cores with a
 * round-robin scheduler (SchedConfig): each core runs its process
 * until the quantum expires or the program ends, then switches to the
 * head of a global FIFO ready queue, paying the configured switch
 * cost (Kernel::bindProcess purges the core's translation state; the
 * ASID-less TLB forces that). Cores advance in global time order —
 * always the core with the smallest clock issues next — so a mix's
 * interleaving is a pure function of its inputs and results are
 * deterministic for any host thread count.
 *
 * With one core and one process no slice ever has a rival, the
 * initial binding is a no-op, and replay degenerates to exactly the
 * op-for-op direct run — the equivalence tests/test_multicore.cc
 * pins byte-for-byte.
 */

#ifndef MTLBSIM_WORKLOADS_MULTIPROG_HH
#define MTLBSIM_WORKLOADS_MULTIPROG_HH

#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "os/address_space.hh"
#include "sim/system.hh"

namespace mtlbsim
{

/** A captured program: everything needed to replay one workload's
 *  machine interaction into an arbitrary process. */
struct ProgramImage
{
    std::string workload;
    /** Regions the program declared, in declaration order. The heap
     *  region (if any) is re-created through Kernel::initHeap at
     *  replay so the sbrk machinery is armed. */
    std::vector<VmRegion> regions;
    bool hasHeap = false;
    Addr heapBase = 0;
    Addr heapBytes = 0;
    std::vector<CpuOpRecord> ops;
};

/**
 * Capture @p workload_name's operation stream by running it to
 * completion on a scratch machine derived from @p machine (forced to
 * one core, auditing off). The stream a workload issues depends only
 * on its own configuration, so the capture is reusable across
 * machine shapes.
 */
ProgramImage captureProgram(const std::string &workload_name,
                            double scale, std::uint64_t seed,
                            const SystemConfig &machine);

/**
 * Replay @p programs (one per process, in order; program 0 runs in
 * the kernel's initial process) over all of @p sys's cores under the
 * configured round-robin scheduler. Returns the finish time — the
 * slowest core's clock when the last program completes.
 *
 * Requires programs.size() >= sys.numCores() is NOT required: with
 * fewer programs than cores the extra cores stay idle.
 */
Cycles runPrograms(System &sys,
                   const std::vector<ProgramImage> &programs);

/**
 * Convenience entry used by the sweep runner and tests: capture each
 * distinct name in @p workloads once at @p scale / @p seed, then
 * replay the mix on @p sys with process i running workloads[i] —
 * pass M names (repeats welcome) for an M-process mix.
 */
Cycles runMultiprogMix(System &sys,
                       const std::vector<std::string> &workloads,
                       double scale, std::uint64_t seed);

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_MULTIPROG_HH
