#include "workloads/experiment.hh"

namespace mtlbsim
{

SystemConfig
paperConfig(unsigned tlb_entries, bool mtlb_enabled,
            unsigned mtlb_entries, unsigned mtlb_assoc)
{
    SystemConfig config;
    config.tlbEntries = tlb_entries;
    config.mtlbEnabled = mtlb_enabled;
    config.mtlb.numEntries = mtlb_entries;
    config.mtlb.associativity = mtlb_assoc;
    return config;
}

ExperimentResult
runExperiment(const std::string &workload_name, double scale,
              const SystemConfig &config)
{
    System sys(config);
    auto workload = makeWorkload(workload_name, scale);
    workload->setup(sys);
    workload->run(sys);

    // When auditing is on, cover the tail interval the periodic
    // check missed with one final end-of-run pass.
    if (config.check.enabled)
        sys.audit();

    return collectMetrics(sys, workload_name);
}

ExperimentResult
collectMetrics(System &sys, const std::string &workload_name)
{
    const SystemConfig &config = sys.config();

    // Realize every core's deferred batch counts before reading any
    // statistic below (or capturing the stats tree afterwards).
    for (unsigned c = 0; c < sys.numCores(); ++c)
        sys.cpu(c).flushBatch();

    ExperimentResult r;
    r.workload = workload_name;
    r.tlbEntries = config.tlbEntries;
    r.mtlbEnabled = config.mtlbEnabled;
    r.mtlbEntries = config.mtlb.numEntries;
    r.mtlbAssoc = config.mtlb.associativity;

    r.totalCycles = sys.totalCycles();
    r.tlbMissCycles = sys.tlbMissCycles();
    r.tlbMissFraction = sys.tlbMissFraction();
    r.avgFillCycles = sys.avgFillLatency();
    if (config.mtlbEnabled)
        r.mtlbHitRate = sys.memsys().mmc().mtlb().hitRate();
    r.tlbMisses = sys.tlb().misses();
    r.cacheMisses = sys.cache().misses();
    const double total_accesses =
        static_cast<double>(sys.cache().hits() + sys.cache().misses());
    r.cacheHitRate =
        total_accesses > 0
            ? static_cast<double>(sys.cache().hits()) / total_accesses
            : 0.0;

    r.remapTotalCycles = sys.kernel().remapTotalCycles();
    r.remapFlushCycles = sys.kernel().remapFlushCycles();
    r.remapPages = sys.kernel().remapPages();
    r.superpages = sys.kernel().addressSpace().superpages().size();
    return r;
}

} // namespace mtlbsim
