/**
 * @file
 * SPLASH-2 radix sort (§3.1), run for real over the simulated
 * address space.
 *
 * Configuration follows the paper: default SPLASH-2 arguments except
 * the key count, which is 1,048,576. That means radix 1024 and a
 * maximum key of 524,288, giving two 10-bit digit passes. The
 * dynamically allocated space is 8,437,760 bytes and is remapped in
 * one remap() call after allocation completes and before the large
 * structures are initialised.
 *
 * The permute phase writes each key to one of 1024 digit buckets,
 * each about a page wide — the access pattern behind the paper's
 * observation that radix keeps missing even in a 256-entry TLB.
 */

#ifndef MTLBSIM_WORKLOADS_RADIX_HH
#define MTLBSIM_WORKLOADS_RADIX_HH

#include <vector>

#include "workloads/workload.hh"

namespace mtlbsim
{

/** Tuning knobs for the radix workload. */
struct RadixConfig
{
    std::size_t numKeys = 1'048'576;    ///< paper's key count (§3.1)
    /** Digit width. With 512 buckets the permute phase keeps ~512
     *  write streams live, so radix improves only modestly with TLB
     *  size and still spends significant time in misses even at 256
     *  entries — the paper's radix signature (§3.4: 13.5% at 256). */
    unsigned radix = 512;
    std::uint32_t maxKey = 524'288;     ///< SPLASH-2 default
    std::uint64_t seed = 0x5eed0a5471ULL;
};

/**
 * The radix workload.
 */
class RadixWorkload : public Workload
{
  public:
    explicit RadixWorkload(const RadixConfig &config);

    std::string name() const override { return "radix"; }
    void setup(System &sys) override;
    void run(System &sys) override;

    /** Bytes of simulated memory the sort's structures occupy. */
    Addr mappedBytes() const { return mappedBytes_; }

  private:
    Addr keyAddr(bool to_array, std::size_t index) const;
    Addr histAddr(unsigned digit) const;
    Addr rankAddr(unsigned digit) const;

    RadixConfig config_;
    std::vector<std::uint32_t> keysFrom_;
    std::vector<std::uint32_t> keysTo_;

    Addr base_ = 0;         ///< start of the dynamic allocation
    Addr fromAddr_ = 0;
    Addr toAddr_ = 0;
    Addr histBase_ = 0;
    Addr rankBase_ = 0;
    Addr mappedBytes_ = 0;
    Addr codeBase_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_RADIX_HH
