#include "workloads/compress.hh"

#include <unordered_map>

#include "base/intmath.hh"
#include "base/random.hh"

namespace mtlbsim
{

namespace
{

/** Region base offsets chosen so the three buffers get different
 *  sub-superpage alignments, reproducing the paper's 13/7/13
 *  superpage splits for identical 999,424-byte lengths. */
constexpr Addr tablesOffset = 0x4000;   // 16 KB aligned
constexpr Addr origOffset = 0x4000;     // 16 KB aligned
constexpr Addr compOffset = 0x10000;    // 64 KB aligned
constexpr Addr decompOffset = 0xc000;   // 16 KB (not 64 KB) aligned

constexpr Addr bufferRemapBytes = 999'424;  // §3.1
constexpr Addr tablesRemapBytes = 557'056;  // §3.1

} // namespace

CompressWorkload::CompressWorkload(const CompressConfig &config)
    : config_(config)
{
    fatalIf(config.inputChars == 0, "compress needs input");
    fatalIf(config.cycles == 0, "compress needs at least one cycle");
}

Addr
CompressWorkload::htabAddr(unsigned i) const
{
    return tablesBase_ + Addr{i} * 4;
}

Addr
CompressWorkload::codetabAddr(unsigned i) const
{
    // codetab follows htab (with the "intervening data structures"
    // the paper mentions living between them).
    return tablesBase_ + Addr{hashSize} * 4 + 0x2000 + Addr{i} * 2;
}

Addr
CompressWorkload::origAddr(std::size_t i) const
{
    return origBase_ + i;
}

Addr
CompressWorkload::compAddr(std::size_t i) const
{
    return compBase_ + i;
}

Addr
CompressWorkload::decompAddr(std::size_t i) const
{
    return decompBase_ + i;
}

void
CompressWorkload::setup(System &sys)
{
    Cpu &cpu = sys.cpu();
    AddressSpace &space = sys.kernel().addressSpace();

    codeBase_ = UserLayout::textBase;
    space.addRegion("text", codeBase_, 20 * basePageSize,
                    PageProtection{false, true});
    space.addRegion("stack", UserLayout::stackBase,
                    UserLayout::stackBytes, PageProtection{});

    // Lay out the four data regions in distinct 4 MB windows so
    // each gets its own alignment.
    tablesBase_ = UserLayout::dataBase + tablesOffset;
    origBase_ = UserLayout::dataBase + 0x400000 + origOffset;
    compBase_ = UserLayout::dataBase + 0x800000 + compOffset;
    decompBase_ = UserLayout::dataBase + 0xc00000 + decompOffset;

    const Addr buf_bytes =
        roundUp(config_.inputChars + 4096, basePageSize);
    space.addRegion("tables", pageBase(tablesBase_),
                    roundUp(tablesRemapBytes + tablesOffset,
                            basePageSize),
                    PageProtection{});
    space.addRegion("orig", pageBase(origBase_),
                    buf_bytes + basePageSize, PageProtection{});
    space.addRegion("comp", pageBase(compBase_),
                    buf_bytes + 16 * basePageSize, PageProtection{});
    space.addRegion("decomp", pageBase(decompBase_),
                    buf_bytes + 3 * basePageSize, PageProtection{});

    cpu.executeAt(100'000, codeBase_);  // startup

    // Generate the input: words from a skewed vocabulary — text-like
    // redundancy so LZW actually compresses.
    Random rng(config_.seed);
    std::vector<std::string> vocab;
    for (unsigned w = 0; w < 512; ++w) {
        std::string word;
        const unsigned len = 3 + static_cast<unsigned>(rng.below(8));
        for (unsigned i = 0; i < len; ++i)
            word.push_back(
                static_cast<char>('a' + rng.below(26)));
        vocab.push_back(word);
    }

    input_.clear();
    input_.reserve(config_.inputChars);
    while (input_.size() < config_.inputChars) {
        // Zipf-ish pick: prefer low indices.
        const auto r = rng.below(vocab.size() * vocab.size());
        const auto idx = static_cast<std::size_t>(
            vocab.size() - 1 -
            static_cast<std::size_t>(
                std::uint64_t(r) * r /
                (vocab.size() * vocab.size() * vocab.size())));
        const std::string &word = vocab[idx % vocab.size()];
        for (const char c : word) {
            if (input_.size() >= config_.inputChars)
                break;
            input_.push_back(static_cast<std::uint8_t>(c));
        }
        if (input_.size() < config_.inputChars)
            input_.push_back(' ');
    }

    // Write the input into the original buffer on the machine.
    for (std::size_t i = 0; i < input_.size(); ++i) {
        cpu.executeAt(2, codeBase_);
        cpu.store(origAddr(i));
    }

    // §3.1: remap the table region and the initial portion of each
    // buffer (999,424 bytes at full scale; capped to the buffer when
    // a scaled-down run uses smaller buffers).
    const Addr buf_remap =
        bufferRemapBytes < buf_bytes ? bufferRemapBytes : buf_bytes;
    cpu.remap(tablesBase_, tablesRemapBytes);
    cpu.remap(origBase_, buf_remap);
    cpu.remap(compBase_, buf_remap);
    cpu.remap(decompBase_, buf_remap);
}

std::vector<std::uint16_t>
CompressWorkload::compressPass(System &sys)
{
    Cpu &cpu = sys.cpu();

    // Host-shadow of the simulated tables, so the algorithm really
    // runs while every probe also hits the simulated addresses.
    std::vector<std::int64_t> htab(hashSize, -1);
    std::vector<std::uint16_t> codetab(hashSize, 0);
    std::vector<std::uint16_t> out;
    out.reserve(input_.size() / 2);

    const unsigned maxCode = (1u << maxBits) - 1;
    unsigned free_ent = firstCode;
    std::size_t out_pos = 0;

    std::int64_t ent = input_[0];
    cpu.executeAt(4, codeBase_);
    cpu.load(origAddr(0));

    for (std::size_t pos = 1; pos < input_.size(); ++pos) {
        const unsigned c = input_[pos];
        // getbyte, hash computation, ratio bookkeeping, and output
        // bit-packing amortise to ~14 instructions per input char in
        // compress 4.0.
        cpu.executeAt(14, codeBase_);
        cpu.load(origAddr(pos));

        const std::int64_t fcode =
            (static_cast<std::int64_t>(c) << maxBits) + ent;
        unsigned i = static_cast<unsigned>(
                         (c << 8) ^ static_cast<unsigned>(ent)) %
                     hashSize;

        bool found = false;
        // Primary probe.
        cpu.load(htabAddr(i));
        if (htab[i] == fcode) {
            cpu.load(codetabAddr(i));
            ent = codetab[i];
            found = true;
        } else if (htab[i] >= 0) {
            // Secondary probing, as in compress 4.0.
            const unsigned disp =
                i == 0 ? 1 : hashSize - i;
            while (true) {
                cpu.executeAt(4, codeBase_);
                i = i >= disp ? i - disp : i + hashSize - disp;
                cpu.load(htabAddr(i));
                if (htab[i] == fcode) {
                    cpu.load(codetabAddr(i));
                    ent = codetab[i];
                    found = true;
                    break;
                }
                if (htab[i] < 0)
                    break;
            }
        }

        if (!found) {
            // Emit the current prefix code and insert the new string.
            out.push_back(static_cast<std::uint16_t>(ent));
            cpu.executeAt(5, codeBase_);
            cpu.store(compAddr(out_pos));
            out_pos += 2;

            if (free_ent < maxCode) {
                codetab[i] = static_cast<std::uint16_t>(free_ent++);
                htab[i] = fcode;
                cpu.store(codetabAddr(i));
                cpu.store(htabAddr(i));
            } else {
                // Block compress: emit CLEAR and reset the tables.
                out.push_back(clearCode);
                cpu.executeAt(4, codeBase_);
                cpu.store(compAddr(out_pos));
                out_pos += 2;
                for (unsigned j = 0; j < hashSize; j += 8) {
                    // memset-style cache-line-at-a-time clear.
                    cpu.execute(2);
                    cpu.store(htabAddr(j));
                }
                std::fill(htab.begin(), htab.end(), -1);
                free_ent = firstCode;
            }
            ent = c;
        }
    }

    out.push_back(static_cast<std::uint16_t>(ent));
    cpu.executeAt(4, codeBase_);
    cpu.store(compAddr(out_pos));

    return out;
}

void
CompressWorkload::decompressPass(System &sys,
                                 const std::vector<std::uint16_t> &codes)
{
    Cpu &cpu = sys.cpu();

    // tab_prefix reuses htab's storage; tab_suffix reuses codetab's,
    // as in the original.
    std::vector<std::uint16_t> prefix(1u << maxBits, 0);
    std::vector<std::uint8_t> suffix(1u << maxBits, 0);
    std::vector<std::uint8_t> stack;
    std::vector<std::uint8_t> output;
    output.reserve(input_.size());

    unsigned free_ent = firstCode;
    std::size_t out_pos = 0;

    for (unsigned code = 0; code < 256; ++code)
        suffix[code] = static_cast<std::uint8_t>(code);

    std::size_t idx = 0;
    unsigned old_code = codes[idx++];
    cpu.executeAt(6, codeBase_);
    cpu.load(compAddr(0));
    unsigned final_char = old_code;
    output.push_back(static_cast<std::uint8_t>(final_char));
    cpu.store(decompAddr(out_pos++));

    for (; idx < codes.size(); ++idx) {
        unsigned code = codes[idx];
        cpu.executeAt(6, codeBase_);
        cpu.load(compAddr(idx * 2));

        if (code == clearCode) {
            free_ent = firstCode;
            // Table reset: no memory traffic needed beyond control.
            cpu.executeAt(16, codeBase_);
            if (idx + 1 >= codes.size())
                break;
            code = codes[++idx];
            old_code = code;
            final_char = code;
            output.push_back(static_cast<std::uint8_t>(code));
            cpu.load(compAddr(idx * 2));
            cpu.store(decompAddr(out_pos++));
            continue;
        }

        const unsigned in_code = code;
        stack.clear();

        if (code >= free_ent) {
            // KwKwK special case.
            stack.push_back(static_cast<std::uint8_t>(final_char));
            code = old_code;
            cpu.executeAt(3, codeBase_);
        }

        // Walk the prefix chain — the random-access pattern that
        // makes decompression TLB-hostile.
        while (code >= 256) {
            cpu.executeAt(3, codeBase_);
            cpu.load(htabAddr(code));       // tab_prefix access
            cpu.load(codetabAddr(code));    // tab_suffix access
            stack.push_back(suffix[code]);
            code = prefix[code];
        }
        final_char = code;
        stack.push_back(static_cast<std::uint8_t>(code));
        cpu.load(codetabAddr(code));

        for (std::size_t s = stack.size(); s-- > 0;) {
            cpu.executeAt(2, codeBase_);
            output.push_back(stack[s]);
            cpu.store(decompAddr(out_pos++));
        }

        if (free_ent < (1u << maxBits)) {
            prefix[free_ent] = static_cast<std::uint16_t>(old_code);
            suffix[free_ent] = static_cast<std::uint8_t>(final_char);
            cpu.store(htabAddr(free_ent));
            cpu.store(codetabAddr(free_ent));
            ++free_ent;
        }
        old_code = in_code;
    }

    // Round-trip honesty check.
    fatalIf(output.size() != input_.size(),
            "compress round trip length mismatch: ", output.size(),
            " vs ", input_.size());
    for (std::size_t i = 0; i < output.size(); ++i) {
        panicIf(output[i] != input_[i],
                "compress round trip corrupted at byte ", i);
    }
}

void
CompressWorkload::run(System &sys)
{
    for (unsigned cycle = 0; cycle < config_.cycles; ++cycle) {
        const auto codes = compressPass(sys);
        decompressPass(sys, codes);
    }
}

} // namespace mtlbsim
