/**
 * @file
 * vortex: object-oriented database model (§3.1).
 *
 * SPEC95 vortex builds several in-core databases and runs
 * transactions against them, continuously allocating from the heap.
 * The paper characterises it entirely by that behaviour: ~9 MB of
 * basic datasets built first (sbrk preallocation 8 MB, then reduced
 * to 2 MB), then transactions that traverse the databases and
 * dynamically allocate ~10 MB more, for ~18 MB total over the run —
 * all superpage creation happening inside the modified sbrk().
 *
 * This synthetic model reproduces exactly that: three databases of
 * heap objects indexed by fanout-16 trees, and a transaction mix of
 * lookups (tree traversal + object reads), updates, and inserts
 * (fresh allocation + index insertion). All storage is addressed in
 * simulated heap memory obtained from the kernel's sbrk().
 */

#ifndef MTLBSIM_WORKLOADS_VORTEX_HH
#define MTLBSIM_WORKLOADS_VORTEX_HH

#include <vector>

#include "base/random.hh"
#include "workloads/workload.hh"

namespace mtlbsim
{

/** Tuning knobs for the vortex workload. */
struct VortexConfig
{
    unsigned numDatabases = 3;
    unsigned objectsPerDb = 20'000;     ///< ~9 MB basic datasets
    unsigned transactions = 280'000;    ///< ~10 MB transaction allocs
    unsigned treeFanout = 16;
    unsigned updatePercent = 30;
    unsigned insertPercent = 20;
    /** sbrk() preallocation: 8 MB while building the datasets, then
     *  2 MB during transactions (§3.1). */
    Addr initialPreallocBytes = 8 * 1024 * 1024;
    Addr laterPreallocBytes = 2 * 1024 * 1024;
    std::uint64_t seed = 0x40e7e10ULL;
};

/**
 * The vortex workload.
 */
class VortexWorkload : public Workload
{
  public:
    explicit VortexWorkload(const VortexConfig &config);

    std::string name() const override { return "vortex"; }
    void setup(System &sys) override;
    void run(System &sys) override;

  private:
    struct Database
    {
        /** Simulated addresses of the objects, in key order. */
        std::vector<Addr> objects;
        std::vector<Addr> objectSizes;
        /** Index levels, root first; each level holds node
         *  addresses. */
        std::vector<std::vector<Addr>> treeLevels;
    };

    /** malloc() model: a bump allocation served by sbrk(). */
    Addr alloc(System &sys, Addr bytes);

    /** Allocate + write one object of pseudo-random size. */
    Addr allocObject(System &sys, Random &rng);

    /** Traverse a database's index for a key; returns leaf slot. */
    void traverse(System &sys, const Database &db, std::uint64_t key);

    VortexConfig config_;
    std::vector<Database> dbs_;
    Addr codeBase_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_WORKLOADS_VORTEX_HH
