#include "check/translation_auditor.hh"

#include <unordered_map>
#include <unordered_set>

#include "base/logging.hh"
#include "cache/cache.hh"
#include "cpu/l0_cache.hh"
#include "mem/physmap.hh"
#include "mmc/memsys.hh"
#include "os/kernel.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

namespace
{

template <typename... Args>
void
violate(AuditReport &report, const char *invariant, Args &&...args)
{
    report.violations.push_back(
        {invariant, detail::buildMessage(std::forward<Args>(args)...)});
}

/** Frame-mark states for the accounting scan. */
constexpr std::uint8_t markNone = 0;
constexpr std::uint8_t markFree = 1;
constexpr std::uint8_t markMapped = 2;

} // namespace

TranslationAuditor::TranslationAuditor(const CheckConfig &config,
                                       Tlb &tlb, Cache &cache,
                                       MemorySystem &memsys,
                                       Kernel &kernel,
                                       const PhysMap &physmap,
                                       stats::StatGroup &parent)
    : config_(config), tlb_(tlb), cache_(cache), memsys_(memsys),
      kernel_(kernel), physMap_(physmap),
      statGroup_("check"),
      audits_(statGroup_.addScalar("audits", "audit passes performed")),
      checks_(statGroup_.addScalar("checks",
                                   "invariant classes examined")),
      violations_(statGroup_.addScalar("violations",
                                       "invariant violations found"))
{
    parent.addChild(&statGroup_);
}

AuditReport
TranslationAuditor::collect()
{
    AuditReport report;
    // First so a missed shootdown names the cross-core invariant in
    // a panicking audit's headline (the stale entry also trips the
    // per-core tlb-coherence check below).
    checkCrossCoreCoherence(report);
    checkTlbCoherence(report);
    checkSuperpageBacking(report);
    checkShadowTable(report);
    checkFrameAccounting(report);
    checkMtlbCoherence(report);
    checkHptCoherence(report);
    checkDramGuard(report);
    checkStatsIdentities(report);
    checkL0Coherence(report);
    return report;
}

void
TranslationAuditor::audit(Cycles now)
{
    ++audits_;
    AuditReport report = collect();
    checks_ += static_cast<double>(report.checksRun);
    violations_ += static_cast<double>(report.violations.size());

    if (report.clean())
        return;

    // Surface every violation before the policy fires so that a
    // panicking audit still leaves the full picture in the log.
    for (const auto &v : report.violations)
        warn("audit @", now, " [", v.invariant, "] ", v.detail);

    if (config_.panicOnViolation) {
        panic("translation audit failed at cycle ", now, ": ",
              report.violations.size(), " violation(s); first: [",
              report.violations.front().invariant, "] ",
              report.violations.front().detail);
    }
}

void
TranslationAuditor::checkCrossCoreCoherence(AuditReport &report)
{
    const unsigned cores = kernel_.numCores();
    if (cores < 2)
        return;
    ++report.checksRun;

    // The property the shootdown IPIs maintain: after any kernel
    // mutation of translation state, no core still holds the old
    // translation. Each core is checked against the process it is
    // bound to *now* — exactly what its entries must describe.
    for (unsigned c = 0; c < cores; ++c) {
        const AddressSpace &space =
            kernel_.processSpace(kernel_.coreProcess(c));
        for (const TlbEntry &e : kernel_.coreTlb(c).auditState()) {
            if (e.pinned)
                continue;
            if (const ShadowSuperpage *sp =
                    space.findSuperpage(e.vbase)) {
                if (sp->vbase != e.vbase ||
                    sp->shadowBase != e.pbase ||
                    sp->sizeClass != e.sizeClass) {
                    violate(report, "cross-core-coherence", "core ", c,
                            " holds stale entry v=0x", std::hex,
                            e.vbase, " p=0x", e.pbase,
                            " disagreeing with the live superpage "
                            "record (missed shootdown)");
                }
            } else if (e.sizeClass != 0) {
                violate(report, "cross-core-coherence", "core ", c,
                        " holds superpage entry v=0x", std::hex,
                        e.vbase,
                        " with no live superpage record (missed "
                        "shootdown)");
            } else if (!space.isPagePresent(e.vbase) ||
                       space.frameOf(e.vbase) != pageFrame(e.pbase)) {
                violate(report, "cross-core-coherence", "core ", c,
                        " holds stale entry v=0x", std::hex, e.vbase,
                        " -> frame 0x", pageFrame(e.pbase),
                        " (missed shootdown)");
            }
        }
    }
}

void
TranslationAuditor::checkTlbCoherence(AuditReport &report)
{
    ++report.checksRun;
    for (unsigned c = 0; c < kernel_.numCores(); ++c) {
        const AddressSpace &space =
            kernel_.processSpace(kernel_.coreProcess(c));
        checkOneTlb(report, kernel_.coreTlb(c), space);
    }
}

void
TranslationAuditor::checkOneTlb(AuditReport &report, const Tlb &tlb,
                                const AddressSpace &space)
{
    for (const TlbEntry &e : tlb.auditState()) {
        if (e.pinned)
            continue;

        const Addr size = pageSizeForClass(e.sizeClass);
        if ((e.vbase & (size - 1)) || (e.pbase & (size - 1))) {
            violate(report, "tlb-coherence", "entry v=0x", std::hex,
                    e.vbase, " p=0x", e.pbase,
                    " not aligned to its size class ", std::dec,
                    e.sizeClass);
            continue;
        }

        if (const ShadowSuperpage *sp = space.findSuperpage(e.vbase)) {
            if (sp->vbase != e.vbase || sp->shadowBase != e.pbase ||
                sp->sizeClass != e.sizeClass) {
                violate(report, "tlb-coherence", "entry v=0x", std::hex,
                        e.vbase, " p=0x", e.pbase, " class ", std::dec,
                        e.sizeClass,
                        " disagrees with the superpage record v=0x",
                        std::hex, sp->vbase, " s=0x", sp->shadowBase,
                        " class ", std::dec, sp->sizeClass);
            }
            continue;
        }

        // No shadow mapping covers this range: it must be a base page
        // mapped to the frame the OS installed.
        if (e.sizeClass != 0) {
            violate(report, "tlb-coherence", "superpage entry v=0x",
                    std::hex, e.vbase,
                    " has no address-space superpage record");
        } else if (physMap_.classify(e.pbase) != AddrKind::Real) {
            violate(report, "tlb-coherence", "entry v=0x", std::hex,
                    e.vbase, " maps non-real address 0x", e.pbase,
                    " outside any superpage");
        } else if (!space.isPagePresent(e.vbase)) {
            violate(report, "tlb-coherence", "entry v=0x", std::hex,
                    e.vbase, " maps an absent page");
        } else if (space.frameOf(e.vbase) != pageFrame(e.pbase)) {
            violate(report, "tlb-coherence", "entry v=0x", std::hex,
                    e.vbase, " maps frame 0x", pageFrame(e.pbase),
                    " but the OS installed 0x", space.frameOf(e.vbase));
        }
    }
}

void
TranslationAuditor::checkSuperpageBacking(AuditReport &report)
{
    ++report.checksRun;
    for (unsigned p = 0; p < kernel_.numProcesses(); ++p)
        checkOneSpaceBacking(report, kernel_.processSpace(p));
}

void
TranslationAuditor::checkOneSpaceBacking(AuditReport &report,
                                         const AddressSpace &space)
{
    if (!memsys_.mmc().hasMtlb()) {
        if (!space.superpages().empty()) {
            violate(report, "superpage-backing",
                    "shadow superpages recorded on a machine without "
                    "an MTLB");
        }
        return;
    }

    const ShadowTable &table = memsys_.mmc().shadowTable();

    for (const auto &[vbase, sp] : space.superpages()) {
        const Addr size = sp.size();
        if ((sp.vbase & (size - 1)) || (sp.shadowBase & (size - 1)) ||
            physMap_.classify(sp.shadowBase) != AddrKind::Shadow) {
            violate(report, "superpage-backing", "superpage v=0x",
                    std::hex, sp.vbase, " s=0x", sp.shadowBase,
                    " misaligned or outside the shadow region");
            continue;
        }

        const Addr spi0 = physMap_.shadowPageIndex(sp.shadowBase);
        for (Addr i = 0; i < sp.numBasePages(); ++i) {
            const Addr va = sp.vbase + (i << basePageShift);
            const ShadowPte &pte = table.entry(spi0 + i);
            const bool present = space.isPagePresent(va);

            if (present && !pte.valid) {
                violate(report, "superpage-backing", "present page v=0x",
                        std::hex, va, " (spi 0x", spi0 + i,
                        ") has an invalid shadow PTE");
            } else if (present &&
                       Addr{pte.realPfn} != space.frameOf(va)) {
                violate(report, "superpage-backing", "page v=0x",
                        std::hex, va, " backed by frame 0x",
                        space.frameOf(va), " but its PTE names 0x",
                        Addr{pte.realPfn});
            } else if (!present && pte.valid) {
                violate(report, "superpage-backing", "absent page v=0x",
                        std::hex, va, " (spi 0x", spi0 + i,
                        ") still has a valid shadow PTE");
            }
        }
    }
}

void
TranslationAuditor::checkShadowTable(AuditReport &report)
{
    if (!memsys_.mmc().hasMtlb())
        return;
    ++report.checksRun;

    const ShadowTable &table = memsys_.mmc().shadowTable();

    // Shadow page indices covered by some recorded superpage of any
    // process (the shadow region is a machine-wide resource).
    std::unordered_set<Addr> covered;
    for (unsigned p = 0; p < kernel_.numProcesses(); ++p) {
        const AddressSpace &space = kernel_.processSpace(p);
        for (const auto &[vbase, sp] : space.superpages()) {
            if (physMap_.classify(sp.shadowBase) != AddrKind::Shadow)
                continue;  // reported by checkSuperpageBacking
            const Addr spi0 = physMap_.shadowPageIndex(sp.shadowBase);
            for (Addr i = 0; i < sp.numBasePages(); ++i)
                covered.insert(spi0 + i);
        }
    }

    // Full table scan: leaked mappings and shadow-to-real
    // bijectivity. pfnOwner maps a real frame to the first shadow
    // page found naming it.
    std::unordered_map<Addr, Addr> pfnOwner;
    for (Addr spi = 0; spi < table.numEntries(); ++spi) {
        const ShadowPte &pte = table.entry(spi);
        if (!pte.valid)
            continue;

        if (!covered.count(spi)) {
            violate(report, "shadow-table", "valid PTE at spi 0x",
                    std::hex, spi,
                    " outside every recorded superpage (leaked "
                    "mapping)");
        }

        const Addr pfn = pte.realPfn;
        if (pfn >= physMap_.numRealPages()) {
            violate(report, "shadow-table", "PTE at spi 0x", std::hex,
                    spi, " names frame 0x", pfn,
                    " beyond installed DRAM");
            continue;
        }
        auto [it, inserted] = pfnOwner.emplace(pfn, spi);
        if (!inserted) {
            violate(report, "shadow-table", "frame 0x", std::hex, pfn,
                    " mapped by both spi 0x", it->second, " and spi 0x",
                    spi, " (double-mapped frame)");
        }
    }
}

void
TranslationAuditor::checkFrameAccounting(AuditReport &report)
{
    ++report.checksRun;
    const FrameAllocator &frames = kernel_.frames();
    const Addr first = frames.firstPfn();
    const Addr total = frames.numTotal();

    frameMarks_.assign(static_cast<std::size_t>(total), markNone);

    for (const Addr pfn : frames.auditFreeList()) {
        if (pfn < first || pfn - first >= total) {
            violate(report, "frame-accounting", "free list holds 0x",
                    std::hex, pfn, ", outside the user frame pool");
            continue;
        }
        std::uint8_t &mark = frameMarks_[pfn - first];
        if (mark == markFree) {
            violate(report, "frame-accounting", "frame 0x", std::hex,
                    pfn, " appears on the free list twice");
        }
        mark = markFree;
    }

    // All processes' present pages together partition the pool with
    // the free list: frames are a machine-wide resource.
    for (unsigned p = 0; p < kernel_.numProcesses(); ++p) {
        const AddressSpace &space = kernel_.processSpace(p);
        for (const auto &[vpn, pfn] : space.presentPages()) {
            if (pfn < first || pfn - first >= total) {
                violate(report, "frame-accounting", "page v=0x",
                        std::hex, vpn << basePageShift, " backed by 0x",
                        pfn, ", outside the user frame pool");
                continue;
            }
            std::uint8_t &mark = frameMarks_[pfn - first];
            if (mark == markFree) {
                violate(report, "frame-accounting", "frame 0x",
                        std::hex, pfn, " is both free and mapped at "
                        "v=0x", vpn << basePageShift);
            } else if (mark == markMapped) {
                violate(report, "frame-accounting", "frame 0x",
                        std::hex, pfn,
                        " backs two pages (double-mapped frame)");
            }
            mark = markMapped;
        }
    }

    Addr leaked = 0;
    for (const std::uint8_t mark : frameMarks_) {
        if (mark == markNone)
            ++leaked;
    }
    if (leaked > 0) {
        violate(report, "frame-accounting", leaked,
                " frame(s) neither free nor mapped (leaked)");
    }
}

void
TranslationAuditor::checkMtlbCoherence(AuditReport &report)
{
    if (!memsys_.mmc().hasMtlb())
        return;
    ++report.checksRun;

    const ShadowTable &table = memsys_.mmc().shadowTable();

    for (const auto &e : memsys_.mmc().mtlb().auditState()) {
        if (e.spi >= table.numEntries()) {
            violate(report, "mtlb-coherence", "resident spi 0x",
                    std::hex, e.spi, " beyond the shadow table");
            continue;
        }
        const ShadowPte &t = table.entry(e.spi);

        if (e.pte.valid != t.valid) {
            violate(report, "mtlb-coherence", "spi 0x", std::hex, e.spi,
                    " cached valid=", std::dec, unsigned{e.pte.valid},
                    " but table valid=", unsigned{t.valid},
                    " (stale MTLB entry)");
            continue;
        }
        if (e.pte.valid && e.pte.realPfn != t.realPfn) {
            violate(report, "mtlb-coherence", "spi 0x", std::hex, e.spi,
                    " cached frame 0x", Addr{e.pte.realPfn},
                    " but table names 0x", Addr{t.realPfn},
                    " (stale MTLB entry)");
            continue;
        }
        if (e.pte.fault != t.fault) {
            violate(report, "mtlb-coherence", "spi 0x", std::hex, e.spi,
                    " fault-bit mismatch with the table");
        }
        // Deferred bit write-back (§3.4): the cached copy may be
        // ahead of the table, never behind it.
        if ((t.referenced && !e.pte.referenced) ||
            (t.modified && !e.pte.modified)) {
            violate(report, "mtlb-coherence", "spi 0x", std::hex, e.spi,
                    " table R/M bits ahead of the cached copy");
        } else if (!e.dirtyBits &&
                   (e.pte.referenced != t.referenced ||
                    e.pte.modified != t.modified)) {
            violate(report, "mtlb-coherence", "spi 0x", std::hex, e.spi,
                    " R/M bits differ with no write-back pending");
        }
    }
}

void
TranslationAuditor::checkHptCoherence(AuditReport &report)
{
    ++report.checksRun;
    const unsigned nproc = kernel_.numProcesses();

    // Uniqueness and replica counts are per address space: the HPT
    // keys entries by (asid, vpn), so the audit does too.
    std::unordered_set<Addr> vpns;            // Hpt::keyFor(vpn, asid)
    std::unordered_map<Addr, Addr> replicas;  // keyed superpage -> count

    for (const auto &e : kernel_.hpt().auditState()) {
        if (e.asid >= nproc) {
            violate(report, "hpt-coherence", "entry for v=0x", std::hex,
                    e.vpn << basePageShift, " names asid ", std::dec,
                    e.asid, ", which no process owns");
            continue;
        }
        const AddressSpace &space = kernel_.processSpace(e.asid);
        if (!vpns.insert(Hpt::keyFor(e.vpn, e.asid)).second) {
            violate(report, "hpt-coherence", "duplicate entry for v=0x",
                    std::hex, e.vpn << basePageShift);
            continue;
        }

        const Addr size = pageSizeForClass(e.mapping.sizeClass);
        if (e.mapping.vbase & (size - 1)) {
            violate(report, "hpt-coherence", "mapping v=0x", std::hex,
                    e.mapping.vbase, " not aligned to class ", std::dec,
                    e.mapping.sizeClass);
            continue;
        }
        if (e.vpn < pageFrame(e.mapping.vbase) ||
            e.vpn >= pageFrame(e.mapping.vbase) +
                         (size >> basePageShift)) {
            violate(report, "hpt-coherence", "replica v=0x", std::hex,
                    e.vpn << basePageShift, " outside its mapping v=0x",
                    e.mapping.vbase);
            continue;
        }

        const AddrKind kind = physMap_.classify(e.mapping.pbase);
        if (kind == AddrKind::Shadow) {
            const ShadowSuperpage *sp =
                space.findSuperpage(e.mapping.vbase);
            if (!sp || sp->vbase != e.mapping.vbase ||
                sp->shadowBase != e.mapping.pbase ||
                sp->sizeClass != e.mapping.sizeClass) {
                violate(report, "hpt-coherence",
                        "shadow mapping v=0x", std::hex,
                        e.mapping.vbase, " s=0x", e.mapping.pbase,
                        " has no matching superpage record");
            } else {
                ++replicas[Hpt::keyFor(pageFrame(sp->vbase), e.asid)];
            }
        } else if (kind == AddrKind::Real) {
            if (e.mapping.sizeClass != 0) {
                violate(report, "hpt-coherence",
                        "real superpage mapping v=0x", std::hex,
                        e.mapping.vbase,
                        " (the kernel only builds shadow superpages)");
                continue;
            }
            const Addr va = e.vpn << basePageShift;
            if (space.findSuperpage(va) != nullptr) {
                violate(report, "hpt-coherence",
                        "stale base-page entry v=0x", std::hex, va,
                        " under a shadow mapping");
            } else if (!space.isPagePresent(va)) {
                violate(report, "hpt-coherence", "entry v=0x", std::hex,
                        va, " maps an absent page");
            } else if (space.frameOf(va) != pageFrame(e.mapping.pbase)) {
                violate(report, "hpt-coherence", "entry v=0x", std::hex,
                        va, " names frame 0x",
                        pageFrame(e.mapping.pbase),
                        " but the OS installed 0x", space.frameOf(va));
            }
        } else {
            violate(report, "hpt-coherence", "entry v=0x", std::hex,
                    e.vpn << basePageShift, " maps 0x", e.mapping.pbase,
                    ", which is neither DRAM nor shadow space");
        }
    }

    for (unsigned p = 0; p < nproc; ++p) {
        const AddressSpace &space = kernel_.processSpace(p);
        for (const auto &[vbase, sp] : space.superpages()) {
            const Addr key = Hpt::keyFor(pageFrame(vbase), p);
            const Addr found = replicas.count(key) ? replicas[key] : 0;
            if (found != sp.numBasePages()) {
                violate(report, "hpt-coherence", "superpage v=0x",
                        std::hex, vbase, " has ", std::dec, found,
                        " of ", sp.numBasePages(), " HPT replicas");
            }
        }

        for (const auto &[vpn, pfn] : space.presentPages()) {
            if (!vpns.count(Hpt::keyFor(vpn, p))) {
                violate(report, "hpt-coherence", "present page v=0x",
                        std::hex, vpn << basePageShift,
                        " unreachable through the HPT");
            }
        }
    }
}

void
TranslationAuditor::checkDramGuard(AuditReport &report)
{
    ++report.checksRun;
    const std::uint64_t escapes = memsys_.mmc().dram().shadowEscapes();
    if (escapes != 0) {
        violate(report, "dram-guard", escapes,
                " access(es) reached the DRAM array with a non-real "
                "address (shadow escape past the MTLB)");
    }
}

void
TranslationAuditor::checkStatsIdentities(AuditReport &report)
{
    ++report.checksRun;
    Mmc &mmc = memsys_.mmc();
    Bus &bus = memsys_.bus();

    if (cache_.accesses() != cache_.hits() + cache_.misses()) {
        violate(report, "stats-identities", "cache accesses (",
                cache_.accesses(), ") != hits (", cache_.hits(),
                ") + misses (", cache_.misses(), ")");
    }
    if (bus.transactions() != bus.requests()) {
        violate(report, "stats-identities", "bus transactions (",
                bus.transactions(), ") != request phases (",
                bus.requests(), ")");
    }
    std::uint64_t tlb_misses = 0;
    for (unsigned c = 0; c < kernel_.numCores(); ++c)
        tlb_misses += kernel_.coreTlb(c).misses();
    if (kernel_.tlbMissCount() != tlb_misses) {
        violate(report, "stats-identities", "kernel trap count (",
                kernel_.tlbMissCount(), ") != TLB misses over all "
                "cores (", tlb_misses, ")");
    }
    if (mmc.hasMtlb()) {
        const Mtlb &mtlb = mmc.mtlb();
        if (mtlb.hits() + mtlb.misses() != mmc.shadowOps()) {
            violate(report, "stats-identities", "MTLB lookups (",
                    mtlb.hits() + mtlb.misses(),
                    ") != MMC shadow operations (", mmc.shadowOps(),
                    ")");
        }
        if (mtlb.faults() != mmc.faultsRaised()) {
            violate(report, "stats-identities", "MTLB faults (",
                    mtlb.faults(), ") != MMC faults raised (",
                    mmc.faultsRaised(), ")");
        }
    }
}

void
TranslationAuditor::checkL0Coherence(AuditReport &report)
{
    bool counted = false;
    for (unsigned c = 0; c < kernel_.numCores(); ++c) {
        const L0TranslationCache *l0 =
            c == 0 ? l0_
                   : (c - 1 < extraL0s_.size() ? extraL0s_[c - 1]
                                               : nullptr);
        if (checkOneL0(report, kernel_.coreTlb(c), l0) && !counted) {
            ++report.checksRun;
            counted = true;
        }
    }
}

bool
TranslationAuditor::checkOneL0(AuditReport &report, const Tlb &tlb,
                               const L0TranslationCache *l0)
{
    // The epoch-wrap discipline (Tlb::bumpTranslationEpoch) holds
    // whether or not an L0 is attached: 0 marks a never-filled L0
    // entry, so a current epoch of 0 would make stale entries look
    // permanently live the moment an L0 is enabled.
    const std::uint64_t epoch = tlb.translationEpoch();
    if (epoch == 0) {
        violate(report, "l0-coherence",
                "translation epoch is 0; the wrap guard must skip it");
    }

    if (!l0 || !l0->enabled())
        return false;

    // Entries are stamped from the current epoch at fill time, so no
    // stamp may run ahead of it — a from-the-future stamp is
    // invisible to auditState() yet would spring back to life when
    // the epoch catches up to it.
    if (l0->maxStampedEpoch() > epoch) {
        violate(report, "l0-coherence", "an L0 entry is stamped with "
                "future epoch ", l0->maxStampedEpoch(),
                " (current ", epoch, ")");
    }

    for (const L0Entry &e : l0->auditState(epoch)) {
        const Addr va = e.vpage << basePageShift;

        if (e.tlbSlot >= tlb.capacity()) {
            violate(report, "l0-coherence", "live entry v=0x", std::hex,
                    va, " bound to TLB slot ", std::dec, e.tlbSlot,
                    " beyond capacity ", tlb.capacity());
            continue;
        }
        const TlbEntry &owner = tlb.entryAt(e.tlbSlot);
        if (!owner.covers(va)) {
            violate(report, "l0-coherence", "live entry v=0x", std::hex,
                    va, " bound to TLB slot ", std::dec, e.tlbSlot,
                    " that no longer covers it");
            continue;
        }
        if (pageBase(owner.translate(va)) != e.pframeBase) {
            violate(report, "l0-coherence", "live entry v=0x", std::hex,
                    va, " memoized frame base 0x", e.pframeBase,
                    " but its TLB entry translates to 0x",
                    pageBase(owner.translate(va)));
        }
        if (!(owner.prot == e.prot) || owner.sizeClass != e.sizeClass) {
            violate(report, "l0-coherence", "live entry v=0x", std::hex,
                    va,
                    " protection/size-class differ from its TLB entry");
        }
        // The soundness condition for skipping the per-hit
        // referenced-bit store (cpu/l0_cache.hh): a live L0 entry's
        // owner must already be marked referenced.
        if (!owner.referenced) {
            violate(report, "l0-coherence", "live entry v=0x", std::hex,
                    va, " whose TLB entry has a clear referenced bit");
        }
    }
    return true;
}

} // namespace mtlbsim
