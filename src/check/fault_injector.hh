/**
 * @file
 * Fault-injection harness for exercising the invariant auditor.
 *
 * Each mutator plants one specific class of corruption by writing a
 * component's state directly — bypassing the kernel paths that would
 * normally keep the structures coherent — so tests can assert that
 * the TranslationAuditor detects exactly that corruption class.
 *
 * The mutators are compiled only when MTLBSIM_CHECK_TESTING is
 * defined (tests/ builds with it); in ordinary builds every call
 * panics, so no production code path can corrupt state "for
 * testing". Header-only: all the state it touches is reachable
 * through public component interfaces.
 */

#ifndef MTLBSIM_CHECK_FAULT_INJECTOR_HH
#define MTLBSIM_CHECK_FAULT_INJECTOR_HH

#include "base/logging.hh"
#include "sim/system.hh"

namespace mtlbsim
{

/**
 * Plants targeted corruptions in a System's translation state.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(System &sys) : sys_(sys) {}

    /**
     * Back a second virtual page with the frame that already backs
     * @p va_src (double-mapped frame). @p va_dst must be inside a
     * declared region and not yet materialised.
     */
    void
    doubleMapFrame(Addr va_src, Addr va_dst)
    {
#ifdef MTLBSIM_CHECK_TESTING
        AddressSpace &space = sys_.kernel().addressSpace();
        space.installFrame(va_dst, space.frameOf(va_src));
#else
        (void)va_src;
        (void)va_dst;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Rewrite the shadow-table PTE at @p spi to name @p real_pfn
     * without purging the MTLB — the retranslation the hardware
     * caches goes stale.
     */
    void
    staleMtlbEntry(Addr spi, Addr real_pfn)
    {
#ifdef MTLBSIM_CHECK_TESTING
        sys_.memsys().mmc().shadowTable().set(spi, real_pfn);
#else
        (void)spi;
        (void)real_pfn;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Set the modified bit in the table entry at @p spi behind the
     * MTLB's back: the table claims bits the cached copy has never
     * seen (R/D desynchronisation). @p spi should be resident in the
     * MTLB with a clean modified bit for the corruption to register.
     */
    void
    desyncDirtyBit(Addr spi)
    {
#ifdef MTLBSIM_CHECK_TESTING
        sys_.memsys().mmc().shadowTable().entry(spi).modified = 1;
#else
        (void)spi;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Install a valid shadow-table mapping at @p spi, an index no
     * recorded superpage covers (leaked shadow mapping).
     */
    void
    leakShadowMapping(Addr spi, Addr real_pfn)
    {
#ifdef MTLBSIM_CHECK_TESTING
        sys_.memsys().mmc().shadowTable().set(spi, real_pfn);
#else
        (void)spi;
        (void)real_pfn;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /** Allocate a frame and drop it on the floor (leaked frame). */
    Addr
    leakFrame()
    {
#ifdef MTLBSIM_CHECK_TESTING
        return sys_.kernel().frames().allocate();
#else
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Insert a base-page TLB entry mapping @p vbase to @p pbase,
     * bypassing the OS records (stale/forged TLB entry).
     */
    void
    staleTlbEntry(Addr vbase, Addr pbase)
    {
#ifdef MTLBSIM_CHECK_TESTING
        sys_.tlb().insert(pageBase(vbase), pageBase(pbase), 0,
                          PageProtection{});
#else
        (void)vbase;
        (void)pbase;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Corrupt the live L0 fast-path entry covering @p va so it names
     * the wrong frame, as a missed epoch bump would (stale L0 entry).
     * @p va must currently hit in the L0.
     */
    void
    staleL0Entry(Addr va)
    {
#ifdef MTLBSIM_CHECK_TESTING
        sys_.cpu().l0().testingCorruptEntry(
            va, sys_.tlb().translationEpoch());
#else
        (void)va;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Rebind the OS record for the present page at @p va to a
     * freshly allocated frame without telling the HPT, TLB, or
     * shadow table — the old frame is orphaned and every cached
     * translation names it (rebound frame).
     */
    void
    rebindFrame(Addr va)
    {
#ifdef MTLBSIM_CHECK_TESTING
        AddressSpace &space = sys_.kernel().addressSpace();
        space.removeFrame(va);
        space.installFrame(va, sys_.kernel().frames().allocate());
#else
        (void)va;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Drop the HPT entry for the present base page at @p va: the
     * page is still materialised but the miss handler can no longer
     * reach it (lost HPT entry).
     */
    void
    dropHptEntry(Addr va)
    {
#ifdef MTLBSIM_CHECK_TESTING
        sys_.kernel().hpt().remove(pageBase(va), 0);
#else
        (void)va;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Lose the dirty bit for the shadow page at @p spi: sync the
     * MTLB's pending bits into the table, then clear the table's
     * modified bit. The auditor cannot see this (the table is its
     * ground truth); only a differential check against an
     * independent reference model — the fuzzer's oracle — catches
     * the clean-page misclassification at swap-out.
     */
    void
    clearDirtyBit(Addr spi)
    {
#ifdef MTLBSIM_CHECK_TESTING
        sys_.memsys().mmc().mtlb().purge(spi);
        sys_.memsys().mmc().shadowTable().entry(spi).modified = 0;
#else
        (void)spi;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

    /**
     * Feed one shadow-region address straight to the DRAM model, as
     * a buggy MMC that skipped MTLB translation would (shadow escape).
     */
    void
    leakShadowAddressToDram()
    {
#ifdef MTLBSIM_CHECK_TESTING
        const AddrRange &shadow = sys_.physmap().shadowRange();
        panicIf(shadow.size == 0, "machine has no shadow region");
        sys_.memsys().mmc().dram().access(shadow.base, true);
#else
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

  private:
    // Test-only harness: borrows the System for the duration of one
    // injection campaign and never outlives the test that owns both.
    System &sys_;   // mtlb-lint: allow(R7)
};

} // namespace mtlbsim

#endif // MTLBSIM_CHECK_FAULT_INJECTOR_HH
