/**
 * @file
 * Checker interface and configuration for the invariant audit
 * subsystem.
 *
 * The simulator's translation state is spread across five structures
 * that must agree at all times: the CPU TLB, the OS address-space
 * records, the in-DRAM shadow table, the MTLB's cached copies of it,
 * and the frame allocator. A Checker walks them and reports every
 * cross-structure disagreement it finds, so that a bug which would
 * otherwise surface as a silently wrong cycle count is caught at the
 * audit boundary instead.
 *
 * This header is deliberately light (base/types only) so that
 * SystemConfig can embed a CheckConfig without pulling the audit
 * implementation into every translation unit.
 */

#ifndef MTLBSIM_CHECK_CHECKER_HH
#define MTLBSIM_CHECK_CHECKER_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace mtlbsim
{

/** Audit-subsystem configuration (config keys: check.*). */
struct CheckConfig
{
    /** Run the auditor periodically from the CPU's cycle loop. An
     *  end-of-run audit is performed by runExperiment() regardless
     *  whenever this is set. */
    bool enabled = false;
    /** Cycles between periodic audits. */
    Cycles interval = 1'000'000;
    /** panic() on the first violating audit (the violation is a
     *  simulator bug by definition). When false, violations are
     *  reported through warn() and counted in the check.violations
     *  statistic — useful for surveying how far a corruption
     *  spreads. */
    bool panicOnViolation = true;
};

/** One invariant violation found by an audit. */
struct AuditViolation
{
    std::string invariant;  ///< invariant class, e.g. "frame-accounting"
    std::string detail;     ///< human-readable specifics
};

/** The outcome of one full audit pass. */
struct AuditReport
{
    std::vector<AuditViolation> violations;
    /** Invariant classes examined (some are skipped on machines
     *  without an MTLB). */
    std::uint64_t checksRun = 0;

    bool clean() const { return violations.empty(); }

    /** True if any violation belongs to @p invariant. */
    bool
    has(const std::string &invariant) const
    {
        for (const auto &v : violations) {
            if (v.invariant == invariant)
                return true;
        }
        return false;
    }
};

/**
 * Interface for invariant checkers.
 *
 * collect() examines state and returns a report without applying any
 * policy; callers decide whether a violation warns, panics, or is
 * asserted on in a test.
 */
class Checker
{
  public:
    virtual ~Checker() = default;

    virtual std::string name() const = 0;

    /** Run every applicable check once and report the findings. */
    virtual AuditReport collect() = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_CHECK_CHECKER_HH
