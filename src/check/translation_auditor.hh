/**
 * @file
 * Whole-machine translation-invariant auditor.
 *
 * Asserts the contracts that hold between the translation structures
 * whenever the machine is between operations:
 *
 *  - tlb-coherence: every CPU TLB entry agrees with the OS's
 *    address-space records (superpage entries match their
 *    ShadowSuperpage; base-page entries map the frame the OS
 *    installed).
 *  - superpage-backing: within each shadow superpage, a base page is
 *    present exactly when its shadow-table PTE is valid, and the PTE
 *    names the page's real frame. Swapped-out pages keep their TLB
 *    and HPT entries by design (§2.5) — only the PTE goes invalid.
 *  - shadow-table: valid PTEs exist only under recorded superpages
 *    (no leaked mappings) and no two PTEs name the same real frame
 *    (shadow-to-real bijectivity).
 *  - frame-accounting: the allocator's free list and the OS's
 *    present-page map partition the user frame pool — no frame is
 *    free and mapped, mapped twice, or neither (leaked).
 *  - mtlb-coherence: every resident MTLB entry matches its table
 *    PTE; cached R/M bits may run ahead of the table (§3.4's
 *    deferred write-back) but never behind, and an entry without
 *    pending bits matches exactly.
 *  - hpt-coherence: HPT entries are unique per base page, replicas
 *    lie inside their mapping, shadow mappings match superpage
 *    records (all replicas present), real mappings match installed
 *    frames, and every present page is reachable.
 *  - dram-guard: no shadow (or otherwise non-DRAM) address ever
 *    reached the DRAM array — everything downstream of the MTLB is
 *    real (§2.2).
 *  - stats-identities: accounting identities across components
 *    (cache accesses = hits + misses, MTLB lookups = MMC shadow
 *    ops, kernel trap count = TLB miss count, ...).
 *  - l0-coherence: every *live* entry of the CPU's L0 translation
 *    fast path (epoch matches the TLB's current translation epoch)
 *    is bound to a valid, covering TLB entry whose translation,
 *    protection, and size class it reproduces exactly, and whose
 *    NRU referenced bit is set — the property that makes skipping
 *    the per-hit referenced-bit store sound (see cpu/l0_cache.hh).
 *    Runs only when an L0 cache is attached via attachL0().
 *  - cross-core-coherence (multi-core machines only): no core's TLB
 *    holds a translation that disagrees with the current mappings of
 *    the process that core is bound to — the property the kernel's
 *    shootdown IPIs exist to maintain. A missed shootdown surfaces
 *    here as a stale remote entry.
 *
 * On multi-core machines every per-TLB check runs against each
 * core's TLB (paired with the address space of the process bound to
 * that core), and the OS-side checks take the union of all
 * processes' mappings.
 */

#ifndef MTLBSIM_CHECK_TRANSLATION_AUDITOR_HH
#define MTLBSIM_CHECK_TRANSLATION_AUDITOR_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "check/checker.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

class AddressSpace;
class Cache;
class Kernel;
class L0TranslationCache;
class MemorySystem;
class PhysMap;
class Tlb;

/**
 * The auditor. Holds references to the machine's components — not to
 * a System — so it can be assembled around any component set and the
 * check library stays independent of sim/.
 */
class TranslationAuditor : public Checker
{
  public:
    TranslationAuditor(const CheckConfig &config, Tlb &tlb,
                       Cache &cache, MemorySystem &memsys,
                       Kernel &kernel, const PhysMap &physmap,
                       stats::StatGroup &parent);

    std::string name() const override { return "translation-auditor"; }

    /** Attach core 0's L0 fast path so audits include the
     *  l0-coherence invariant. Optional: the auditor predates the
     *  L0 cache and tests assemble it without one. */
    void attachL0(const L0TranslationCache *l0) { l0_ = l0; }

    /** Attach the next extra core's L0 (cores 1..N-1, in core
     *  order); System calls this once per additional core. */
    void attachCoreL0(const L0TranslationCache *l0)
    {
        extraL0s_.push_back(l0);
    }

    /** Run all checks; no policy applied. */
    AuditReport collect() override;

    /**
     * Run all checks and apply the configured policy: warn() every
     * violation, then panic() when panicOnViolation is set.
     *
     * @param now simulated time, for the report
     */
    void audit(Cycles now);

    const CheckConfig &config() const { return config_; }

    std::uint64_t
    auditsRun() const
    {
        return static_cast<std::uint64_t>(audits_.value());
    }
    std::uint64_t
    violationsFound() const
    {
        return static_cast<std::uint64_t>(violations_.value());
    }

  private:
    void checkCrossCoreCoherence(AuditReport &report);
    void checkTlbCoherence(AuditReport &report);
    void checkOneTlb(AuditReport &report, const Tlb &tlb,
                     const AddressSpace &space);
    void checkSuperpageBacking(AuditReport &report);
    void checkOneSpaceBacking(AuditReport &report,
                              const AddressSpace &space);
    void checkShadowTable(AuditReport &report);
    void checkFrameAccounting(AuditReport &report);
    void checkMtlbCoherence(AuditReport &report);
    void checkHptCoherence(AuditReport &report);
    void checkDramGuard(AuditReport &report);
    void checkStatsIdentities(AuditReport &report);
    void checkL0Coherence(AuditReport &report);
    /** One core's l0-coherence pass; true if the L0 was examined. */
    bool checkOneL0(AuditReport &report, const Tlb &tlb,
                    const L0TranslationCache *l0);

    CheckConfig config_;
    Tlb &tlb_;
    Cache &cache_;
    MemorySystem &memsys_;
    Kernel &kernel_;
    const PhysMap &physMap_;
    const L0TranslationCache *l0_ = nullptr;
    /** Extra cores' L0s, in core order (element c-1 is core c's). */
    std::vector<const L0TranslationCache *> extraL0s_;

    /** Scratch mark-vector over the user frame pool, reused across
     *  audits so periodic auditing does not allocate. */
    std::vector<std::uint8_t> frameMarks_;

    stats::StatGroup statGroup_;
    stats::Scalar &audits_;
    stats::Scalar &checks_;
    stats::Scalar &violations_;
};

} // namespace mtlbsim

#endif // MTLBSIM_CHECK_TRANSLATION_AUDITOR_HH
