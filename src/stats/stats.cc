#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>

namespace mtlbsim::stats
{

namespace
{

void
printLine(std::ostream &os, const std::string &prefix,
          const std::string &name, double value, const std::string &desc)
{
    std::ostringstream full;
    full << prefix << name;
    os << std::left << std::setw(44) << full.str() << ' '
       << std::right << std::setw(16) << value;
    if (!desc.empty())
        os << "  # " << desc;
    os << '\n';
}

} // namespace

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), value_, desc());
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + ".mean", mean(), desc());
    printLine(os, prefix, name() + ".count", count(), "");
    printLine(os, prefix, name() + ".min", min(), "");
    printLine(os, prefix, name() + ".max", max(), "");
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + ".mean", mean(), desc());
    printLine(os, prefix, name() + ".count", count(), "");
    printLine(os, prefix, name() + ".underflow", underflow(), "");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        std::ostringstream bn;
        bn << name() << ".bucket[" << lo_ + i * bucketWidth_ << ','
           << lo_ + (i + 1) * bucketWidth_ << ')';
        printLine(os, prefix, bn.str(), buckets_[i], "");
    }
    printLine(os, prefix, name() + ".overflow", overflow(), "");
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), value(), desc());
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(name, desc);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Average &
StatGroup::addAverage(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Average>(name, desc);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        double lo, double bucket_w, unsigned n_buckets)
{
    auto stat =
        std::make_unique<Histogram>(name, desc, lo, bucket_w, n_buckets);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>(name, desc, std::move(fn));
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

void
StatGroup::addChild(StatGroup *child)
{
    panicIf(child == nullptr, "null child stat group");
    children_.push_back(child);
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    auto it = std::find_if(stats_.begin(), stats_.end(),
                           [&](const auto &s) { return s->name() == name; });
    return it == stats_.end() ? nullptr : it->get();
}

void
StatGroup::resetAll()
{
    for (auto &s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

void
StatGroup::print(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &s : stats_)
        s->print(os, full + ".");
    for (const auto *c : children_)
        c->print(os, full);
}

} // namespace mtlbsim::stats
