#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>

namespace mtlbsim::stats
{

namespace
{

void
printLine(std::ostream &os, const std::string &prefix,
          const std::string &name, double value, const std::string &desc)
{
    std::ostringstream full;
    full << prefix << name;
    os << std::left << std::setw(44) << full.str() << ' '
       << std::right << std::setw(16) << value;
    if (!desc.empty())
        os << "  # " << desc;
    os << '\n';
}

} // namespace

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), value_, desc());
}

json::Value
Scalar::toJson() const
{
    auto v = json::Value::object();
    v.set("kind", "scalar");
    v.set("value", value_);
    return v;
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + ".mean", mean(), desc());
    printLine(os, prefix, name() + ".count", count(), "");
    printLine(os, prefix, name() + ".min", min(), "");
    printLine(os, prefix, name() + ".max", max(), "");
}

json::Value
Average::toJson() const
{
    auto v = json::Value::object();
    v.set("kind", "average");
    v.set("count", count());
    v.set("sum", sum());
    v.set("mean", mean());
    // No samples -> the +/-inf tracking sentinels are meaningless;
    // omit the members rather than serializing them.
    if (count()) {
        v.set("min", min());
        v.set("max", max());
    }
    return v;
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name() + ".mean", mean(), desc());
    printLine(os, prefix, name() + ".count", count(), "");
    printLine(os, prefix, name() + ".underflow", underflow(), "");
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        std::ostringstream bn;
        bn << name() << ".bucket[" << lo_ + i * bucketWidth_ << ','
           << lo_ + (i + 1) * bucketWidth_ << ')';
        printLine(os, prefix, bn.str(), buckets_[i], "");
    }
    printLine(os, prefix, name() + ".overflow", overflow(), "");
}

json::Value
Histogram::toJson() const
{
    auto v = json::Value::object();
    v.set("kind", "histogram");
    v.set("count", count());
    v.set("sum", sum_);
    v.set("mean", mean());
    v.set("lo", lo_);
    v.set("bucket_width", bucketWidth_);
    v.set("underflow", underflow());
    auto buckets = json::Value::array();
    for (const auto b : buckets_)
        buckets.push(json::Value(b));
    v.set("buckets", std::move(buckets));
    v.set("overflow", overflow());
    return v;
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix, name(), value(), desc());
}

json::Value
Formula::toJson() const
{
    auto v = json::Value::object();
    v.set("kind", "formula");
    // A non-finite value (e.g. a ratio over zero events) is stored
    // as-is; the dumper's NaN-guard turns it into null.
    v.set("value", value());
    return v;
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(name, desc);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Average &
StatGroup::addAverage(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Average>(name, desc);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        double lo, double bucket_w, unsigned n_buckets)
{
    auto stat =
        std::make_unique<Histogram>(name, desc, lo, bucket_w, n_buckets);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>(name, desc, std::move(fn));
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

void
StatGroup::addChild(StatGroup *child)
{
    panicIf(child == nullptr, "null child stat group");
    children_.push_back(child);
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    auto it = std::find_if(stats_.begin(), stats_.end(),
                           [&](const auto &s) { return s->name() == name; });
    return it == stats_.end() ? nullptr : it->get();
}

void
StatGroup::resetAll()
{
    for (auto &s : stats_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

void
StatGroup::print(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &s : stats_)
        s->print(os, full + ".");
    for (const auto *c : children_)
        c->print(os, full);
}

json::Value
StatGroup::toJson() const
{
    auto v = json::Value::object();
    auto stats = json::Value::object();
    for (const auto &s : stats_)
        stats.set(s->name(), s->toJson());
    v.set("stats", std::move(stats));
    auto groups = json::Value::object();
    for (const auto *c : children_)
        groups.set(c->name(), c->toJson());
    v.set("groups", std::move(groups));
    return v;
}

} // namespace mtlbsim::stats
