#include "stats/golden.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace mtlbsim::stats
{

const Tolerance &
ToleranceSpec::lookup(const std::string &path) const
{
    for (const auto &[pattern, tol] : overrides) {
        if (globMatch(pattern, path))
            return tol;
    }
    return fallback;
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative '*' matcher with backtracking to the last star.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::string
GoldenDiff::describe() const
{
    std::ostringstream os;
    os << path << ": ";
    if (std::isnan(expected))
        os << "unexpected (absent from the golden file), got "
           << json::formatNumber(actual);
    else if (std::isnan(actual))
        os << "missing (golden expects "
           << json::formatNumber(expected) << ")";
    else
        os << "expected " << json::formatNumber(expected) << ", got "
           << json::formatNumber(actual) << " (drift "
           << json::formatNumber(actual - expected) << ")";
    return os.str();
}

namespace
{

/** One flattened leaf: a number, or a non-numeric value compared for
 *  exact equality via its compact JSON spelling. */
struct Leaf
{
    bool numeric = false;
    double number = 0.0;
    std::string text;
};

void
flattenInto(const json::Value &value, const std::string &prefix,
            std::map<std::string, Leaf> &out)
{
    auto join = [&](const std::string &seg) {
        return prefix.empty() ? seg : prefix + "." + seg;
    };
    switch (value.kind()) {
      case json::Value::Kind::Object:
        for (const auto &[key, member] : value.members())
            flattenInto(member, join(key), out);
        break;
      case json::Value::Kind::Array: {
        std::size_t i = 0;
        for (const auto &item : value.items())
            flattenInto(item, join(std::to_string(i++)), out);
        break;
      }
      case json::Value::Kind::Number:
        out[prefix] = {true, value.asNumber(), ""};
        break;
      case json::Value::Kind::Null:
        // The dumper's NaN-guard writes null for non-finite numbers;
        // treat it as NaN so null == null compares clean.
        out[prefix] = {true, std::nan(""), ""};
        break;
      default:
        out[prefix] = {false, 0.0, value.dumped(0)};
        break;
    }
}

} // namespace

std::map<std::string, double>
flattenNumeric(const json::Value &value)
{
    std::map<std::string, Leaf> leaves;
    flattenInto(value, "", leaves);
    std::map<std::string, double> out;
    for (const auto &[path, leaf] : leaves) {
        if (leaf.numeric)
            out[path] = leaf.number;
    }
    return out;
}

std::vector<GoldenDiff>
compareGolden(const json::Value &expected, const json::Value &actual,
              const ToleranceSpec &spec)
{
    std::map<std::string, Leaf> want, got;
    flattenInto(expected, "", want);
    flattenInto(actual, "", got);

    const double nan = std::nan("");
    std::vector<GoldenDiff> diffs;

    for (const auto &[path, w] : want) {
        auto it = got.find(path);
        if (it == got.end()) {
            diffs.push_back({path, w.numeric ? w.number : nan, nan});
            continue;
        }
        const Leaf &g = it->second;
        if (w.numeric != g.numeric) {
            diffs.push_back({path, w.numeric ? w.number : nan,
                             g.numeric ? g.number : nan});
            continue;
        }
        if (!w.numeric) {
            if (w.text != g.text)
                diffs.push_back({path, nan, nan});
            continue;
        }
        if (std::isnan(w.number) && std::isnan(g.number))
            continue;
        const Tolerance &tol = spec.lookup(path);
        const double allowed =
            tol.abs + tol.rel * std::fabs(w.number);
        if (!(std::fabs(g.number - w.number) <= allowed))
            diffs.push_back({path, w.number, g.number});
    }
    for (const auto &[path, g] : got) {
        if (!want.count(path))
            diffs.push_back({path, nan, g.numeric ? g.number : nan});
    }
    return diffs;
}

void
writeGoldenFile(const std::string &path, const json::Value &value)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot write golden file: ", path);
    value.dump(out);
    out << '\n';
    fatalIf(!out.good(), "short write to golden file: ", path);
}

json::Value
readGoldenFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open golden file: ", path);
    return json::Value::parse(in);
}

} // namespace mtlbsim::stats
