#include "stats/json.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace mtlbsim::json
{

std::string
formatNumber(double v)
{
    // The printer must be a pure function of the double so that dump
    // -> parse -> dump is a fixed point: integral values print as
    // integers (strtod maps them back exactly), everything else uses
    // %.17g, which round-trips IEEE doubles.
    char buf[40];
    if (std::floor(v) == v && std::fabs(v) < 9007199254740992.0) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

bool
Value::asBool() const
{
    panicIf(kind_ != Kind::Bool, "json: not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    panicIf(kind_ != Kind::Number, "json: not a number");
    return number_;
}

const std::string &
Value::asString() const
{
    panicIf(kind_ != Kind::String, "json: not a string");
    return string_;
}

const Value::Array &
Value::items() const
{
    panicIf(kind_ != Kind::Array, "json: not an array");
    return array_;
}

const Value::Object &
Value::members() const
{
    panicIf(kind_ != Kind::Object, "json: not an object");
    return object_;
}

void
Value::push(Value v)
{
    panicIf(kind_ != Kind::Array, "json: push on a non-array");
    array_.push_back(std::move(v));
}

Value &
Value::set(const std::string &key, Value v)
{
    panicIf(kind_ != Kind::Object, "json: set on a non-object");
    for (auto &[k, existing] : object_) {
        if (k == key) {
            existing = std::move(v);
            return existing;
        }
    }
    object_.emplace_back(key, std::move(v));
    return object_.back().second;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
Value::operator==(const Value &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Number:
        // Bitwise-ish equality: NaNs compare equal to NaNs so that a
        // parsed round trip of a NaN-guarded dump stays a fixed point.
        return number_ == other.number_ ||
               (std::isnan(number_) && std::isnan(other.number_));
      case Kind::String:
        return string_ == other.string_;
      case Kind::Array:
        return array_ == other.array_;
      case Kind::Object:
        return object_ == other.object_;
    }
    return false;
}

namespace
{

void
dumpString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
newlineIndent(std::ostream &os, unsigned indent, unsigned depth)
{
    if (indent == 0)
        return;
    os << '\n';
    for (unsigned i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Value::dumpImpl(std::ostream &os, unsigned indent, unsigned depth) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Number:
        // JSON has no NaN/inf; guard them to null (see header).
        if (!std::isfinite(number_))
            os << "null";
        else
            os << formatNumber(number_);
        break;
      case Kind::String:
        dumpString(os, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                os << ',';
            newlineIndent(os, indent, depth + 1);
            array_[i].dumpImpl(os, indent, depth + 1);
        }
        newlineIndent(os, indent, depth);
        os << ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                os << ',';
            newlineIndent(os, indent, depth + 1);
            dumpString(os, object_[i].first);
            os << (indent ? ": " : ":");
            object_[i].second.dumpImpl(os, indent, depth + 1);
        }
        newlineIndent(os, indent, depth);
        os << '}';
        break;
    }
}

void
Value::dump(std::ostream &os, unsigned indent) const
{
    dumpImpl(os, indent, 0);
}

std::string
Value::dumped(unsigned indent) const
{
    std::ostringstream os;
    dump(os, indent);
    return os.str();
}

namespace
{

/** Recursive-descent parser over an in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        fail(pos_ != text_.size(), "trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    syntaxError(const std::string &what)
    {
        fatal("json parse error at byte ", pos_, ": ", what);
    }

    void
    fail(bool condition, const std::string &what)
    {
        if (condition)
            syntaxError(what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        fail(pos_ >= text_.size(), "unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        fail(peek() != c,
             std::string("expected '") + c + "', got '" + peek() + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    value()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Value(string());
        if (consumeLiteral("null"))
            return Value();
        if (consumeLiteral("true"))
            return Value(true);
        if (consumeLiteral("false"))
            return Value(false);
        return number();
    }

    Value
    object()
    {
        expect('{');
        Value v = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            const std::string key = string();
            skipWs();
            expect(':');
            v.set(key, value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    array()
    {
        expect('[');
        Value v = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            fail(pos_ >= text_.size(), "unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            fail(pos_ >= text_.size(), "unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                fail(pos_ + 4 > text_.size(), "truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        syntaxError("bad \\u escape digit");
                }
                // The printer only emits \u for control characters;
                // decode the basic-multilingual-plane code point as
                // UTF-8 and reject surrogates.
                fail(code >= 0xd800 && code <= 0xdfff,
                     "surrogate pairs are not supported");
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                syntaxError("unknown escape");
            }
        }
    }

    Value
    number()
    {
        const std::size_t begin = pos_;
        if (peek() == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        fail(digits() == 0, "expected a number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            fail(digits() == 0, "expected digits after '.'");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            fail(digits() == 0, "expected exponent digits");
        }
        return Value(std::strtod(text_.c_str() + begin, nullptr));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
Value::parse(const std::string &text)
{
    return Parser(text).document();
}

Value
Value::parse(std::istream &in)
{
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

} // namespace mtlbsim::json
