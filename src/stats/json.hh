/**
 * @file
 * A minimal, dependency-free JSON value with deterministic
 * serialization.
 *
 * The statistics layer serializes runs into golden files that are
 * compared byte-for-byte across thread counts and re-runs, so the
 * printer must be a pure function of the value:
 *
 *  - objects preserve insertion order (no hash-map reordering);
 *  - numbers print as integers when integral, and with "%.17g"
 *    otherwise, which round-trips doubles exactly;
 *  - non-finite numbers (NaN, +/-inf) serialize as null — JSON has
 *    no spelling for them, and a dump -> parse -> dump cycle is a
 *    fixed point (null stays null).
 *
 * The parser accepts exactly what the printer emits plus ordinary
 * interchange JSON (whitespace, escapes, nested containers). Parse
 * errors report fatal() with the byte offset.
 */

#ifndef MTLBSIM_STATS_JSON_HH
#define MTLBSIM_STATS_JSON_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mtlbsim::json
{

/** One JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Value>;
    using Member = std::pair<std::string, Value>;
    /** Insertion-ordered object representation. */
    using Object = std::vector<Member>;

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double v) : kind_(Kind::Number), number_(v) {}
    Value(int v) : Value(static_cast<double>(v)) {}
    Value(unsigned v) : Value(static_cast<double>(v)) {}
    Value(std::int64_t v) : Value(static_cast<double>(v)) {}
    Value(std::uint64_t v) : Value(static_cast<double>(v)) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}

    /** Make an empty array / object (a default Value is null). */
    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; panic when the kind does not match. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &items() const;
    const Object &members() const;

    /** Append to an array (panics on non-arrays). */
    void push(Value v);

    /** Set a key in an object, replacing an existing member in place
     *  or appending a new one (panics on non-objects). */
    Value &set(const std::string &key, Value v);

    /** Object member lookup; null when absent or not an object. */
    const Value *find(const std::string &key) const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form. Both forms
     * are deterministic.
     */
    void dump(std::ostream &os, unsigned indent = 2) const;

    /** dump() into a string. */
    std::string dumped(unsigned indent = 2) const;

    /** Parse one JSON document; fatal() on malformed input. */
    static Value parse(const std::string &text);

    /** Parse an entire stream. */
    static Value parse(std::istream &in);

    bool operator==(const Value &other) const;
    bool operator!=(const Value &other) const
    {
        return !(*this == other);
    }

  private:
    void dumpImpl(std::ostream &os, unsigned indent,
                  unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    Array array_;
    Object object_;
};

/** The deterministic number spelling used by Value::dump(). */
std::string formatNumber(double v);

} // namespace mtlbsim::json

#endif // MTLBSIM_STATS_JSON_HH
