/**
 * @file
 * A small gem5-inspired statistics package.
 *
 * Components register named statistics in a StatGroup; the group can
 * be dumped as text or queried programmatically by the experiment
 * harnesses. Supported statistic kinds:
 *
 *  - Scalar:    a single counter or value.
 *  - Average:   a running mean with count/sum/min/max.
 *  - Histogram: fixed-width binned distribution.
 *  - Formula:   a value computed from other stats at dump time.
 */

#ifndef MTLBSIM_STATS_STATS_HH
#define MTLBSIM_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "stats/json.hh"

namespace mtlbsim::stats
{

/** Abstract named statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Reset the statistic to its initial state. */
    virtual void reset() = 0;

    /** Print one or more "name value # desc" lines. */
    virtual void print(std::ostream &os, const std::string &prefix)
        const = 0;

    /**
     * Structured value for machine consumption (golden files, the
     * sweep runner). Every kind emits an object with a "kind" member;
     * the remaining members are kind-specific (see docs/manual.md).
     */
    virtual json::Value toJson() const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single scalar counter/value. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    /**
     * Add @p n as one bulk increment, byte-identical to applying
     * operator++ @p n times. Exactness rests on IEEE-754 double
     * addition being exact for integer operands whose sum stays
     * below 2^53; counters are integral by construction, and the
     * guard enforces the magnitude bound so a silent rounding can
     * never decouple a bulk-replayed counter from its per-event
     * twin (the batch engine's equivalence contract, DESIGN.md §7).
     */
    Scalar &
    addCount(std::uint64_t n)
    {
        const double sum = value_ + static_cast<double>(n);
        panicIf(sum > 9007199254740992.0, // 2^53
                "bulk increment of ", name(), " by ", n,
                " exceeds exact-integer range");
        value_ = sum;
        return *this;
    }

    double value() const { return value_; }

    void reset() override { value_ = 0; }
    void print(std::ostream &os, const std::string &prefix) const override;
    json::Value toJson() const override;

  private:
    double value_ = 0;
};

/** Running mean with count, sum, min, and max. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    /** Record one sample. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /** With no samples the +/-inf tracking sentinels are never
     *  reported: min()/max() read 0 and toJson() omits the members
     *  entirely. */
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset() override
    {
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    void print(std::ostream &os, const std::string &prefix) const override;
    json::Value toJson() const override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width binned histogram with underflow/overflow buckets. */
class Histogram : public StatBase
{
  public:
    /**
     * @param name      statistic name
     * @param desc      description
     * @param lo        lower edge of the first bucket
     * @param bucket_w  width of each bucket (must be > 0)
     * @param n_buckets number of in-range buckets (must be > 0)
     */
    Histogram(std::string name, std::string desc, double lo,
              double bucket_w, unsigned n_buckets)
        : StatBase(std::move(name), std::move(desc)),
          lo_(lo), bucketWidth_(bucket_w), buckets_(n_buckets, 0)
    {
        fatalIf(bucket_w <= 0, "histogram bucket width must be positive");
        fatalIf(n_buckets == 0, "histogram needs at least one bucket");
    }

    /** Record one sample. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < lo_) {
            ++underflow_;
        } else {
            auto idx = static_cast<std::size_t>((v - lo_) / bucketWidth_);
            if (idx >= buckets_.size())
                ++overflow_;
            else
                ++buckets_[idx];
        }
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    unsigned numBuckets() const { return buckets_.size(); }

    void
    reset() override
    {
        count_ = 0;
        sum_ = 0;
        underflow_ = overflow_ = 0;
        std::fill(buckets_.begin(), buckets_.end(), 0);
    }

    void print(std::ostream &os, const std::string &prefix) const override;
    json::Value toJson() const override;

  private:
    double lo_;
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/** A value computed at dump time from other statistics. */
class Formula : public StatBase
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const { return fn_(); }

    void reset() override {}
    void print(std::ostream &os, const std::string &prefix) const override;
    /** Non-finite formula results (0/0 counters) serialize as null. */
    json::Value toJson() const override;

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics belonging to one component.
 *
 * Groups own their stats; components hold references obtained from
 * the add* factory methods. Groups may nest via child groups.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    Scalar &addScalar(const std::string &name, const std::string &desc);
    Average &addAverage(const std::string &name, const std::string &desc);
    Histogram &addHistogram(const std::string &name,
                            const std::string &desc, double lo,
                            double bucket_w, unsigned n_buckets);
    Formula &addFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);

    /** Register a child group (not owned). */
    void addChild(StatGroup *child);

    /** Find a statistic by name in this group only; null if absent. */
    const StatBase *find(const std::string &name) const;

    /** Reset this group's stats and all children. */
    void resetAll();

    /** Dump "group.stat value # desc" lines, recursively. */
    void print(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Structured dump: {"stats": {name: ...}, "groups": {name: ...}},
     * in registration order, recursively. Registration order is
     * deterministic, so the serialized form is byte-stable across
     * runs and thread schedules.
     */
    json::Value toJson() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<StatBase>> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace mtlbsim::stats

#endif // MTLBSIM_STATS_STATS_HH
