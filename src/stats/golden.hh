/**
 * @file
 * Golden-stats files: record a run's structured statistics and
 * compare later runs against them with per-stat tolerances.
 *
 * A golden file is one JSON document (any shape; in practice the
 * sweep runner's per-job result object). Comparison flattens both
 * documents to dotted numeric leaves —
 *
 *     metrics.totalCycles            = 184729
 *     stats.system.kernel.stats.tlb_misses.value = 912
 *
 * — and checks |actual - expected| <= abs + rel * |expected| per
 * leaf. Tolerances come from a spec: a default plus ordered glob
 * overrides ("*.mean" etc.), first match wins. Keys present on only
 * one side are always reported as drift.
 *
 * Etiquette: --record rewrites the baselines wholesale; only commit
 * re-recorded goldens together with the change that legitimately
 * moved the numbers, and say why in the commit message.
 */

#ifndef MTLBSIM_STATS_GOLDEN_HH
#define MTLBSIM_STATS_GOLDEN_HH

#include <map>
#include <string>
#include <vector>

#include "stats/json.hh"

namespace mtlbsim::stats
{

/** Allowed drift for one statistic. */
struct Tolerance
{
    double rel = 0.0;   ///< relative, scaled by |expected|
    double abs = 0.0;   ///< absolute floor
};

/** Default tolerance plus ordered glob-pattern overrides. */
struct ToleranceSpec
{
    Tolerance fallback;
    /** First matching pattern wins; '*' matches any run of
     *  characters (including '.'). */
    std::vector<std::pair<std::string, Tolerance>> overrides;

    /** The tolerance applying to a flattened stat path. */
    const Tolerance &lookup(const std::string &path) const;
};

/** One out-of-tolerance (or missing) statistic. */
struct GoldenDiff
{
    std::string path;
    /** NaN marks a side where the key is absent. */
    double expected = 0.0;
    double actual = 0.0;

    std::string describe() const;
};

/** Minimal '*' glob match (no character classes). */
bool globMatch(const std::string &pattern, const std::string &text);

/**
 * Flatten every numeric (and null, recorded as NaN) leaf of @p value
 * into dotted-path form. Arrays use the index as the segment.
 * std::map keeps the result ordered and comparison deterministic.
 */
std::map<std::string, double> flattenNumeric(const json::Value &value);

/**
 * Compare @p actual against @p expected under @p spec; returns the
 * out-of-tolerance leaves (empty means the run matches). Non-numeric
 * leaves (strings, bools) are compared for exact equality and report
 * with NaN markers on mismatch.
 */
std::vector<GoldenDiff> compareGolden(const json::Value &expected,
                                      const json::Value &actual,
                                      const ToleranceSpec &spec = {});

/** Write @p value to @p path (pretty-printed, trailing newline). */
void writeGoldenFile(const std::string &path, const json::Value &value);

/** Parse a golden file; fatal() when unreadable or malformed. */
json::Value readGoldenFile(const std::string &path);

} // namespace mtlbsim::stats

#endif // MTLBSIM_STATS_GOLDEN_HH
