#include "mmc/stream_buffer.hh"

namespace mtlbsim
{

StreamBufferBank::StreamBufferBank(const StreamBufferConfig &config,
                                   stats::StatGroup &parent)
    : config_(config), buffers_(config.numBuffers),
      statGroup_("stream_buffers"),
      hits_(statGroup_.addScalar("hits", "fills served from a buffer")),
      misses_(statGroup_.addScalar("misses", "fills served from DRAM")),
      allocations_(statGroup_.addScalar("allocations",
                                        "streams allocated")),
      prefetchesIssued_(statGroup_.addScalar("prefetches_issued",
                                             "prefetch lines fetched"))
{
    fatalIf(config.numBuffers == 0 && config.enabled,
            "enabled stream-buffer bank needs buffers");
    parent.addChild(&statGroup_);
}

bool
StreamBufferBank::lookup(Addr line_addr)
{
    if (!config_.enabled)
        return false;

    const Addr line = lineBase(line_addr);
    ++useClock_;

    // Hit at the head of any buffer?
    for (auto &buffer : buffers_) {
        if (buffer.valid && buffer.filled > 0 &&
            buffer.nextLine == line) {
            ++hits_;
            buffer.lastUse = useClock_;
            buffer.nextLine += cacheLineSize;
            --buffer.filled;
            // Keep the FIFO topped up.
            if (buffer.filled < config_.depth) {
                const Addr pf =
                    buffer.nextLine +
                    Addr{buffer.filled} * cacheLineSize;
                pendingPrefetches_.push_back(pf);
                ++prefetchesIssued_;
                ++buffer.filled;
            }
            return true;
        }
    }

    ++misses_;

    // Allocate on a detected stream: this miss extends the previous
    // one sequentially.
    if (lastMissLine_ != ~Addr{0} &&
        line == lastMissLine_ + cacheLineSize) {
        // LRU victim.
        Buffer *victim = &buffers_[0];
        for (auto &buffer : buffers_) {
            if (!buffer.valid) {
                victim = &buffer;
                break;
            }
            if (buffer.lastUse < victim->lastUse)
                victim = &buffer;
        }
        ++allocations_;
        victim->valid = true;
        victim->lastUse = useClock_;
        victim->nextLine = line + cacheLineSize;
        victim->filled = config_.depth;
        for (unsigned i = 0; i < config_.depth; ++i) {
            pendingPrefetches_.push_back(
                victim->nextLine + Addr{i} * cacheLineSize);
            ++prefetchesIssued_;
        }
    }
    lastMissLine_ = line;
    return false;
}

std::vector<Addr>
StreamBufferBank::drainPrefetches()
{
    std::vector<Addr> out;
    out.swap(pendingPrefetches_);
    return out;
}

void
StreamBufferBank::invalidateAll()
{
    for (auto &buffer : buffers_)
        buffer.valid = false;
    pendingPrefetches_.clear();
    lastMissLine_ = ~Addr{0};
}

} // namespace mtlbsim
