/**
 * @file
 * Main memory controller (MMC) model with optional MTLB.
 *
 * Modelled on the HP J-class memory controller (§3.2). On every
 * operation the MMC decides whether the incoming "physical" address
 * is real or shadow; with an MTLB configured this check (together
 * with a possible MTLB lookup) adds one 120 MHz MMC cycle to *every*
 * MMC operation — the paper's deliberately conservative assumption
 * (§2.2). Shadow addresses are retranslated by the MTLB, with misses
 * serviced by a hardware fill that costs one uncached DRAM read of
 * the flat shadow table.
 *
 * The OS talks to the MMC through uncached writes to control
 * registers (§2.4): installing/purging shadow mappings, setting the
 * table base, and reading back per-base-page referenced/dirty bits.
 */

#ifndef MTLBSIM_MMC_MMC_HH
#define MTLBSIM_MMC_MMC_HH

#include <memory>
#include <optional>

#include "base/logging.hh"
#include "base/types.hh"
#include "mem/dram.hh"
#include "mem/physmap.hh"
#include "mmc/stream_buffer.hh"
#include "mtlb/mtlb.hh"
#include "mtlb/shadow_table.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

/** MMC timing and feature configuration. */
struct MmcConfig
{
    /** Base MMC request-processing overhead (decode/queue/schedule),
     *  in MMC cycles; applies to all configurations. */
    Cycles processMmcCycles = 2;
    /** Extra MMC cycles added to every operation when an MTLB is
     *  present, for the real-vs-shadow check + possible MTLB lookup
     *  (§2.2: one cycle, conservative). */
    Cycles shadowCheckMmcCycles = 1;
    /** Additional MMC cycles a hardware MTLB table fill costs beyond
     *  the raw DRAM read: the uncached table access must serialise
     *  ahead of the waiting data access in the MMC pipeline (issue,
     *  turnaround, and re-dispatch of the stalled request). §3.5
     *  attributes the bulk of the MTLB's added fill delay to these
     *  "required DRAM accesses to perform MTLB fills". */
    Cycles mtlbFillOverheadMmcCycles = 16;
    /** Present an MTLB. When false the MMC treats shadow addresses
     *  as fatal (conventional controller). */
    bool hasMtlb = true;
    MtlbConfig mtlb;
    DramConfig dram;
    /** Optional MMC-resident stream buffers (§6 future work). */
    StreamBufferConfig streamBuffers;
};

/** Operations arriving at the MMC from the bus. */
enum class MmcOp : std::uint8_t
{
    SharedFill,     ///< read line fill
    ExclusiveFill,  ///< write line fill (intent to modify)
    WriteBack,      ///< dirty line write-back
    UncachedRead,   ///< uncached word read (control/table)
    UncachedWrite,  ///< uncached word write (control/table)
};

/** Outcome of one MMC operation. */
struct MmcResult
{
    Cycles mmcCycles = 0;   ///< total latency in MMC cycles
    bool fault = false;     ///< shadow mapping invalid (precise fault)
    Addr realAddr = 0;      ///< post-translation address serviced
};

/**
 * The main memory controller.
 */
class Mmc
{
  public:
    /**
     * @param config  timing/feature configuration
     * @param physmap the machine's physical address map
     * @param parent  stats parent
     *
     * When an MTLB is configured, the shadow table is sized to the
     * map's shadow region and placed at a fixed table base in real
     * memory (the OS would choose this; we use a constant).
     */
    Mmc(const MmcConfig &config, const PhysMap &physmap,
        stats::StatGroup &parent);

    /** Service one memory operation arriving from the bus. */
    MmcResult service(MmcOp op, Addr paddr, Cycles now_unused = 0);

    /**
     * @name OS control-register interface (§2.4)
     * These model uncached writes/reads to MMC control registers.
     * The *bus* cost of reaching the registers is charged by the
     * caller (MemorySystem::controlOp); these methods perform the
     * side effects and return the MMC-side cycle cost.
     * @{
     */

    /** Install shadow-page -> real-frame mapping. */
    Cycles setShadowMapping(Addr shadow_page_index, Addr real_pfn);

    /** Mark a shadow page's backing frame absent (swap-out). The
     *  MTLB entry is purged so subsequent accesses fault. */
    Cycles invalidateShadowMapping(Addr shadow_page_index);

    /** Remove a mapping entirely (region freed). */
    Cycles clearShadowMapping(Addr shadow_page_index);

    /** Read back an entry with up-to-date R/M bits (syncs the MTLB's
     *  cached bits into the table first). */
    ShadowPte readShadowEntry(Addr shadow_page_index);

    /** Clear a page's referenced bit (CLOCK's hand): syncs the MTLB
     *  entry's accumulated bits, clears the table bit, and purges
     *  the MTLB entry so future fills set it afresh. */
    Cycles clearReferencedBit(Addr shadow_page_index);

    /** @} */

    bool hasMtlb() const { return config_.hasMtlb; }
    const PhysMap &physmap() const { return physMap_; }

    /** @name Counters for the stats-identity audits (src/check) */
    /** @{ */
    std::uint64_t
    shadowOps() const
    {
        return static_cast<std::uint64_t>(shadowOps_.value());
    }
    std::uint64_t
    faultsRaised() const
    {
        return static_cast<std::uint64_t>(faultsRaised_.value());
    }
    /** @} */

    /** The MTLB (requires hasMtlb()). */
    Mtlb &
    mtlb()
    {
        panicIf(!mtlb_, "MMC has no MTLB configured");
        return *mtlb_;
    }

    /** The shadow table (requires hasMtlb()). */
    ShadowTable &
    shadowTable()
    {
        panicIf(!shadowTable_, "MMC has no shadow table configured");
        return *shadowTable_;
    }

    Dram &dram() { return dram_; }

    StreamBufferBank &streamBuffers() { return streamBuffers_; }

    /** Real physical address where the shadow table is placed. */
    static constexpr Addr shadowTableBase = 0x00100000;

  private:
    MmcConfig config_;
    const PhysMap &physMap_;
    stats::StatGroup statGroup_;
    Dram dram_;
    StreamBufferBank streamBuffers_;
    std::unique_ptr<ShadowTable> shadowTable_;
    std::unique_ptr<Mtlb> mtlb_;

    stats::Scalar &operations_;
    stats::Scalar &shadowOps_;
    stats::Scalar &realOps_;
    stats::Scalar &faultsRaised_;
    stats::Scalar &controlOps_;
    stats::Average &opLatency_;
};

} // namespace mtlbsim

#endif // MTLBSIM_MMC_MMC_HH
