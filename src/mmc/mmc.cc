#include "mmc/mmc.hh"

namespace mtlbsim
{

Mmc::Mmc(const MmcConfig &config, const PhysMap &physmap,
         stats::StatGroup &parent)
    : config_(config), physMap_(physmap),
      statGroup_("mmc"),
      dram_(config.dram, statGroup_),
      streamBuffers_(config.streamBuffers, statGroup_),
      operations_(statGroup_.addScalar("operations",
                                       "memory operations serviced")),
      shadowOps_(statGroup_.addScalar("shadow_ops",
                                      "operations to shadow addresses")),
      realOps_(statGroup_.addScalar("real_ops",
                                    "operations to real addresses")),
      faultsRaised_(statGroup_.addScalar("faults_raised",
                                         "precise faults signalled to "
                                         "the CPU")),
      controlOps_(statGroup_.addScalar("control_ops",
                                       "control-register operations")),
      opLatency_(statGroup_.addAverage("op_latency",
                                       "MMC cycles per operation"))
{
    parent.addChild(&statGroup_);

    // Arm the DRAM address guard: everything downstream of the MTLB
    // must be a real address (src/check relies on this tripwire).
    dram_.setAddressGuard(&physMap_);

    if (config_.hasMtlb) {
        const Addr shadow_pages = physMap_.numShadowPages();
        fatalIf(shadow_pages == 0,
                "MTLB configured but the physical map has no shadow "
                "region");
        // The flat table must itself fit in real memory.
        const Addr table_bytes = shadow_pages * sizeof(ShadowPte);
        fatalIf(shadowTableBase + table_bytes > physMap_.installedBytes(),
                "shadow table does not fit in installed DRAM");
        shadowTable_ =
            std::make_unique<ShadowTable>(shadow_pages, shadowTableBase);
        mtlb_ = std::make_unique<Mtlb>(config_.mtlb, *shadowTable_,
                                       statGroup_);
    }
}

MmcResult
Mmc::service(MmcOp op, Addr paddr, Cycles)
{
    ++operations_;

    MmcResult result;
    result.mmcCycles = config_.processMmcCycles;
    if (config_.hasMtlb)
        result.mmcCycles += config_.shadowCheckMmcCycles;

    Addr effective = paddr;
    const AddrKind kind = physMap_.classify(paddr);

    switch (kind) {
      case AddrKind::Real:
        ++realOps_;
        break;

      case AddrKind::Shadow: {
        if (!config_.hasMtlb) {
            panic("shadow address 0x", std::hex, paddr,
                  " reached an MMC without an MTLB");
        }
        ++shadowOps_;

        MtlbAccess access;
        switch (op) {
          case MmcOp::SharedFill:
          case MmcOp::UncachedRead:
            access = MtlbAccess::SharedFill;
            break;
          case MmcOp::ExclusiveFill:
          case MmcOp::UncachedWrite:
            access = MtlbAccess::ExclusiveFill;
            break;
          case MmcOp::WriteBack:
            access = MtlbAccess::WriteBack;
            break;
          default:
            panic("unhandled MMC op");
        }

        const Addr spi = physMap_.shadowPageIndex(paddr);
        const MtlbResult tr = mtlb_->translate(spi, access);
        // Each hardware table fill is one uncached DRAM read,
        // serialised ahead of the waiting access in the MMC pipeline.
        for (unsigned i = 0; i < tr.tableReads; ++i) {
            result.mmcCycles += config_.mtlbFillOverheadMmcCycles;
            result.mmcCycles +=
                dram_.tableRead(shadowTable_->entryAddr(spi));
        }

        if (tr.fault) {
            // §4: the backing base page is absent; the MMC signals a
            // precise fault (e.g. via a forced parity error) instead
            // of performing the access.
            ++faultsRaised_;
            result.fault = true;
            opLatency_.sample(static_cast<double>(result.mmcCycles));
            return result;
        }

        effective = (tr.realPfn << basePageShift) | pageOffset(paddr);
        break;
      }

      case AddrKind::Io:
        // Modelled I/O space: fixed-latency, no DRAM access.
        result.mmcCycles += 4;
        result.realAddr = paddr;
        opLatency_.sample(static_cast<double>(result.mmcCycles));
        return result;

      case AddrKind::Invalid:
        panic("access to invalid physical address 0x", std::hex, paddr);
    }

    const bool is_fill =
        op == MmcOp::SharedFill || op == MmcOp::ExclusiveFill;
    const bool is_line = is_fill || op == MmcOp::WriteBack;

    // §6: demand fills may be served from an MMC stream buffer at
    // SRAM latency. The buffers sit downstream of the MTLB, so they
    // work on real addresses and shadow-backed streams need no extra
    // translations.
    if (is_fill && streamBuffers_.lookup(effective)) {
        result.mmcCycles += streamBuffers_.config().bufferHitMmcCycles;
    } else {
        result.mmcCycles += dram_.access(effective, is_line);
    }
    // Prefetches occupy DRAM banks but do not delay the demand fill.
    for (const Addr pf : streamBuffers_.drainPrefetches())
        dram_.access(pf, true);
    result.realAddr = effective;

    opLatency_.sample(static_cast<double>(result.mmcCycles));
    return result;
}

Cycles
Mmc::setShadowMapping(Addr shadow_page_index, Addr real_pfn)
{
    panicIf(!config_.hasMtlb, "no MTLB to configure");
    ++controlOps_;
    shadowTable_->set(shadow_page_index, real_pfn);
    // Any stale cached translation must be purged.
    mtlb_->purge(shadow_page_index);
    // Control write + table update: processing plus one table write.
    return config_.processMmcCycles +
           dram_.tableRead(shadowTable_->entryAddr(shadow_page_index));
}

Cycles
Mmc::invalidateShadowMapping(Addr shadow_page_index)
{
    panicIf(!config_.hasMtlb, "no MTLB to configure");
    ++controlOps_;
    mtlb_->purge(shadow_page_index);
    shadowTable_->invalidate(shadow_page_index);
    return config_.processMmcCycles +
           dram_.tableRead(shadowTable_->entryAddr(shadow_page_index));
}

Cycles
Mmc::clearShadowMapping(Addr shadow_page_index)
{
    panicIf(!config_.hasMtlb, "no MTLB to configure");
    ++controlOps_;
    mtlb_->purge(shadow_page_index);
    shadowTable_->clear(shadow_page_index);
    return config_.processMmcCycles +
           dram_.tableRead(shadowTable_->entryAddr(shadow_page_index));
}

Cycles
Mmc::clearReferencedBit(Addr shadow_page_index)
{
    panicIf(!config_.hasMtlb, "no MTLB to maintain");
    ++controlOps_;
    mtlb_->purge(shadow_page_index);    // writes accumulated bits back
    shadowTable_->entry(shadow_page_index).referenced = 0;
    return config_.processMmcCycles +
           dram_.tableRead(shadowTable_->entryAddr(shadow_page_index));
}

ShadowPte
Mmc::readShadowEntry(Addr shadow_page_index)
{
    panicIf(!config_.hasMtlb, "no MTLB to read");
    ++controlOps_;
    mtlb_->syncAccessBits();
    return shadowTable_->entry(shadow_page_index);
}

} // namespace mtlbsim
