/**
 * @file
 * The composed memory subsystem: bus + MMC (+ MTLB + DRAM).
 *
 * Implements the cache's MemBackend interface and offers the OS an
 * uncached control-operation path. All CPU-visible latencies are in
 * CPU cycles; internally the bus and MMC work in 120 MHz cycles.
 */

#ifndef MTLBSIM_MMC_MEMSYS_HH
#define MTLBSIM_MMC_MEMSYS_HH

#include <functional>

#include "bus/bus.hh"
#include "cache/cache.hh"
#include "mmc/mmc.hh"

namespace mtlbsim
{

/**
 * Bus + MMC composition behind the cache.
 */
class MemorySystem : public MemBackend
{
  public:
    MemorySystem(const BusConfig &bus_config, const MmcConfig &mmc_config,
                 const PhysMap &physmap, stats::StatGroup &parent)
        : bus_(bus_config, parent), mmc_(mmc_config, physmap, parent)
    {}

    /**
     * Fetch a line through bus -> MMC -> DRAM -> bus.
     * If the shadow mapping has been invalidated the MMC raises a
     * precise fault; the fill still consumes its latency and
     * faulted() reports it until the next fill.
     */
    Cycles
    lineFill(Addr paddr, bool exclusive, Cycles now) override
    {
        const BusOp bus_op =
            exclusive ? BusOp::ReadExclusive : BusOp::ReadShared;
        Cycles latency = bus_.request(bus_op, now);

        const MmcOp op =
            exclusive ? MmcOp::ExclusiveFill : MmcOp::SharedFill;
        const MmcResult r = mmc_.service(op, paddr, now + latency);
        latency += mmcToCpuCycles(r.mmcCycles);
        lastFillFaulted_ = r.fault;

        latency += bus_.dataReturn(now + latency);
        return latency;
    }

    /**
     * Write a dirty line back. The line occupies the bus and is
     * processed by the MMC (updating MTLB dirty bits, §2.5), but the
     * CPU does not wait for the DRAM write: only bus-acceptance
     * latency is returned.
     */
    Cycles
    writeBack(Addr paddr, Cycles now) override
    {
        const Cycles bus_latency = bus_.request(BusOp::WriteBack, now);
        mmc_.service(MmcOp::WriteBack, paddr, now + bus_latency);
        return bus_latency;
    }

    /**
     * Perform an uncached MMC control operation (§2.4): the OS's
     * kernel writes to MMC control registers to install mappings,
     * purge them, or read access bits.
     *
     * @param now current CPU-cycle time
     * @param op  callable invoked with the MMC; returns MMC-side
     *            cycles consumed
     * @return    total CPU cycles (bus + MMC)
     */
    Cycles
    controlOp(Cycles now, const std::function<Cycles(Mmc &)> &op)
    {
        Cycles latency = bus_.request(BusOp::Uncached, now);
        latency += mmcToCpuCycles(op(mmc_));
        return latency;
    }

    /** True if the last lineFill hit an invalidated shadow mapping. */
    bool faulted() const { return lastFillFaulted_; }

    Bus &bus() { return bus_; }
    Mmc &mmc() { return mmc_; }

  private:
    Bus bus_;
    Mmc mmc_;
    bool lastFillFaulted_ = false;
};

} // namespace mtlbsim

#endif // MTLBSIM_MMC_MEMSYS_HH
