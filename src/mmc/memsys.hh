/**
 * @file
 * The composed memory subsystem: bus + MMC (+ MTLB + DRAM).
 *
 * Implements the cache's MemBackend interface and offers the OS an
 * uncached control-operation path. All CPU-visible latencies are in
 * CPU cycles; internally the bus and MMC work in 120 MHz cycles.
 */

#ifndef MTLBSIM_MMC_MEMSYS_HH
#define MTLBSIM_MMC_MEMSYS_HH

#include <functional>

#include "bus/bus.hh"
#include "cache/cache.hh"
#include "mmc/mmc.hh"

namespace mtlbsim
{

/**
 * Bus + MMC composition behind the cache.
 */
class MemorySystem : public MemBackend
{
  public:
    MemorySystem(const BusConfig &bus_config, const MmcConfig &mmc_config,
                 const PhysMap &physmap, stats::StatGroup &parent)
        : bus_(bus_config, parent), mmc_(mmc_config, physmap, parent),
          physMap_(&physmap)
    {}

    /**
     * Model the MTLB's single port (§2.2: the MTLB "is single
     * ported"). Shadow-classified operations from *different* cores
     * that arrive while the port is held serialise, each holding the
     * port for @p occupancy_cpu_cycles once granted. System enables
     * this only on multi-core MTLB machines; single-core machines
     * never call it, so the model has zero cost and zero state there
     * and their timing is unchanged.
     *
     * @param occupancy_cpu_cycles port hold time per shadow op, in
     *        CPU cycles (System converts from MtlbConfig's MMC-cycle
     *        portOccupancyCycles)
     * @param parent stats parent for the port-conflict counters
     */
    void
    enablePortModel(Cycles occupancy_cpu_cycles, stats::StatGroup &parent)
    {
        portEnabled_ = true;
        portOccupancy_ = occupancy_cpu_cycles;
        portConflicts_ = &portStats_.addScalar(
            "conflicts", "shadow operations that waited for the port");
        portConflictCycles_ = &portStats_.addScalar(
            "conflict_cycles", "CPU cycles spent waiting for the port");
        parent.addChild(&portStats_);
    }

    /** Name the core issuing subsequent traffic (port attribution).
     *  CPUs call this before memory-generating work; a no-op wiring
     *  on single-core machines. */
    void setRequester(unsigned core) { requester_ = core; }

    /**
     * Fetch a line through bus -> MMC -> DRAM -> bus.
     * If the shadow mapping has been invalidated the MMC raises a
     * precise fault; the fill still consumes its latency and
     * faulted() reports it until the next fill.
     */
    Cycles
    lineFill(Addr paddr, bool exclusive, Cycles now) override
    {
        const BusOp bus_op =
            exclusive ? BusOp::ReadExclusive : BusOp::ReadShared;
        Cycles latency = bus_.request(bus_op, now);
        if (portEnabled_ && physMap_->shadowRange().contains(paddr))
            latency += acquirePort(now + latency);

        const MmcOp op =
            exclusive ? MmcOp::ExclusiveFill : MmcOp::SharedFill;
        const MmcResult r = mmc_.service(op, paddr, now + latency);
        latency += mmcToCpuCycles(r.mmcCycles);
        lastFillFaulted_ = r.fault;

        latency += bus_.dataReturn(now + latency);
        return latency;
    }

    /**
     * Write a dirty line back. The line occupies the bus and is
     * processed by the MMC (updating MTLB dirty bits, §2.5), but the
     * CPU does not wait for the DRAM write: only bus-acceptance
     * latency is returned.
     */
    Cycles
    writeBack(Addr paddr, Cycles now) override
    {
        // The cache holds the line on the bus until the MMC accepts
        // it, so a busy MTLB port extends the visible latency too.
        Cycles latency = bus_.request(BusOp::WriteBack, now);
        if (portEnabled_ && physMap_->shadowRange().contains(paddr))
            latency += acquirePort(now + latency);
        mmc_.service(MmcOp::WriteBack, paddr, now + latency);
        return latency;
    }

    /**
     * Perform an uncached MMC control operation (§2.4): the OS's
     * kernel writes to MMC control registers to install mappings,
     * purge them, or read access bits.
     *
     * @param now current CPU-cycle time
     * @param op  callable invoked with the MMC; returns MMC-side
     *            cycles consumed
     * @return    total CPU cycles (bus + MMC)
     */
    Cycles
    controlOp(Cycles now, const std::function<Cycles(Mmc &)> &op)
    {
        Cycles latency = bus_.request(BusOp::Uncached, now);
        // Control registers live behind the MTLB's port: mapping
        // installs/purges contend with data-side translations.
        if (portEnabled_)
            latency += acquirePort(now + latency);
        latency += mmcToCpuCycles(op(mmc_));
        return latency;
    }

    /** True if the last lineFill hit an invalidated shadow mapping. */
    bool faulted() const { return lastFillFaulted_; }

    Bus &bus() { return bus_; }
    Mmc &mmc() { return mmc_; }

  private:
    /**
     * Arbitrate the single MTLB port for one shadow-classified
     * operation arriving at @p now; returns the wait, if any, before
     * the port is granted. Back-to-back operations from the same core
     * never conflict (they are serialised by that core's own clock),
     * which also makes the enabled model exact for one core.
     */
    Cycles
    acquirePort(Cycles now)
    {
        Cycles wait = 0;
        if (requester_ != portOwner_ && now < portBusyUntil_) {
            wait = portBusyUntil_ - now;
            ++*portConflicts_;
            portConflictCycles_->addCount(wait);
        }
        portOwner_ = requester_;
        portBusyUntil_ = now + wait + portOccupancy_;
        return wait;
    }

    Bus bus_;
    Mmc mmc_;
    const PhysMap *physMap_;
    bool lastFillFaulted_ = false;

    /** @name MTLB port arbitration (multi-core machines only) */
    /** @{ */
    bool portEnabled_ = false;
    Cycles portOccupancy_ = 0;  ///< CPU cycles a shadow op holds the port
    unsigned requester_ = 0;    ///< core issuing the current traffic
    unsigned portOwner_ = 0;    ///< core whose op last held the port
    Cycles portBusyUntil_ = 0;
    stats::StatGroup portStats_{"mtlb_port"};
    stats::Scalar *portConflicts_ = nullptr;
    stats::Scalar *portConflictCycles_ = nullptr;
    /** @} */
};

} // namespace mtlbsim

#endif // MTLBSIM_MMC_MEMSYS_HH
