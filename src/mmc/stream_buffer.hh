/**
 * @file
 * MMC-resident stream buffers (§6 future work).
 *
 * The paper's closing section proposes using the Impulse MMC to host
 * Jouppi-style stream buffers [11]: small FIFOs that detect
 * sequential fill streams and prefetch ahead of them out of DRAM, so
 * that subsequent fills are served from the buffer at SRAM latency
 * instead of paying a DRAM access.
 *
 * This unit implements a bank of such buffers on the *real-address*
 * side of the MMC — downstream of the MTLB, so prefetches for
 * shadow-backed streams work on the already-translated addresses and
 * need no extra translations (one of the advantages of placing the
 * buffers in the MMC rather than the CPU).
 *
 * Model: each buffer tracks one stream (next expected line). A fill
 * that hits a buffer's head pops it and costs only the buffer-read
 * latency; the buffer then prefetches a further line (charged to
 * DRAM occupancy, not to the demand fill). A miss in all buffers
 * allocates the least-recently-used buffer when the miss looks
 * sequential (it follows a recorded previous miss), priming it with
 * the next lines.
 */

#ifndef MTLBSIM_MMC_STREAM_BUFFER_HH
#define MTLBSIM_MMC_STREAM_BUFFER_HH

#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

/** Stream-buffer bank configuration. */
struct StreamBufferConfig
{
    bool enabled = false;
    unsigned numBuffers = 4;    ///< Jouppi's multi-way configuration
    unsigned depth = 4;         ///< lines prefetched ahead
    /** MMC cycles to deliver a line from a buffer (SRAM read). */
    Cycles bufferHitMmcCycles = 2;
};

/**
 * A bank of stream buffers.
 */
class StreamBufferBank
{
  public:
    StreamBufferBank(const StreamBufferConfig &config,
                     stats::StatGroup &parent);

    /**
     * Present a demand line fill at real address @p line_addr.
     *
     * @retval true  the line was in a buffer: charge
     *               bufferHitMmcCycles instead of a DRAM access
     * @retval false serve from DRAM; the bank may start a new stream
     */
    bool lookup(Addr line_addr);

    /** Lines the bank would like to prefetch now (drained by the
     *  MMC into DRAM-occupancy accounting). */
    std::vector<Addr> drainPrefetches();

    /** Invalidate all buffers (e.g. on remap-driven flushes the
     *  stream's addresses change from real to shadow). */
    void invalidateAll();

    const StreamBufferConfig &config() const { return config_; }

    std::uint64_t
    hits() const
    {
        return static_cast<std::uint64_t>(hits_.value());
    }

  private:
    struct Buffer
    {
        bool valid = false;
        Addr nextLine = 0;      ///< head of the FIFO
        unsigned filled = 0;    ///< lines currently buffered
        std::uint64_t lastUse = 0;
    };

    StreamBufferConfig config_;
    std::vector<Buffer> buffers_;
    std::vector<Addr> pendingPrefetches_;
    Addr lastMissLine_ = ~Addr{0};
    std::uint64_t useClock_ = 0;

    stats::StatGroup statGroup_;
    stats::Scalar &hits_;
    stats::Scalar &misses_;
    stats::Scalar &allocations_;
    stats::Scalar &prefetchesIssued_;
};

} // namespace mtlbsim

#endif // MTLBSIM_MMC_STREAM_BUFFER_HH
