/**
 * @file
 * Fundamental simulator types: addresses, cycle counts, access kinds.
 *
 * The simulated machine follows the paper's configuration: a 240 MHz
 * single-issue CPU on a 120 MHz Runway-like bus, so one bus/MMC cycle
 * equals two CPU cycles. All latencies in the simulator are kept in
 * CPU cycles; MMC-side components convert at the boundary.
 */

#ifndef MTLBSIM_BASE_TYPES_HH
#define MTLBSIM_BASE_TYPES_HH

#include <cstdint>

namespace mtlbsim
{

/** A virtual, shadow-physical, or real-physical address. */
using Addr = std::uint64_t;

/** A count of CPU cycles (the simulator's base time unit). */
using Cycles = std::uint64_t;

/** A count of retired instructions. */
using Counter = std::uint64_t;

/** CPU clock rate modelled by the paper's simulator (§3.2). */
constexpr std::uint64_t cpuClockMHz = 240;

/** Runway bus / MMC clock rate (§3.2). */
constexpr std::uint64_t mmcClockMHz = 120;

/** CPU cycles per MMC cycle (exact in this configuration). */
constexpr Cycles cpuCyclesPerMmcCycle = cpuClockMHz / mmcClockMHz;

static_assert(cpuClockMHz % mmcClockMHz == 0,
              "CPU clock must be an integer multiple of the MMC clock");

/** Convert MMC cycles to CPU cycles. */
constexpr Cycles
mmcToCpuCycles(Cycles mmc_cycles)
{
    return mmc_cycles * cpuCyclesPerMmcCycle;
}

/** The kind of memory reference a CPU issues. */
enum class AccessType : std::uint8_t
{
    Read,       ///< data load
    Write,      ///< data store
    IFetch,     ///< instruction fetch
};

/** Privilege level of an access, for protection checking. */
enum class AccessMode : std::uint8_t
{
    User,
    Kernel,
};

/** Base page parameters: 4 KB pages, as in PA-RISC 2.0 (§1, §2.2). */
constexpr unsigned basePageShift = 12;
constexpr Addr basePageSize = Addr{1} << basePageShift;
constexpr Addr basePageMask = basePageSize - 1;

/** Cache line parameters: 32-byte lines (§3.2). */
constexpr unsigned cacheLineShift = 5;
constexpr Addr cacheLineSize = Addr{1} << cacheLineShift;
constexpr Addr cacheLineMask = cacheLineSize - 1;

/** Extract the base-page frame number of an address. */
constexpr Addr
pageFrame(Addr addr)
{
    return addr >> basePageShift;
}

/** Round an address down to its base-page boundary. */
constexpr Addr
pageBase(Addr addr)
{
    return addr & ~basePageMask;
}

/** Byte offset of an address within its base page. */
constexpr Addr
pageOffset(Addr addr)
{
    return addr & basePageMask;
}

/** Round an address down to its cache-line boundary. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~cacheLineMask;
}

} // namespace mtlbsim

#endif // MTLBSIM_BASE_TYPES_HH
