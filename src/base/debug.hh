/**
 * @file
 * Named debug flags and trace printing (gem5's DPRINTF, miniature).
 *
 * Components print through debugPrintf(flag, ...) guarded by a named
 * flag; flags are enabled at runtime (e.g. from MTLBSIM_DEBUG in the
 * environment, or programmatically in tests) so diagnosing a run
 * never requires a rebuild.
 *
 *     debug::Flag traceMtlb("MTLB");
 *     ...
 *     debugPrintf(traceMtlb, "fill spi=", spi, " pfn=", pfn);
 *
 * Disabled flags cost one boolean test.
 */

#ifndef MTLBSIM_BASE_DEBUG_HH
#define MTLBSIM_BASE_DEBUG_HH

#include <atomic>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace mtlbsim::debug
{

/**
 * A named, registry-tracked debug flag.
 */
class Flag
{
  public:
    /** Register a flag; names must be unique. */
    explicit Flag(const std::string &name);
    ~Flag();

    Flag(const Flag &) = delete;
    Flag &operator=(const Flag &) = delete;

    const std::string &name() const { return name_; }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void enable() { enabled_.store(true, std::memory_order_relaxed); }
    void disable() { enabled_.store(false, std::memory_order_relaxed); }

  private:
    std::string name_;
    /** Atomic so sweep worker threads may test a flag that the
     *  driver thread toggles. */
    std::atomic<bool> enabled_{false};
};

/** Enable a flag by name; fatal when no such flag exists. */
void enableFlag(const std::string &name);

/** Disable a flag by name; fatal when no such flag exists. */
void disableFlag(const std::string &name);

/** Names of all registered flags. */
std::vector<std::string> allFlags();

/**
 * Enable flags from a comma-separated list, e.g. "MTLB,Kernel".
 * The token "All" enables everything. Used with the MTLBSIM_DEBUG
 * environment variable by initFromEnvironment().
 */
void enableFromList(const std::string &list);

/** Read MTLBSIM_DEBUG from the environment (no-op if unset). */
void initFromEnvironment();

namespace detail
{
void emit(const std::string &flag_name, const std::string &msg);
}

} // namespace mtlbsim::debug

namespace mtlbsim
{

/** Print a trace line when @p flag is enabled. */
template <typename... Args>
void
debugPrintf(const debug::Flag &flag, Args &&...args)
{
    if (!flag.enabled())
        return;
    debug::detail::emit(
        flag.name(),
        detail::buildMessage(std::forward<Args>(args)...));
}

} // namespace mtlbsim

#endif // MTLBSIM_BASE_DEBUG_HH
