/**
 * @file
 * Named debug flags and trace printing (gem5's DPRINTF, miniature).
 *
 * Components print through debugPrintf(flag, ...) guarded by a named
 * flag; flags are enabled at runtime (e.g. from MTLBSIM_DEBUG in the
 * environment, or programmatically in tests) so diagnosing a run
 * never requires a rebuild.
 *
 *     debug::Flag traceMtlb("MTLB");
 *     ...
 *     debugPrintf(traceMtlb, "fill spi=", spi, " pfn=", pfn);
 *
 * Disabled flags cost one boolean test.
 *
 * Flags register with an explicit debug::Registry context object —
 * by default the single process-wide one. Several flags may share a
 * name: each System owns its own "Kernel"/"MTLB" trace flag, and
 * enabling a name toggles every System's flag at once (and arms the
 * name, so Systems constructed afterwards start with it enabled).
 */

#ifndef MTLBSIM_BASE_DEBUG_HH
#define MTLBSIM_BASE_DEBUG_HH

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace mtlbsim::debug
{

class Registry;

/**
 * A named, registry-tracked debug flag.
 */
class Flag
{
  public:
    /** Register a flag with the process-wide registry. */
    explicit Flag(const std::string &name);
    /** Register a flag with an explicit registry (tests). */
    Flag(const std::string &name, Registry &registry);
    ~Flag();

    Flag(const Flag &) = delete;
    Flag &operator=(const Flag &) = delete;

    const std::string &name() const { return name_; }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void enable() { enabled_.store(true, std::memory_order_relaxed); }
    void disable() { enabled_.store(false, std::memory_order_relaxed); }

  private:
    Registry &registry_;
    std::string name_;
    /** Atomic so sweep worker threads may test a flag that the
     *  driver thread toggles. */
    std::atomic<bool> enabled_{false};
};

/**
 * A flag registry: the explicit context object flags register with.
 *
 * The registry is thread-safe (the sweep runner constructs Systems —
 * and therefore their member flags — from many worker threads at
 * once) and allows duplicate names: enabling a name enables every
 * flag currently carrying it and *arms* the name so flags registered
 * later start enabled. Disabling disarms and disables all carriers.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Enable every flag named @p name (fatal when none exists) and
     *  arm the name for flags registered later. */
    void enable(const std::string &name);

    /** Disable and disarm @p name; fatal when no such flag exists. */
    void disable(const std::string &name);

    /** Sorted unique names of all registered flags. */
    std::vector<std::string> names() const;

    /**
     * Enable flags from a comma-separated list, e.g. "MTLB,Kernel".
     * The token "All" enables (and arms) every registered name.
     * Tokens with no carrier yet are armed, not fatal: the list is
     * parsed from MTLBSIM_DEBUG before any System (and its
     * component flags) has been constructed.
     */
    void enableList(const std::string &list);

    /** The process-wide registry (the default Flag constructor's
     *  target, and what the by-name helpers below operate on). */
    static Registry &process();

    /** @name "info" log verbosity latch
     * Backs setInformEnabled() (base/logging.hh). Lives on the
     * registry so the process-wide observability state shares the one
     * inventoried R6 exception instead of adding a second mutable
     * global. Atomic (not mutex_-guarded): sweep worker threads log
     * while the driver thread toggles it. */
    /** @{ */
    bool
    informEnabled() const
    {
        return inform_.load(std::memory_order_relaxed);
    }

    void
    setInformEnabled(bool enabled)
    {
        inform_.store(enabled, std::memory_order_relaxed);
    }
    /** @} */

  private:
    friend class Flag;

    void add(Flag *flag);
    void remove(Flag *flag);

    mutable std::mutex mutex_;
    /** name -> flag; duplicates are one flag per owning System. */
    std::multimap<std::string, Flag *> flags_;
    /** Names enabled by request: late-registered flags with an armed
     *  name start enabled. */
    std::set<std::string> armed_;
    /** "info"-level logging enabled (see informEnabled() above). */
    std::atomic<bool> inform_{true};
};

/** Enable a flag by name in the process registry; fatal when no such
 *  flag exists. */
void enableFlag(const std::string &name);

/** Disable a flag by name in the process registry; fatal when no
 *  such flag exists. */
void disableFlag(const std::string &name);

/** Names of all flags in the process registry. */
std::vector<std::string> allFlags();

/**
 * Enable process-registry flags from a comma-separated list, e.g.
 * "MTLB,Kernel". The token "All" enables everything. Used with the
 * MTLBSIM_DEBUG environment variable by initFromEnvironment().
 */
void enableFromList(const std::string &list);

/** Read MTLBSIM_DEBUG from the environment (no-op if unset). */
void initFromEnvironment();

namespace detail
{
void emit(const std::string &flag_name, const std::string &msg);
}

} // namespace mtlbsim::debug

namespace mtlbsim
{

/** Print a trace line when @p flag is enabled. */
template <typename... Args>
void
debugPrintf(const debug::Flag &flag, Args &&...args)
{
    if (!flag.enabled())
        return;
    debug::detail::emit(
        flag.name(),
        detail::buildMessage(std::forward<Args>(args)...));
}

} // namespace mtlbsim

#endif // MTLBSIM_BASE_DEBUG_HH
