/**
 * @file
 * Deterministic pseudo-random number generation for workload models.
 *
 * A small xorshift-based generator is used instead of <random> engines
 * so that traces are bit-identical across standard-library versions —
 * important for reproducible experiments.
 */

#ifndef MTLBSIM_BASE_RANDOM_HH
#define MTLBSIM_BASE_RANDOM_HH

#include <cstdint>
#include <initializer_list>

namespace mtlbsim
{

/**
 * xorshift128+ generator: fast, deterministic, and adequate for
 * driving synthetic memory-access patterns.
 */
class Random
{
  public:
    /** Seed the generator; the same seed always yields the same
     *  sequence. A zero seed is remapped to a fixed constant. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        if (seed == 0)
            seed = 0x9e3779b97f4a7c15ULL;
        // SplitMix64 to spread the seed across both words of state.
        for (auto *word : {&s0_, &s1_}) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            *word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability @p numer / @p denom. */
    bool
    chance(std::uint64_t numer, std::uint64_t denom)
    {
        return below(denom) < numer;
    }

  private:
    std::uint64_t s0_ = 0;
    std::uint64_t s1_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_BASE_RANDOM_HH
