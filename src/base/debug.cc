#include "base/debug.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace mtlbsim::debug
{

namespace
{

/** Global flag registry (function-local static avoids order-of-
 *  initialisation issues with flags defined at namespace scope).
 *
 *  Components lazily register flags as function-local statics, and
 *  the sweep runner constructs Systems from many threads at once:
 *  each individual flag's construction is serialized by its static
 *  guard, but two *different* flags can register concurrently, so
 *  every access to the shared map takes registryMutex(). */
std::map<std::string, Flag *> &
registry()
{
    static std::map<std::string, Flag *> flags;
    return flags;
}

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

Flag::Flag(const std::string &name) : name_(name)
{
    bool inserted = false;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        inserted = registry().emplace(name, this).second;
    }
    fatalIf(!inserted, "duplicate debug flag '", name, "'");
}

Flag::~Flag()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().erase(name_);
}

void
enableFlag(const std::string &name)
{
    Flag *flag = nullptr;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(name);
        if (it != registry().end())
            flag = it->second;
    }
    fatalIf(flag == nullptr, "no debug flag named '", name, "'");
    flag->enable();
}

void
disableFlag(const std::string &name)
{
    Flag *flag = nullptr;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(name);
        if (it != registry().end())
            flag = it->second;
    }
    fatalIf(flag == nullptr, "no debug flag named '", name, "'");
    flag->disable();
}

std::vector<std::string>
allFlags()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    for (const auto &[name, flag] : registry())
        names.push_back(name);
    return names;
}

void
enableFromList(const std::string &list)
{
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string token = list.substr(begin, end - begin);
        if (!token.empty()) {
            if (token == "All") {
                std::lock_guard<std::mutex> lock(registryMutex());
                for (auto &[name, flag] : registry())
                    flag->enable();
            } else {
                enableFlag(token);
            }
        }
        begin = end + 1;
    }
}

void
initFromEnvironment()
{
    // Debug-trace selection is allowed to read the environment: it
    // only toggles stderr logging, never simulated behaviour.
    if (const char *env = std::getenv("MTLBSIM_DEBUG")) // mtlb-lint: allow(R5)
        enableFromList(env);
}

namespace detail
{

void
emit(const std::string &flag_name, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", flag_name.c_str(), msg.c_str());
}

} // namespace detail

} // namespace mtlbsim::debug
