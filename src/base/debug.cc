#include "base/debug.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mtlbsim::debug
{

Registry &
Registry::process()
{
    // The one process-wide registry. A function-local static (rather
    // than a namespace-scope object) avoids order-of-initialisation
    // issues with flags constructed during static init; it is the
    // deliberate, inventoried exception to R6 — debug tracing is
    // process-wide observability, never simulated behaviour, and a
    // per-System registry would leave CLI `--debug` unable to reach
    // Systems constructed later by the sweep's worker threads.
    static Registry registry;   // mtlb-lint: allow(R6)
    return registry;
}

void
Registry::add(Flag *flag)
{
    std::lock_guard<std::mutex> lock(mutex_);
    flags_.emplace(flag->name(), flag);
    if (armed_.count(flag->name()))
        flag->enable();
}

void
Registry::remove(Flag *flag)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [lo, hi] = flags_.equal_range(flag->name());
    for (auto it = lo; it != hi; ++it) {
        if (it->second == flag) {
            flags_.erase(it);
            return;
        }
    }
}

void
Registry::enable(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [lo, hi] = flags_.equal_range(name);
    fatalIf(lo == hi, "no debug flag named '", name, "'");
    for (auto it = lo; it != hi; ++it)
        it->second->enable();
    armed_.insert(name);
}

void
Registry::disable(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [lo, hi] = flags_.equal_range(name);
    fatalIf(lo == hi, "no debug flag named '", name, "'");
    for (auto it = lo; it != hi; ++it)
        it->second->disable();
    armed_.erase(name);
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (const auto &[name, flag] : flags_) {
        if (out.empty() || out.back() != name)
            out.push_back(name);    // multimap iterates name-sorted
    }
    return out;
}

void
Registry::enableList(const std::string &list)
{
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string token = list.substr(begin, end - begin);
        if (!token.empty()) {
            if (token == "All") {
                std::lock_guard<std::mutex> lock(mutex_);
                for (auto &[name, flag] : flags_) {
                    flag->enable();
                    armed_.insert(name);
                }
            } else {
                // Unlike enable(), a list token with no carrier yet
                // is NOT fatal: MTLBSIM_DEBUG is parsed before any
                // System (and its component flags) exists, so the
                // name is armed and late registrations start
                // enabled.
                std::lock_guard<std::mutex> lock(mutex_);
                auto [lo, hi] = flags_.equal_range(token);
                for (auto it = lo; it != hi; ++it)
                    it->second->enable();
                armed_.insert(token);
            }
        }
        begin = end + 1;
    }
}

Flag::Flag(const std::string &name) : Flag(name, Registry::process()) {}

Flag::Flag(const std::string &name, Registry &registry)
    : registry_(registry), name_(name)
{
    registry_.add(this);
}

Flag::~Flag()
{
    registry_.remove(this);
}

void
enableFlag(const std::string &name)
{
    Registry::process().enable(name);
}

void
disableFlag(const std::string &name)
{
    Registry::process().disable(name);
}

std::vector<std::string>
allFlags()
{
    return Registry::process().names();
}

void
enableFromList(const std::string &list)
{
    Registry::process().enableList(list);
}

void
initFromEnvironment()
{
    // Debug-trace selection is allowed to read the environment: it
    // only toggles stderr logging, never simulated behaviour.
    if (const char *env = std::getenv("MTLBSIM_DEBUG")) // mtlb-lint: allow(R5)
        enableFromList(env);
}

namespace detail
{

void
emit(const std::string &flag_name, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", flag_name.c_str(), msg.c_str());
}

} // namespace detail

} // namespace mtlbsim::debug
