#include "base/debug.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace mtlbsim::debug
{

namespace
{

/** Global flag registry (function-local static avoids order-of-
 *  initialisation issues with flags defined at namespace scope). */
std::map<std::string, Flag *> &
registry()
{
    static std::map<std::string, Flag *> flags;
    return flags;
}

} // namespace

Flag::Flag(const std::string &name) : name_(name)
{
    auto [it, inserted] = registry().emplace(name, this);
    (void)it;
    fatalIf(!inserted, "duplicate debug flag '", name, "'");
}

Flag::~Flag()
{
    registry().erase(name_);
}

void
enableFlag(const std::string &name)
{
    auto it = registry().find(name);
    fatalIf(it == registry().end(), "no debug flag named '", name,
            "'");
    it->second->enable();
}

void
disableFlag(const std::string &name)
{
    auto it = registry().find(name);
    fatalIf(it == registry().end(), "no debug flag named '", name,
            "'");
    it->second->disable();
}

std::vector<std::string>
allFlags()
{
    std::vector<std::string> names;
    for (const auto &[name, flag] : registry())
        names.push_back(name);
    return names;
}

void
enableFromList(const std::string &list)
{
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string token = list.substr(begin, end - begin);
        if (!token.empty()) {
            if (token == "All") {
                for (auto &[name, flag] : registry())
                    flag->enable();
            } else {
                enableFlag(token);
            }
        }
        begin = end + 1;
    }
}

void
initFromEnvironment()
{
    if (const char *env = std::getenv("MTLBSIM_DEBUG"))
        enableFromList(env);
}

namespace detail
{

void
emit(const std::string &flag_name, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", flag_name.c_str(), msg.c_str());
}

} // namespace detail

} // namespace mtlbsim::debug
