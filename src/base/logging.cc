#include "base/logging.hh"

#include <cstdio>

#include "base/debug.hh"

namespace mtlbsim
{

void
setInformEnabled(bool enabled)
{
    debug::Registry::process().setInformEnabled(enabled);
}

namespace detail
{

void
emitLog(const char *level, const std::string &msg)
{
    if (level == std::string("info") &&
        !debug::Registry::process().informEnabled())
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail

} // namespace mtlbsim
