#include "base/logging.hh"

#include <atomic>
#include <cstdio>

namespace mtlbsim
{

namespace
{
/** Atomic: sweep worker threads log while the driver toggles it. */
std::atomic<bool> informEnabled{true};
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

namespace detail
{

void
emitLog(const char *level, const std::string &msg)
{
    if (level == std::string("info") &&
        !informEnabled.load(std::memory_order_relaxed))
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail

} // namespace mtlbsim
