#include "base/logging.hh"

#include <cstdio>

namespace mtlbsim
{

namespace
{
bool informEnabled = true;
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

namespace detail
{

void
emitLog(const char *level, const std::string &msg)
{
    if (level == std::string("info") && !informEnabled)
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail

} // namespace mtlbsim
