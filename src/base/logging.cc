#include "base/logging.hh"

#include <atomic>
#include <cstdio>

namespace mtlbsim
{

namespace
{
/** Atomic: sweep worker threads log while the driver toggles it.
 *  Inventoried R6 exception: a process-wide stderr verbosity latch
 *  with no simulated-behaviour reach; threading it through every
 *  panic/fatal call site would buy nothing. */
std::atomic<bool> informEnabled{true};  // mtlb-lint: allow(R6)
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

namespace detail
{

void
emitLog(const char *level, const std::string &msg)
{
    if (level == std::string("info") &&
        !informEnabled.load(std::memory_order_relaxed))
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail

} // namespace mtlbsim
