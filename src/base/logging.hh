/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for simulator bugs (things
 * that should never happen regardless of user input) and aborts;
 * fatal() is for user errors (bad configuration, invalid arguments)
 * and exits cleanly with an error code; warn() and inform() report
 * conditions without stopping the simulation.
 */

#ifndef MTLBSIM_BASE_LOGGING_HH
#define MTLBSIM_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mtlbsim
{

/** Exception thrown by panic(); carries the formatted message. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Build a single message string from a parameter pack. */
template <typename... Args>
std::string
buildMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitLog(const char *level, const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and abort via exception.
 *
 * Throws PanicError rather than calling abort() so that tests can
 * assert on invariant violations without killing the process.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::buildMessage(std::forward<Args>(args)...);
    detail::emitLog("panic", msg);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user error (bad config, invalid argument).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::buildMessage(std::forward<Args>(args)...);
    detail::emitLog("fatal", msg);
    throw FatalError(msg);
}

/** Warn about suspicious but non-fatal conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog("warn", detail::buildMessage(std::forward<Args>(args)...));
}

/** Provide normal operating status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog("info", detail::buildMessage(std::forward<Args>(args)...));
}

/** Globally enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/**
 * Assert a simulator invariant; panics with the message on failure.
 */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** Fail with fatal() when a user-facing precondition is violated. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace mtlbsim

#endif // MTLBSIM_BASE_LOGGING_HH
