/**
 * @file
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef MTLBSIM_BASE_INTMATH_HH
#define MTLBSIM_BASE_INTMATH_HH

#include <cstdint>

#include "base/logging.hh"

namespace mtlbsim
{

/** True when @p n is a (positive) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned result = 0;
    while (n >>= 1)
        ++result;
    return result;
}

/** Ceiling of log2(n); n must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace mtlbsim

#endif // MTLBSIM_BASE_INTMATH_HH
