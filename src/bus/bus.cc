#include "bus/bus.hh"

namespace mtlbsim
{

Bus::Bus(const BusConfig &config, stats::StatGroup &parent)
    : config_(config),
      statGroup_("bus"),
      transactions_(statGroup_.addScalar("transactions",
                                         "bus transactions issued")),
      requests_(statGroup_.addScalar("requests",
                                     "request-phase transactions")),
      dataReturns_(statGroup_.addScalar("data_returns",
                                        "fill data-return transactions")),
      queueCycles_(statGroup_.addScalar("queue_cycles",
                                        "CPU cycles spent queued for the "
                                        "bus")),
      busyCycles_(statGroup_.addScalar("busy_cycles",
                                       "CPU cycles the bus was occupied"))
{
    parent.addChild(&statGroup_);
}

Cycles
Bus::occupy(Cycles now, Cycles bus_cycles)
{
    const Cycles duration = mmcToCpuCycles(bus_cycles);
    Cycles queue = 0;
    if (busyUntil_ > now)
        queue = busyUntil_ - now;
    busyUntil_ = now + queue + duration;

    queueCycles_ += static_cast<double>(queue);
    busyCycles_ += static_cast<double>(duration);
    return queue + duration;
}

Cycles
Bus::request(BusOp op, Cycles now)
{
    ++transactions_;
    ++requests_;
    Cycles bus_cycles = config_.arbitrationCycles + config_.addressCycles;
    if (op == BusOp::WriteBack)
        bus_cycles += config_.lineDataCycles;
    else if (op == BusOp::Uncached)
        bus_cycles += 1;  // one word of payload
    return occupy(now, bus_cycles);
}

Cycles
Bus::dataReturn(Cycles now)
{
    // Data returns are phases of an already-counted transaction; they
    // are tracked separately so the auditor can cross-check them
    // against cache fills without disturbing `transactions`.
    ++dataReturns_;
    return occupy(now, config_.lineDataCycles);
}

} // namespace mtlbsim
