/**
 * @file
 * Runway-like split-transaction system bus model.
 *
 * The paper's simulated machine uses HP's Runway bus [Bryg et al. 96]
 * clocked at 120 MHz between a 240 MHz CPU and the MMC. We model the
 * address phase (arbitration + address transfer) and the data phase
 * (a 32-byte line over a 64-bit data path = 4 bus cycles), plus
 * queueing when a new transaction arrives while the bus is busy.
 *
 * With a single in-order CPU the queueing term is small, but it is
 * modelled so that write-backs issued alongside fills contend
 * realistically.
 */

#ifndef MTLBSIM_BUS_BUS_HH
#define MTLBSIM_BUS_BUS_HH

#include "base/types.hh"
#include "stats/stats.hh"

namespace mtlbsim
{

/** Bus timing configuration (cycles are 120 MHz bus cycles). */
struct BusConfig
{
    Cycles arbitrationCycles = 1;   ///< win arbitration
    Cycles addressCycles = 1;       ///< transmit the address
    Cycles lineDataCycles = 4;      ///< 32 B over 64-bit path
};

/** Kinds of bus transaction the cache/MMC exchange. */
enum class BusOp : std::uint8_t
{
    ReadShared,     ///< cache fill for a load
    ReadExclusive,  ///< cache fill for a store (write-allocate)
    WriteBack,      ///< dirty victim line to memory
    Uncached,       ///< uncached word access (e.g. MMC control regs)
};

/**
 * Cycle-cost bus model with a single shared channel.
 */
class Bus
{
  public:
    Bus(const BusConfig &config, stats::StatGroup &parent);

    /**
     * Occupy the bus for one transaction's request phase.
     *
     * @param op  transaction type
     * @param now current time in CPU cycles
     * @return    CPU cycles until the request has reached the MMC
     *            (queueing + arbitration + address [+ data for
     *            write-backs, which carry their payload])
     */
    Cycles request(BusOp op, Cycles now);

    /**
     * Occupy the bus for a fill's data-return phase.
     *
     * @param now current time in CPU cycles (when the MMC has data)
     * @return    CPU cycles to deliver the line to the cache
     */
    Cycles dataReturn(Cycles now);

    const BusConfig &config() const { return config_; }

    /** @name Counters for the stats-identity audits (src/check) */
    /** @{ */
    std::uint64_t
    transactions() const
    {
        return static_cast<std::uint64_t>(transactions_.value());
    }
    std::uint64_t
    requests() const
    {
        return static_cast<std::uint64_t>(requests_.value());
    }
    std::uint64_t
    dataReturns() const
    {
        return static_cast<std::uint64_t>(dataReturns_.value());
    }
    /** @} */

  private:
    /** Occupy the channel for @p bus_cycles starting at @p now. */
    Cycles occupy(Cycles now, Cycles bus_cycles);

    BusConfig config_;
    Cycles busyUntil_ = 0;  ///< CPU-cycle time the channel frees up

    stats::StatGroup statGroup_;
    stats::Scalar &transactions_;
    stats::Scalar &requests_;
    stats::Scalar &dataReturns_;
    stats::Scalar &queueCycles_;
    stats::Scalar &busyCycles_;
};

} // namespace mtlbsim

#endif // MTLBSIM_BUS_BUS_HH
