/**
 * @file
 * Single-issue CPU timing model.
 *
 * Models the paper's simulated processor (§3.2): a single-issue
 * 240 MHz CPU with a perfect instruction cache, a unified I/D TLB,
 * a single-entry micro-ITLB, a non-blocking data cache, and
 * stall-on-use semantics.
 *
 * Workloads drive the CPU execution-style: execute(n) retires n
 * non-memory instructions (one per cycle), load()/store() perform
 * data references. Stall-on-use is approximated: a load's miss
 * latency can be overlapped with up to its use-distance's worth of
 * subsequent instructions; stores retire through a store buffer and
 * stall only when a second miss arrives while the buffer is busy.
 * With useDistance 0 and the store buffer disabled the model
 * degenerates to fully blocking.
 *
 * TLB misses trap to the kernel's software handler (§3.2), whose
 * cycles are tracked separately so the runtime/miss-time split of
 * Figure 3 can be reported.
 */

#ifndef MTLBSIM_CPU_CPU_HH
#define MTLBSIM_CPU_CPU_HH

#include <functional>

#include "cache/cache.hh"
#include "cpu/l0_cache.hh"
#include "mmc/memsys.hh"
#include "os/kernel.hh"
#include "stats/stats.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

/** CPU timing-model configuration. */
struct CpuConfig
{
    /** Instructions between a load and the first use of its value;
     *  miss latency up to this many cycles is hidden (stall-on-use
     *  approximation). 0 = blocking loads. */
    Cycles loadUseOverlap = 0;
    /** Allow one outstanding store miss to drain in the background
     *  (non-blocking write-allocate with a 1-deep store buffer). */
    bool storeBuffer = true;
    /** L0 translation fast-path entries (power of two; 0 disables).
     *  A host-speed knob only: simulated behaviour and statistics
     *  are bit-identical for every value (see l0_cache.hh). */
    unsigned l0Entries = 512;
};

/**
 * The CPU.
 */
class Cpu
{
  public:
    Cpu(const CpuConfig &config, Tlb &tlb, MicroItlb &uitlb,
        Cache &cache, MemorySystem &memsys, Kernel &kernel,
        stats::StatGroup &parent);

    /** Retire @p n non-memory instructions (1 cycle each). */
    void
    execute(Counter n)
    {
        instructions_ += static_cast<double>(n);
        now_ += n;
    }

    /**
     * Retire @p n instructions fetched from the code page at
     * @p code_vaddr, modelling unified-TLB pressure from the
     * instruction stream: the fetch consults the micro-ITLB and, on
     * a micro-ITLB miss, the unified TLB (trapping on a miss there).
     */
    void executeAt(Counter n, Addr code_vaddr);

    /** Perform a data load at @p vaddr. */
    void load(Addr vaddr) { dataAccess(vaddr, AccessType::Read); }

    /** Perform a data store at @p vaddr. */
    void store(Addr vaddr) { dataAccess(vaddr, AccessType::Write); }

    /** @name Kernel service wrappers (advance the CPU clock) */
    /** @{ */
    void
    remap(Addr vbase, Addr bytes)
    {
        now_ += kernel_.remap(vbase, bytes, now_);
    }

    Addr
    sbrk(Addr bytes)
    {
        SbrkResult r = kernel_.sbrk(bytes, now_);
        now_ += r.cycles;
        return r.oldBreak;
    }

    void
    recolorPage(Addr vaddr, unsigned color)
    {
        now_ += kernel_.recolorPage(vaddr, color, now_);
    }
    /** @} */

    /**
     * Arrange for @p hook to run once per @p interval simulated
     * cycles (the src/check periodic audit). The hook fires between
     * accesses, when all translation state is settled. Interval 0
     * disables.
     */
    void
    setPeriodicCheck(Cycles interval, std::function<void(Cycles)> hook)
    {
        checkInterval_ = interval;
        checkHook_ = std::move(hook);
        nextCheckAt_ = now_ + interval;
    }

    /** Current simulated time in CPU cycles. */
    Cycles now() const { return now_; }

    /** The L0 translation fast path (bench/ and audit support). */
    L0TranslationCache &l0() { return l0_; }
    const L0TranslationCache &l0() const { return l0_; }

    Counter
    instructions() const
    {
        return static_cast<Counter>(instructions_.value());
    }

    std::uint64_t
    dataAccesses() const
    {
        return static_cast<std::uint64_t>(loads_.value() +
                                          stores_.value());
    }

  private:
    void dataAccess(Addr vaddr, AccessType type);

    /** Fire the periodic check hook when its interval has elapsed.
     *  Called on access boundaries, where state is consistent. */
    void
    maybeRunCheck()
    {
        if (checkInterval_ == 0 || now_ < nextCheckAt_)
            return;
        while (nextCheckAt_ <= now_)
            nextCheckAt_ += checkInterval_;
        checkHook_(now_);
    }

    /** Translate @p vaddr, trapping to the kernel on a TLB miss.
     *  Returns the (possibly shadow) physical address. */
    Addr translate(Addr vaddr, AccessType type);

    CpuConfig config_;
    Tlb &tlb_;
    MicroItlb &uitlb_;
    Cache &cache_;
    MemorySystem &memsys_;
    Kernel &kernel_;

    L0TranslationCache l0_;

    Cycles now_ = 0;
    Cycles storeBufferBusyUntil_ = 0;

    Cycles checkInterval_ = 0;  ///< 0 = no periodic check
    Cycles nextCheckAt_ = 0;
    std::function<void(Cycles)> checkHook_;

    stats::StatGroup statGroup_;
    stats::Scalar &instructions_;
    stats::Scalar &loads_;
    stats::Scalar &stores_;
    stats::Scalar &ifetchChecks_;
    stats::Scalar &stallCycles_;
    stats::Scalar &hiddenCycles_;
};

} // namespace mtlbsim

#endif // MTLBSIM_CPU_CPU_HH
