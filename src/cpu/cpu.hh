/**
 * @file
 * Single-issue CPU timing model.
 *
 * Models the paper's simulated processor (§3.2): a single-issue
 * 240 MHz CPU with a perfect instruction cache, a unified I/D TLB,
 * a single-entry micro-ITLB, a non-blocking data cache, and
 * stall-on-use semantics.
 *
 * Workloads drive the CPU execution-style: execute(n) retires n
 * non-memory instructions (one per cycle), load()/store() perform
 * data references. Stall-on-use is approximated: a load's miss
 * latency can be overlapped with up to its use-distance's worth of
 * subsequent instructions; stores retire through a store buffer and
 * stall only when a second miss arrives while the buffer is busy.
 * With useDistance 0 and the store buffer disabled the model
 * degenerates to fully blocking.
 *
 * TLB misses trap to the kernel's software handler (§3.2), whose
 * cycles are tracked separately so the runtime/miss-time split of
 * Figure 3 can be reported.
 */

#ifndef MTLBSIM_CPU_CPU_HH
#define MTLBSIM_CPU_CPU_HH

#include <functional>

#include "cache/cache.hh"
#include "cpu/l0_cache.hh"
#include "mmc/memsys.hh"
#include "os/kernel.hh"
#include "stats/stats.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

/** CPU timing-model configuration. */
struct CpuConfig
{
    /** Instructions between a load and the first use of its value;
     *  miss latency up to this many cycles is hidden (stall-on-use
     *  approximation). 0 = blocking loads. */
    Cycles loadUseOverlap = 0;
    /** Allow one outstanding store miss to drain in the background
     *  (non-blocking write-allocate with a 1-deep store buffer). */
    bool storeBuffer = true;
    /** L0 translation fast-path entries (power of two; 0 disables).
     *  A host-speed knob only: simulated behaviour and statistics
     *  are bit-identical for every value (see l0_cache.hh). */
    unsigned l0Entries = 512;
    /** Batched same-page access engine: replay runs of consecutive
     *  accesses that hit the same (vpage, resident-cache-line)
     *  fast-path state without re-entering the TLB/cache/bus models
     *  per access (docs/manual.md §9). Like the L0, a host-speed
     *  knob only: simulated behaviour and statistics are
     *  byte-identical with it on or off. */
    bool batchEnable = true;
    /** Accesses accumulated per bulk statistics replay; bounds how
     *  far the deferred counters may lag their per-access values
     *  between flush points. 0 disables batching outright. */
    unsigned batchWindow = 4096;
};

/**
 * One operation a workload asked of the CPU, as captured by the
 * recorder hook (setRecorder). The multiprogramming runner records a
 * program once on a scratch machine and replays the operation stream
 * under a scheduler (src/workloads/multiprog.*).
 */
struct CpuOpRecord
{
    enum class Kind
    {
        Load,
        Store,
        Execute,
        ExecuteAt,
        Remap,
        Sbrk,
        SetSbrkPrealloc,
        Recolor,
    };

    Kind kind = Kind::Execute;
    Addr a = 0;             ///< address operand (when the op has one)
    std::uint64_t n = 0;    ///< count/bytes/color operand
};

/**
 * The CPU.
 */
class Cpu
{
  public:
    /**
     * @param core_id this core's index in the shared kernel's core
     *        table; the CPU names itself (Kernel::setActiveCore)
     *        before every kernel entry
     */
    Cpu(const CpuConfig &config, Tlb &tlb, MicroItlb &uitlb,
        Cache &cache, MemorySystem &memsys, Kernel &kernel,
        stats::StatGroup &parent, unsigned core_id = 0);

    /** Retire @p n non-memory instructions (1 cycle each). */
    void
    execute(Counter n)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::Execute, 0, n});
        instructions_ += static_cast<double>(n);
        now_ += n;
    }

    /**
     * Retire @p n instructions fetched from the code page at
     * @p code_vaddr, modelling unified-TLB pressure from the
     * instruction stream: the fetch consults the micro-ITLB and, on
     * a micro-ITLB miss, the unified TLB (trapping on a miss there).
     *
     * The batch engine fast-paths the overwhelmingly common case —
     * micro-ITLB hit, no periodic check due — exactly as it does
     * data accesses: time advances eagerly, and the three
     * bookkeeping increments a hit performs (ifetch_checks, the
     * micro-ITLB hit count, instructions) are deferred and
     * bulk-added at the next flush point.
     */
    void
    executeAt(Counter n, Addr code_vaddr)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::ExecuteAt, code_vaddr, n});
        if (batchWindow_ != 0 && uitlb_.covers(code_vaddr) &&
            !(checkInterval_ != 0 && now_ >= nextCheckAt_)) {
            ++batch_.pendingIfetch;
            batch_.pendingInstructions += n;
            now_ += n;
            if (++batch_.count >= batchWindow_) {
                flushBatch();
                batch_.count = 0;
            }
            return;
        }
        executeAtSlow(n, code_vaddr);
    }

    /** Perform a data load at @p vaddr. */
    void
    load(Addr vaddr)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::Load, vaddr, 0});
        if (!tryBatchedAccess(vaddr, false))
            dataAccess(vaddr, AccessType::Read);
    }

    /** Perform a data store at @p vaddr. */
    void
    store(Addr vaddr)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::Store, vaddr, 0});
        if (!tryBatchedAccess(vaddr, true))
            dataAccess(vaddr, AccessType::Write);
    }

    /** @name Kernel service wrappers (advance the CPU clock) */
    /** @{ */
    void
    remap(Addr vbase, Addr bytes)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::Remap, vbase, bytes});
        flushBatch();
        noteCoreActive();
        now_ += kernel_.remap(vbase, bytes, now_);
    }

    Addr
    sbrk(Addr bytes)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::Sbrk, 0, bytes});
        flushBatch();
        noteCoreActive();
        SbrkResult r = kernel_.sbrk(bytes, now_);
        now_ += r.cycles;
        return r.oldBreak;
    }

    void
    recolorPage(Addr vaddr, unsigned color)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::Recolor, vaddr, color});
        flushBatch();
        noteCoreActive();
        now_ += kernel_.recolorPage(vaddr, color, now_);
    }

    /** Change the kernel's sbrk() preallocation chunk for this
     *  core's process. A zero-cycle libc knob, routed through the
     *  CPU so the recorder captures it. */
    void
    setSbrkPrealloc(Addr bytes)
    {
        if (recorder_)
            recorder_({CpuOpRecord::Kind::SetSbrkPrealloc, 0, bytes});
        noteCoreActive();
        kernel_.setSbrkPrealloc(bytes);
    }
    /** @} */

    /**
     * Observe every workload-issued operation (before it executes).
     * Host-side capture support for the multiprogramming runner;
     * null (the default) costs one predictable branch per op.
     */
    void
    setRecorder(std::function<void(const CpuOpRecord &)> recorder)
    {
        recorder_ = std::move(recorder);
    }

    /**
     * Advance the clock by @p n cycles without retiring work: the
     * scheduler's context-switch cost and the kernel's shootdown-IPI
     * service time both land here. Flushes the batch first so
     * deferred counts are realized under the pre-advance state.
     */
    void
    charge(Cycles n)
    {
        flushBatch();
        batch_.count = 0;
        now_ += n;
    }

    unsigned coreId() const { return coreId_; }

    /**
     * Realize the batch engine's deferred statistic counts — CPU
     * loads/stores, TLB hits, cache accesses/hits — as exact bulk
     * adds (Scalar::addCount). Must run before any external read of
     * those statistics: System::dumpStats()/audit(), the metric
     * collectors, and the fuzzer's final-stats capture all call it.
     * It only moves already-earned counts, so calling it at any
     * point is safe and changes no statistic's final value.
     */
    void
    flushBatch() const
    {
        if ((batch_.pendingLoads | batch_.pendingStores |
             batch_.pendingIfetch) == 0) {
            return;
        }
        const std::uint64_t n =
            batch_.pendingLoads + batch_.pendingStores;
        if (n != 0) {
            loads_.addCount(batch_.pendingLoads);
            stores_.addCount(batch_.pendingStores);
            tlb_.noteBatchedHits(n);
            cache_.noteBatchedHits(n);
            batch_.pendingLoads = 0;
            batch_.pendingStores = 0;
        }
        if (batch_.pendingIfetch != 0) {
            ifetchChecks_.addCount(batch_.pendingIfetch);
            uitlb_.noteBatchedHits(batch_.pendingIfetch);
            instructions_.addCount(batch_.pendingInstructions);
            batch_.pendingIfetch = 0;
            batch_.pendingInstructions = 0;
        }
    }

    /**
     * Arrange for @p hook to run once per @p interval simulated
     * cycles (the src/check periodic audit). The hook fires between
     * accesses, when all translation state is settled. Interval 0
     * disables.
     */
    void
    setPeriodicCheck(Cycles interval, std::function<void(Cycles)> hook)
    {
        checkInterval_ = interval;
        checkHook_ = std::move(hook);
        nextCheckAt_ = now_ + interval;
    }

    /** Current simulated time in CPU cycles. */
    Cycles now() const { return now_; }

    /** The L0 translation fast path (bench/ and audit support). */
    L0TranslationCache &l0() { return l0_; }
    const L0TranslationCache &l0() const { return l0_; }

    Counter
    instructions() const
    {
        flushBatch();
        return static_cast<Counter>(instructions_.value());
    }

    std::uint64_t
    dataAccesses() const
    {
        flushBatch();
        return static_cast<std::uint64_t>(loads_.value() +
                                          stores_.value());
    }

  private:
    /** A translation plus the protection bit the batch engine needs
     *  to accept stores without re-consulting the TLB. */
    struct Translation
    {
        Addr paddr = 0;
        bool writable = false;
    };

    /** One memoized page the batch engine may replay on: the
     *  (vpage, epoch) pair a batched access is conditioned on. */
    struct BatchAnchor
    {
        /** Virtual page this anchor covers; the all-ones sentinel
         *  never matches a real vpage, so no anchor is live
         *  initially. */
        Addr vpage = ~Addr{0};
        Addr pframeBase = 0;        ///< physical/shadow frame base
        /** Translation epoch the anchor was established under; any
         *  mutation of translation state bumps the TLB's epoch and
         *  kills every anchor (same interlock as the L0,
         *  l0_cache.hh). */
        std::uint64_t epoch = 0;
        bool writable = false;      ///< page accepts batched stores
    };

    /** Anchors kept live at once (direct-mapped by vpage, power of
     *  two). Hot sets alternate between pages far more often than
     *  they stream within one, so a single anchor would be displaced
     *  on every page change even though each page's state is still
     *  perfectly memoizable. Sized at 32 KB of host memory: twice
     *  the default L0 so anchor conflicts don't cap the batched
     *  fraction below the L0 hit rate. */
    static constexpr unsigned batchAnchorCount = 1024;

    /**
     * Memoized fast-path state of the batch engine: the anchor
     * array plus the deferred statistic counts accumulated across
     * all anchors (the five deferred counters are per-access, not
     * per-page, so one set of pending counts serves every anchor).
     * Host-side only — never part of the simulated machine state.
     * Mutable so flushBatch() can realize counts from const readers.
     */
    struct BatchState
    {
        BatchAnchor anchors[batchAnchorCount];
        unsigned count = 0;         ///< accesses since last flush
        std::uint64_t pendingLoads = 0;
        std::uint64_t pendingStores = 0;
        std::uint64_t pendingIfetch = 0;        ///< batched fetches
        std::uint64_t pendingInstructions = 0;  ///< their retires
    };

    /**
     * The batch engine's inline hot path. Accepts the access iff it
     * is provably equivalent to the full dataAccess() path on a
     * cache hit: same vpage as the live run, epoch unchanged, store
     * permission already proven, no periodic check due, and the
     * cache line resident. Everything else — page crossing, epoch
     * bump, would-be protection fault, line fill, check boundary —
     * falls back to the slow path, which re-establishes the run.
     *
     * Replay is split eager/deferred: simulated time and the line's
     * dirty bit advance immediately (kernel paths read both without
     * CPU involvement), while the five statistic increments a hit
     * performs are accumulated and bulk-added at the next flush
     * point (see DESIGN.md §7).
     */
    bool
    tryBatchedAccess(Addr vaddr, bool is_store)
    {
        const Addr vpage = vaddr >> basePageShift;
        const BatchAnchor &a =
            batch_.anchors[vpage & (batchAnchorCount - 1)];
        if (a.vpage != vpage ||
            a.epoch != tlb_.translationEpoch() ||
            (is_store && !a.writable) ||
            (checkInterval_ != 0 && now_ >= nextCheckAt_)) {
            return false;
        }
        const Addr paddr = a.pframeBase | pageOffset(vaddr);
        if (!cache_.batchHit(vaddr, paddr, is_store))
            return false;
        if (is_store)
            ++batch_.pendingStores;
        else
            ++batch_.pendingLoads;
        now_ += cacheHitCycles_;
        if (++batch_.count >= batchWindow_) {
            flushBatch();
            batch_.count = 0;
        }
        return true;
    }

    /** Arm the batch engine on the page a completed access proved
     *  hot. Caller guarantees the access succeeded (so the page is
     *  user-accessible) and batching is enabled. */
    void
    establishBatch(Addr vaddr, Addr paddr, bool writable)
    {
        const Addr vpage = vaddr >> basePageShift;
        BatchAnchor &a =
            batch_.anchors[vpage & (batchAnchorCount - 1)];
        a.vpage = vpage;
        a.pframeBase = pageBase(paddr);
        a.epoch = tlb_.translationEpoch();
        a.writable = writable;
    }

    void dataAccess(Addr vaddr, AccessType type);

    /** executeAt()'s full path: periodic check, micro-ITLB, unified
     *  TLB, per-access statistics. */
    void executeAtSlow(Counter n, Addr code_vaddr);

    /** Fire the periodic check hook when its interval has elapsed.
     *  Called on access boundaries, where state is consistent. */
    void
    maybeRunCheck()
    {
        if (checkInterval_ == 0 || now_ < nextCheckAt_)
            return;
        while (nextCheckAt_ <= now_)
            nextCheckAt_ += checkInterval_;
        flushBatch();   // the hook may read or dump statistics
        checkHook_(now_);
    }

    /** Translate @p vaddr, trapping to the kernel on a TLB miss.
     *  Returns the (possibly shadow) physical address plus the
     *  page's write permission. */
    Translation translate(Addr vaddr, AccessType type);

    /** Name this core as the machine's active requester before any
     *  kernel entry or memory traffic it may generate: the shared
     *  kernel routes TLB/micro-ITLB mutations to the active core's
     *  structures, and the memory system attributes MTLB port
     *  occupancy to the requester. */
    void
    noteCoreActive()
    {
        kernel_.setActiveCore(coreId_);
        memsys_.setRequester(coreId_);
    }

    CpuConfig config_;
    Tlb &tlb_;
    MicroItlb &uitlb_;
    Cache &cache_;
    MemorySystem &memsys_;
    Kernel &kernel_;

    L0TranslationCache l0_;

    /** Effective batch window: config batchWindow, or 0 when
     *  batchEnable is off (one compare disables the whole engine —
     *  a disabled batch never establishes, so vpage never matches). */
    unsigned batchWindow_;
    Cycles cacheHitCycles_;     ///< memoized cache.config().hitCycles
    mutable BatchState batch_;

    Cycles now_ = 0;
    Cycles storeBufferBusyUntil_ = 0;

    Cycles checkInterval_ = 0;  ///< 0 = no periodic check
    Cycles nextCheckAt_ = 0;
    std::function<void(Cycles)> checkHook_;

    unsigned coreId_;
    /** Host-side op capture hook (multiprog runner); null in normal
     *  runs, where it costs one predictable branch per op. */
    std::function<void(const CpuOpRecord &)> recorder_;

    stats::StatGroup statGroup_;
    stats::Scalar &instructions_;
    stats::Scalar &loads_;
    stats::Scalar &stores_;
    stats::Scalar &ifetchChecks_;
    stats::Scalar &stallCycles_;
    stats::Scalar &hiddenCycles_;
};

} // namespace mtlbsim

#endif // MTLBSIM_CPU_CPU_HH
