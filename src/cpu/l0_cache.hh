/**
 * @file
 * L0 translation fast-path cache (host-side memoization).
 *
 * A small direct-mapped software array in front of Tlb::lookup that
 * memoizes the hot virtual->physical hit path at base-page grain:
 * vpage -> (pframe base, protection, size class, owning TLB slot).
 * A hit skips the TLB's per-size-class hash-map probe chain entirely.
 *
 * This is a *host* performance structure, not a modelled hardware
 * component: it never appears in the statistics tree, charges no
 * simulated cycles, and — by construction — never changes simulated
 * behaviour (see DESIGN.md §7, "L0 fast path"). Correctness rests on
 * the global translation epoch owned by the Tlb: every mutation of
 * CPU-visible translation state bumps the epoch, and an L0 entry is
 * live only while its stamped epoch equals the TLB's current one, so
 * stale entries are invalidated lazily without touching the array.
 *
 * The NRU referenced bit needs no per-hit store: an entry is filled
 * only from a slow-path TLB hit, which sets the owning entry's
 * referenced bit; that bit can only be cleared inside Tlb::pickVictim,
 * which runs inside Tlb::insert, which bumps the epoch — so for as
 * long as an L0 entry is live, its owning TLB entry's referenced bit
 * is already true and re-storing it would be a no-op. The
 * TranslationAuditor's "l0-coherence" invariant cross-checks exactly
 * this, plus the mapping itself, on every audit.
 */

#ifndef MTLBSIM_CPU_L0_CACHE_HH
#define MTLBSIM_CPU_L0_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "tlb/tlb.hh"

namespace mtlbsim
{

/** One memoized base-page translation. */
struct L0Entry
{
    /** Virtual page number tag; the all-ones sentinel never matches
     *  a real vpage on a machine with <64 VA bits. */
    Addr vpage = ~Addr{0};
    /** Physical (possibly shadow) base of this base page; the full
     *  translation is pframeBase | pageOffset(vaddr). */
    Addr pframeBase = 0;
    /** Translation epoch at fill time; live iff it equals the TLB's
     *  current epoch. */
    std::uint64_t epoch = 0;
    PageProtection prot;
    unsigned sizeClass = 0; ///< owning TLB entry's size class
    unsigned tlbSlot = 0;   ///< owning TLB entry's slot (audit hook)
};

/**
 * Direct-mapped, epoch-invalidated translation memo. Constructed
 * with 0 entries it is disabled and lookup() never hits.
 */
class L0TranslationCache
{
  public:
    explicit L0TranslationCache(unsigned num_entries)
        : entries_(num_entries), mask_(num_entries - 1)
    {
        fatalIf(num_entries != 0 && !isPowerOf2(num_entries),
                "cpu.l0_entries must be 0 or a power of two, got ",
                num_entries);
    }

    bool enabled() const { return !entries_.empty(); }
    unsigned capacity() const
    {
        return static_cast<unsigned>(entries_.size());
    }

    /** Hot path: the live entry covering @p vaddr, else nullptr.
     *  Host-side hit/miss counters are updated. */
    const L0Entry *
    lookup(Addr vaddr, std::uint64_t epoch)
    {
        const Addr vpage = vaddr >> basePageShift;
        const L0Entry &e = entries_[vpage & mask_];
        if (e.vpage == vpage && e.epoch == epoch) {
            ++hitCount_;
            return &e;
        }
        ++missCount_;
        return nullptr;
    }

    /** Memoize a slow-path TLB hit. @p entry is the TLB entry that
     *  translated @p vaddr, living in slot @p slot. */
    void
    fill(Addr vaddr, const TlbEntry &entry, unsigned slot,
         std::uint64_t epoch)
    {
        const Addr vpage = vaddr >> basePageShift;
        L0Entry &e = entries_[vpage & mask_];
        e.vpage = vpage;
        e.pframeBase = pageBase(entry.translate(vaddr));
        e.epoch = epoch;
        e.prot = entry.prot;
        e.sizeClass = entry.sizeClass;
        e.tlbSlot = slot;
    }

    /** Probe without counting (tests): the live entry for @p vaddr
     *  under @p epoch, else nullptr. */
    const L0Entry *
    probe(Addr vaddr, std::uint64_t epoch) const
    {
        if (!enabled())
            return nullptr;
        const Addr vpage = vaddr >> basePageShift;
        const L0Entry &e = entries_[vpage & mask_];
        return (e.vpage == vpage && e.epoch == epoch) ? &e : nullptr;
    }

    /** Every live entry under @p epoch, for the invariant auditor. */
    std::vector<L0Entry>
    auditState(std::uint64_t epoch) const
    {
        std::vector<L0Entry> live;
        for (const L0Entry &e : entries_) {
            if (e.epoch == epoch && e.vpage != ~Addr{0})
                live.push_back(e);
        }
        return live;
    }

    /** Largest epoch stamped on any entry, live or stale (0 when the
     *  array was never filled). Entries are stamped from the TLB's
     *  current epoch at fill time, so this must never run ahead of
     *  Tlb::translationEpoch(); the auditor asserts that
     *  (TranslationAuditor::checkL0Coherence) because a from-the-future
     *  stamp is invisible to auditState() yet would spring back to
     *  life when the epoch catches up. */
    std::uint64_t
    maxStampedEpoch() const
    {
        std::uint64_t max = 0;
        for (const L0Entry &e : entries_)
            if (e.epoch > max)
                max = e.epoch;
        return max;
    }

    /** @name Host-side performance counters (never simulated stats) */
    /** @{ */
    std::uint64_t hitCount() const { return hitCount_; }
    std::uint64_t missCount() const { return missCount_; }
    double
    hitRate() const
    {
        const std::uint64_t total = hitCount_ + missCount_;
        return total ? static_cast<double>(hitCount_) /
                           static_cast<double>(total)
                     : 0.0;
    }
    /** @} */

    /** Fault-injection hook: corrupt the live entry covering
     *  @p vaddr so the auditor's l0-coherence check can be tested.
     *  Compiled only under MTLBSIM_CHECK_TESTING. */
    void
    testingCorruptEntry(Addr vaddr, std::uint64_t epoch)
    {
#ifdef MTLBSIM_CHECK_TESTING
        const Addr vpage = vaddr >> basePageShift;
        L0Entry &e = entries_[vpage & mask_];
        panicIf(e.vpage != vpage || e.epoch != epoch,
                "no live L0 entry to corrupt at 0x", std::hex, vaddr);
        e.pframeBase ^= basePageSize; // point at the wrong frame
#else
        (void)vaddr;
        (void)epoch;
        panic("fault injection requires MTLBSIM_CHECK_TESTING");
#endif
    }

  private:
    std::vector<L0Entry> entries_;
    Addr mask_;
    std::uint64_t hitCount_ = 0;
    std::uint64_t missCount_ = 0;
};

} // namespace mtlbsim

#endif // MTLBSIM_CPU_L0_CACHE_HH
