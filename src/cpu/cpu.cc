#include "cpu/cpu.hh"

namespace mtlbsim
{

Cpu::Cpu(const CpuConfig &config, Tlb &tlb, MicroItlb &uitlb,
         Cache &cache, MemorySystem &memsys, Kernel &kernel,
         stats::StatGroup &parent, unsigned core_id)
    : config_(config), tlb_(tlb), uitlb_(uitlb), cache_(cache),
      memsys_(memsys), kernel_(kernel),
      l0_(config.l0Entries),
      batchWindow_(config.batchEnable ? config.batchWindow : 0),
      cacheHitCycles_(cache.config().hitCycles),
      coreId_(core_id),
      statGroup_("cpu"),
      instructions_(statGroup_.addScalar("instructions",
                                         "instructions retired")),
      loads_(statGroup_.addScalar("loads", "data loads issued")),
      stores_(statGroup_.addScalar("stores", "data stores issued")),
      ifetchChecks_(statGroup_.addScalar("ifetch_checks",
                                         "instruction-fetch translation "
                                         "checks")),
      stallCycles_(statGroup_.addScalar("stall_cycles",
                                        "cycles stalled on memory")),
      hiddenCycles_(statGroup_.addScalar("hidden_cycles",
                                         "miss cycles hidden by "
                                         "stall-on-use overlap"))
{
    parent.addChild(&statGroup_);
}

Cpu::Translation
Cpu::translate(Addr vaddr, AccessType type)
{
    // L0 fast path: a live entry is a translation the full lookup
    // below produced since the last mutation of translation state,
    // so returning it is exact memoization. The permission tests
    // mirror Tlb::lookup's; a would-be protection fault falls
    // through so the slow path counts and reports it identically.
    if (l0_.enabled()) {
        const std::uint64_t epoch = tlb_.translationEpoch();
        if (const L0Entry *e = l0_.lookup(vaddr, epoch)) {
            if ((type != AccessType::Write || e->prot.writable) &&
                e->prot.userAccessible) {
                tlb_.noteL0Hit();
                return {e->pframeBase | pageOffset(vaddr),
                        e->prot.writable};
            }
        }
    }

    TlbLookupResult result = tlb_.lookup(vaddr, type, AccessMode::User);
    if (!result.hit) {
        // Trap to the software miss handler (§3.2). Its cycles are
        // the Figure 3 "TLB miss time".
        now_ += kernel_.handleTlbMiss(vaddr, type, now_);
        result = tlb_.lookup(vaddr, type, AccessMode::User);
        panicIf(!result.hit, "TLB miss immediately after handler");
    }
    fatalIf(result.protFault,
            "protection fault at 0x", std::hex, vaddr);
    bool writable = false;
    if (result.slot >= 0) {
        const TlbEntry &entry =
            tlb_.entryAt(static_cast<unsigned>(result.slot));
        writable = entry.prot.writable;
        if (l0_.enabled()) {
            l0_.fill(vaddr, entry,
                     static_cast<unsigned>(result.slot),
                     tlb_.translationEpoch());
        }
    }
    return {result.paddr, writable};
}

void
Cpu::executeAtSlow(Counter n, Addr code_vaddr)
{
    noteCoreActive();
    maybeRunCheck();
    ++ifetchChecks_;
    if (!uitlb_.hit(code_vaddr)) {
        // The unified TLB provides the translation; it may trap.
        translate(code_vaddr, AccessType::IFetch);
        // Cache the translation in the micro-ITLB for subsequent
        // sequential fetches.
        auto entry = tlb_.probe(code_vaddr);
        panicIf(!entry, "ITLB fill lost its unified-TLB entry");
        uitlb_.fill(*entry);
    }
    // Retire directly rather than through execute(): the public
    // executeAt() entry already fed the recorder for this op.
    instructions_ += static_cast<double>(n);
    now_ += n;
}

void
Cpu::dataAccess(Addr vaddr, AccessType type)
{
    // Deferred counts may stay pending across this access: bulk adds
    // and the direct increments below are exact integer sums, so
    // their interleaving is irrelevant to every final value, and no
    // stats reader runs without flushing first (flush points:
    // flushBatch() callers).
    noteCoreActive();
    maybeRunCheck();
    const bool is_store = type == AccessType::Write;
    if (is_store)
        ++stores_;
    else
        ++loads_;

    const Translation tr = translate(vaddr, type);
    const Addr paddr = tr.paddr;

    CacheAccessResult r = cache_.access(vaddr, paddr, is_store, now_);

    if (memsys_.faulted()) {
        // The MMC raised a precise fault: the base page backing this
        // shadow address is swapped out (§4). The bogus line must
        // not remain cached; the kernel reloads the page and the
        // access retries.
        cache_.invalidateLine(vaddr, paddr);
        now_ += r.latency;
        now_ += kernel_.handleShadowPageFault(vaddr, now_);
        r = cache_.access(vaddr, paddr, is_store, now_);
        panicIf(memsys_.faulted(), "shadow fault persists after reload");
    }

    // Every exit below leaves (vaddr, paddr)'s line resident, so the
    // page is fast-path hot: arm the batch engine on it.
    if (batchWindow_ != 0)
        establishBatch(vaddr, paddr, tr.writable);

    if (r.hit) {
        now_ += r.latency;
        return;
    }

    // Miss timing: apply the stall-on-use / store-buffer overlap
    // approximations.
    if (is_store && config_.storeBuffer) {
        // The store retires into the buffer; the CPU only waits if
        // the buffer is still draining a previous miss.
        if (now_ < storeBufferBusyUntil_) {
            const Cycles wait = storeBufferBusyUntil_ - now_;
            stallCycles_ += static_cast<double>(wait);
            now_ += wait;
        }
        hiddenCycles_ += static_cast<double>(r.latency - 1);
        storeBufferBusyUntil_ = now_ + r.latency;
        now_ += 1;
        return;
    }

    Cycles charged = r.latency;
    if (config_.loadUseOverlap > 0) {
        const Cycles hidden =
            charged - 1 < config_.loadUseOverlap ? charged - 1
                                                 : config_.loadUseOverlap;
        hiddenCycles_ += static_cast<double>(hidden);
        charged -= hidden;
    }
    stallCycles_ += static_cast<double>(charged > 1 ? charged - 1 : 0);
    now_ += charged;
}

} // namespace mtlbsim
