/**
 * @file
 * Trace capture and replay adapters around the CPU model.
 *
 * TracingCpu mirrors the Cpu driving interface and tees every
 * operation into a TraceWriter while forwarding it to a real Cpu —
 * wrap it around a workload run to capture its reference stream.
 *
 * TraceReplayer feeds a captured trace back into a System: the same
 * input stream can then be replayed against many machine
 * configurations, trace-driven-simulation style.
 */

#ifndef MTLBSIM_TRACE_TRACING_CPU_HH
#define MTLBSIM_TRACE_TRACING_CPU_HH

#include "cpu/cpu.hh"
#include "sim/system.hh"
#include "trace/trace.hh"

namespace mtlbsim
{

/**
 * Tee adapter: forwards to a Cpu, records to a TraceWriter.
 *
 * Matches the subset of the Cpu interface workloads drive, so a
 * workload templated or hand-written against either works the same.
 */
class TracingCpu
{
  public:
    TracingCpu(Cpu &cpu, TraceWriter &writer)
        : cpu_(cpu), writer_(writer)
    {}

    void
    execute(Counter n)
    {
        // Large counts split across u16 records; the total is
        // preserved.
        Counter left = n;
        while (left > 0) {
            const auto chunk = static_cast<std::uint16_t>(
                left > 0xffff ? 0xffff : left);
            writer_.execute(chunk);
            left -= chunk;
        }
        cpu_.execute(n);
    }

    void
    executeAt(Counter n, Addr code)
    {
        Counter left = n;
        while (left > 0) {
            const auto chunk = static_cast<std::uint16_t>(
                left > 0xffff ? 0xffff : left);
            writer_.executeAt(chunk, code);
            left -= chunk;
        }
        cpu_.executeAt(n, code);
    }

    void
    load(Addr addr)
    {
        writer_.load(addr);
        cpu_.load(addr);
    }

    void
    store(Addr addr)
    {
        writer_.store(addr);
        cpu_.store(addr);
    }

    void
    remap(Addr vbase, Addr bytes)
    {
        writer_.append({TraceKind::Remap,
                        static_cast<std::uint16_t>(
                            bytes / (16 * 1024)),
                        vbase});
        cpu_.remap(vbase, bytes);
    }

    Addr
    sbrk(Addr bytes)
    {
        writer_.append({TraceKind::Sbrk, 0, bytes});
        return cpu_.sbrk(bytes);
    }

    Cycles now() const { return cpu_.now(); }

  private:
    Cpu &cpu_;
    TraceWriter &writer_;
};

/**
 * Replays a trace into a System's CPU.
 */
class TraceReplayer
{
  public:
    explicit TraceReplayer(System &sys) : sys_(sys) {}

    /**
     * Replay the whole trace. The caller must have declared the
     * address-space regions the trace touches (replays of bundled
     * workload traces can use Workload::setup on a scratch system to
     * learn them, or declare a covering region).
     *
     * @return number of records replayed
     */
    std::uint64_t
    replay(TraceReader &reader)
    {
        std::uint64_t n = 0;
        TraceRecord record;
        while (reader.next(record)) {
            ++n;
            switch (record.kind) {
              case TraceKind::Load:
                sys_.cpu().load(record.addr);
                break;
              case TraceKind::Store:
                sys_.cpu().store(record.addr);
                break;
              case TraceKind::Execute:
                sys_.cpu().execute(record.count);
                break;
              case TraceKind::ExecuteAt:
                sys_.cpu().executeAt(record.count, record.addr);
                break;
              case TraceKind::Remap:
                sys_.cpu().remap(record.addr,
                                 Addr{record.count} * 16 * 1024);
                break;
              case TraceKind::Sbrk:
                sys_.cpu().sbrk(record.addr);
                break;
              case TraceKind::End:
                return n;
            }
        }
        return n;
    }

  private:
    // Replay harness: drives a caller-owned System for one trace and
    // holds no state across Systems.
    System &sys_;   // mtlb-lint: allow(R7)
};

} // namespace mtlbsim

#endif // MTLBSIM_TRACE_TRACING_CPU_HH
