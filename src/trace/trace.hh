/**
 * @file
 * Memory-reference trace capture and replay.
 *
 * The paper's methodology is execution-driven, but a simulator
 * library also needs trace-driven operation: capture a workload's
 * reference stream once, then replay it against many machine
 * configurations quickly and with guaranteed identical inputs.
 *
 * The trace format is a compact binary stream of records:
 *
 *   [u8 kind][u8 pad][u16 count][u64 addr]
 *
 * where kind encodes the record type and, for Execute records,
 * count is the instruction count (addr carries the code address for
 * ExecuteAt records). Traces carry a small header with magic,
 * version, and the workload name.
 */

#ifndef MTLBSIM_TRACE_TRACE_HH
#define MTLBSIM_TRACE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace mtlbsim
{

/** Kinds of trace records. */
enum class TraceKind : std::uint8_t
{
    Load = 1,       ///< data load at addr
    Store = 2,      ///< data store at addr
    Execute = 3,    ///< count instructions, no code address
    ExecuteAt = 4,  ///< count instructions fetched at addr
    Remap = 5,      ///< remap(addr, count * 4 KB pages... see below)
    Sbrk = 6,       ///< sbrk(addr bytes)
    End = 7,        ///< end of trace
};

/** One trace record. For Remap, addr is the region base and
 *  count holds the region size in 16 KB units (so a u16 spans up to
 *  1 GB). For Sbrk, addr is the byte count requested. */
struct TraceRecord
{
    TraceKind kind = TraceKind::End;
    std::uint16_t count = 0;
    Addr addr = 0;

    bool operator==(const TraceRecord &) const = default;
};

/** Fixed-size on-disk record (12 bytes packed to 16 for alignment). */
struct RawRecord
{
    std::uint8_t kind;
    std::uint8_t pad;
    std::uint16_t count;
    std::uint32_t pad2;
    std::uint64_t addr;
};

static_assert(sizeof(RawRecord) == 16, "raw record must be 16 bytes");

/** Trace-file header. */
struct TraceHeader
{
    static constexpr std::uint32_t magicValue = 0x4d544c42; // "MTLB"
    static constexpr std::uint32_t versionValue = 1;

    std::uint32_t magic = magicValue;
    std::uint32_t version = versionValue;
    char workload[32] = {};
};

/**
 * Streaming trace writer.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing and emit the header. */
    TraceWriter(const std::string &path, const std::string &workload);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &record);

    void load(Addr addr) { append({TraceKind::Load, 0, addr}); }
    void store(Addr addr) { append({TraceKind::Store, 0, addr}); }
    void
    execute(std::uint16_t n)
    {
        append({TraceKind::Execute, n, 0});
    }
    void
    executeAt(std::uint16_t n, Addr code)
    {
        append({TraceKind::ExecuteAt, n, code});
    }

    /** Finish the stream (also done by the destructor). */
    void finish();

    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::ofstream out_;
    std::uint64_t records_ = 0;
    bool finished_ = false;
};

/**
 * Streaming trace reader.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    /** Read the next record; returns false at End/EOF. */
    bool next(TraceRecord &record);

    const std::string &workloadName() const { return workload_; }

  private:
    std::ifstream in_;
    std::string workload_;
    bool done_ = false;
};

} // namespace mtlbsim

#endif // MTLBSIM_TRACE_TRACE_HH
