#include "trace/trace.hh"

#include <cstring>

namespace mtlbsim
{

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &workload)
    : out_(path, std::ios::binary)
{
    fatalIf(!out_, "cannot open trace file for writing: ", path);

    TraceHeader header;
    std::strncpy(header.workload, workload.c_str(),
                 sizeof(header.workload) - 1);
    out_.write(reinterpret_cast<const char *>(&header),
               sizeof(header));
}

TraceWriter::~TraceWriter()
{
    if (!finished_)
        finish();
}

void
TraceWriter::append(const TraceRecord &record)
{
    panicIf(finished_, "appending to a finished trace");
    RawRecord raw{};
    raw.kind = static_cast<std::uint8_t>(record.kind);
    raw.count = record.count;
    raw.addr = record.addr;
    out_.write(reinterpret_cast<const char *>(&raw), sizeof(raw));
    ++records_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    RawRecord raw{};
    raw.kind = static_cast<std::uint8_t>(TraceKind::End);
    out_.write(reinterpret_cast<const char *>(&raw), sizeof(raw));
    out_.flush();
    finished_ = true;
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    fatalIf(!in_, "cannot open trace file: ", path);

    TraceHeader header;
    in_.read(reinterpret_cast<char *>(&header), sizeof(header));
    fatalIf(!in_ || header.magic != TraceHeader::magicValue,
            "not a mtlb-sim trace: ", path);
    fatalIf(header.version != TraceHeader::versionValue,
            "unsupported trace version ", header.version);
    header.workload[sizeof(header.workload) - 1] = '\0';
    workload_ = header.workload;
}

bool
TraceReader::next(TraceRecord &record)
{
    if (done_)
        return false;
    RawRecord raw{};
    in_.read(reinterpret_cast<char *>(&raw), sizeof(raw));
    if (!in_ || raw.kind == static_cast<std::uint8_t>(TraceKind::End)) {
        done_ = true;
        return false;
    }
    fatalIf(raw.kind == 0 ||
                raw.kind > static_cast<std::uint8_t>(TraceKind::End),
            "corrupt trace record kind ", unsigned{raw.kind});
    record.kind = static_cast<TraceKind>(raw.kind);
    record.count = raw.count;
    record.addr = raw.addr;
    return true;
}

} // namespace mtlbsim
