/**
 * @file
 * Property-based and parameterized sweep tests on system invariants.
 *
 * These exercise the translation machinery under randomised
 * operation sequences and sweep the configuration axes the paper
 * varies (TLB size, MTLB size/associativity), asserting invariants
 * rather than exact numbers.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/random.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/schedule.hh"
#include "mmc/memsys.hh"
#include "sim/system.hh"
#include "tlb/tlb.hh"

using namespace mtlbsim;

namespace
{
constexpr Addr MB = 1024 * 1024;
}

/* ------------------------------------------------------------------ */
/* TLB translation correctness under random insert/purge/lookup.      */
/* ------------------------------------------------------------------ */

class TlbProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TlbProperty, AgreesWithReferenceModelUnderRandomOps)
{
    stats::StatGroup g("t");
    Tlb tlb(GetParam(), "tlb", g);
    Random rng(GetParam() * 7919 + 3);

    // Reference model: list of live mappings (vbase, class, pbase).
    struct Ref
    {
        Addr vbase;
        Addr pbase;
        unsigned cls;
    };
    std::map<Addr, Ref> live;   // keyed by vbase

    auto ref_translate = [&](Addr vaddr) -> std::optional<Addr> {
        for (const auto &[vb, m] : live) {
            const Addr size = pageSizeForClass(m.cls);
            if (vaddr >= m.vbase && vaddr - m.vbase < size)
                return m.pbase | (vaddr & (size - 1));
        }
        return std::nullopt;
    };

    for (int step = 0; step < 3000; ++step) {
        const auto op = rng.below(10);
        if (op < 4) {
            // Insert a random mapping.
            const unsigned cls = static_cast<unsigned>(rng.below(4));
            const Addr size = pageSizeForClass(cls);
            const Addr vbase = (rng.below(64) * size) & ~(size - 1);
            const Addr pbase = (rng.below(1024) * size) & ~(size - 1);
            tlb.insert(vbase, pbase, cls, PageProtection{});
            // Mirror: drop overlapped entries, then add.
            for (auto it = live.begin(); it != live.end();) {
                const Addr esz = pageSizeForClass(it->second.cls);
                if (it->first < vbase + size &&
                    vbase < it->first + esz)
                    it = live.erase(it);
                else
                    ++it;
            }
            live[vbase] = {vbase, pbase, cls};
        } else if (op < 5 && !live.empty()) {
            // Purge a random live range.
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            tlb.purgeRange(it->first, pageSizeForClass(it->second.cls));
            live.erase(it);
        } else {
            // Lookup a random address; on a TLB hit the translation
            // must match the reference model exactly. (The TLB may
            // miss entries the model holds — NRU evicts — but must
            // never return a *wrong* translation.)
            const Addr vaddr = rng.below(64 * pageSizeForClass(3));
            const auto r = tlb.lookup(vaddr, AccessType::Read,
                                      AccessMode::User);
            if (r.hit) {
                const auto expect = ref_translate(vaddr);
                ASSERT_TRUE(expect.has_value())
                    << "TLB hit on an address the model never mapped";
                EXPECT_EQ(r.paddr, *expect);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbProperty,
                         ::testing::Values(4u, 16u, 64u, 96u, 128u));

/* ------------------------------------------------------------------ */
/* MTLB + shadow table: translations always match the table.          */
/* ------------------------------------------------------------------ */

struct MtlbGeometry
{
    unsigned entries;
    unsigned assoc;
};

class MtlbProperty : public ::testing::TestWithParam<MtlbGeometry>
{};

TEST_P(MtlbProperty, NeverReturnsStaleTranslations)
{
    stats::StatGroup g("t");
    ShadowTable table(4096, 0x100000);
    MtlbConfig c;
    c.numEntries = GetParam().entries;
    c.associativity = GetParam().assoc;
    Mtlb mtlb(c, table, g);
    Random rng(GetParam().entries * 31 + GetParam().assoc);

    std::map<Addr, Addr> model;     // spi -> pfn

    for (int step = 0; step < 5000; ++step) {
        const Addr spi = rng.below(512);
        const auto op = rng.below(10);
        if (op < 2) {
            const Addr pfn = rng.below(1 << 20);
            table.set(spi, pfn);
            mtlb.purge(spi);    // the OS always purges on remap
            model[spi] = pfn;
        } else if (op < 3) {
            table.invalidate(spi);
            mtlb.purge(spi);
            model.erase(spi);
        } else {
            const auto r = mtlb.translate(
                spi, rng.chance(1, 3) ? MtlbAccess::ExclusiveFill
                                      : MtlbAccess::SharedFill);
            auto it = model.find(spi);
            if (it == model.end()) {
                EXPECT_TRUE(r.fault) << "translated an unmapped page";
            } else {
                ASSERT_FALSE(r.fault);
                EXPECT_EQ(r.realPfn, it->second)
                    << "stale translation for spi " << spi;
            }
        }
    }
}

TEST_P(MtlbProperty, DirtyBitsNeverLost)
{
    stats::StatGroup g("t");
    ShadowTable table(4096, 0x100000);
    MtlbConfig c;
    c.numEntries = GetParam().entries;
    c.associativity = GetParam().assoc;
    Mtlb mtlb(c, table, g);
    Random rng(99 + GetParam().entries);

    std::set<Addr> dirtied;
    for (Addr spi = 0; spi < 1024; ++spi)
        table.set(spi, spi + 1);

    for (int step = 0; step < 5000; ++step) {
        const Addr spi = rng.below(1024);
        if (rng.chance(1, 3)) {
            mtlb.translate(spi, MtlbAccess::ExclusiveFill);
            dirtied.insert(spi);
        } else {
            mtlb.translate(spi, MtlbAccess::SharedFill);
        }
    }
    mtlb.syncAccessBits();

    // §2.5: the MTLB maintains *completely accurate* per-base-page
    // dirty bits: every page we wrote is dirty, none we only read is.
    for (Addr spi = 0; spi < 1024; ++spi) {
        EXPECT_EQ(table.entry(spi).modified == 1,
                  dirtied.count(spi) > 0)
            << "dirty bit wrong for spi " << spi;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MtlbProperty,
    ::testing::Values(MtlbGeometry{16, 1}, MtlbGeometry{64, 2},
                      MtlbGeometry{128, 2}, MtlbGeometry{128, 4},
                      MtlbGeometry{256, 8}, MtlbGeometry{64, 64}));

/* ------------------------------------------------------------------ */
/* End-to-end: remapped and base-paged accesses reach the same frame. */
/* ------------------------------------------------------------------ */

TEST(EndToEndProperty, RemapPreservesTranslationTargets)
{
    SystemConfig config;
    config.installedBytes = 64 * MB;
    System sys(config);
    auto &as = sys.kernel().addressSpace();
    as.addRegion("data", 0x10000000, MB, {});

    // Materialise pages and record their frames.
    std::map<Addr, Addr> frame_of;
    for (Addr off = 0; off < MB; off += basePageSize) {
        sys.kernel().handleTlbMiss(0x10000000 + off, AccessType::Read,
                                   0);
        frame_of[off] = as.frameOf(0x10000000 + off);
    }

    sys.kernel().remap(0x10000000, MB, 1000);

    // Every virtual page must still reach its original frame through
    // TLB (shadow) -> MTLB (real) translation.
    sys.tlb().purgeAll();
    for (Addr off = 0; off < MB; off += basePageSize) {
        const Addr vaddr = 0x10000000 + off;
        sys.kernel().handleTlbMiss(vaddr, AccessType::Read, 2000);
        const auto r = sys.tlb().lookup(vaddr, AccessType::Read,
                                        AccessMode::User);
        ASSERT_TRUE(r.hit);
        const auto mr = sys.memsys().mmc().service(MmcOp::SharedFill,
                                                   r.paddr);
        ASSERT_FALSE(mr.fault);
        EXPECT_EQ(mr.realAddr >> basePageShift, frame_of[off])
            << "wrong frame for offset 0x" << std::hex << off;
    }
}

/* ------------------------------------------------------------------ */
/* Sweep: MTLB miss count decreases with size and associativity.      */
/* ------------------------------------------------------------------ */

TEST(SweepProperty, MtlbMissesMonotonicInSize)
{
    auto misses_for = [](unsigned entries) {
        stats::StatGroup g("t");
        ShadowTable table(4096, 0x100000);
        MtlbConfig c;
        c.numEntries = entries;
        c.associativity = 2;
        Mtlb mtlb(c, table, g);
        for (Addr spi = 0; spi < 1024; ++spi)
            table.set(spi, spi + 1);
        Random rng(4242);
        for (int i = 0; i < 20000; ++i)
            mtlb.translate(rng.below(256), MtlbAccess::SharedFill);
        return mtlb.misses();
    };

    const auto m64 = misses_for(64);
    const auto m128 = misses_for(128);
    const auto m256 = misses_for(256);
    const auto m512 = misses_for(512);
    EXPECT_GT(m64, m128);
    EXPECT_GT(m128, m256);
    // 256 entries hold the whole 256-page working set.
    EXPECT_LE(m512, m256);
}

TEST(SweepProperty, MtlbMissesImproveWithAssociativity)
{
    auto misses_for = [](unsigned assoc) {
        stats::StatGroup g("t");
        ShadowTable table(4096, 0x100000);
        MtlbConfig c;
        c.numEntries = 128;
        c.associativity = assoc;
        Mtlb mtlb(c, table, g);
        for (Addr spi = 0; spi < 2048; ++spi)
            table.set(spi, spi + 1);
        Random rng(777);
        // Strided pattern with conflicts: hits the same sets hard.
        for (int i = 0; i < 30000; ++i) {
            const Addr spi = (rng.below(8)) * 64 + rng.below(4);
            mtlb.translate(spi, MtlbAccess::SharedFill);
        }
        return mtlb.misses();
    };

    EXPECT_GE(misses_for(1), misses_for(2));
    EXPECT_GE(misses_for(2), misses_for(4));
}

/* ------------------------------------------------------------------ */
/* Degenerate machine shapes: every invariant must hold at the        */
/* corners of the config space, not just at the paper's sizes. Each   */
/* shape runs a lockstep differential-fuzz schedule with the full     */
/* auditor after every op; any invariant violation fails the run.     */
/* ------------------------------------------------------------------ */

namespace
{

struct DegenerateShape
{
    const char *name;
    unsigned tlbEntries;
    unsigned mtlbEntries;
    unsigned mtlbAssoc;
    unsigned l0Entries;
    /** cpu.batch_window for the batched access engine; 0 runs
     *  unbatched (the historical shapes). */
    unsigned batchWindow;
    Addr installedBytes;    ///< 0 = keep the fuzz default (16 MB)
    bool swapPressure;      ///< hand-crafted swap-heavy schedule
};

/** Deterministic swap-heavy op stream for a machine whose frame
 *  pool (installed minus the 8 MB kernel reservation) is smaller
 *  than the data region: progress is only possible because swaps
 *  free frames. */
std::vector<fuzz::FuzzOp> swapPressureOps()
{
    using fuzz::FuzzOp;
    using fuzz::OpKind;
    constexpr Addr quarter = 256 * 1024;    // 64 base pages

    std::vector<FuzzOp> ops;
    ops.push_back({OpKind::Remap, fuzz::fuzzDataBase, quarter});
    for (Addr off = 0; off < quarter; off += basePageSize)
        ops.push_back({OpKind::Store, fuzz::fuzzDataBase + off, 0});
    ops.push_back({OpKind::SwapPagewise, fuzz::fuzzDataBase, 0});

    ops.push_back({OpKind::Remap, fuzz::fuzzDataBase + quarter,
                   quarter});
    for (Addr off = 0; off < quarter; off += basePageSize) {
        ops.push_back({OpKind::Store,
                       fuzz::fuzzDataBase + quarter + off, 0});
    }
    ops.push_back({OpKind::SwapWhole, fuzz::fuzzDataBase + quarter,
                   0});

    // Fault the first region back in (shadow faults + swap-ins),
    // then swap it out again half-dirty.
    for (Addr off = 0; off < quarter; off += basePageSize) {
        const bool dirty = (off >> basePageShift) % 2 == 0;
        ops.push_back({dirty ? OpKind::Store : OpKind::Load,
                       fuzz::fuzzDataBase + off, 0});
    }
    ops.push_back({OpKind::SwapPagewise, fuzz::fuzzDataBase, 0});
    return ops;
}

} // namespace

class DegenerateConfigSweep
    : public ::testing::TestWithParam<DegenerateShape>
{};

TEST_P(DegenerateConfigSweep, AuditorStaysClean)
{
    const DegenerateShape &shape = GetParam();

    fuzz::FuzzParams params;
    params.seed = 13;
    params.auditEvery = 1;
    params.tlbEntries = shape.tlbEntries;
    params.mtlbEntries = shape.mtlbEntries;
    params.mtlbAssoc = shape.mtlbAssoc;
    params.l0Entries = shape.l0Entries;
    params.batchWindow = shape.batchWindow;
    if (shape.installedBytes != 0)
        params.installedBytes = shape.installedBytes;

    fuzz::Schedule schedule;
    schedule.params = params;
    if (shape.swapPressure) {
        schedule.ops = swapPressureOps();
        schedule.params.numOps =
            static_cast<unsigned>(schedule.ops.size());
    } else {
        schedule.params.numOps = 400;
        schedule = fuzz::generateSchedule(schedule.params);
    }

    const fuzz::RunResult result = fuzz::runSchedule(schedule);
    EXPECT_FALSE(result.failed)
        << shape.name << ": op " << result.failure.opIndex << " ["
        << result.failure.detector << "] " << result.failure.detail;
    EXPECT_EQ(result.opsExecuted, schedule.ops.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DegenerateConfigSweep,
    ::testing::Values(
        DegenerateShape{"one_entry_tlb", 1, 8, 2, 512, 0, 0, false},
        DegenerateShape{"one_set_mtlb", 8, 2, 2, 512, 0, 0, false},
        DegenerateShape{"no_l0", 8, 8, 2, 0, 0, 0, false},
        DegenerateShape{"one_entry_l0", 8, 8, 2, 1, 0, 0, false},
        DegenerateShape{"tiny_memory_swaps", 8, 8, 2, 512, 0,
                        0x00880000, true},
        // Batched access engine corners: a 1-access window flushes
        // the deferred counters on every batched access, and a huge
        // window on a 1-entry TLB maximizes lag while the thrashing
        // TLB breaks runs constantly.
        DegenerateShape{"batch_window_one", 8, 8, 2, 512, 1, 0,
                        false},
        DegenerateShape{"batch_window_huge_one_entry_tlb", 1, 8, 2,
                        512, 4096, 0, false},
        DegenerateShape{"batch_no_l0", 8, 8, 2, 0, 4096, 0, false},
        DegenerateShape{"batch_tiny_memory_swaps", 8, 8, 2, 512,
                        4096, 0x00880000, true}),
    [](const ::testing::TestParamInfo<DegenerateShape> &info) {
        return info.param.name;
    });
