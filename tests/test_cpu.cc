/**
 * @file
 * Unit tests for the CPU timing model (built on a full System so the
 * trap path is genuine).
 */

#include <gtest/gtest.h>

#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

SystemConfig
smallConfig(bool mtlb = true)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.mtlbEnabled = mtlb;
    return c;
}

void
addData(System &sys, Addr base = 0x10000000, Addr size = 16 * MB)
{
    sys.kernel().addressSpace().addRegion("data", base, size, {});
}

} // namespace

TEST(CpuTest, ExecuteAdvancesOneCyclePerInstruction)
{
    System sys(smallConfig());
    sys.cpu().execute(100);
    EXPECT_EQ(sys.cpu().now(), 100u);
    EXPECT_EQ(sys.cpu().instructions(), 100u);
}

TEST(CpuTest, FirstLoadTrapsAndFills)
{
    System sys(smallConfig());
    addData(sys);
    sys.cpu().load(0x10000000);
    EXPECT_GT(sys.cpu().now(), 0u);
    EXPECT_EQ(sys.tlb().misses(), 1u);
    EXPECT_GT(sys.tlbMissCycles(), 0u);
}

TEST(CpuTest, SecondLoadSamePageNoTrap)
{
    System sys(smallConfig());
    addData(sys);
    sys.cpu().load(0x10000000);
    const Cycles miss_cycles = sys.tlbMissCycles();
    sys.cpu().load(0x10000100);
    EXPECT_EQ(sys.tlbMissCycles(), miss_cycles);
}

TEST(CpuTest, CachedLoadCostsOneCycle)
{
    System sys(smallConfig());
    addData(sys);
    sys.cpu().load(0x10000000);     // trap + miss
    const Cycles before = sys.cpu().now();
    sys.cpu().load(0x10000000);     // hot
    EXPECT_EQ(sys.cpu().now(), before + 1);
}

TEST(CpuTest, StoreBufferHidesStoreMissLatency)
{
    SystemConfig config = smallConfig();
    config.cpu.storeBuffer = true;
    System sys(config);
    addData(sys);
    // Prime the TLB/page.
    sys.cpu().load(0x10000000);
    sys.cpu().load(0x10008000);

    // A store miss should charge ~1 cycle, not the full fill.
    const Cycles before = sys.cpu().now();
    sys.cpu().store(0x10000400);    // cold line, same page
    const Cycles charged = sys.cpu().now() - before;
    EXPECT_LE(charged, 2u);
}

TEST(CpuTest, SecondStoreMissStallsOnBusyBuffer)
{
    SystemConfig config = smallConfig();
    config.cpu.storeBuffer = true;
    System sys(config);
    addData(sys);
    sys.cpu().load(0x10000000);

    sys.cpu().store(0x10000400);
    const Cycles before = sys.cpu().now();
    sys.cpu().store(0x10000800);    // buffer still draining
    EXPECT_GT(sys.cpu().now() - before, 2u);
}

TEST(CpuTest, BlockingStoresWithoutBuffer)
{
    SystemConfig config = smallConfig();
    config.cpu.storeBuffer = false;
    System sys(config);
    addData(sys);
    sys.cpu().load(0x10000000);
    const Cycles before = sys.cpu().now();
    sys.cpu().store(0x10000400);
    EXPECT_GT(sys.cpu().now() - before, 10u);
}

TEST(CpuTest, LoadUseOverlapHidesLatency)
{
    SystemConfig blocking = smallConfig();
    blocking.cpu.loadUseOverlap = 0;
    SystemConfig overlapped = smallConfig();
    overlapped.cpu.loadUseOverlap = 8;

    System a(blocking), b(overlapped);
    addData(a);
    addData(b);
    a.cpu().load(0x10000000);
    b.cpu().load(0x10000000);
    const Cycles ta = a.cpu().now();
    const Cycles tb = b.cpu().now();
    a.cpu().load(0x10000800);   // cold line
    b.cpu().load(0x10000800);
    EXPECT_GT(a.cpu().now() - ta, b.cpu().now() - tb);
}

TEST(CpuTest, ExecuteAtChecksMicroItlb)
{
    System sys(smallConfig());
    sys.kernel().addressSpace().addRegion("text", 0x400000, 64 * 1024,
                                          {false, true});
    sys.cpu().executeAt(10, 0x400000);
    // First fetch missed the micro-ITLB and trapped the unified TLB.
    EXPECT_EQ(sys.tlb().misses(), 1u);
    sys.cpu().executeAt(10, 0x400100);
    // Same page: micro-ITLB hit, no new unified lookup.
    EXPECT_EQ(sys.tlb().misses(), 1u);
    EXPECT_EQ(sys.cpu().instructions(), 20u);
}

TEST(CpuTest, CodePageChangeRefillsMicroItlb)
{
    System sys(smallConfig());
    sys.kernel().addressSpace().addRegion("text", 0x400000, 64 * 1024,
                                          {false, true});
    sys.cpu().executeAt(10, 0x400000);
    sys.cpu().executeAt(10, 0x401000);  // next page
    EXPECT_EQ(sys.tlb().misses(), 2u);
    // Returning to the first page: unified TLB still holds it.
    sys.cpu().executeAt(10, 0x400000);
    EXPECT_EQ(sys.tlb().misses(), 2u);
}

TEST(CpuTest, RemapWrapperAdvancesClock)
{
    System sys(smallConfig());
    addData(sys);
    const Cycles before = sys.cpu().now();
    sys.cpu().remap(0x10000000, 64 * 1024);
    EXPECT_GT(sys.cpu().now(), before);
}

TEST(CpuTest, SbrkWrapperReturnsOldBreak)
{
    System sys(smallConfig());
    sys.kernel().initHeap(0x20000000, 32 * MB);
    EXPECT_EQ(sys.cpu().sbrk(100), 0x20000000u);
    EXPECT_EQ(sys.cpu().sbrk(100), 0x20000000u + 100);
}

TEST(CpuTest, FaultedFillRetriesAfterReload)
{
    System sys(smallConfig());
    addData(sys);
    sys.cpu().remap(0x10000000, 16 * 1024);
    sys.cpu().load(0x10000000);     // establish mappings
    sys.kernel().swapOutSuperpagePagewise(0x10000000, sys.cpu().now());

    const auto swapped_in_before =
        sys.kernel().addressSpace().isPagePresent(0x10000000);
    EXPECT_FALSE(swapped_in_before);

    // This access faults at the MMC, reloads, and retries — it must
    // complete and leave the page resident.
    sys.cpu().load(0x10000000);
    EXPECT_TRUE(sys.kernel().addressSpace().isPagePresent(0x10000000));
}
