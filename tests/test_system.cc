/**
 * @file
 * Integration tests: whole-System behaviour and the paper's
 * qualitative claims at small scale.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/system.hh"

using namespace mtlbsim;

namespace
{

constexpr Addr MB = 1024 * 1024;

SystemConfig
config(bool mtlb, unsigned tlb_entries = 96)
{
    SystemConfig c;
    c.installedBytes = 64 * MB;
    c.mtlbEnabled = mtlb;
    c.tlbEntries = tlb_entries;
    return c;
}

/**
 * A tiny TLB-hostile kernel: random accesses over many pages.
 * Returns total cycles.
 */
Cycles
runRandomWalk(System &sys, Addr pages, unsigned accesses,
              bool do_remap)
{
    const Addr base = 0x10000000;
    sys.kernel().addressSpace().addRegion(
        "data", base, pages * basePageSize, {});
    if (do_remap)
        sys.cpu().remap(base, pages * basePageSize);

    Random rng(42);
    for (unsigned i = 0; i < accesses; ++i) {
        const Addr a = base + rng.below(pages * basePageSize);
        sys.cpu().execute(4);
        if (rng.chance(1, 4))
            sys.cpu().store(a & ~Addr{7});
        else
            sys.cpu().load(a & ~Addr{7});
    }
    return sys.totalCycles();
}

} // namespace

TEST(SystemTest, ConstructsWithAndWithoutMtlb)
{
    EXPECT_NO_THROW(System{config(true)});
    EXPECT_NO_THROW(System{config(false)});
}

TEST(SystemTest, StatsDumpContainsAllGroups)
{
    System sys(config(true));
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string text = os.str();
    for (const char *group :
         {"system.tlb.", "system.cache.", "system.bus.", "system.mmc.",
          "system.mmc.mtlb.", "system.mmc.dram.", "system.kernel.",
          "system.cpu.", "system.uitlb."}) {
        EXPECT_NE(text.find(group), std::string::npos)
            << "missing stats group " << group;
    }
}

TEST(SystemTest, NoMtlbSystemHasNoMtlbStats)
{
    System sys(config(false));
    std::ostringstream os;
    sys.dumpStats(os);
    EXPECT_EQ(os.str().find("mtlb."), std::string::npos);
}

TEST(SystemTest, MtlbReducesTlbMissTimeOnHostileWorkload)
{
    // The paper's core claim, miniaturised: 256 pages of working set
    // against a 64-entry TLB.
    System base(config(false, 64));
    System with(config(true, 64));
    runRandomWalk(base, 256, 50'000, true);   // remap is a no-op here
    runRandomWalk(with, 256, 50'000, true);

    EXPECT_GT(base.tlbMissFraction(), 0.15);
    EXPECT_LT(with.tlbMissFraction(), 0.05);
    EXPECT_LT(with.totalCycles(), base.totalCycles());
}

TEST(SystemTest, MtlbDoesNotHelpTlbFriendlyWorkload)
{
    // A working set far below TLB reach gains nothing (and must not
    // lose much) from shadow superpages.
    System base(config(false, 96));
    System with(config(true, 96));
    runRandomWalk(base, 8, 50'000, true);
    runRandomWalk(with, 8, 50'000, true);
    const double ratio =
        static_cast<double>(with.totalCycles()) /
        static_cast<double>(base.totalCycles());
    EXPECT_LT(ratio, 1.10);
    EXPECT_GT(ratio, 0.90);
}

TEST(SystemTest, BiggerTlbHelpsWithoutMtlb)
{
    System small(config(false, 64));
    System large(config(false, 256));
    runRandomWalk(small, 200, 50'000, false);
    runRandomWalk(large, 200, 50'000, false);
    EXPECT_LT(large.totalCycles(), small.totalCycles());
}

TEST(SystemTest, MtlbMakesRuntimeInsensitiveToTlbSize)
{
    // §3.4: with the MTLB, results change very little as the CPU TLB
    // grows.
    System t64(config(true, 64));
    System t128(config(true, 128));
    runRandomWalk(t64, 256, 50'000, true);
    runRandomWalk(t128, 256, 50'000, true);
    const double ratio =
        static_cast<double>(t64.totalCycles()) /
        static_cast<double>(t128.totalCycles());
    EXPECT_LT(ratio, 1.05);
    EXPECT_GT(ratio, 0.95);
}

TEST(SystemTest, SmallTlbPlusMtlbMatchesBigTlbAlone)
{
    // The headline equivalence: 64-entry TLB + MTLB ~ 128-entry TLB
    // without one (§1, §6).
    System small_plus(config(true, 64));
    System big_alone(config(false, 128));
    // Enough accesses to amortise the one-time remap cost, which the
    // paper likewise amortises over full benchmark runs (§3.3).
    runRandomWalk(small_plus, 120, 200'000, true);
    runRandomWalk(big_alone, 120, 200'000, true);
    const double ratio =
        static_cast<double>(small_plus.totalCycles()) /
        static_cast<double>(big_alone.totalCycles());
    EXPECT_LT(ratio, 1.10);
}

TEST(SystemTest, ShadowCheckCostsOneMmcCycleOnFills)
{
    // §2.2: with an MTLB, every MMC operation pays one extra MMC
    // cycle — visible as a slightly higher average fill latency for
    // a non-shadow workload.
    System base(config(false, 96));
    System with(config(true, 96));
    runRandomWalk(base, 64, 20'000, false);
    runRandomWalk(with, 64, 20'000, false);     // no remap: all real
    EXPECT_NEAR(with.avgFillLatency(),
                base.avgFillLatency() + cpuCyclesPerMmcCycle, 1.0);
}

TEST(SystemTest, TlbMissFractionConsistency)
{
    System sys(config(false, 64));
    runRandomWalk(sys, 256, 20'000, false);
    EXPECT_GE(sys.tlbMissFraction(), 0.0);
    EXPECT_LE(sys.tlbMissFraction(), 1.0);
    EXPECT_NEAR(sys.tlbMissFraction() *
                    static_cast<double>(sys.totalCycles()),
                static_cast<double>(sys.tlbMissCycles()), 1.0);
}

TEST(SystemTest, ResetStatsZeroesCounters)
{
    System sys(config(true));
    runRandomWalk(sys, 16, 1'000, true);
    EXPECT_GT(sys.tlb().hits(), 0u);
    sys.rootStats().resetAll();
    EXPECT_EQ(sys.tlb().hits(), 0u);
    EXPECT_EQ(sys.cache().hits(), 0u);
}
