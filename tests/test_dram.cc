/**
 * @file
 * Unit tests for the DRAM timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace mtlbsim;

namespace
{
DramConfig
smallConfig()
{
    DramConfig c;
    c.numBanks = 2;
    c.rowBytes = 4096;
    c.rowHitMmcCycles = 4;
    c.rowMissMmcCycles = 8;
    c.burstMmcCycles = 4;
    return c;
}
}

TEST(DramTest, FirstAccessIsRowMiss)
{
    stats::StatGroup g("t");
    Dram dram(smallConfig(), g);
    EXPECT_EQ(dram.access(0x1000, false), 8u);
}

TEST(DramTest, SecondAccessSameRowIsHit)
{
    stats::StatGroup g("t");
    Dram dram(smallConfig(), g);
    dram.access(0x1000, false);
    EXPECT_EQ(dram.access(0x1040, false), 4u);
}

TEST(DramTest, DifferentRowSameBankMisses)
{
    stats::StatGroup g("t");
    Dram dram(smallConfig(), g);
    dram.access(0x0000, false);
    // With 2 banks and 4 KB rows, +8 KB is the same bank, next row.
    EXPECT_EQ(dram.access(0x4000, false), 8u);
}

TEST(DramTest, BanksTrackRowsIndependently)
{
    stats::StatGroup g("t");
    Dram dram(smallConfig(), g);
    dram.access(0x0000, false);     // bank 0
    dram.access(0x1000, false);     // bank 1
    // Both rows are still open.
    EXPECT_EQ(dram.access(0x0040, false), 4u);
    EXPECT_EQ(dram.access(0x1040, false), 4u);
}

TEST(DramTest, LineFillAddsBurst)
{
    stats::StatGroup g("t");
    Dram dram(smallConfig(), g);
    EXPECT_EQ(dram.access(0x2000, true), 8u + 4u);
    EXPECT_EQ(dram.access(0x2020, true), 4u + 4u);
}

TEST(DramTest, TableReadEqualsNonBurstAccess)
{
    stats::StatGroup g("t");
    Dram a(smallConfig(), g), b(smallConfig(), g);
    EXPECT_EQ(a.tableRead(0x3000), b.access(0x3000, false));
}

TEST(DramTest, RejectsBadGeometry)
{
    stats::StatGroup g("t");
    DramConfig c = smallConfig();
    c.numBanks = 3;
    EXPECT_THROW(Dram(c, g), FatalError);
    c = smallConfig();
    c.rowHitMmcCycles = 0;
    EXPECT_THROW(Dram(c, g), FatalError);
}

TEST(DramTest, DefaultConfigIsSane)
{
    stats::StatGroup g("t");
    Dram dram(DramConfig{}, g);
    const Cycles miss = dram.access(0x100000, true);
    const Cycles hit = dram.access(0x100020, true);
    EXPECT_GT(miss, hit);
}
