/**
 * mtlb-lint rule-engine tests: per-rule positive/negative/suppressed
 * fixtures over synthetic repo trees, plus the two properties the
 * tool exists for — the real repository lints clean, and deleting a
 * real epoch bump or observer hook from the kernel is caught at the
 * right location.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint/lexer.hh"
#include "lint/lint.hh"

namespace fs = std::filesystem;
using mtlblint::Finding;
using mtlblint::RulesConfig;
using mtlblint::runLint;

namespace
{

/** A scratch repo tree, deleted on destruction. */
class TempTree
{
  public:
    TempTree()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = fs::path(::testing::TempDir()) /
                (std::string("mtlb_lint_") + info->test_suite_name() +
                 "_" + info->name());
        fs::remove_all(root_);
        fs::create_directories(root_);
    }

    ~TempTree() { fs::remove_all(root_); }

    void
    write(const std::string &rel, const std::string &content)
    {
        const fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream os(p);
        os << content;
    }

    std::string root() const { return root_.string(); }

  private:
    fs::path root_;
};

/** Minimal R1/R2 rules: one mutator, one hook, one pair. */
RulesConfig
kernelRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.kernelFile = "src/os/kernel.cc";
    cfg.mutators = {{"", "setShadowMapping"}};
    cfg.hooks = {"onPageMapped", "onSuperpageCreated"};
    cfg.pairs = {{"installFrame", "onPageMapped"}};
    return cfg;
}

std::string
messages(const std::vector<Finding> &fs)
{
    std::ostringstream os;
    for (const auto &f : fs)
        os << mtlblint::format(f) << "\n";
    return os.str();
}

} // namespace

TEST(LintR1, EveryPathBumpedIsClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc, int x)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "    if (x) {\n"
            "        tlb_.bumpTranslationEpoch();\n"
            "        return;\n"
            "    }\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR1, PathWithoutBumpIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "int f(Mmc &mmc, int x)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"   // line 3
            "    if (x)\n"
            "        return 0;\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    return 1;\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R1");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("'f'"), std::string::npos);
}

TEST(LintR1, MissingBumpAtEndOfBodyIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 3);
}

TEST(LintR1, SuppressionCommentSilences)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    // mtlb-lint: allow(R1)\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR2, MutatorWithoutAnyHookIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R2"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R2");
    EXPECT_EQ(fs[0].line, 3);
}

TEST(LintR2, HookFiringMakesMutatorClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    if (observer_)\n"
            "        observer_->onSuperpageCreated(0, 0, 1);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R2"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR2, PairedCalleeWithoutItsHookIsFlagged)
{
    TempTree t;
    // installFrame requires onPageMapped specifically; firing some
    // *other* hook must not satisfy the pair rule.
    t.write("src/os/kernel.cc",
            "void f(Space &space)\n"
            "{\n"
            "    space.installFrame(0, 1);\n"    // line 3
            "    if (observer_)\n"
            "        observer_->onSuperpageCreated(0, 0, 1);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R2"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("onPageMapped"), std::string::npos);
}

TEST(LintR3, OrphanStatMemberIsFlagged)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.statAdders = {"addScalar"};
    t.write("src/x.hh",
            "#ifndef MTLBSIM_X_HH\n"
            "#define MTLBSIM_X_HH\n"
            "struct X {\n"
            "    stats::Scalar &good_;\n"
            "    stats::Scalar &orphan_;\n"      // line 5
            "};\n"
            "#endif // MTLBSIM_X_HH\n");
    t.write("src/x.cc",
            "X::X(stats::StatGroup &g)\n"
            "    : good_(g.addScalar(\"good\", \"a stat\")) {}\n");
    const auto fs = runLint(t.root(), cfg, {"R3"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R3");
    EXPECT_EQ(fs[0].file, "src/x.hh");
    EXPECT_EQ(fs[0].line, 5);
    EXPECT_NE(fs[0].message.find("orphan_"), std::string::npos);
}

TEST(LintR3, SuppressionSilencesOrphan)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.statAdders = {"addScalar"};
    t.write("src/x.hh",
            "#ifndef MTLBSIM_X_HH\n"
            "#define MTLBSIM_X_HH\n"
            "struct X {\n"
            "    stats::Scalar &orphan_; // mtlb-lint: allow(R3)\n"
            "};\n"
            "#endif // MTLBSIM_X_HH\n");
    const auto fs = runLint(t.root(), cfg, {"R3"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR4, ThreeWayKeyParity)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.configSource = "src/parser.cc";
    cfg.configDirs = {"configs"};
    cfg.docFile = "docs/manual.md";
    cfg.docSection = "5.";
    // Parser accepts tlb.entries (documented) and mtlb.assoc
    // (neither set nor documented -> finding). The cfg file sets
    // dead.key which the parser does not accept -> finding. The
    // manual documents ghost.key -> finding.
    t.write("src/parser.cc",
            "void parse() {\n"
            "    set(\"tlb.entries\");\n"
            "    set(\"mtlb.assoc\");\n"         // line 3
            "}\n");
    t.write("configs/a.cfg",
            "tlb.entries = 64\n"
            "dead.key = 1\n");                   // line 2
    t.write("docs/manual.md",
            "## 5. Configuration keys\n"
            "| `tlb.entries` | entries |\n"
            "| `ghost.key` | gone |\n");         // line 3
    const auto fs = runLint(t.root(), cfg, {"R4"});
    ASSERT_EQ(fs.size(), 3u) << messages(fs);
    // Findings sort by file: configs/a.cfg, docs/manual.md,
    // src/parser.cc.
    EXPECT_EQ(fs[0].file, "configs/a.cfg");
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_NE(fs[0].message.find("dead.key"), std::string::npos);
    EXPECT_EQ(fs[1].file, "docs/manual.md");
    EXPECT_EQ(fs[1].line, 3);
    EXPECT_NE(fs[1].message.find("ghost.key"), std::string::npos);
    EXPECT_EQ(fs[2].file, "src/parser.cc");
    EXPECT_EQ(fs[2].line, 3);
    EXPECT_NE(fs[2].message.find("mtlb.assoc"), std::string::npos);
}

TEST(LintR5, BannedConstructsAndExemptions)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.banned = {"new", "rand"};
    cfg.bannedExempt = {"src/sweep"};
    cfg.guardStrip = {"src/"};
    t.write("src/a.cc",
            "void f() {\n"
            "    int *p = new int;\n"            // line 2
            "    int r = rand();\n"              // line 3
            "}\n");
    t.write("src/sweep/b.cc",
            "void g() { int *p = new int; }\n"); // exempt dir
    const auto fs = runLint(t.root(), cfg, {"R5"});
    ASSERT_EQ(fs.size(), 2u) << messages(fs);
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_NE(fs[0].message.find("naked 'new'"), std::string::npos);
    EXPECT_EQ(fs[1].line, 3);
    EXPECT_NE(fs[1].message.find("rand"), std::string::npos);
}

TEST(LintR5, IncludeGuardConformance)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.guardStrip = {"src/"};
    t.write("src/tlb/good.hh",
            "#ifndef MTLBSIM_TLB_GOOD_HH\n"
            "#define MTLBSIM_TLB_GOOD_HH\n"
            "#endif\n");
    t.write("src/tlb/bad.hh",
            "#ifndef WRONG_GUARD_HH\n"
            "#define WRONG_GUARD_HH\n"
            "#endif\n");
    const auto fs = runLint(t.root(), cfg, {"R5"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].file, "src/tlb/bad.hh");
    EXPECT_NE(fs[0].message.find("MTLBSIM_TLB_BAD_HH"),
              std::string::npos);
}

TEST(LintLexer, SuppressionsAndStringsSurviveTokenizing)
{
    TempTree t;
    t.write("src/s.cc",
            "// mtlb-lint: allow(R1, R5)\n"
            "const char *k = \"tlb.entries\";\n");
    const auto src = mtlblint::tokenizeFile(
        t.root() + "/src/s.cc", "src/s.cc");
    EXPECT_TRUE(mtlblint::suppressed(src, 1, "R1", "epoch-discipline"));
    EXPECT_TRUE(mtlblint::suppressed(src, 1, "R5", "hygiene"));
    // The suppression also covers the line below the comment.
    EXPECT_TRUE(mtlblint::suppressed(src, 2, "R5", "hygiene"));
    EXPECT_FALSE(mtlblint::suppressed(src, 2, "R3",
                                      "stats-registration"));
    bool sawKey = false;
    for (const auto &tok : src.tokens) {
        if (tok.kind == mtlblint::TokKind::String &&
            tok.text == "tlb.entries") {
            sawKey = true;
        }
    }
    EXPECT_TRUE(sawKey);
}

#ifdef MTLBSIM_REPO_ROOT

TEST(LintSelfHost, RepositoryLintsClean)
{
    const std::string root = MTLBSIM_REPO_ROOT;
    const RulesConfig cfg =
        RulesConfig::load(root + "/tools/lint/rules.cfg");
    const auto fs = runLint(root, cfg);
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

namespace
{

/** Copy the real kernel.cc into a scratch tree with the first line
 *  containing @p needle deleted; return the lint findings for
 *  @p rules over the mutated file. */
std::vector<Finding>
lintWithDeletedLine(TempTree &t, const std::string &needle,
                    const std::set<std::string> &rules)
{
    std::ifstream is(std::string(MTLBSIM_REPO_ROOT) +
                     "/src/os/kernel.cc");
    EXPECT_TRUE(is.good());
    std::ostringstream out;
    std::string line;
    bool deleted = false;
    while (std::getline(is, line)) {
        if (!deleted && line.find(needle) != std::string::npos) {
            deleted = true;
            continue;
        }
        out << line << "\n";
    }
    EXPECT_TRUE(deleted) << "needle not found: " << needle;
    t.write("src/os/kernel.cc", out.str());

    const std::string root = MTLBSIM_REPO_ROOT;
    RulesConfig cfg = RulesConfig::load(root + "/tools/lint/rules.cfg");
    return runLint(t.root(), cfg, rules);
}

} // namespace

TEST(LintSelfHost, DeletedEpochBumpIsCaught)
{
    TempTree t;
    const auto fs =
        lintWithDeletedLine(t, "tlb_.bumpTranslationEpoch();", {"R1"});
    ASSERT_FALSE(fs.empty());
    EXPECT_EQ(fs[0].id, "R1");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
    EXPECT_GT(fs[0].line, 0);
}

TEST(LintSelfHost, DeletedObserverHookIsCaught)
{
    TempTree t;
    const auto fs = lintWithDeletedLine(
        t, "observer_->onPageMapped(pageBase(vaddr), pfn);", {"R2"});
    ASSERT_FALSE(fs.empty());
    EXPECT_EQ(fs[0].id, "R2");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
}

#endif // MTLBSIM_REPO_ROOT
