/**
 * mtlb-lint rule-engine tests: per-rule positive/negative/suppressed
 * fixtures over synthetic repo trees, plus the two properties the
 * tool exists for — the real repository lints clean, and deleting a
 * real epoch bump or observer hook from the kernel is caught at the
 * right location.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint/callgraph.hh"
#include "lint/lexer.hh"
#include "lint/lint.hh"
#include "lint/scopes.hh"

namespace fs = std::filesystem;
using mtlblint::Finding;
using mtlblint::RulesConfig;
using mtlblint::runLint;

namespace
{

/** A scratch repo tree, deleted on destruction. */
class TempTree
{
  public:
    TempTree()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = fs::path(::testing::TempDir()) /
                (std::string("mtlb_lint_") + info->test_suite_name() +
                 "_" + info->name());
        fs::remove_all(root_);
        fs::create_directories(root_);
    }

    ~TempTree() { fs::remove_all(root_); }

    void
    write(const std::string &rel, const std::string &content)
    {
        const fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream os(p);
        os << content;
    }

    std::string root() const { return root_.string(); }

  private:
    fs::path root_;
};

/** Minimal R1/R2 rules: one mutator, one hook, one pair. */
RulesConfig
kernelRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.kernelFile = "src/os/kernel.cc";
    cfg.mutators = {{"", "setShadowMapping"}};
    cfg.hooks = {"onPageMapped", "onSuperpageCreated"};
    cfg.pairs = {{"installFrame", "onPageMapped"}};
    return cfg;
}

std::string
messages(const std::vector<Finding> &fs)
{
    std::ostringstream os;
    for (const auto &f : fs)
        os << mtlblint::format(f) << "\n";
    return os.str();
}

} // namespace

TEST(LintR1, EveryPathBumpedIsClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc, int x)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "    if (x) {\n"
            "        tlb_.bumpTranslationEpoch();\n"
            "        return;\n"
            "    }\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR1, PathWithoutBumpIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "int f(Mmc &mmc, int x)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"   // line 3
            "    if (x)\n"
            "        return 0;\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    return 1;\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R1");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("'f'"), std::string::npos);
}

TEST(LintR1, MissingBumpAtEndOfBodyIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 3);
}

TEST(LintR1, SuppressionCommentSilences)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    // mtlb-lint: allow(R1)\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR2, MutatorWithoutAnyHookIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R2"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R2");
    EXPECT_EQ(fs[0].line, 3);
}

TEST(LintR2, HookFiringMakesMutatorClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    if (observer_)\n"
            "        observer_->onSuperpageCreated(0, 0, 1);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R2"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR2, PairedCalleeWithoutItsHookIsFlagged)
{
    TempTree t;
    // installFrame requires onPageMapped specifically; firing some
    // *other* hook must not satisfy the pair rule.
    t.write("src/os/kernel.cc",
            "void f(Space &space)\n"
            "{\n"
            "    space.installFrame(0, 1);\n"    // line 3
            "    if (observer_)\n"
            "        observer_->onSuperpageCreated(0, 0, 1);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R2"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("onPageMapped"), std::string::npos);
}

TEST(LintR3, OrphanStatMemberIsFlagged)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.statAdders = {"addScalar"};
    t.write("src/x.hh",
            "#ifndef MTLBSIM_X_HH\n"
            "#define MTLBSIM_X_HH\n"
            "struct X {\n"
            "    stats::Scalar &good_;\n"
            "    stats::Scalar &orphan_;\n"      // line 5
            "};\n"
            "#endif // MTLBSIM_X_HH\n");
    t.write("src/x.cc",
            "X::X(stats::StatGroup &g)\n"
            "    : good_(g.addScalar(\"good\", \"a stat\")) {}\n");
    const auto fs = runLint(t.root(), cfg, {"R3"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R3");
    EXPECT_EQ(fs[0].file, "src/x.hh");
    EXPECT_EQ(fs[0].line, 5);
    EXPECT_NE(fs[0].message.find("orphan_"), std::string::npos);
}

TEST(LintR3, SuppressionSilencesOrphan)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.statAdders = {"addScalar"};
    t.write("src/x.hh",
            "#ifndef MTLBSIM_X_HH\n"
            "#define MTLBSIM_X_HH\n"
            "struct X {\n"
            "    stats::Scalar &orphan_; // mtlb-lint: allow(R3)\n"
            "};\n"
            "#endif // MTLBSIM_X_HH\n");
    const auto fs = runLint(t.root(), cfg, {"R3"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR4, ThreeWayKeyParity)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.configSource = "src/parser.cc";
    cfg.configDirs = {"configs"};
    cfg.docFile = "docs/manual.md";
    cfg.docSection = "5.";
    // Parser accepts tlb.entries (documented) and mtlb.assoc
    // (neither set nor documented -> finding). The cfg file sets
    // dead.key which the parser does not accept -> finding. The
    // manual documents ghost.key -> finding.
    t.write("src/parser.cc",
            "void parse() {\n"
            "    set(\"tlb.entries\");\n"
            "    set(\"mtlb.assoc\");\n"         // line 3
            "}\n");
    t.write("configs/a.cfg",
            "tlb.entries = 64\n"
            "dead.key = 1\n");                   // line 2
    t.write("docs/manual.md",
            "## 5. Configuration keys\n"
            "| `tlb.entries` | entries |\n"
            "| `ghost.key` | gone |\n");         // line 3
    const auto fs = runLint(t.root(), cfg, {"R4"});
    ASSERT_EQ(fs.size(), 3u) << messages(fs);
    // Findings sort by file: configs/a.cfg, docs/manual.md,
    // src/parser.cc.
    EXPECT_EQ(fs[0].file, "configs/a.cfg");
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_NE(fs[0].message.find("dead.key"), std::string::npos);
    EXPECT_EQ(fs[1].file, "docs/manual.md");
    EXPECT_EQ(fs[1].line, 3);
    EXPECT_NE(fs[1].message.find("ghost.key"), std::string::npos);
    EXPECT_EQ(fs[2].file, "src/parser.cc");
    EXPECT_EQ(fs[2].line, 3);
    EXPECT_NE(fs[2].message.find("mtlb.assoc"), std::string::npos);
}

TEST(LintR5, BannedConstructsAndExemptions)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.banned = {"new", "rand"};
    cfg.bannedExempt = {"src/sweep"};
    cfg.guardStrip = {"src/"};
    t.write("src/a.cc",
            "void f() {\n"
            "    int *p = new int;\n"            // line 2
            "    int r = rand();\n"              // line 3
            "}\n");
    t.write("src/sweep/b.cc",
            "void g() { int *p = new int; }\n"); // exempt dir
    const auto fs = runLint(t.root(), cfg, {"R5"});
    ASSERT_EQ(fs.size(), 2u) << messages(fs);
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_NE(fs[0].message.find("naked 'new'"), std::string::npos);
    EXPECT_EQ(fs[1].line, 3);
    EXPECT_NE(fs[1].message.find("rand"), std::string::npos);
}

TEST(LintR5, IncludeGuardConformance)
{
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.guardStrip = {"src/"};
    t.write("src/tlb/good.hh",
            "#ifndef MTLBSIM_TLB_GOOD_HH\n"
            "#define MTLBSIM_TLB_GOOD_HH\n"
            "#endif\n");
    t.write("src/tlb/bad.hh",
            "#ifndef WRONG_GUARD_HH\n"
            "#define WRONG_GUARD_HH\n"
            "#endif\n");
    const auto fs = runLint(t.root(), cfg, {"R5"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].file, "src/tlb/bad.hh");
    EXPECT_NE(fs[0].message.find("MTLBSIM_TLB_BAD_HH"),
              std::string::npos);
}

TEST(LintR4, MissingDocSectionIsFinding)
{
    // Satellite fix pin: restructuring the manual so the configured
    // heading no longer exists must be a finding, not a silently
    // empty scan.
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.configSource = "src/parser.cc";
    cfg.configDirs = {"configs"};
    cfg.docFile = "docs/manual.md";
    cfg.docSection = "5.";
    t.write("src/parser.cc", "void parse() { set(\"tlb.entries\"); }\n");
    t.write("configs/a.cfg", "tlb.entries = 64\n");
    t.write("docs/manual.md",
            "## 6. Other section\n"
            "| `tlb.entries` | entries |\n");
    const auto fs = runLint(t.root(), cfg, {"R4"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].file, "docs/manual.md");
    EXPECT_NE(fs[0].message.find("doc-section"), std::string::npos);
}

TEST(LintR4, MultiWordDocSectionHeading)
{
    // doc-section takes the rest of the line, so a heading like
    // "Configuration key reference" is configurable verbatim.
    TempTree t;
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.configSource = "src/parser.cc";
    cfg.configDirs = {"configs"};
    cfg.docFile = "docs/manual.md";
    cfg.docSection = "Configuration key reference";
    t.write("src/parser.cc", "void parse() { set(\"tlb.entries\"); }\n");
    t.write("configs/a.cfg", "tlb.entries = 64\n");
    t.write("docs/manual.md",
            "## Configuration key reference\n"
            "| `tlb.entries` | entries |\n");
    const auto fs = runLint(t.root(), cfg, {"R4"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

namespace
{

/** Minimal R6 rules over a scratch tree. */
RulesConfig
globalsRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.globalDirs = {"src"};
    cfg.r6Baseline = "lint/baseline.txt";
    cfg.nonPodTypes = {"map", "vector", "string"};
    return cfg;
}

} // namespace

TEST(LintR6, MutableGlobalInventory)
{
    TempTree t;
    t.write("src/g.cc",
            "int counter = 0;\n"                        // 1: finding
            "const int kLimit = 4;\n"                   // const POD
            "constexpr int kSize = 8;\n"                // constexpr
            "static std::map<int, int> lookup;\n"       // 4: finding
            "const std::map<int, int> kTable = {};\n"   // 5: nonpod
            "void f()\n"
            "{\n"
            "    static int calls = 0;\n"               // 8: finding
            "    int local = 0;\n"                      // plain local
            "    (void)local;\n"
            "}\n"
            "struct S\n"
            "{\n"
            "    int member_ = 0;\n"                    // instance
            "};\n");
    const auto fs = runLint(t.root(), globalsRules(), {"R6"});
    ASSERT_EQ(fs.size(), 4u) << messages(fs);
    EXPECT_EQ(fs[0].line, 1);
    EXPECT_NE(fs[0].message.find("counter"), std::string::npos);
    EXPECT_EQ(fs[1].line, 4);
    EXPECT_NE(fs[1].message.find("lookup"), std::string::npos);
    EXPECT_EQ(fs[2].line, 5);
    EXPECT_NE(fs[2].message.find("kTable"), std::string::npos);
    EXPECT_EQ(fs[3].line, 8);
    EXPECT_NE(fs[3].message.find("calls"), std::string::npos);
}

TEST(LintR6, ClassStaticMemberIsInventoried)
{
    TempTree t;
    t.write("src/s.hh",
            "struct S\n"
            "{\n"
            "    static int shared_;\n"
            "    static constexpr int kOk = 1;\n"
            "    int member_ = 0;\n"
            "};\n");
    const auto fs = runLint(t.root(), globalsRules(), {"R6"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("shared_"), std::string::npos);
}

TEST(LintR6, BaselineRatchet)
{
    TempTree t;
    // 'a' is annotated AND baselined -> clean. 'b' is annotated but
    // not baselined -> finding (annotations alone cannot grow the
    // inventory). Baseline entry 'gone' matches nothing -> stale
    // finding (the ratchet only turns one way).
    t.write("src/g.cc",
            "int a = 0; // mtlb-lint: allow(R6)\n"
            "int b = 0; // mtlb-lint: allow(R6)\n");
    t.write("lint/baseline.txt",
            "# comment\n"
            "src/g.cc a\n"
            "src/g.cc gone\n");
    const auto fs = runLint(t.root(), globalsRules(), {"R6"});
    ASSERT_EQ(fs.size(), 2u) << messages(fs);
    EXPECT_EQ(fs[0].file, "lint/baseline.txt");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("stale"), std::string::npos);
    EXPECT_EQ(fs[1].file, "src/g.cc");
    EXPECT_EQ(fs[1].line, 2);
    EXPECT_NE(fs[1].message.find("not in the ratchet baseline"),
              std::string::npos);
}

TEST(LintR6, KeepAllowedReportsBaselinedEntries)
{
    TempTree t;
    t.write("src/g.cc", "int a = 0; // mtlb-lint: allow(R6)\n");
    t.write("lint/baseline.txt", "src/g.cc a\n");
    EXPECT_TRUE(runLint(t.root(), globalsRules(), {"R6"}).empty());
    const auto fs = runLint(t.root(), globalsRules(), {"R6"}, true);
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_TRUE(fs[0].allowed);
    EXPECT_EQ(fs[0].line, 1);
}

namespace
{

RulesConfig
ownershipRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.ownedTypes = {"Kernel", "Tlb"};
    cfg.ownerClasses = {"Cpu"};
    return cfg;
}

} // namespace

TEST(LintR7, EscapedComponentPointerIsFlagged)
{
    TempTree t;
    t.write("src/o.hh",
            "class Stranger\n"
            "{\n"
            "  public:\n"
            "    void poke();\n"
            "  private:\n"
            "    Kernel *kernel_ = nullptr;\n"      // 6: finding
            "    Tlb &tlb_;\n"                      // 7: finding
            "    int plain_ = 0;\n"
            "};\n");
    const auto fs = runLint(t.root(), ownershipRules(), {"R7"});
    ASSERT_EQ(fs.size(), 2u) << messages(fs);
    EXPECT_EQ(fs[0].line, 6);
    EXPECT_NE(fs[0].message.find("Kernel"), std::string::npos);
    EXPECT_EQ(fs[1].line, 7);
    EXPECT_NE(fs[1].message.find("Tlb"), std::string::npos);
}

TEST(LintR7, OwnerClassMayBorrow)
{
    TempTree t;
    t.write("src/o.hh",
            "class Cpu\n"
            "{\n"
            "    Kernel &kernel_;\n"
            "    Tlb *tlb_ = nullptr;\n"
            "};\n");
    const auto fs = runLint(t.root(), ownershipRules(), {"R7"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR7, SmartPointerAndValueMembersAreFine)
{
    TempTree t;
    t.write("src/o.hh",
            "class Holder\n"
            "{\n"
            "    std::unique_ptr<Kernel> kernel_;\n"
            "    Tlb tlbByValue_;\n"
            "    Kernel *escaped_;   // mtlb-lint: allow(R7)\n"
            "};\n");
    const auto fs = runLint(t.root(), ownershipRules(), {"R7"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

namespace
{

RulesConfig
lockRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.lockFreeDirs = {"src/tlb"};
    cfg.lockIdents = {"mutex", "atomic", "lock_guard"};
    cfg.guardedMembers = {{"src/w.cc", "shared_", "mutex_"}};
    return cfg;
}

} // namespace

TEST(LintR8, GuardedMemberAccessDiscipline)
{
    TempTree t;
    t.write("src/w.cc",
            "void good()\n"
            "{\n"
            "    std::lock_guard<std::mutex> lock(mutex_);\n"
            "    shared_ = 1;\n"
            "}\n"
            "void nested()\n"
            "{\n"
            "    std::lock_guard<std::mutex> lock(mutex_);\n"
            "    if (shared_ > 0) {\n"
            "        shared_ = 2;\n"
            "    }\n"
            "}\n"
            "void bad()\n"
            "{\n"
            "    shared_ = 3;\n"                    // 15: finding
            "}\n");
    const auto fs = runLint(t.root(), lockRules(), {"R8"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 15);
    EXPECT_NE(fs[0].message.find("shared_"), std::string::npos);
    EXPECT_NE(fs[0].message.find("mutex_"), std::string::npos);
}

TEST(LintR8, LockInPrecedingSiblingScopeDoesNotCount)
{
    TempTree t;
    // A lock taken in an earlier block has been released by the
    // time the access runs: scope containment, not just program
    // order, decides.
    t.write("src/w.cc",
            "void f()\n"
            "{\n"
            "    {\n"
            "        std::lock_guard<std::mutex> lock(mutex_);\n"
            "    }\n"
            "    shared_ = 1;\n"                    // 6: finding
            "}\n");
    const auto fs = runLint(t.root(), lockRules(), {"R8"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 6);
}

TEST(LintR8, HotPathMustBeLockFree)
{
    TempTree t;
    t.write("src/tlb/hot.cc",
            "void f()\n"
            "{\n"
            "    std::atomic<int> x{0};\n"          // 3: finding
            "}\n");
    t.write("src/other/cold.cc",
            "std::atomic<int> fine{0};  // mtlb-lint: allow(R6)\n");
    const auto fs = runLint(t.root(), lockRules(), {"R8"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].file, "src/tlb/hot.cc");
    EXPECT_EQ(fs[0].line, 3);
}

namespace
{

RulesConfig
determinismRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.detSinks = {"sample", "onPageMapped"};
    return cfg;
}

} // namespace

TEST(LintR9, UnorderedIterationFeedingStatIsFlagged)
{
    TempTree t;
    t.write("src/d.cc",
            "struct D\n"
            "{\n"
            "    std::unordered_map<int, int> m_;\n"
            "    std::map<int, int> ordered_;\n"
            "    void tainted()\n"
            "    {\n"
            "        for (auto &kv : m_)\n"         // 7: finding
            "            hist_.sample(kv.second);\n"
            "    }\n"
            "    void orderedIsFine()\n"
            "    {\n"
            "        for (auto &kv : ordered_)\n"
            "            hist_.sample(kv.second);\n"
            "    }\n"
            "    void iterationWithoutSinkIsFine()\n"
            "    {\n"
            "        int sum = 0;\n"
            "        for (auto &kv : m_)\n"
            "            sum += kv.second;\n"
            "    }\n"
            "};\n");
    const auto fs = runLint(t.root(), determinismRules(), {"R9"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 7);
    EXPECT_NE(fs[0].message.find("m_"), std::string::npos);
}

TEST(LintR9, PointerKeyedMapAndExplicitIteratorsCount)
{
    TempTree t;
    t.write("src/d.cc",
            "struct D\n"
            "{\n"
            "    std::map<Node *, int> byNode_;\n"
            "    void hooks()\n"
            "    {\n"
            "        auto it = byNode_.begin();\n"  // 6: finding
            "        observer_->onPageMapped(it->second, 0);\n"
            "    }\n"
            "};\n");
    const auto fs = runLint(t.root(), determinismRules(), {"R9"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 6);
    EXPECT_NE(fs[0].message.find("pointer-keyed"), std::string::npos);
}

TEST(LintOutput, GithubAnnotationFormat)
{
    Finding f;
    f.file = "src/a.cc";
    f.line = 3;
    f.id = "R6";
    f.name = "no-mutable-global-state";
    f.message = "mutable global 'x'";
    EXPECT_EQ(mtlblint::formatGithub(f),
              "::error file=src/a.cc,line=3,"
              "title=mtlb-lint R6 no-mutable-global-state"
              "::mutable global 'x'");
}

TEST(LintOutput, JsonCarriesAllowStatusAndLiveCount)
{
    Finding live;
    live.file = "src/a.cc";
    live.line = 3;
    live.id = "R6";
    live.name = "no-mutable-global-state";
    live.message = "mutable global \"x\"";
    Finding allowed = live;
    allowed.line = 9;
    allowed.allowed = true;
    const std::string json = mtlblint::formatJson({live, allowed});
    EXPECT_NE(json.find("\"allowed\": false"), std::string::npos);
    EXPECT_NE(json.find("\"allowed\": true"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    EXPECT_NE(json.find("\\\"x\\\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"rule\": \"R6\""), std::string::npos);
}

TEST(LintLexer, SuppressionsAndStringsSurviveTokenizing)
{
    TempTree t;
    t.write("src/s.cc",
            "// mtlb-lint: allow(R1, R5)\n"
            "const char *k = \"tlb.entries\";\n");
    const auto src = mtlblint::tokenizeFile(
        t.root() + "/src/s.cc", "src/s.cc");
    EXPECT_TRUE(mtlblint::suppressed(src, 1, "R1", "epoch-discipline"));
    EXPECT_TRUE(mtlblint::suppressed(src, 1, "R5", "hygiene"));
    // The suppression also covers the line below the comment.
    EXPECT_TRUE(mtlblint::suppressed(src, 2, "R5", "hygiene"));
    EXPECT_FALSE(mtlblint::suppressed(src, 2, "R3",
                                      "stats-registration"));
    bool sawKey = false;
    for (const auto &tok : src.tokens) {
        if (tok.kind == mtlblint::TokKind::String &&
            tok.text == "tlb.entries") {
            sawKey = true;
        }
    }
    EXPECT_TRUE(sawKey);
}

TEST(LintLexer, RawStringIsOneTokenWithCorrectLines)
{
    const auto src = mtlblint::tokenize(
        "src/s.cc",
        "const char *s = R\"(line one\n"
        "// mtlb-lint: allow(R1)\n"
        ")\";\n"
        "int after = 0;\n");
    // The raw string is a single String token anchored at its start
    // line, and the allow() inside it is content, not a suppression.
    bool sawRaw = false;
    for (const auto &tok : src.tokens) {
        if (tok.kind == mtlblint::TokKind::String) {
            EXPECT_NE(tok.text.find("allow(R1)"), std::string::npos);
            EXPECT_EQ(tok.line, 1);
            sawRaw = true;
        }
        if (tok.kind == mtlblint::TokKind::Identifier &&
            tok.text == "after") {
            EXPECT_EQ(tok.line, 4);
        }
    }
    EXPECT_TRUE(sawRaw);
    EXPECT_TRUE(src.suppressions.empty());
    EXPECT_FALSE(mtlblint::suppressed(src, 2, "R1", "epoch-discipline"));
}

TEST(LintLexer, LineContinuationExtendsLineComment)
{
    const auto src = mtlblint::tokenize(
        "src/s.cc",
        "// continued comment \\\n"
        "int swallowed = 1;\n"
        "int visible = 2;\n");
    // The backslash splices line 2 into the comment: `swallowed`
    // never becomes a token, and `visible` keeps its real line.
    for (const auto &tok : src.tokens)
        EXPECT_NE(tok.text, "swallowed");
    bool sawVisible = false;
    for (const auto &tok : src.tokens) {
        if (tok.kind == mtlblint::TokKind::Identifier &&
            tok.text == "visible") {
            EXPECT_EQ(tok.line, 3);
            sawVisible = true;
        }
    }
    EXPECT_TRUE(sawVisible);
}

TEST(LintLexer, SuppressionInContinuedCommentAnchorsAtStartLine)
{
    const auto src = mtlblint::tokenize(
        "src/s.cc",
        "// mtlb-lint: allow(R1) \\\n"
        "continued text\n"
        "int code = 0;\n");
    // The suppression registers at the comment's first line, so it
    // covers a finding on the line below it as usual.
    EXPECT_TRUE(mtlblint::suppressed(src, 1, "R1", "epoch-discipline"));
    EXPECT_TRUE(mtlblint::suppressed(src, 2, "R1", "epoch-discipline"));
}

TEST(LintLexer, EscapedNewlineInStringKeepsLineCount)
{
    const auto src = mtlblint::tokenize(
        "src/s.cc",
        "const char *s = \"first\\\n"
        "second\";\n"
        "int after = 0;\n");
    bool sawAfter = false;
    for (const auto &tok : src.tokens) {
        if (tok.kind == mtlblint::TokKind::Identifier &&
            tok.text == "after") {
            EXPECT_EQ(tok.line, 3);
            sawAfter = true;
        }
    }
    EXPECT_TRUE(sawAfter);
}

namespace
{

/** Build a propagated CallGraph over in-memory (path, text) files. */
mtlblint::CallGraph
graphOf(const std::vector<std::pair<std::string, std::string>> &files,
        const RulesConfig &cfg)
{
    mtlblint::CallGraph g;
    std::vector<mtlblint::SourceFile> srcs;
    std::vector<mtlblint::ScopeTree> trees;
    for (const auto &[path, text] : files)
        srcs.push_back(mtlblint::tokenize(path, text));
    for (const auto &src : srcs)
        trees.push_back(mtlblint::buildScopes(src.tokens));
    for (size_t i = 0; i < srcs.size(); ++i)
        g.addFile(srcs[i], trees[i], cfg);
    g.propagate(cfg);
    return g;
}

/** Index of the (single) function definition named @p name. */
int
fnIndex(const mtlblint::CallGraph &g, const std::string &name)
{
    for (size_t i = 0; i < g.functions().size(); ++i) {
        if (g.functions()[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace

TEST(LintCallGraph, PropagatesThroughCycles)
{
    RulesConfig cfg;
    const auto g = graphOf(
        {{"src/a.cc",
          "void ping(int n)\n"
          "{\n"
          "    if (n)\n"
          "        pong(n - 1);\n"
          "    tlb_.bumpTranslationEpoch();\n"
          "}\n"
          "void pong(int n)\n"
          "{\n"
          "    if (n)\n"
          "        ping(n - 1);\n"
          "}\n"}},
        cfg);
    // Mutually recursive functions reach a fixpoint: pong bumps via
    // ping, and the loop terminates.
    EXPECT_TRUE(g.callMustBump("src/a.cc", "ping"));
    EXPECT_TRUE(g.callMustBump("src/a.cc", "pong"));
}

TEST(LintCallGraph, OverloadsIntersectMustFacts)
{
    RulesConfig cfg;
    cfg.flushCall = "flushBatch";
    const auto g = graphOf(
        {{"src/a.cc",
          "void h(int x)\n"
          "{\n"
          "    tlb_.bumpTranslationEpoch();\n"
          "    cpu_.flushBatch();\n"
          "}\n"
          "void h(long x)\n"
          "{\n"
          "    cpu_.flushBatch();\n"
          "}\n"}},
        cfg);
    // A call to `h` only guarantees what every overload guarantees.
    EXPECT_FALSE(g.callMustBump("src/a.cc", "h"));
    EXPECT_TRUE(g.callMustFlush("src/a.cc", "h"));
}

TEST(LintCallGraph, ResolutionIsConfinedToTheUnit)
{
    RulesConfig cfg;
    const auto g = graphOf(
        {{"src/a.hh",
          "inline void helper()\n"
          "{\n"
          "    tlb_.bumpTranslationEpoch();\n"
          "}\n"},
         {"src/a.cc",
          "void caller()\n"
          "{\n"
          "    helper();\n"
          "}\n"},
         {"src/b.cc",
          "void stranger()\n"
          "{\n"
          "    helper();\n"
          "}\n"}},
        cfg);
    // a.cc sees its own header's helper; b.cc does not — bare-name
    // resolution across unrelated files drowns in collisions.
    EXPECT_TRUE(g.callMustBump("src/a.cc", "helper"));
    EXPECT_FALSE(g.callMustBump("src/b.cc", "helper"));
    const int caller = fnIndex(g, "caller");
    const int stranger = fnIndex(g, "stranger");
    ASSERT_GE(caller, 0);
    ASSERT_GE(stranger, 0);
    EXPECT_TRUE(g.summary(caller).bumpsEpoch);
    EXPECT_FALSE(g.summary(stranger).bumpsEpoch);
}

TEST(LintCallGraph, MethodsResolveWithTheirClass)
{
    RulesConfig cfg;
    const auto g = graphOf(
        {{"src/a.cc",
          "class Widget\n"
          "{\n"
          "    void inClass()\n"
          "    {\n"
          "        tlb_.bumpTranslationEpoch();\n"
          "    }\n"
          "};\n"
          "void\n"
          "Widget::outOfClass()\n"
          "{\n"
          "    inClass();\n"
          "}\n"}},
        cfg);
    const int in = fnIndex(g, "inClass");
    const int out = fnIndex(g, "outOfClass");
    ASSERT_GE(in, 0);
    ASSERT_GE(out, 0);
    EXPECT_EQ(g.functions()[in].cls, "Widget");
    EXPECT_EQ(g.functions()[out].cls, "Widget");
    EXPECT_TRUE(g.summary(out).bumpsEpoch);
}

namespace
{

/** R10 rules over a minimal kernel file. */
RulesConfig
shootdownRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.kernelFile = "src/os/kernel.cc";
    cfg.shootdownCall = "shootdownRemote";
    return cfg;
}

/** R11 rules: one confined container, one exempt accessor. */
RulesConfig
coreRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.percoreContainers = {{"cores_", "activeCore_"}};
    cfg.r11Exempt = {"coreTlb"};
    return cfg;
}

/** R12 rules: one flush call, one reader. */
RulesConfig
flushRules()
{
    RulesConfig cfg;
    cfg.scanDirs = {"src"};
    cfg.flushCall = "flushBatch";
    cfg.r12Readers = {{"rootStats_", "print"}};
    return cfg;
}

} // namespace

TEST(LintR10, BumpWithoutBroadcastIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Addr v)\n"
            "{\n"
            "    tlb_.purgeRange(v, 4096);\n"
            "    tlb_.bumpTranslationEpoch();\n"   // 4: finding
            "}\n");
    const auto fs = runLint(t.root(), shootdownRules(), {"R10"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R10");
    EXPECT_EQ(fs[0].line, 4);
    EXPECT_NE(fs[0].message.find("'f'"), std::string::npos);
}

TEST(LintR10, MatchingBroadcastIsClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Addr v)\n"
            "{\n"
            "    tlb_.purgeRange(v, 4096);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    shootdownRemote(v, 4096, false);\n"
            "}\n");
    const auto fs = runLint(t.root(), shootdownRules(), {"R10"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR10, BroadcastThroughHelperIsClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void broadcastAll()\n"
            "{\n"
            "    shootdownRemote(0, 0, false);\n"
            "}\n"
            "void f(Addr v)\n"
            "{\n"
            "    tlb_.purgeRange(v, 4096);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    broadcastAll();\n"
            "}\n");
    const auto fs = runLint(t.root(), shootdownRules(), {"R10"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR10, BroadcastRangeMismatchIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Addr v, Addr n)\n"
            "{\n"
            "    tlb_.purgeRange(v, n);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    shootdownRemote(v, 4096, false);\n"  // 5: finding
            "}\n");
    const auto fs = runLint(t.root(), shootdownRules(), {"R10"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 5);
    EXPECT_NE(fs[0].message.find("does not repeat"),
              std::string::npos);
}

TEST(LintR10, ZeroByteBroadcastNeedsNoRange)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Addr v, Addr n)\n"
            "{\n"
            "    tlb_.purgeRange(v, n);\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    shootdownRemote(v, 0, false);\n"
            "}\n");
    const auto fs = runLint(t.root(), shootdownRules(), {"R10"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR10, WrongArityIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Addr v)\n"
            "{\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "    shootdownRemote(v);\n"            // 4: finding
            "}\n");
    const auto fs = runLint(t.root(), shootdownRules(), {"R10"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].line, 4);
    EXPECT_NE(fs[0].message.find("argument"), std::string::npos);
}

TEST(LintR10, ExemptFunctionMayBumpLocally)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void bindProcess(unsigned core)\n"
            "{\n"
            "    tlb_.purgeAll();\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "}\n");
    RulesConfig cfg = shootdownRules();
    cfg.r10Exempt = {"bindProcess"};
    const auto fs = runLint(t.root(), cfg, {"R10"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR11, CrossCorePokeIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void poke()\n"
            "{\n"
            "    cores_[1].tlb->purgeAll();\n"     // 3: finding
            "}\n");
    const auto fs = runLint(t.root(), coreRules(), {"R11"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R11");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("cores_"), std::string::npos);
}

TEST(LintR11, ActiveCoreIndexIsClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void local()\n"
            "{\n"
            "    cores_[activeCore_].tlb->purgeAll();\n"
            "}\n");
    const auto fs = runLint(t.root(), coreRules(), {"R11"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR11, ExemptAccessorIsClean)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "Tlb *coreTlb(unsigned c)\n"
            "{\n"
            "    return cores_[c].tlb;\n"
            "}\n");
    const auto fs = runLint(t.root(), coreRules(), {"R11"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR12, ReaderWithoutFlushIsFlagged)
{
    TempTree t;
    t.write("src/sim/system.cc",
            "void dump(std::ostream &os)\n"
            "{\n"
            "    rootStats_.print(os);\n"          // 3: finding
            "}\n");
    const auto fs = runLint(t.root(), flushRules(), {"R12"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R12");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("rootStats_.print"),
              std::string::npos);
}

TEST(LintR12, FlushBeforeReadIsClean)
{
    TempTree t;
    t.write("src/sim/system.cc",
            "void dump(std::ostream &os)\n"
            "{\n"
            "    cpu_->flushBatch();\n"
            "    rootStats_.print(os);\n"
            "}\n");
    const auto fs = runLint(t.root(), flushRules(), {"R12"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR12, FlushThroughHelperIsClean)
{
    TempTree t;
    t.write("src/sim/system.cc",
            "void flushAll()\n"
            "{\n"
            "    cpu_->flushBatch();\n"
            "}\n"
            "void dump(std::ostream &os)\n"
            "{\n"
            "    flushAll();\n"
            "    rootStats_.print(os);\n"
            "}\n");
    const auto fs = runLint(t.root(), flushRules(), {"R12"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR12, TransitiveReaderIsFlagged)
{
    TempTree t;
    t.write("src/sim/system.cc",
            "void printer(std::ostream &os)\n"
            "{\n"
            "    rootStats_.print(os);\n"          // 3: direct finding
            "}\n"
            "void outer(std::ostream &os)\n"
            "{\n"
            "    printer(os);\n"                   // 7: transitive
            "}\n");
    const auto fs = runLint(t.root(), flushRules(), {"R12"});
    ASSERT_EQ(fs.size(), 2u) << messages(fs);
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_EQ(fs[1].line, 7);
    EXPECT_NE(fs[1].message.find("'printer'"), std::string::npos);
}

TEST(LintSA, StaleAllowIsFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f()\n"
            "{\n"
            "    int x = 0;  // mtlb-lint: allow(R1)\n"  // 3: stale
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"SA"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "SA");
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("allow(R1)"), std::string::npos);
}

TEST(LintSA, LiveAllowIsNotFlagged)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);  // mtlb-lint: allow(R1)\n"
            "}\n");
    // The R1 finding is suppressed by the annotation, which is
    // therefore live: selecting SA alone reports nothing at all.
    const auto fs = runLint(t.root(), kernelRules(), {"SA"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintSA, UnassessedRuleAndUnknownTokensAreIgnored)
{
    TempTree t;
    // R8 has no guarded members or lock-free dirs configured here, so
    // an allow(R8) cannot be judged stale; `allow(foo)` names no rule
    // at all (prose in a comment), so it is skipped too.
    t.write("src/os/kernel.cc",
            "void f()\n"
            "{\n"
            "    int x = 0;  // mtlb-lint: allow(R8)\n"
            "    int y = 0;  // mtlb-lint: allow(foo)\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"SA"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR1, HelperBumpSatisfiesEpochDiscipline)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void doBump()\n"
            "{\n"
            "    tlb_.bumpTranslationEpoch();\n"
            "}\n"
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"
            "    doBump();\n"
            "}\n");
    // Interprocedural: the bump arrives through a helper, so no
    // allow() escape is needed.
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

TEST(LintR1, HelperWithoutBumpStillFlags)
{
    TempTree t;
    t.write("src/os/kernel.cc",
            "void doNothing()\n"
            "{\n"
            "    trace();\n"
            "}\n"
            "void f(Mmc &mmc)\n"
            "{\n"
            "    mmc.setShadowMapping(1, 2);\n"    // 7: finding
            "    doNothing();\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R1"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R1");
    EXPECT_EQ(fs[0].line, 7);
}

TEST(LintR2, HookThroughHelperSatisfiesObserverDiscipline)
{
    TempTree t;
    // `mapOne` calls installFrame (pair rule: onPageMapped required
    // in the same function) and fires the hook through a helper.
    t.write("src/os/kernel.cc",
            "void notifyMapped(Addr v, Pfn p)\n"
            "{\n"
            "    observer_->onPageMapped(v, p);\n"
            "}\n"
            "void mapOne(Addr v, Pfn p)\n"
            "{\n"
            "    installFrame(v, p);\n"
            "    notifyMapped(v, p);\n"
            "}\n");
    const auto fs = runLint(t.root(), kernelRules(), {"R2"});
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

#ifdef MTLBSIM_REPO_ROOT

TEST(LintSelfHost, RepositoryLintsClean)
{
    const std::string root = MTLBSIM_REPO_ROOT;
    const RulesConfig cfg =
        RulesConfig::load(root + "/tools/lint/rules.cfg");
    const auto fs = runLint(root, cfg);
    EXPECT_TRUE(fs.empty()) << messages(fs);
}

namespace
{

/** Copy the real kernel.cc into a scratch tree with the first line
 *  containing @p needle deleted; return the lint findings for
 *  @p rules over the mutated file. */
std::vector<Finding>
lintWithDeletedLine(TempTree &t, const std::string &needle,
                    const std::set<std::string> &rules)
{
    std::ifstream is(std::string(MTLBSIM_REPO_ROOT) +
                     "/src/os/kernel.cc");
    EXPECT_TRUE(is.good());
    std::ostringstream out;
    std::string line;
    bool deleted = false;
    while (std::getline(is, line)) {
        if (!deleted && line.find(needle) != std::string::npos) {
            deleted = true;
            continue;
        }
        out << line << "\n";
    }
    EXPECT_TRUE(deleted) << "needle not found: " << needle;
    t.write("src/os/kernel.cc", out.str());

    const std::string root = MTLBSIM_REPO_ROOT;
    RulesConfig cfg = RulesConfig::load(root + "/tools/lint/rules.cfg");
    return runLint(t.root(), cfg, rules);
}

} // namespace

TEST(LintSelfHost, DeletedEpochBumpIsCaught)
{
    TempTree t;
    const auto fs =
        lintWithDeletedLine(t, "activeTlb().bumpTranslationEpoch();",
                            {"R1"});
    ASSERT_FALSE(fs.empty());
    EXPECT_EQ(fs[0].id, "R1");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
    EXPECT_GT(fs[0].line, 0);
}

TEST(LintSelfHost, DeletedObserverHookIsCaught)
{
    TempTree t;
    const auto fs = lintWithDeletedLine(
        t, "observer_->onPageMapped(pageBase(vaddr), pfn);", {"R2"});
    ASSERT_FALSE(fs.empty());
    EXPECT_EQ(fs[0].id, "R2");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
}

namespace
{

/** Read a real repo file's contents. */
std::string
realFile(const std::string &rel)
{
    std::ifstream is(std::string(MTLBSIM_REPO_ROOT) + "/" + rel);
    EXPECT_TRUE(is.good()) << rel;
    std::ostringstream out;
    out << is.rdbuf();
    return out.str();
}

int
lineCount(const std::string &text)
{
    return static_cast<int>(
        std::count(text.begin(), text.end(), '\n'));
}

RulesConfig
repoRules()
{
    return RulesConfig::load(std::string(MTLBSIM_REPO_ROOT) +
                             "/tools/lint/rules.cfg");
}

} // namespace

TEST(LintSelfHost, BaselinedGlobalStateIsTiny)
{
    // The acceptance bar: at most one surviving mutable global (the
    // process-wide debug registry), annotated and baselined
    // (reported only via keepAllowed).
    const auto fs =
        runLint(MTLBSIM_REPO_ROOT, repoRules(), {"R6"}, true);
    EXPECT_LE(fs.size(), 1u) << messages(fs);
    for (const auto &f : fs)
        EXPECT_TRUE(f.allowed) << mtlblint::format(f);
}

TEST(LintSelfHost, PlantedMutableGlobalIsCaught)
{
    TempTree t;
    // Mirror the files the baseline references so the ratchet itself
    // stays satisfied, then plant a fresh global.
    t.write("src/base/debug.cc", realFile("src/base/debug.cc"));
    t.write("tools/lint/r6_baseline.txt",
            realFile("tools/lint/r6_baseline.txt"));
    const std::string logging = realFile("src/base/logging.cc");
    t.write("src/base/logging.cc",
            logging + "int gSneakyCounter = 0;\n");
    const int planted = lineCount(logging) + 1;

    const auto fs = runLint(t.root(), repoRules(), {"R6"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].file, "src/base/logging.cc");
    EXPECT_EQ(fs[0].line, planted);
    EXPECT_NE(fs[0].message.find("gSneakyCounter"), std::string::npos);
}

TEST(LintSelfHost, PlantedEscapingKernelPointerIsCaught)
{
    TempTree t;
    const std::string sweep = realFile("src/sweep/sweep.hh");
    t.write("src/sweep/sweep.hh",
            sweep +
                "class RogueObserver\n"
                "{\n"
                "    Kernel *kernel_;\n"
                "};\n");
    const int planted = lineCount(sweep) + 3;

    const auto fs = runLint(t.root(), repoRules(), {"R7"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R7");
    EXPECT_EQ(fs[0].file, "src/sweep/sweep.hh");
    EXPECT_EQ(fs[0].line, planted);
    EXPECT_NE(fs[0].message.find("Kernel"), std::string::npos);
}

TEST(LintSelfHost, DeletedLockGuardIsCaught)
{
    TempTree t;
    const std::string real = realFile("src/sweep/sweep.cc");
    std::istringstream is(real);
    std::ostringstream out;
    std::string line;
    int lineNo = 0, accessLine = 0;
    bool deleted = false;
    while (std::getline(is, line)) {
        if (!deleted &&
            line.find("std::lock_guard<std::mutex> lock(progressMutex)") !=
                std::string::npos) {
            deleted = true;
            continue;       // drop the lock: accesses go unguarded
        }
        ++lineNo;
        if (deleted && !accessLine &&
            line.find("if (progress)") != std::string::npos) {
            accessLine = lineNo;
        }
        out << line << "\n";
    }
    ASSERT_TRUE(deleted);
    ASSERT_GT(accessLine, 0);
    t.write("src/sweep/sweep.cc", out.str());

    const auto fs = runLint(t.root(), repoRules(), {"R8"});
    ASSERT_FALSE(fs.empty()) << messages(fs);
    EXPECT_EQ(fs[0].id, "R8");
    EXPECT_EQ(fs[0].file, "src/sweep/sweep.cc");
    EXPECT_EQ(fs[0].line, accessLine);
    EXPECT_NE(fs[0].message.find("progress"), std::string::npos);
}

TEST(LintSelfHost, DeletedShootdownIsCaught)
{
    TempTree t;
    const std::string real = realFile("src/os/kernel.cc");
    std::istringstream is(real);
    std::ostringstream out;
    std::string line;
    int lineNo = 0, deletedAt = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (!deletedAt &&
            line.find("shootdownRemote(vbase, basePageSize, false);") !=
                std::string::npos) {
            deletedAt = lineNo;
            continue;   // drop the broadcast after the epoch bump
        }
        out << line << "\n";
    }
    ASSERT_GT(deletedAt, 0);
    t.write("src/os/kernel.cc", out.str());

    // The finding anchors at the epoch bump the broadcast guarded —
    // the line directly above the deleted one (mapPageToShadow).
    const auto fs = runLint(t.root(), repoRules(), {"R10"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R10");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
    EXPECT_EQ(fs[0].line, deletedAt - 1);
    EXPECT_NE(fs[0].message.find("'mapPageToShadow'"),
              std::string::npos);
}

TEST(LintSelfHost, DeletedBatchFlushIsCaught)
{
    TempTree t;
    const std::string real = realFile("src/sim/system.cc");
    std::istringstream is(real);
    std::ostringstream out;
    std::string line;
    int lineNo = 0, deletedAt = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (!deletedAt &&
            line.find("    flushAllBatches();") != std::string::npos) {
            deletedAt = lineNo;
            continue;   // System::audit() now reads unflushed stats
        }
        out << line << "\n";
    }
    ASSERT_GT(deletedAt, 0);
    t.write("src/sim/system.cc", out.str());

    // The auditor call that followed the deleted flush shifts up into
    // its slot; the finding anchors there.
    const auto fs = runLint(t.root(), repoRules(), {"R12"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R12");
    EXPECT_EQ(fs[0].file, "src/sim/system.cc");
    EXPECT_EQ(fs[0].line, deletedAt);
    EXPECT_NE(fs[0].message.find("'audit'"), std::string::npos);
}

TEST(LintSelfHost, PlantedCrossCorePokeIsCaught)
{
    TempTree t;
    const std::string real = realFile("src/os/kernel.cc");
    t.write("src/os/kernel.cc",
            real +
                "namespace mtlbsim\n"
                "{\n"
                "void\n"
                "Kernel::rogueCrossCorePoke()\n"
                "{\n"
                "    cores_[1].tlb->purgeAll();\n"
                "}\n"
                "} // namespace mtlbsim\n");
    const int planted = lineCount(real) + 6;

    const auto fs = runLint(t.root(), repoRules(), {"R11"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R11");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
    EXPECT_EQ(fs[0].line, planted);
    EXPECT_NE(fs[0].message.find("'rogueCrossCorePoke'"),
              std::string::npos);
}

TEST(LintSelfHost, PlantedStaleAllowIsCaught)
{
    TempTree t;
    const std::string real = realFile("src/os/kernel.cc");
    t.write("src/os/kernel.cc",
            real + "// mtlb-lint: allow(R1)\n"
                   "static const int kHarmless = 0;\n");
    const int planted = lineCount(real) + 1;

    const auto fs = runLint(t.root(), repoRules(), {"SA"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "SA");
    EXPECT_EQ(fs[0].file, "src/os/kernel.cc");
    EXPECT_EQ(fs[0].line, planted);
}

TEST(LintSelfHost, PlantedUnorderedIterationFeedingStatIsCaught)
{
    TempTree t;
    t.write("src/mtlb/taint.cc",
            "struct Taint\n"
            "{\n"
            "    std::unordered_map<int, int> depths_;\n"
            "    void record()\n"
            "    {\n"
            "        for (auto &kv : depths_)\n"    // 6: finding
            "            histogram_.sample(kv.second);\n"
            "    }\n"
            "};\n");
    const auto fs = runLint(t.root(), repoRules(), {"R9"});
    ASSERT_EQ(fs.size(), 1u) << messages(fs);
    EXPECT_EQ(fs[0].id, "R9");
    EXPECT_EQ(fs[0].file, "src/mtlb/taint.cc");
    EXPECT_EQ(fs[0].line, 6);
}

#endif // MTLBSIM_REPO_ROOT
