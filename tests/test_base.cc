/**
 * @file
 * Unit tests for the base library: logging, types, intmath, random.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "base/types.hh"

using namespace mtlbsim;

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom"), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, PanicMessageIsAssembled)
{
    try {
        panic("value was ", 42, " not ", 43);
        FAIL() << "expected panic";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "value was 42 not 43");
    }
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("suspicious"));
    EXPECT_NO_THROW(inform("status"));
    setInformEnabled(false);
    EXPECT_NO_THROW(inform("suppressed"));
    setInformEnabled(true);
}

TEST(Types, ClockRatio)
{
    EXPECT_EQ(cpuCyclesPerMmcCycle, 2u);
    EXPECT_EQ(mmcToCpuCycles(5), 10u);
}

TEST(Types, PageHelpers)
{
    EXPECT_EQ(basePageSize, 4096u);
    EXPECT_EQ(pageFrame(0x12345678), 0x12345u);
    EXPECT_EQ(pageBase(0x12345678), 0x12345000u);
    EXPECT_EQ(pageOffset(0x12345678), 0x678u);
}

TEST(Types, LineHelpers)
{
    EXPECT_EQ(cacheLineSize, 32u);
    EXPECT_EQ(lineBase(0x1234567f), 0x12345660u);
}

TEST(Intmath, IsPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(Intmath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(floorLog2(8191), 12u);
}

TEST(Intmath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
    EXPECT_EQ(ceilLog2(524288), 19u);
}

TEST(Intmath, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 4096), 0u);
    EXPECT_EQ(roundUp(1, 4096), 4096u);
    EXPECT_EQ(roundUp(4096, 4096), 4096u);
    EXPECT_EQ(roundDown(8191, 4096), 4096u);
}

TEST(Intmath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(Random, Deterministic)
{
    Random a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(7), b(8);
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= a.next() != b.next();
    EXPECT_TRUE(differs);
}

TEST(Random, ZeroSeedRemapped)
{
    Random a(0);
    // Must not produce a degenerate all-zero stream.
    std::set<std::uint64_t> values;
    for (int i = 0; i < 16; ++i)
        values.insert(a.next());
    EXPECT_GT(values.size(), 10u);
}

TEST(Random, BelowIsInRange)
{
    Random rng(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, InRangeInclusive)
{
    Random rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.inRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, ChanceRoughlyCalibrated)
{
    Random rng(3);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(1, 4) ? 1 : 0;
    EXPECT_NEAR(hits, 2500, 300);
}
