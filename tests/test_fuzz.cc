/**
 * @file
 * Tests for the differential fuzzer (src/fuzz): the oracle reference
 * model, schedule generation/serialization, clean-run and replay
 * determinism, the shrinker, and the FaultInjector self-test.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "fuzz/fuzzer.hh"
#include "fuzz/oracle.hh"
#include "fuzz/schedule.hh"
#include "fuzz/shrink.hh"

using namespace mtlbsim;
using namespace mtlbsim::fuzz;

namespace
{

constexpr Addr KB = 1024;

// ---------------------------------------------------------------
// OracleMemory
// ---------------------------------------------------------------

TEST(Oracle, TracksFramesAndAccessBits)
{
    OracleMemory oracle;
    oracle.addRegion(fuzzDataBase, fuzzDataBytes, true);

    EXPECT_FALSE(oracle.present(fuzzDataBase));
    oracle.onPageMapped(fuzzDataBase, 42);
    EXPECT_TRUE(oracle.present(fuzzDataBase));
    EXPECT_EQ(oracle.frameOf(fuzzDataBase + 123), 42u);

    EXPECT_FALSE(oracle.referenced(fuzzDataBase));
    oracle.noteAccess(fuzzDataBase + 8, false);
    EXPECT_TRUE(oracle.referenced(fuzzDataBase));
    EXPECT_FALSE(oracle.dirty(fuzzDataBase));
    oracle.noteAccess(fuzzDataBase + 8, true);
    EXPECT_TRUE(oracle.dirty(fuzzDataBase));

    // Unmapping drops the frame and the access bits.
    oracle.onPageUnmapped(fuzzDataBase, 42);
    EXPECT_FALSE(oracle.present(fuzzDataBase));
    EXPECT_FALSE(oracle.referenced(fuzzDataBase));
    EXPECT_TRUE(oracle.eventErrors().empty());
}

TEST(Oracle, FlagsInconsistentEvents)
{
    OracleMemory oracle;
    oracle.addRegion(fuzzDataBase, fuzzDataBytes, true);

    oracle.onPageMapped(fuzzDataBase, 1);
    oracle.onPageMapped(fuzzDataBase, 2);    // double map
    ASSERT_EQ(oracle.eventErrors().size(), 1u);

    oracle.onPageUnmapped(fuzzDataBase + 4096, 9);  // absent page
    ASSERT_EQ(oracle.eventErrors().size(), 2u);

    oracle.onPageUnmapped(fuzzDataBase, 7);  // wrong frame
    ASSERT_EQ(oracle.eventErrors().size(), 3u);
}

TEST(Oracle, SuperpageLifecycleClearsAccessBits)
{
    OracleMemory oracle;
    oracle.addRegion(fuzzDataBase, fuzzDataBytes, true);

    for (unsigned i = 0; i < 4; ++i)
        oracle.onPageMapped(fuzzDataBase + i * 4 * KB, 100 + i);
    oracle.noteAccess(fuzzDataBase + 4 * KB, true);

    // A new superpage rewrites every covered PTE: R/D restart clean.
    oracle.onSuperpageCreated(fuzzDataBase, 0x80000000, 1);
    EXPECT_FALSE(oracle.referenced(fuzzDataBase + 4 * KB));
    EXPECT_FALSE(oracle.dirty(fuzzDataBase + 4 * KB));

    const OracleSuperpage *sp =
        oracle.superpageCovering(fuzzDataBase + 15 * KB);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->vbase, fuzzDataBase);
    EXPECT_EQ(sp->sizeClass, 1u);
    EXPECT_EQ(oracle.superpageCovering(fuzzDataBase + 16 * KB),
              nullptr);
    EXPECT_TRUE(oracle.eventErrors().empty());
}

TEST(Oracle, ExpectedSwapWriteCounts)
{
    OracleMemory oracle;
    oracle.addRegion(fuzzDataBase, fuzzDataBytes, true);

    for (unsigned i = 0; i < 4; ++i)
        oracle.onPageMapped(fuzzDataBase + i * 4 * KB, 100 + i);
    oracle.onSuperpageCreated(fuzzDataBase, 0x80000000, 1);
    oracle.noteAccess(fuzzDataBase, true);           // dirty
    oracle.noteAccess(fuzzDataBase + 4 * KB, false); // clean ref
    oracle.onPageUnmapped(fuzzDataBase + 12 * KB, 103);

    // Pagewise: only present+dirty pages are written.
    EXPECT_EQ(oracle.expectedPagewiseWrites(fuzzDataBase + 5 * KB), 1u);
    // Whole: every present page is written.
    EXPECT_EQ(oracle.expectedWholeWrites(fuzzDataBase + 5 * KB), 3u);
    // Outside any superpage: nothing.
    EXPECT_EQ(oracle.expectedWholeWrites(fuzzDataBase + 64 * KB), 0u);
}

// ---------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------

TEST(Schedule, GenerationIsDeterministic)
{
    const FuzzParams params = paramsForSeed(7, 500, 16);
    const Schedule a = generateSchedule(params);
    const Schedule b = generateSchedule(params);
    ASSERT_EQ(a.ops.size(), 500u);
    EXPECT_TRUE(a.ops == b.ops);

    const Schedule c = generateSchedule(paramsForSeed(8, 500, 16));
    EXPECT_FALSE(a.ops == c.ops);
}

TEST(Schedule, ParamsForSeedCoversMachineCorners)
{
    bool saw_no_l0 = false, saw_all_shadow = false;
    bool saw_promotion_off = false;
    for (std::uint64_t s = 1; s <= 12; ++s) {
        const FuzzParams p = paramsForSeed(s, 100, 16);
        saw_no_l0 |= p.l0Entries == 0;
        saw_all_shadow |= p.allShadowMode;
        saw_promotion_off |= !p.onlinePromotion;
        EXPECT_EQ(p.seed, s);
    }
    EXPECT_TRUE(saw_no_l0);
    EXPECT_TRUE(saw_all_shadow);
    EXPECT_TRUE(saw_promotion_off);
}

TEST(Schedule, JsonRoundTrip)
{
    const Schedule s = generateSchedule(paramsForSeed(11, 200, 8));

    const FuzzParams params2 = paramsFromJson(paramsToJson(s.params));
    EXPECT_TRUE(params2 == s.params);

    const std::vector<FuzzOp> ops2 = opsFromJson(opsToJson(s.ops));
    EXPECT_TRUE(ops2 == s.ops);
}

// ---------------------------------------------------------------
// Lockstep runs
// ---------------------------------------------------------------

TEST(Fuzzer, CleanTreeRunsClean)
{
    const Schedule schedule = generateSchedule(paramsForSeed(3, 400, 8));
    const RunResult result = runSchedule(schedule);
    EXPECT_FALSE(result.failed)
        << "[" << result.failure.detector << "] "
        << result.failure.detail;
    EXPECT_EQ(result.opsExecuted, schedule.ops.size());
    EXPECT_FALSE(result.finalStats.isNull());
}

TEST(Fuzzer, RunsAreDeterministic)
{
    const Schedule schedule = generateSchedule(paramsForSeed(5, 300, 8));
    const RunResult a = runSchedule(schedule);
    const RunResult b = runSchedule(schedule);
    ASSERT_FALSE(a.failed);
    ASSERT_FALSE(b.failed);
    // Replay byte-identity: the whole stats tree, dumped, matches.
    EXPECT_EQ(a.finalStats.dumped(2), b.finalStats.dumped(2));
}

TEST(Fuzzer, TraceFileRoundTripsByteIdentically)
{
    const Schedule schedule = generateSchedule(paramsForSeed(9, 250, 8));
    const RunResult result = runSchedule(schedule);
    ASSERT_FALSE(result.failed);

    const std::string path = "test_fuzz_roundtrip.fztrace";
    writeTrace(path, schedule, result);
    const FuzzTrace trace = loadTrace(path);
    std::remove(path.c_str());

    EXPECT_TRUE(trace.schedule.params == schedule.params);
    EXPECT_TRUE(trace.schedule.ops == schedule.ops);
    EXPECT_FALSE(trace.hasFailure);

    // Re-running the loaded schedule reproduces the recorded stats
    // byte-for-byte — the property `tools/fuzz --replay` enforces.
    const RunResult rerun = runSchedule(trace.schedule);
    EXPECT_EQ(rerun.finalStats.dumped(2), trace.finalStats.dumped(2));
}

TEST(Fuzzer, RejectsMalformedTraces)
{
    json::Value v = json::Value::object();
    v.set("format", json::Value("not-a-trace"));
    v.set("version", json::Value(1));
    EXPECT_THROW(traceFromJson(v), FatalError);
}

// Regression: remap() must never build a superpage spanning an
// existing one. Found by the fuzzer (seeds 1 and 4 of the first
// campaign): the 256 KB chunk at 0x100b4000 would swallow the live
// 16 KB superpage at 0x100c4000, double-mapping its frames.
TEST(Fuzzer, OverlappingRemapsStayCoherent)
{
    FuzzParams params = paramsForSeed(1, 10, 1);
    params.allShadowMode = true;

    Schedule schedule;
    schedule.params = params;
    schedule.params.numOps = 2;
    schedule.ops = {
        {OpKind::Remap, fuzzDataBase + 0xc4000, 16 * KB},
        {OpKind::Remap, fuzzDataBase + 0xb4000, 256 * KB},
    };

    const RunResult result = runSchedule(schedule);
    EXPECT_FALSE(result.failed)
        << "[" << result.failure.detector << "] "
        << result.failure.detail;
}

// ---------------------------------------------------------------
// Multi-core lockstep: ops round-robin over the cores (all bound to
// process 0), the oracle stays flat per address space, and every
// access validates the issuing core plus any remote core that still
// caches a translation for that address.
// ---------------------------------------------------------------

TEST(Multicore, CleanTreeRunsCleanOnTwoAndFourCores)
{
    for (unsigned cores : {2u, 4u}) {
        FuzzParams params = paramsForSeed(3, 400, 8);
        params.cores = cores;
        const Schedule schedule = generateSchedule(params);
        const RunResult result = runSchedule(schedule);
        EXPECT_FALSE(result.failed)
            << cores << " cores: [" << result.failure.detector
            << "] " << result.failure.detail;
        EXPECT_EQ(result.opsExecuted, schedule.ops.size());
    }
}

TEST(Multicore, RunsAreDeterministic)
{
    FuzzParams params = paramsForSeed(5, 300, 8);
    params.cores = 2;
    const Schedule schedule = generateSchedule(params);
    const RunResult a = runSchedule(schedule);
    const RunResult b = runSchedule(schedule);
    ASSERT_FALSE(a.failed)
        << "[" << a.failure.detector << "] " << a.failure.detail;
    ASSERT_FALSE(b.failed);
    EXPECT_EQ(a.finalStats.dumped(2), b.finalStats.dumped(2));
}

TEST(Multicore, CoresFieldRoundTripsAndDefaultsToOne)
{
    FuzzParams params = paramsForSeed(11, 200, 8);
    params.cores = 4;
    EXPECT_EQ(paramsFromJson(paramsToJson(params)).cores, 4u);

    // A trace recorded before the field existed (rebuild the params
    // object without "cores") must replay single-core.
    const json::Value recorded = paramsToJson(params);
    json::Value legacy = json::Value::object();
    for (const auto &[key, value] : recorded.members()) {
        if (key != "cores")
            legacy.set(key, value);
    }
    EXPECT_EQ(paramsFromJson(legacy).cores, 1u);
}

TEST(Multicore, SkipShootdownTripsCrossCoreInvariant)
{
    const Schedule schedule =
        selfTestSchedule(FaultKind::SkipShootdown);
    ASSERT_EQ(schedule.params.cores, 2u);
    const RunResult result = runSchedule(schedule);
    ASSERT_TRUE(result.failed)
        << "suppressed shootdown was not detected";
    EXPECT_EQ(result.failure.detector, "audit:cross-core-coherence");
}

// ---------------------------------------------------------------
// Self-test: every corruption class must be caught, and the
// shrinker must keep each reproducer small without losing the bug.
// ---------------------------------------------------------------

TEST(Fuzzer, SelfTestCatchesEveryFaultKind)
{
    const std::vector<SelfTestOutcome> outcomes = runSelfTest(true);
    ASSERT_EQ(outcomes.size(), numFaultKinds);
    for (const SelfTestOutcome &out : outcomes) {
        EXPECT_TRUE(out.detected)
            << faultKindName(out.kind) << " was not detected";
        if (!out.detected)
            continue;
        EXPECT_TRUE(out.shrunkStillFails)
            << faultKindName(out.kind) << " lost in shrinking";
        EXPECT_LE(out.shrunkOps, 64u) << faultKindName(out.kind);
    }
}

TEST(Fuzzer, ShrinkerPreservesDetectorCategory)
{
    // Pad a failing self-test schedule with irrelevant loads; the
    // shrinker must strip them and keep the same detector.
    const Schedule base = selfTestSchedule(FaultKind::DoubleMapFrame);
    Schedule padded = base;
    for (unsigned i = 0; i < 24; ++i) {
        padded.ops.insert(padded.ops.begin() + 2,
                          {OpKind::Load,
                           fuzzDataBase + (i % 8) * 4 * KB, 0});
    }
    padded.params.numOps = static_cast<unsigned>(padded.ops.size());

    const RunResult full = runSchedule(padded);
    ASSERT_TRUE(full.failed);

    const ShrinkResult sr = shrinkSchedule(
        padded.params, padded.ops, full.failure.detector, 300);
    ASSERT_TRUE(sr.stillFails);
    EXPECT_EQ(sr.detector, full.failure.detector);
    EXPECT_LT(sr.ops.size(), padded.ops.size());
    EXPECT_LE(sr.ops.size(), base.ops.size());
}

} // namespace
